"""Tests for fused multi-source stencils (the paper's future work)."""

import numpy as np
import pytest

from repro.baseline.reference import reference_stencil
from repro.compiler.codegen import ExtraTerm
from repro.compiler.fusion import FusedPattern, fuse
from repro.compiler.plan import StencilCompileError
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.executor import ExecutionSetupError
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import cross5, cross9, square9
from repro.stencil.pattern import Coefficient


def term(source="Y", coeff_name="CY"):
    return ExtraTerm(source=source, coeff=Coefficient.array(coeff_name))


def fused_problem(pattern, extra_terms, shape=(16, 24), seed=0, nodes=4):
    params = MachineParams(num_nodes=nodes)
    machine = CM2(params)
    rng = np.random.default_rng(seed)
    fused = fuse(pattern, extra_terms, params)
    x = rng.standard_normal(shape).astype(np.float32)
    arrays = {"X": CMArray.from_numpy("X", machine, x)}
    host = {"X": x}
    for t in extra_terms:
        data = rng.standard_normal(shape).astype(np.float32)
        arrays[t.source] = CMArray.from_numpy(t.source, machine, data)
        host[t.source] = data
    coeffs = {}
    for name in fused.pattern.coefficient_names():
        data = rng.standard_normal(shape).astype(np.float32)
        coeffs[name] = CMArray.from_numpy(name, machine, data)
        host[name] = data
    return fused, arrays, coeffs, host


def expected_result(pattern, extra_terms, host):
    base_coeffs = {
        name: host[name] for name in pattern.coefficient_names()
    }
    acc = reference_stencil(pattern, host["X"], base_coeffs)
    for t in extra_terms:
        product = (
            host[t.coeff.name].astype(np.float32)
            * host[t.source].astype(np.float32)
        ).astype(np.float32)
        acc = (acc + product).astype(np.float32)
    return acc


class TestFusedPattern:
    def test_requires_extra_terms(self):
        with pytest.raises(ValueError):
            FusedPattern(cross5(), [])

    def test_rejects_primary_source_as_extra(self):
        with pytest.raises(ValueError, match="primary source"):
            FusedPattern(cross5(), [term(source="X")])

    def test_flop_accounting_extended(self):
        fused = FusedPattern(cross9(), [term()])
        assert fused.useful_flops_per_point() == 17 + 2
        assert fused.issued_multiply_adds_per_point() == 10

    def test_coefficient_names_extended(self):
        fused = FusedPattern(cross5(), [term(coeff_name="C10")])
        assert fused.coefficient_names()[-1] == "C10"

    def test_geometry_delegates_to_base(self):
        fused = FusedPattern(cross9(), [term()])
        assert fused.border_widths().as_tuple() == (2, 2, 2, 2)
        assert not fused.needs_corner_exchange()

    def test_extra_source_names(self):
        fused = FusedPattern(
            cross5(), [term("Y", "CY"), term("Z", "CZ")]
        )
        assert fused.extra_source_names() == ("Y", "Z")


class TestFusedCompilation:
    def test_extra_registers_reject_wide_plans(self):
        """cross5 w8 uses 26 rings; +8 extra registers exceeds 32."""
        fused = fuse(cross5(), [term()])
        assert 8 not in fused.plans
        assert "registers" in fused.rejections[8]
        assert fused.max_width == 4

    def test_square9_cannot_fuse_wide(self):
        """square9 w8 uses 30 rings; no room for 8 extra registers."""
        fused = fuse(square9(), [term()])
        assert fused.max_width == 4

    def test_two_extra_terms_compile(self):
        fused = fuse(cross5(), [term("Y", "CY"), term("Z", "CZ")])
        assert fused.max_width >= 2

    def test_impossibly_many_terms_raise(self):
        terms = [term(f"Y{i}", f"CY{i}") for i in range(30)]
        with pytest.raises(StencilCompileError):
            fuse(cross5(), terms)

    def test_line_patterns_contain_extra_loads(self):
        from repro.machine.isa import LoadOp

        fused = fuse(cross5(), [term()])
        plan = fused.plans[fused.max_width]
        extra_loads = [
            op
            for op in plan.steady[0].ops
            if isinstance(op, LoadOp) and op.buffer == "Y"
        ]
        assert len(extra_loads) == plan.width

    def test_chain_length_includes_extra_terms(self):
        from repro.machine.isa import MAOp

        fused = fuse(cross5(), [term()])
        plan = fused.plans[fused.max_width]
        ma = [op for op in plan.steady[0].ops if isinstance(op, MAOp)]
        per_result = [op for op in ma if op.result_col == 0]
        assert len(per_result) == 6  # 5 taps + 1 fused term
        assert per_result[-1].last
        assert not per_result[-2].last

    def test_describe(self):
        fused = fuse(cross5(), [term()])
        assert "fused" in fused.describe()


class TestFusedExecution:
    @pytest.mark.parametrize("pattern_fn", [cross5, cross9])
    def test_fast_matches_reference(self, pattern_fn):
        pattern = pattern_fn()
        terms = [term()]
        fused, arrays, coeffs, host = fused_problem(pattern, terms)
        run = apply_stencil(fused, arrays["X"], coeffs, "R")
        np.testing.assert_array_equal(
            run.result.to_numpy(), expected_result(pattern, terms, host)
        )

    def test_exact_matches_fast_and_cycles(self):
        pattern = cross5()
        terms = [term()]
        fused, arrays, coeffs, host = fused_problem(pattern, terms)
        fast = apply_stencil(fused, arrays["X"], coeffs, "RF")
        exact = apply_stencil(fused, arrays["X"], coeffs, "RE", exact=True)
        np.testing.assert_array_equal(
            exact.result.to_numpy(), fast.result.to_numpy()
        )
        assert exact.compute_cycles == fast.compute_cycles

    def test_two_extra_terms_numerics(self):
        pattern = cross5()
        terms = [term("Y", "CY"), term("Z", "CZ")]
        fused, arrays, coeffs, host = fused_problem(pattern, terms, seed=5)
        run = apply_stencil(fused, arrays["X"], coeffs, "R")
        np.testing.assert_array_equal(
            run.result.to_numpy(), expected_result(pattern, terms, host)
        )

    def test_missing_extra_source_rejected(self):
        pattern = cross5()
        fused, arrays, coeffs, _ = fused_problem(pattern, [term()])
        # Build a fresh machine without the Y array.
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        x = CMArray("X", machine, (16, 24))
        missing_coeffs = {
            name: CMArray(name, machine, (16, 24))
            for name in fused.pattern.coefficient_names()
        }
        with pytest.raises(ExecutionSetupError, match="extra-source"):
            apply_stencil(fused, x, missing_coeffs, "R")

    def test_fused_flop_accounting_in_run(self):
        pattern = cross5()
        fused, arrays, coeffs, _ = fused_problem(pattern, [term()])
        run = apply_stencil(fused, arrays["X"], coeffs, "R")
        assert run.useful_flops == 16 * 24 * (9 + 2)


class TestFusedSeismic:
    def test_all_three_loops_bit_identical(self):
        from repro.apps.seismic import SeismicModel, ricker_wavelet

        wavelet = ricker_wavelet(8, 0.001)
        fields = {}
        for runner in ("run_copy_loop", "run_unrolled_loop", "run_fused_loop"):
            machine = CM2(MachineParams(num_nodes=4))
            model = SeismicModel(
                machine, (16, 32), dt=0.001, dx=10.0, source=(8, 16)
            )
            model.set_initial_pulse(sigma=2.0)
            getattr(model, runner)(8, wavelet)
            fields[runner] = model.wavefield()
        np.testing.assert_array_equal(
            fields["run_copy_loop"], fields["run_fused_loop"]
        )
        np.testing.assert_array_equal(
            fields["run_unrolled_loop"], fields["run_fused_loop"]
        )

    def test_fused_is_fastest(self):
        """Fusing beats unrolling beats copying (the paper's future
        work pays off on top of its measured result)."""
        from repro.apps.seismic import SeismicModel

        rates = {}
        for runner in ("run_copy_loop", "run_unrolled_loop", "run_fused_loop"):
            machine = CM2(MachineParams(num_nodes=4))
            model = SeismicModel(machine, (16, 32), dt=0.001, dx=10.0)
            model.set_initial_pulse()
            getattr(model, runner)(6)
            rates[runner] = model.timing.gflops
        assert (
            rates["run_fused_loop"]
            > rates["run_unrolled_loop"]
            > rates["run_copy_loop"]
        )
