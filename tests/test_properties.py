"""Property-based tests (hypothesis) on the core invariants.

The generator-driven end-to-end property is the strongest test in the
suite: arbitrary stencil patterns, coefficient kinds, subgrid shapes,
and machine sizes must produce bit-identical results across the
reference semantics, the vectorized fast path, and the cycle-stepped
WTL3164 datapath -- with the closed-form cycle model matching the
stepped simulator exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.reference import reference_stencil
from repro.compiler.allocation import AllocationError, allocate
from repro.compiler.plan import StencilCompileError, compile_pattern
from repro.compiler.ringbuf import RingBuffer, column_span, plan_ring_sizes
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.halo import exchange_halo, halo_buffer_name
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.multistencil import ColumnProfile, Multistencil
from repro.stencil.offsets import (
    BoundaryMode,
    Shift,
    ShiftKind,
    apply_shift_chain,
    compose_offsets,
)
from repro.stencil.pattern import (
    Coefficient,
    StencilPattern,
    Tap,
    pattern_from_offsets,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

offsets_strategy = st.lists(
    st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
    min_size=1,
    max_size=7,
    unique=True,
)


@st.composite
def patterns(draw):
    """Random stencil patterns with mixed coefficient kinds."""
    offsets = draw(offsets_strategy)
    taps = []
    for index, offset in enumerate(offsets):
        kind = draw(st.sampled_from(["array", "scalar", "unit"]))
        if kind == "array":
            coeff = Coefficient.array(f"C{index + 1}")
        elif kind == "scalar":
            coeff = Coefficient.scalar(
                draw(st.floats(-4.0, 4.0, allow_nan=False, width=32))
            )
        else:
            coeff = Coefficient.unit()
        taps.append(Tap(offset=offset, coeff=coeff))
    if draw(st.booleans()):
        taps.append(
            Tap(
                offset=(0, 0),
                coeff=Coefficient.array("CCONST"),
                is_constant_term=True,
            )
        )
    boundary = {
        1: draw(st.sampled_from(list(BoundaryMode))),
        2: draw(st.sampled_from(list(BoundaryMode))),
    }
    return StencilPattern(taps, boundary=boundary, name="random")


cshift_chains = st.lists(
    st.builds(
        Shift,
        kind=st.just(ShiftKind.CSHIFT),
        dim=st.integers(1, 2),
        amount=st.integers(-3, 3),
    ),
    min_size=1,
    max_size=4,
)


# ----------------------------------------------------------------------
# Shift composition
# ----------------------------------------------------------------------


class TestShiftProperties:
    @given(chain=cshift_chains)
    @settings(max_examples=60, deadline=None)
    def test_cshift_chain_equals_net_roll(self, chain):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((7, 9)).astype(np.float32)
        chained = apply_shift_chain(x, chain)
        totals = compose_offsets(chain)
        rolled = np.roll(
            x, (-totals.get(1, 0), -totals.get(2, 0)), axis=(0, 1)
        )
        np.testing.assert_array_equal(chained, rolled)

    @given(chain=cshift_chains)
    @settings(max_examples=40, deadline=None)
    def test_cshift_chain_order_irrelevant(self, chain):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((6, 6)).astype(np.float32)
        forward = apply_shift_chain(x, chain)
        backward = apply_shift_chain(x, list(reversed(chain)))
        np.testing.assert_array_equal(forward, backward)


# ----------------------------------------------------------------------
# Ring buffers
# ----------------------------------------------------------------------


@st.composite
def columns(draw):
    rows = draw(
        st.lists(st.integers(-3, 3), min_size=1, max_size=5, unique=True)
    )
    return ColumnProfile(x=0, rows=tuple(sorted(rows)))


class TestRingProperties:
    @given(column=columns(), extra=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_live_elements_never_collide(self, column, extra):
        size = column_span(column) + extra
        ring = RingBuffer(
            column=column, size=size, registers=tuple(range(size))
        )
        for line in range(2 * size + 1):
            slots = [ring.slot_for(row, line) for row in column.rows]
            assert len(slots) == len(set(slots))

    @given(column=columns())
    @settings(max_examples=60, deadline=None)
    def test_load_slot_matches_new_top_element(self, column):
        size = column_span(column)
        ring = RingBuffer(
            column=column, size=size, registers=tuple(range(size))
        )
        for line in range(3 * size):
            assert ring.slot_for(column.top, line) == ring.load_slot(line)

    @given(
        heights=st.lists(st.integers(1, 6), min_size=1, max_size=10),
        budget=st.integers(4, 31),
    )
    @settings(max_examples=80, deadline=None)
    def test_ring_plan_respects_budget_when_feasible(self, heights, budget):
        cols = [
            ColumnProfile(x=i, rows=tuple(range(h)))
            for i, h in enumerate(heights)
        ]
        sizes = plan_ring_sizes(cols, budget)
        if sizes is None:
            assert sum(heights) > budget
        else:
            assert sum(sizes) <= budget
            for size, height in zip(sizes, heights):
                assert size >= height


# ----------------------------------------------------------------------
# Multistencils
# ----------------------------------------------------------------------


class TestMultistencilProperties:
    @given(offsets=offsets_strategy, width=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=80, deadline=None)
    def test_positions_at_most_naive(self, offsets, width):
        pattern = pattern_from_offsets(offsets)
        ms = Multistencil(pattern, width)
        assert ms.num_positions <= ms.naive_load_count()

    @given(offsets=offsets_strategy, width=st.sampled_from([2, 4, 8]))
    @settings(max_examples=80, deadline=None)
    def test_accumulator_safe_from_later_occurrences(self, offsets, width):
        pattern = pattern_from_offsets(offsets)
        ms = Multistencil(pattern, width)
        for r in range(width):
            acc = ms.accumulator_position(r)
            for later in range(r + 1, width):
                assert acc not in ms.occurrence_positions(later)

    @given(offsets=offsets_strategy, width=st.sampled_from([1, 2, 4]))
    @settings(max_examples=60, deadline=None)
    def test_leading_edge_covers_new_footprint(self, offsets, width):
        """Moving the footprint one line North, every newly needed
        position is either the column's loaded leading-edge element or a
        gap-fill already held by the ring (an element loaded on an
        earlier line, aged through the column's span)."""
        pattern = pattern_from_offsets(offsets)
        ms = Multistencil(pattern, width)
        here = set(ms.positions)
        above = {(dy - 1, dx) for (dy, dx) in here}
        loaded = {(row - 1, x) for row, x in ms.leading_edge()}
        spans = {col.x: (col.top, col.bottom) for col in ms.columns}
        for (row, x) in above - here:
            if (row, x) in loaded:
                continue
            top, bottom = spans[x]
            # Shifted back to the original line's coordinates, the
            # element at (row + 1, x) lies inside the ring's span.
            assert top < row + 1 <= bottom

    @given(offsets=offsets_strategy, width=st.sampled_from([1, 2, 4]))
    @settings(max_examples=60, deadline=None)
    def test_contiguous_columns_leading_edge_exact(self, offsets, width):
        pattern = pattern_from_offsets(offsets)
        ms = Multistencil(pattern, width)
        if any(
            col.rows != tuple(range(col.top, col.bottom + 1))
            for col in ms.columns
        ):
            return  # gapped columns covered by the weaker property above
        here = set(ms.positions)
        above = {(dy - 1, dx) for (dy, dx) in here}
        assert (above - here) == {
            (row - 1, x) for row, x in ms.leading_edge()
        }


# ----------------------------------------------------------------------
# Allocation
# ----------------------------------------------------------------------


class TestAllocationProperties:
    @given(offsets=offsets_strategy, width=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=80, deadline=None)
    def test_allocations_fit_register_file(self, offsets, width):
        pattern = pattern_from_offsets(offsets)
        try:
            alloc = allocate(pattern, width)
        except AllocationError:
            return
        assert alloc.total_registers <= 32
        regs = [r for ring in alloc.rings for r in ring.registers]
        assert len(regs) == len(set(regs))
        assert 0 not in regs  # the zero register is reserved


# ----------------------------------------------------------------------
# Halo exchange
# ----------------------------------------------------------------------


class TestHaloProperties:
    @given(
        seed=st.integers(0, 10_000),
        mode1=st.sampled_from(list(BoundaryMode)),
        mode2=st.sampled_from(list(BoundaryMode)),
    )
    @settings(max_examples=25, deadline=None)
    def test_padded_buffer_equals_global_window(self, seed, mode1, mode2):
        pattern = pattern_from_offsets(
            [(dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)],
            boundary={1: mode1, 2: mode2},
            fill_value=0.0,
        )
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((8, 12)).astype(np.float32)
        x = CMArray.from_numpy("X", machine, data)
        exchange_halo(x, pattern, params)
        mode_str = {
            BoundaryMode.CIRCULAR: "wrap",
            BoundaryMode.FILL: "constant",
        }
        rows = np.pad(data, ((1, 1), (0, 0)), mode=mode_str[mode1])
        full = np.pad(rows, ((0, 0), (1, 1)), mode=mode_str[mode2])
        sr, sc = x.subgrid_shape
        for node in machine.nodes():
            r, c = node.coord.row, node.coord.col
            window = full[r * sr : (r + 1) * sr + 2, c * sc : (c + 1) * sc + 2]
            padded = node.memory.buffer(halo_buffer_name("X"))
            np.testing.assert_array_equal(padded, window)


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------


class TestEndToEndProperties:
    @given(
        pattern=patterns(),
        seed=st.integers(0, 10_000),
        shape=st.sampled_from([(8, 8), (6, 10), (10, 14), (12, 16)]),
    )
    @settings(max_examples=30, deadline=None)
    def test_fast_path_matches_reference(self, pattern, seed, shape):
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        rng = np.random.default_rng(seed)
        gshape = (shape[0] * 2, shape[1] * 2)
        x = rng.standard_normal(gshape).astype(np.float32)
        coeffs = {
            name: rng.standard_normal(gshape).astype(np.float32)
            for name in pattern.coefficient_names()
        }
        try:
            compiled = compile_pattern(pattern, params)
        except StencilCompileError:
            return
        X = CMArray.from_numpy("X", machine, x)
        C = {
            name: CMArray.from_numpy(name, machine, data)
            for name, data in coeffs.items()
        }
        run = apply_stencil(compiled, X, C)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
        )

    @given(pattern=patterns(), seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_exact_datapath_matches_fast_and_cycle_model(self, pattern, seed):
        params = MachineParams(num_nodes=1)
        machine = CM2(params)
        rng = np.random.default_rng(seed)
        gshape = (7, 11)
        x = rng.standard_normal(gshape).astype(np.float32)
        coeffs = {
            name: rng.standard_normal(gshape).astype(np.float32)
            for name in pattern.coefficient_names()
        }
        try:
            compiled = compile_pattern(pattern, params)
        except StencilCompileError:
            return
        X = CMArray.from_numpy("X", machine, x)
        C = {
            name: CMArray.from_numpy(name, machine, data)
            for name, data in coeffs.items()
        }
        fast = apply_stencil(compiled, X, C, "RF")
        exact = apply_stencil(compiled, X, C, "RE", exact=True)
        np.testing.assert_array_equal(
            exact.result.to_numpy(), fast.result.to_numpy()
        )
        assert exact.compute_cycles == fast.compute_cycles


# ----------------------------------------------------------------------
# Front-end round trips
# ----------------------------------------------------------------------


@st.composite
def fortran_statements(draw):
    """Random stencil statements rendered as Fortran source.

    At least one term carries a CSHIFT: a statement with no shifting
    intrinsic at all cannot name its data variable and is (correctly)
    rejected by the recognizer.
    """
    offsets = draw(offsets_strategy)
    if all(dy == 0 and dx == 0 for dy, dx in offsets):
        extra = draw(st.sampled_from([(-1, 0), (0, 1), (1, -1)]))
        offsets = offsets + [extra]
    terms = []
    for index, (dy, dx) in enumerate(offsets):
        ref = "X"
        if dy:
            ref = f"CSHIFT({ref}, 1, {dy:+d})"
        if dx:
            ref = f"CSHIFT({ref}, 2, {dx:+d})"
        kind = draw(st.sampled_from(["array", "scalar", "bare"]))
        if kind == "array":
            terms.append(f"C{index + 1} * {ref}")
        elif kind == "scalar":
            value = draw(st.integers(1, 9))
            terms.append(f"{value}.5 * {ref}")
        else:
            terms.append(ref)
    return " + ".join(terms), offsets


class TestFrontEndRoundTrip:
    @given(data=fortran_statements())
    @settings(max_examples=60, deadline=None)
    def test_recognizer_recovers_offsets(self, data):
        from repro.fortran.parser import parse_assignment
        from repro.fortran.recognizer import recognize_assignment

        source, offsets = data
        pattern = recognize_assignment(parse_assignment("R = " + source))
        assert set(pattern.offsets) == set(offsets)

    @given(data=fortran_statements(), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_recognized_pattern_matches_direct_interpretation(
        self, data, seed
    ):
        """Recognize-and-evaluate equals executing the statement."""
        from repro.baseline.reference import (
            evaluate_assignment,
            reference_stencil,
        )
        from repro.fortran.parser import parse_assignment
        from repro.fortran.recognizer import recognize_assignment

        source, offsets = data
        statement = parse_assignment("R = " + source)
        pattern = recognize_assignment(statement)
        rng = np.random.default_rng(seed)
        env = {"X": rng.standard_normal((8, 10)).astype(np.float32)}
        for index in range(len(offsets)):
            env[f"C{index + 1}"] = rng.standard_normal((8, 10)).astype(
                np.float32
            )
        direct = evaluate_assignment(statement, env)
        coeffs = {
            name: env[name] for name in pattern.coefficient_names()
        }
        via_pattern = reference_stencil(pattern, env["X"], coeffs)
        np.testing.assert_allclose(via_pattern, direct, rtol=2e-6, atol=1e-6)


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------


class TestFusionProperties:
    @given(
        offsets=offsets_strategy,
        num_extra=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_fused_fast_path_matches_reference(self, offsets, num_extra, seed):
        from repro.baseline.reference import reference_stencil
        from repro.compiler.codegen import ExtraTerm
        from repro.compiler.fusion import fuse
        from repro.compiler.plan import StencilCompileError

        pattern = pattern_from_offsets(offsets)
        terms = [
            ExtraTerm(source=f"Y{i}", coeff=Coefficient.array(f"CY{i}"))
            for i in range(num_extra)
        ]
        params = MachineParams(num_nodes=4)
        try:
            fused = fuse(pattern, terms, params)
        except StencilCompileError:
            return
        machine = CM2(params)
        rng = np.random.default_rng(seed)
        shape = (8, 12)
        x = rng.standard_normal(shape).astype(np.float32)
        X = CMArray.from_numpy("X", machine, x)
        host = {"X": x}
        for term in terms:
            data = rng.standard_normal(shape).astype(np.float32)
            CMArray.from_numpy(term.source, machine, data)
            host[term.source] = data
        coeffs = {}
        for name in fused.pattern.coefficient_names():
            data = rng.standard_normal(shape).astype(np.float32)
            coeffs[name] = CMArray.from_numpy(name, machine, data)
            host[name] = data
        run = apply_stencil(fused, X, coeffs, "R")
        expected = reference_stencil(
            pattern,
            x,
            {n: host[n] for n in pattern.coefficient_names()},
        )
        for term in terms:
            product = (
                host[term.coeff.name] * host[term.source]
            ).astype(np.float32)
            expected = (expected + product).astype(np.float32)
        np.testing.assert_array_equal(run.result.to_numpy(), expected)
