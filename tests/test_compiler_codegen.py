"""Tests for code generation: line patterns, drain gaps, width plans."""

import pytest

from repro.compiler.allocation import allocate
from repro.compiler.codegen import (
    build_line_pattern,
    drain_gap,
    multiply_add_block,
)
from repro.compiler.plan import (
    StencilCompileError,
    compile_pattern,
)
from repro.machine.isa import LoadOp, MAOp, NopOp, StoreOp
from repro.machine.params import MachineParams
from repro.stencil.gallery import cross5, cross9, diamond13, square9
from repro.stencil.pattern import Coefficient, StencilPattern, Tap


@pytest.fixture
def params():
    return MachineParams()


class TestMultiplyAddBlock:
    def test_block_length_even_width(self, params):
        alloc = allocate(cross5(), 8)
        ops, last = multiply_add_block(cross5(), alloc, phase=0)
        assert len(ops) == 8 * 5  # width * taps, two threads filling pairs
        assert all(isinstance(op, MAOp) for op in ops)

    def test_block_length_odd_width(self, params):
        alloc = allocate(cross5(), 1)
        ops, last = multiply_add_block(cross5(), alloc, phase=0)
        # Solo occurrence: k issues with k-1 interleave nops.
        assert len(ops) == 2 * 5 - 1
        nops = [op for op in ops if isinstance(op, NopOp)]
        assert len(nops) == 4

    def test_threads_alternate_within_pairs(self, params):
        alloc = allocate(cross5(), 4)
        ops, _ = multiply_add_block(cross5(), alloc, phase=0)
        threads = [op.thread for op in ops if isinstance(op, MAOp)]
        assert threads == [0, 1] * (len(threads) // 2)

    def test_chains_open_and_close(self, params):
        alloc = allocate(cross5(), 2)
        ops, _ = multiply_add_block(cross5(), alloc, phase=0)
        ma_ops = [op for op in ops if isinstance(op, MAOp)]
        for occurrence in (0, 1):
            chain = [op for op in ma_ops if op.result_col == occurrence]
            assert chain[0].first and not chain[0].last
            assert chain[-1].last and not chain[-1].first
            assert all(
                not op.first and not op.last for op in chain[1:-1]
            )

    def test_dest_is_tagged_register(self, params):
        alloc = allocate(cross5(), 4)
        ops, _ = multiply_add_block(cross5(), alloc, phase=0)
        for op in ops:
            if isinstance(op, MAOp):
                row, colx = alloc.multistencil.accumulator_position(
                    op.result_col
                )
                assert op.dest_reg == alloc.register_for(row, colx, 0)

    def test_last_issue_offsets_are_sorted_by_occurrence_pairing(self, params):
        alloc = allocate(cross5(), 8)
        _, last = multiply_add_block(cross5(), alloc, phase=0)
        assert set(last) == set(range(8))
        # Left of a pair issues one cycle before the right.
        for pair in range(4):
            assert last[2 * pair + 1] == last[2 * pair] + 1


class TestDrainGap:
    def test_gap_at_least_reversal_penalty(self, params):
        assert drain_gap(100, {0: 0}, params) == params.pipe_reversal_penalty

    def test_gap_covers_writeback(self, params):
        # Last issue at the end of a tiny block: the writeback (+4) is
        # not covered by the store offset.
        gap = drain_gap(2, {0: 1}, params)
        assert gap == 1 + 4 - 2 - 0

    def test_stores_never_precede_writeback(self, params):
        for pattern in (cross5(), square9(), diamond13()):
            for width in (8, 4, 2, 1):
                try:
                    alloc = allocate(pattern, width)
                except Exception:
                    continue
                ops, last = multiply_add_block(pattern, alloc, phase=0)
                gap = drain_gap(len(ops), last, params)
                for occurrence, issue in last.items():
                    store_cycle = (
                        len(ops) + gap + occurrence * params.memory_access_cycles
                    )
                    assert store_cycle >= issue + params.writeback_latency


class TestLinePattern:
    def test_steady_line_structure(self, params):
        alloc = allocate(cross5(), 8)
        line = build_line_pattern(cross5(), alloc, params, 0, full_load=False)
        kinds = [type(op).__name__ for op in line.ops]
        # loads first, stores last.
        assert kinds[0] == "LoadOp"
        assert kinds[-1] == "NopOp"  # mem-transfer after the final store
        assert line.num_loads == len(alloc.rings)
        assert line.num_stores == 8

    def test_prologue_loads_full_multistencil(self, params):
        alloc = allocate(cross5(), 8)
        line = build_line_pattern(cross5(), alloc, params, 0, full_load=True)
        assert line.num_loads == 26

    def test_one_op_per_cycle(self, params):
        alloc = allocate(cross5(), 8)
        line = build_line_pattern(cross5(), alloc, params, 0, full_load=False)
        expected = (
            line.num_loads * params.memory_access_cycles
            + params.load_latency
            + line.num_ma
            + line.drain_gap
            + line.num_stores * params.memory_access_cycles
        )
        assert line.cycles == expected

    def test_steady_lines_same_length_every_phase(self, params):
        alloc = allocate(diamond13(), 4)
        lengths = {
            build_line_pattern(
                diamond13(), alloc, params, phase, full_load=False
            ).cycles
            for phase in range(alloc.unroll)
        }
        assert len(lengths) == 1

    def test_phases_use_rotated_registers(self, params):
        alloc = allocate(cross5(), 8)
        line0 = build_line_pattern(cross5(), alloc, params, 0, full_load=False)
        line1 = build_line_pattern(cross5(), alloc, params, 1, full_load=False)
        loads0 = [op.reg for op in line0.ops if isinstance(op, LoadOp)]
        loads1 = [op.reg for op in line1.ops if isinstance(op, LoadOp)]
        assert loads0 != loads1

    def test_load_targets_match_leading_edge(self, params):
        alloc = allocate(diamond13(), 4)
        line = build_line_pattern(diamond13(), alloc, params, 0, full_load=False)
        loads = [(op.row, op.col) for op in line.ops if isinstance(op, LoadOp)]
        assert loads == list(alloc.multistencil.leading_edge())


class TestCompiledStencil:
    def test_available_widths_cross5(self, params):
        compiled = compile_pattern(cross5(), params)
        assert compiled.widths == (8, 4, 2, 1)

    def test_available_widths_diamond13(self, params):
        compiled = compile_pattern(diamond13(), params)
        assert compiled.widths == (4, 2, 1)
        assert 8 in compiled.rejections

    def test_strip_widths_paper_example(self, params):
        """A subgrid axis of 21 becomes 8 + 8 + 4 + 1 (paper section 5.3)."""
        compiled = compile_pattern(cross5(), params)
        assert compiled.strip_widths(21) == [8, 8, 4, 1]

    def test_strip_widths_without_width8(self, params):
        """If width 8 is rejected, 21 becomes five 4s and a 1."""
        compiled = compile_pattern(diamond13(), params)
        assert compiled.strip_widths(21) == [4, 4, 4, 4, 4, 1]

    def test_plan_for_remaining(self, params):
        compiled = compile_pattern(cross5(), params)
        assert compiled.plan_for(21).width == 8
        assert compiled.plan_for(7).width == 4
        assert compiled.plan_for(1).width == 1

    def test_scratch_words_accounted(self, params):
        compiled = compile_pattern(cross5(), params)
        plan = compiled.plans[8]
        assert plan.scratch_words == plan.prologue.cycles + sum(
            line.cycles for line in plan.steady
        )
        assert plan.scratch_words <= params.scratch_memory_words

    def test_scratch_memory_limit_rejects_width(self):
        tiny = MachineParams(scratch_memory_words=100)
        compiled = compile_pattern(cross5(), tiny)
        assert 8 not in compiled.plans
        assert "scratch" in compiled.rejections[8]

    def test_impossible_pattern_raises(self, params):
        # 40 taps in one row: even width 1 needs 40 registers.
        offsets = [(0, dx) for dx in range(40)]
        taps = [
            Tap(offset=o, coeff=Coefficient.array(f"C{i}"))
            for i, o in enumerate(offsets)
        ]
        with pytest.raises(StencilCompileError):
            compile_pattern(StencilPattern(taps, name="wide40"), params)

    def test_half_strip_cycles_formula(self, params):
        compiled = compile_pattern(cross5(), params)
        plan = compiled.plans[8]
        lines = 10
        expected = (
            params.half_strip_dispatch_cycles
            + plan.prologue_cycles
            + (lines - 1) * plan.steady_line_cycles
            + lines * params.sequencer_line_overhead
        )
        assert plan.half_strip_cycles(lines, params) == expected
        assert plan.half_strip_cycles(0, params) == 0

    def test_pattern_for_line(self, params):
        compiled = compile_pattern(cross5(), params)
        plan = compiled.plans[8]
        assert plan.pattern_for_line(0).full_load
        assert not plan.pattern_for_line(1).full_load
        assert plan.pattern_for_line(1).phase == 1 % plan.unroll
        assert plan.pattern_for_line(plan.unroll).phase == 0

    def test_describe_mentions_rejections(self, params):
        compiled = compile_pattern(diamond13(), params)
        assert "rejected" in compiled.describe()
