"""Tests for the parametric pattern generators."""

import numpy as np
import pytest

from repro.baseline.reference import reference_stencil
from repro.compiler.driver import compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import box, column, cross, diamond, row, square


class TestGenerators:
    def test_cross_sizes(self):
        assert cross(1).num_points == 5
        assert cross(2).num_points == 9
        assert cross(3).num_points == 13

    def test_square_sizes(self):
        assert square(1).num_points == 9
        assert square(2).num_points == 25

    def test_diamond_sizes(self):
        assert diamond(1).num_points == 5
        assert diamond(2).num_points == 13
        assert diamond(3).num_points == 25

    def test_box_extents(self):
        pattern = box(2, 3)
        assert pattern.num_points == 6
        widths = pattern.border_widths()
        assert widths.north == 0 and widths.south == 1
        assert widths.west == 1 and widths.east == 1

    def test_box_validation(self):
        with pytest.raises(ValueError):
            box(0, 3)

    def test_row_and_column(self):
        assert row(5).border_widths().as_tuple() == (0, 0, 2, 2)
        assert column(5).border_widths().as_tuple() == (2, 2, 0, 0)

    def test_row_compiles_wide(self):
        """1-D stencils have height-1 columns only: cheap rings, width 8."""
        compiled = compile_stencil(row(5))
        assert compiled.max_width == 8
        assert compiled.plans[8].unroll == 1

    def test_generated_patterns_run_end_to_end(self):
        params = MachineParams(num_nodes=4)
        for pattern in (box(2, 3), row(5), column(3)):
            machine = CM2(params)
            rng = np.random.default_rng(0)
            x = rng.standard_normal((8, 16)).astype(np.float32)
            coeffs = {
                name: rng.standard_normal((8, 16)).astype(np.float32)
                for name in pattern.coefficient_names()
            }
            compiled = compile_stencil(pattern, params)
            X = CMArray.from_numpy("X", machine, x)
            C = {
                name: CMArray.from_numpy(name, machine, data)
                for name, data in coeffs.items()
            }
            run = apply_stencil(compiled, X, C)
            np.testing.assert_array_equal(
                run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
            )
