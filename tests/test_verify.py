"""The static verification layer, tested by mutation.

Two halves:

* **Acceptance** -- every gallery pattern, every feasible width, both
  ring-sizing strategies must verify with zero diagnostics (the
  verifier's model of the microcode must match the generator exactly).
* **Mutation self-test** -- seed a specific corruption into a known-good
  plan and check the verifier reports it with the *right* ``RS###``
  code.  A verifier that misses its own seeded faults proves nothing.
"""

import dataclasses

import pytest

from repro.compiler.codegen import LinePattern
from repro.compiler.driver import (
    clear_compile_cache,
    compile_stencil,
)
from repro.compiler.plan import CompiledStencil, compile_pattern
from repro.compiler.ringbuf import RingBuffer, column_span
from repro.machine.isa import LoadOp, MAOp, NopOp, StoreOp
from repro.machine.params import MachineParams
from repro.stencil.gallery import cross5, cross9, diamond13
from repro.verify import (
    VerificationError,
    analyze_lifetimes,
    assert_verified,
    check_register_usage,
    verify_compiled,
    verify_gallery,
    verify_plan,
)

PARAMS = MachineParams()


def codes(diagnostics):
    return {d.code for d in diagnostics}


@pytest.fixture(scope="module")
def compiled_cross5():
    return compile_pattern(cross5(), PARAMS)


@pytest.fixture(scope="module")
def plan8(compiled_cross5):
    return compiled_cross5.plans[8]


def replace_line(plan, which, line):
    """A copy of ``plan`` with one line pattern replaced."""
    if which == "prologue":
        return dataclasses.replace(plan, prologue=line)
    steady = list(plan.steady)
    steady[which] = line
    return dataclasses.replace(plan, steady=tuple(steady))


def with_ops(line: LinePattern, ops) -> LinePattern:
    return dataclasses.replace(line, ops=tuple(ops))


# ----------------------------------------------------------------------
# Acceptance: the gallery verifies clean
# ----------------------------------------------------------------------


class TestGalleryVerifies:
    def test_every_pattern_width_strategy_clean(self):
        results = verify_gallery(PARAMS)
        assert len(results) == 12  # 6 patterns x 2 strategies
        for key, diagnostics in results.items():
            assert diagnostics == [], (key, [d.describe() for d in diagnostics])

    def test_fused_plan_verifies(self):
        from repro.compiler.fusion import ExtraTerm, fuse
        from repro.stencil.pattern import Coefficient

        fused = fuse(
            cross9(),
            [ExtraTerm(source="PREV", coeff=Coefficient.array("CT"))],
            PARAMS,
        )
        assert verify_compiled(fused) == []

    def test_all_widths_covered(self, compiled_cross5):
        assert set(compiled_cross5.plans) == {8, 4, 2, 1}
        for width, plan in compiled_cross5.plans.items():
            assert verify_plan(plan, PARAMS) == [], f"width {width}"


# ----------------------------------------------------------------------
# Mutation self-test: dataflow
# ----------------------------------------------------------------------


def first_real_ma(line):
    index, op = next(
        (i, op)
        for i, op in enumerate(line.ops)
        if isinstance(op, MAOp) and not op.is_dummy
    )
    return index, op


class TestDataflowMutations:
    def test_swapped_loads_caught(self, plan8):
        """Two prologue loads exchanged: operands feed the wrong taps."""
        pro = plan8.prologue
        _, ma = first_real_ma(pro)
        ops = list(pro.ops)
        li = next(
            i
            for i, op in enumerate(ops)
            if isinstance(op, LoadOp) and op.reg == ma.data_reg
        )
        lj = next(
            i
            for i, op in enumerate(ops)
            if isinstance(op, LoadOp)
            and (op.row, op.col) != (ops[li].row, ops[li].col)
        )
        # Swap the *target registers*, not the op positions: each element
        # now lands in the other's register, so the chains read the wrong
        # taps (swapping positions alone would be semantically harmless).
        ops[li], ops[lj] = (
            dataclasses.replace(ops[li], reg=ops[lj].reg),
            dataclasses.replace(ops[lj], reg=ops[li].reg),
        )
        mutated = replace_line(plan8, "prologue", with_ops(pro, ops))
        assert "RS406" in codes(verify_plan(mutated, PARAMS))

    def test_dropped_load_caught(self, plan8):
        """A prologue load removed: its consumer reads an undefined reg."""
        pro = plan8.prologue
        _, ma = first_real_ma(pro)
        ops = list(pro.ops)
        li = next(
            i
            for i, op in enumerate(ops)
            if isinstance(op, LoadOp) and op.reg == ma.data_reg
        )
        ops[li] = NopOp("dropped-by-test")
        mutated = replace_line(plan8, "prologue", with_ops(pro, ops))
        assert "RS401" in codes(verify_plan(mutated, PARAMS))

    def test_late_load_read_before_ready(self, plan8):
        """The load feeding the first multiply-add delayed into the fill
        slot right before the MA block: its value is not ready yet."""
        line = plan8.steady[0]
        mi, ma = first_real_ma(line)
        ops = list(line.ops)
        li = next(
            i
            for i, op in enumerate(ops)
            if isinstance(op, LoadOp) and op.reg == ma.data_reg
        )
        assert li < mi - 1, "expected the load to precede the fill nops"
        assert isinstance(ops[mi - 1], NopOp)
        ops[li], ops[mi - 1] = ops[mi - 1], ops[li]
        mutated = replace_line(plan8, 0, with_ops(line, ops))
        assert "RS401" in codes(verify_plan(mutated, PARAMS))

    def test_load_into_reserved_register_caught(self, plan8):
        """A load aimed at the zero register clobbers the constant."""
        line = plan8.steady[0]
        ops = list(line.ops)
        li = next(i for i, op in enumerate(ops) if isinstance(op, LoadOp))
        ops[li] = dataclasses.replace(
            ops[li], reg=plan8.allocation.zero_reg
        )
        mutated = replace_line(plan8, 0, with_ops(line, ops))
        assert "RS402" in codes(verify_plan(mutated, PARAMS))

    def test_dropped_store_caught(self, plan8):
        """A store removed: one result column is never written back."""
        line = plan8.steady[0]
        ops = list(line.ops)
        si = next(i for i, op in enumerate(ops) if isinstance(op, StoreOp))
        ops[si] = NopOp("dropped-by-test")
        mutated = replace_line(plan8, 0, with_ops(line, ops))
        assert "RS404" in codes(verify_plan(mutated, PARAMS))

    def test_store_from_wrong_register_caught(self, plan8):
        """A store reading the zero register writes 0.0, not the sum."""
        line = plan8.steady[0]
        ops = list(line.ops)
        si = next(i for i, op in enumerate(ops) if isinstance(op, StoreOp))
        ops[si] = StoreOp(
            reg=plan8.allocation.zero_reg, result_col=ops[si].result_col
        )
        mutated = replace_line(plan8, 0, with_ops(line, ops))
        assert "RS404" in codes(verify_plan(mutated, PARAMS))

    def test_missing_drain_cycle_caught(self, plan8):
        """One drain nop removed: the store arrives before the pipe has
        reversed / the writeback has landed."""
        line = plan8.steady[0]
        ops = list(line.ops)
        si = next(i for i, op in enumerate(ops) if isinstance(op, StoreOp))
        assert isinstance(ops[si - 1], NopOp)
        del ops[si - 1]
        mutated = replace_line(plan8, 0, with_ops(line, ops))
        assert "RS403" in codes(verify_plan(mutated, PARAMS))

    def test_drain_gap_metadata_divergence_caught(self, plan8):
        """Metadata claiming one extra drain cycle than the ops show."""
        line = plan8.steady[0]
        mutated = replace_line(
            plan8, 0, dataclasses.replace(line, drain_gap=line.drain_gap + 1)
        )
        assert "RS405" in codes(verify_plan(mutated, PARAMS))

    def test_swapped_coefficients_caught(self, plan8):
        """Two multiply-adds with exchanged coefficients."""
        line = plan8.steady[0]
        ops = list(line.ops)
        mas = [
            i
            for i, op in enumerate(ops)
            if isinstance(op, MAOp) and not op.is_dummy
        ]
        mi = mas[0]
        mj = next(i for i in mas[1:] if ops[i].coeff != ops[mi].coeff)
        ops[mi], ops[mj] = (
            dataclasses.replace(ops[mi], coeff=ops[mj].coeff),
            dataclasses.replace(ops[mj], coeff=ops[mi].coeff),
        )
        mutated = replace_line(plan8, 0, with_ops(line, ops))
        assert "RS406" in codes(verify_plan(mutated, PARAMS))


# ----------------------------------------------------------------------
# Mutation self-test: lifetimes and register bookkeeping
# ----------------------------------------------------------------------


def forge_ring(column, size, registers):
    """Build a RingBuffer bypassing its constructor validation, exactly
    as a buggy allocator would."""
    ring = object.__new__(RingBuffer)
    object.__setattr__(ring, "column", column)
    object.__setattr__(ring, "size", size)
    object.__setattr__(ring, "registers", tuple(registers))
    return ring


def swap_ring(allocation, old, new):
    rings = tuple(new if r is old else r for r in allocation.rings)
    return dataclasses.replace(allocation, rings=rings)


class TestLifetimeMutations:
    def test_shrunken_ring_caught(self, plan8):
        """A ring one register short of its column span: the leading
        edge overwrites data a later line still reads."""
        alloc = plan8.allocation
        ring = next(r for r in alloc.rings if column_span(r.column) >= 2)
        shrunk = forge_ring(ring.column, ring.size - 1, ring.registers[:-1])
        found = codes(analyze_lifetimes(swap_ring(alloc, ring, shrunk)))
        assert "RS503" in found
        assert "RS501" in found

    def test_double_booked_register_caught(self, plan8):
        """One physical register assigned to two rings at once."""
        alloc = plan8.allocation
        a, b = alloc.rings[0], alloc.rings[1]
        stolen = forge_ring(
            b.column, b.size, (a.registers[0],) + b.registers[1:]
        )
        assert "RS504" in codes(analyze_lifetimes(swap_ring(alloc, b, stolen)))

    def test_register_outside_file_caught(self, plan8):
        alloc = plan8.allocation
        ring = alloc.rings[0]
        rogue = forge_ring(
            ring.column,
            ring.size,
            (PARAMS.registers + 5,) + ring.registers[1:],
        )
        assert "RS504" in codes(analyze_lifetimes(swap_ring(alloc, ring, rogue)))

    def test_phantom_register_caught(self, plan8):
        """A register allocated to a ring but never touched by any op:
        the op streams are self-consistent, so only the usage check
        (RS502) and the unroll tiling check (RS505) can see it."""
        alloc = plan8.allocation
        used = {alloc.zero_reg}
        if alloc.unit_reg is not None:
            used.add(alloc.unit_reg)
        for ring in alloc.rings:
            used.update(ring.registers)
        free = next(
            r for r in range(PARAMS.registers - 1, -1, -1) if r not in used
        )
        ring = alloc.rings[0]
        grown = forge_ring(
            ring.column, ring.size + 1, ring.registers + (free,)
        )
        bad_alloc = swap_ring(alloc, ring, grown)
        bad_plan = dataclasses.replace(plan8, allocation=bad_alloc)
        assert "RS502" in codes(check_register_usage(bad_plan))
        if alloc.unroll % grown.size != 0:
            assert "RS505" in codes(analyze_lifetimes(bad_alloc))

    def test_mangled_plan_reports_rs405_not_crash(self, plan8):
        """A plan too broken to walk yields a diagnostic, not a
        traceback (the CI gate must always get a diagnosis)."""
        mutated = dataclasses.replace(plan8, steady=())
        diagnostics = verify_plan(mutated, PARAMS)
        assert diagnostics, "expected at least one diagnostic"
        assert codes(diagnostics) <= {"RS405"}


# ----------------------------------------------------------------------
# The RS_VERIFY compile-time gate
# ----------------------------------------------------------------------


class TestDriverGate:
    def test_clean_compile_passes_under_rs_verify(self, monkeypatch):
        monkeypatch.setenv("RS_VERIFY", "1")
        clear_compile_cache()
        try:
            compiled = compile_stencil(cross5(), PARAMS)
            assert compiled.plans
        finally:
            clear_compile_cache()

    def test_corrupt_compile_raises_under_rs_verify(self, monkeypatch):
        base = compile_pattern(diamond13(), PARAMS)
        width, plan = next(iter(base.plans.items()))
        line = plan.steady[0]
        ops = list(line.ops)
        si = next(i for i, op in enumerate(ops) if isinstance(op, StoreOp))
        ops[si] = NopOp("dropped-by-test")
        bad_plan = dataclasses.replace(
            plan,
            steady=(dataclasses.replace(line, ops=tuple(ops)),)
            + plan.steady[1:],
        )
        corrupt = CompiledStencil(
            base.pattern, base.params, {width: bad_plan}, {}
        )

        import repro.compiler.driver as driver

        monkeypatch.setenv("RS_VERIFY", "1")
        monkeypatch.setattr(
            driver, "compile_pattern", lambda *a, **k: corrupt
        )
        clear_compile_cache()
        try:
            with pytest.raises(VerificationError) as excinfo:
                compile_stencil(diamond13(), PARAMS)
            assert "RS404" in str(excinfo.value)
        finally:
            clear_compile_cache()

    def test_gate_off_by_default(self, monkeypatch):
        monkeypatch.delenv("RS_VERIFY", raising=False)
        clear_compile_cache()
        try:
            assert compile_stencil(cross5(), PARAMS).plans
        finally:
            clear_compile_cache()

    def test_assert_verified_raises_with_catalogue_codes(self, plan8):
        mutated = dataclasses.replace(plan8, steady=())
        compiled = CompiledStencil(
            cross5(), PARAMS, {plan8.width: mutated}, {}
        )
        with pytest.raises(VerificationError) as excinfo:
            assert_verified(compiled)
        assert "RS405" in str(excinfo.value)


# ----------------------------------------------------------------------
# Aliasing at the apply_stencil boundary
# ----------------------------------------------------------------------


class TestAliasing:
    def _codes(self, **kwargs):
        from repro.verify import check_aliasing

        defaults = dict(result_name="R", source_name="X")
        defaults.update(kwargs)
        return codes(check_aliasing(cross5(), **defaults))

    def test_clean_call_passes(self):
        assert self._codes() == set()

    def test_destination_is_source_object(self):
        assert "RS601" in self._codes(same_object=True)

    def test_destination_named_as_source(self):
        assert "RS601" in self._codes(result_name="X", source_name="X")

    def test_destination_named_as_statement_coefficient(self):
        assert "RS602" in self._codes(result_name="C1")

    def test_destination_aliases_passed_coefficient(self):
        assert "RS602" in self._codes(
            coefficient_arrays={"C1": "R"}
        )

    def test_fused_extra_term_source_aliased(self):
        from repro.compiler.fusion import ExtraTerm, fuse
        from repro.stencil.pattern import Coefficient
        from repro.verify import check_aliasing

        fused = fuse(
            cross9(),
            [ExtraTerm(source="PREV", coeff=Coefficient.array("CT"))],
            PARAMS,
        )
        diagnostics = check_aliasing(
            fused.pattern, result_name="PREV", source_name="X"
        )
        (diag,) = [d for d in diagnostics if d.code == "RS603"]
        # In-place carried-field updates are well-defined: warn, do not
        # reject (the ocean example relies on this idiom).
        assert diag.severity == "warning"

    def test_fused_extra_term_coefficient_aliased(self):
        from repro.compiler.fusion import ExtraTerm, fuse
        from repro.stencil.pattern import Coefficient
        from repro.verify import check_aliasing

        fused = fuse(
            cross9(),
            [ExtraTerm(source="PREV", coeff=Coefficient.array("CT"))],
            PARAMS,
        )
        found = codes(
            check_aliasing(
                fused.pattern, result_name="CT", source_name="X"
            )
        )
        assert "RS602" in found

    def test_apply_stencil_rejects_aliased_destination(self):
        import numpy as np

        from repro.machine.machine import CM2
        from repro.runtime.cm_array import CMArray
        from repro.runtime.stencil_op import apply_stencil
        from repro.verify import AliasingError

        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        pattern = cross5()
        compiled = compile_pattern(pattern, params)
        data = np.zeros((8, 12), dtype=np.float32)
        X = CMArray.from_numpy("X", machine, data)
        C = {
            name: CMArray.from_numpy(name, machine, data)
            for name in pattern.coefficient_names()
        }
        with pytest.raises(AliasingError) as excinfo:
            apply_stencil(compiled, X, C, X)
        assert excinfo.value.diagnostics[0].code == "RS601"

        with pytest.raises(AliasingError) as excinfo:
            apply_stencil(compiled, X, C, "C1")
        assert excinfo.value.diagnostics[0].code == "RS602"

        # The clean spelling still runs.
        run = apply_stencil(compiled, X, C, "R")
        assert run.result.name == "R"
