"""Direct tests for smaller public API surfaces exercised only
indirectly elsewhere."""

import numpy as np
import pytest

from repro.analysis.breakdown import breakdown_run
from repro.compiler.driver import compile_fortran, compile_stencil
from repro.fortran.errors import DiagnosticSink
from repro.fortran.lexer import TokenKind, tokenize_fixed
from repro.machine.geometry import is_power_of_two
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.halo import exchange_cost
from repro.runtime.stencil_op import apply_stencil
from repro.runtime.strips import StripSchedule
from repro.stencil.gallery import cross5, square9, table1_patterns
from repro.stencil.pattern import Coefficient, StencilPattern, Tap


class TestGalleryTable1:
    def test_table1_patterns_are_the_four_groups(self):
        names = [p.name for p in table1_patterns()]
        assert names == ["cross5", "cross9", "square9", "diamond13"]

    def test_table1_patterns_all_compile(self):
        for pattern in table1_patterns():
            assert compile_stencil(pattern).max_width >= 4


class TestScalarPages:
    def test_scalar_coefficient_values_deduplicated(self):
        compiled = compile_fortran(
            "R = 0.5 * CSHIFT(X, 1, -1) + 0.5 * CSHIFT(X, 1, +1) + 0.25 * X"
        )
        assert sorted(compiled.scalar_coefficient_values()) == [0.25, 0.5]

    def test_negative_zero_gets_its_own_page(self):
        taps = [
            Tap(offset=(0, 0), coeff=Coefficient.scalar(0.0)),
            Tap(offset=(0, 1), coeff=Coefficient.scalar(-0.0)),
        ]
        compiled = compile_stencil(StencilPattern(taps, name="zeros"))
        values = compiled.scalar_coefficient_values()
        assert len(values) == 2
        assert {repr(v) for v in values} == {"0.0", "-0.0"}

    def test_array_coefficients_need_no_pages(self):
        compiled = compile_stencil(cross5())
        assert compiled.scalar_coefficient_values() == ()


class TestRunAccessors:
    def test_time_decomposition_consistent(self):
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        pattern = cross5()
        compiled = compile_stencil(pattern, params)
        X = CMArray("X", machine, (16, 16))
        C = {n: CMArray(n, machine, (16, 16)) for n in pattern.coefficient_names()}
        run = apply_stencil(compiled, X, C)
        assert run.seconds_per_iteration == pytest.approx(
            run.machine_seconds_per_iteration
            + run.host_seconds_per_iteration
        )
        assert run.useful_flops_per_node_per_iteration == 8 * 8 * 9

    def test_breakdown_grand_total_includes_everything(self):
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        pattern = cross5()
        compiled = compile_stencil(pattern, params)
        X = CMArray("X", machine, (16, 16))
        C = {n: CMArray(n, machine, (16, 16)) for n in pattern.coefficient_names()}
        run = apply_stencil(compiled, X, C)
        breakdown = breakdown_run(run)
        assert breakdown.grand_total > breakdown.compute_total
        assert breakdown.grand_total == pytest.approx(
            breakdown.compute_total
            + breakdown.communication
            + breakdown.host_cycles
        )


class TestSmallPieces:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2048)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_tokenize_fixed(self):
        tokens = tokenize_fixed("C COMMENT CARD\n      R = X\n")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["R", "X"]

    def test_diagnostic_sink_notes(self):
        sink = DiagnosticSink()
        sink.note("just so you know")
        sink.warn("something odd")
        assert len(sink.diagnostics) == 2
        assert len(sink.warnings) == 1
        assert "note" in sink.describe()

    def test_comm_stats_total_elements(self):
        stats = exchange_cost(square9(), (64, 64), MachineParams())
        assert stats.total_elements == stats.edge_elements + stats.corner_elements

    def test_strip_schedule_jobs_iterator(self):
        compiled = compile_stencil(cross5())
        schedule = StripSchedule(compiled, (16, 16))
        jobs = list(schedule.jobs())
        assert len(jobs) == schedule.num_half_strips
        for plan, job in jobs:
            assert job.lines > 0
            assert plan.width in compiled.widths

    def test_constant_taps_accessor(self):
        taps = [
            Tap(offset=(0, 0), coeff=Coefficient.array("C1")),
            Tap(
                offset=(0, 0),
                coeff=Coefficient.array("K"),
                is_constant_term=True,
            ),
        ]
        pattern = StencilPattern(taps)
        assert len(pattern.constant_taps) == 1
        assert len(pattern.data_taps) == 1
        assert pattern.constant_taps[0].coeff.name == "K"
