"""Tests for the stencil pattern IR: geometry, flop counting, rendering."""

import pytest

from repro.stencil.gallery import (
    asymmetric5,
    border_demo,
    cross5,
    cross9,
    diamond13,
    square9,
)
from repro.stencil.pattern import (
    Coefficient,
    CoeffKind,
    StencilPattern,
    Tap,
    pattern_from_offsets,
)


class TestCoefficient:
    def test_array_requires_name(self):
        with pytest.raises(ValueError):
            Coefficient(CoeffKind.ARRAY)

    def test_scalar_requires_value(self):
        with pytest.raises(ValueError):
            Coefficient(CoeffKind.SCALAR)

    def test_describe(self):
        assert Coefficient.array("C1").describe() == "C1"
        assert Coefficient.unit().describe() == "1.0"


class TestTap:
    def test_constant_term_needs_named_coefficient(self):
        with pytest.raises(ValueError):
            Tap(offset=(0, 0), coeff=Coefficient.unit(), is_constant_term=True)

    def test_constant_term_carries_no_offset(self):
        with pytest.raises(ValueError):
            Tap(
                offset=(1, 0),
                coeff=Coefficient.array("C"),
                is_constant_term=True,
            )

    def test_useful_flops_coefficient_tap(self):
        tap = Tap(offset=(0, 1), coeff=Coefficient.array("C1"))
        assert tap.useful_flops(first=True) == 1  # multiply only
        assert tap.useful_flops(first=False) == 2  # multiply + add

    def test_useful_flops_unit_tap(self):
        tap = Tap(offset=(0, 1), coeff=Coefficient.unit())
        assert tap.useful_flops(first=True) == 0
        assert tap.useful_flops(first=False) == 1


class TestPatternBasics:
    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            StencilPattern([])

    def test_duplicate_offsets_rejected(self):
        taps = [
            Tap(offset=(0, 0), coeff=Coefficient.array("C1")),
            Tap(offset=(0, 0), coeff=Coefficient.array("C2")),
        ]
        with pytest.raises(ValueError):
            StencilPattern(taps)

    def test_cross5_has_five_points(self):
        assert cross5().num_points == 5

    def test_diamond13_has_thirteen_points(self):
        assert diamond13().num_points == 13

    def test_cross9_is_radius_two_cross(self):
        offsets = set(cross9().offsets)
        assert offsets == {
            (-2, 0), (-1, 0), (0, -2), (0, -1), (0, 0),
            (0, 1), (0, 2), (1, 0), (2, 0),
        }

    def test_square9_is_three_by_three(self):
        offsets = set(square9().offsets)
        assert offsets == {(dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)}


class TestBorderWidths:
    def test_cross5_borders_all_one(self):
        assert cross5().border_widths().as_tuple() == (1, 1, 1, 1)

    def test_diamond13_borders_all_two(self):
        assert diamond13().border_widths().as_tuple() == (2, 2, 2, 2)

    def test_border_demo_matches_paper_widths(self):
        """Paper section 5.1: N=2, S=0, W=3, E=1."""
        widths = border_demo().border_widths()
        assert widths.north == 2
        assert widths.south == 0
        assert widths.west == 3
        assert widths.east == 1
        assert widths.max_width == 3

    def test_asymmetric5_borders(self):
        widths = asymmetric5().border_widths()
        assert widths.north == 0
        assert widths.south == 2
        assert widths.west == 1
        assert widths.east == 1


class TestCornersAndSymmetry:
    def test_cross_needs_no_corner_exchange(self):
        assert not cross5().needs_corner_exchange()
        assert not cross9().needs_corner_exchange()

    def test_square_needs_corner_exchange(self):
        assert square9().needs_corner_exchange()

    def test_diamond_needs_corner_exchange(self):
        assert diamond13().needs_corner_exchange()

    def test_fourfold_symmetry(self):
        assert cross5().is_fourfold_symmetric()
        assert square9().is_fourfold_symmetric()
        assert diamond13().is_fourfold_symmetric()
        assert not asymmetric5().is_fourfold_symmetric()


class TestFlopCounting:
    def test_cross5_counts_nine_flops(self):
        """Paper section 7: the 5-point pattern is counted as 9 flops
        (5 multiplies and 4 adds) though executed as 5 multiply-adds."""
        assert cross5().useful_flops_per_point() == 9
        assert cross5().issued_multiply_adds_per_point() == 5

    def test_cross9_counts_seventeen_flops(self):
        assert cross9().useful_flops_per_point() == 17

    def test_diamond13_counts_twentyfive_flops(self):
        assert diamond13().useful_flops_per_point() == 25

    def test_unit_taps_reduce_useful_flops(self):
        taps = [
            Tap(offset=(0, 0), coeff=Coefficient.unit()),
            Tap(offset=(0, 1), coeff=Coefficient.unit()),
        ]
        pattern = StencilPattern(taps)
        # First tap: multiply by 1.0 (not useful), add to zero (not useful).
        # Second tap: only its add is useful.
        assert pattern.useful_flops_per_point() == 1

    def test_constant_term_contributes_one_add(self):
        taps = [
            Tap(offset=(0, 0), coeff=Coefficient.array("C1")),
            Tap(
                offset=(0, 0),
                coeff=Coefficient.array("C2"),
                is_constant_term=True,
            ),
        ]
        pattern = StencilPattern(taps)
        assert pattern.useful_flops_per_point() == 2  # mult + const add


class TestUnitRegister:
    def test_plain_pattern_needs_no_unit_register(self):
        assert not cross5().needs_unit_register()

    def test_constant_term_needs_unit_register(self):
        taps = [
            Tap(offset=(0, 0), coeff=Coefficient.array("C1")),
            Tap(
                offset=(0, 0),
                coeff=Coefficient.array("C2"),
                is_constant_term=True,
            ),
        ]
        assert StencilPattern(taps).needs_unit_register()

    def test_bare_data_term_needs_unit_register(self):
        taps = [Tap(offset=(0, 0), coeff=Coefficient.unit())]
        assert StencilPattern(taps).needs_unit_register()


class TestNamesAndRendering:
    def test_coefficient_names_in_tap_order(self):
        assert cross5().coefficient_names() == ("C1", "C2", "C3", "C4", "C5")

    def test_array_names_include_result_and_source(self):
        names = cross5().array_names()
        assert names[0] == "R"
        assert names[1] == "X"

    def test_pictogram_cross5(self):
        expected = ". # .\n# @ #\n. # ."
        assert cross5().pictogram() == expected

    def test_pictogram_asymmetric(self):
        # offsets (0,0),(0,1),(1,-1),(1,0),(2,0): bullet center, two rows
        # below, one column left and right.
        expected = ". @ #\n# # .\n. # ."
        assert asymmetric5().pictogram() == expected

    def test_pattern_from_offsets_names_coefficients(self):
        pattern = pattern_from_offsets([(0, 0), (0, 1)])
        assert pattern.coefficient_names() == ("C1", "C2")

    def test_equality_and_hash(self):
        assert cross5() == cross5()
        assert hash(cross5()) == hash(cross5())
        assert cross5() != square9()
