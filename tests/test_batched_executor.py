"""The batched whole-machine fast executor is bit-identical to both
other execution semantics.

Property-style sweep: for patterns spanning pad widths 0 through 3
(corner-reaching included), both boundary modes (FILL with a nonzero
fill), and square and non-square node grids, the exact cycle-stepped
datapath, the per-node fast path, and the batched whole-machine fast
path must produce the same float32 bits -- and all three must match the
numpy reference oracle.
"""

import numpy as np
import pytest

from repro.baseline.reference import reference_stencil
from repro.compiler.driver import compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import box, cross, diamond, square
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import pattern_from_offsets


def with_fill(pattern, fill_value):
    """The same taps with FILL boundaries on both dimensions."""
    return pattern_from_offsets(
        [tap.offset for tap in pattern.taps],
        name=f"{pattern.name}_fill",
        boundary={1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
        fill_value=fill_value,
    )


def corner3():
    """Pad-3 taps reaching the diagonal halo corners, which only arrive
    through the corner exchange step."""
    return pattern_from_offsets(
        [(-3, -3), (-3, 0), (0, -3), (0, 0), (3, 3)], name="corner3"
    )


CASES = [
    ("box1x1-pad0", lambda: box(1, 1)),
    ("row4-pad0x2", lambda: box(1, 4)),
    ("cross5-pad1", lambda: cross(1)),
    ("square9-pad1-fill", lambda: with_fill(square(1), 0.75)),
    ("diamond13-pad2", lambda: diamond(2)),
    ("cross9-pad2-fill", lambda: with_fill(cross(2), -1.5)),
    ("cross13-pad3", lambda: cross(3)),
    ("corner3-pad3", corner3),
    ("corner3-pad3-fill", lambda: with_fill(corner3(), 2.25)),
]

#: (num_nodes, global shape): 8 nodes make a non-square 2x4 grid.
MACHINES = [(8, (16, 24)), (16, (32, 24))]


def make_problem(pattern, num_nodes, shape, seed):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x_host = rng.standard_normal(shape).astype(np.float32)
    coeff_host = {
        name: rng.standard_normal(shape).astype(np.float32)
        for name in pattern.coefficient_names()
    }
    x = CMArray.from_numpy("X", machine, x_host)
    coeffs = {
        name: CMArray.from_numpy(name, machine, data)
        for name, data in coeff_host.items()
    }
    return machine, compiled, x, coeffs, x_host, coeff_host


@pytest.mark.parametrize(
    "num_nodes,shape", MACHINES, ids=["nodes8-2x4", "nodes16-4x4"]
)
@pytest.mark.parametrize(
    "factory", [factory for _, factory in CASES], ids=[cid for cid, _ in CASES]
)
def test_three_semantics_bit_identical(factory, num_nodes, shape):
    pattern = factory()
    machine, compiled, x, coeffs, x_host, coeff_host = make_problem(
        pattern, num_nodes, shape, seed=len(pattern.taps)
    )

    exact = apply_stencil(compiled, x, coeffs, "R_EXACT", exact=True)
    per_node = apply_stencil(compiled, x, coeffs, "R_NODE", batched=False)
    batched = apply_stencil(compiled, x, coeffs, "R_BATCH", batched=True)

    assert not exact.batched
    assert not per_node.batched
    assert batched.batched

    exact_bits = exact.result.to_numpy()
    expected = reference_stencil(pattern, x_host, coeff_host)
    np.testing.assert_array_equal(exact_bits, expected)
    np.testing.assert_array_equal(per_node.result.to_numpy(), exact_bits)
    np.testing.assert_array_equal(batched.result.to_numpy(), exact_bits)


def test_eight_nodes_make_a_non_square_grid():
    machine = CM2(MachineParams(num_nodes=8))
    assert machine.shape == (2, 4)


def test_iterated_three_semantics_bit_identical():
    pattern = cross(2)
    machine, compiled, x, coeffs, x_host, coeff_host = make_problem(
        pattern, 8, (16, 24), seed=7
    )
    exact = apply_stencil(compiled, x, coeffs, "R_EXACT", iterations=3, exact=True)
    per_node = apply_stencil(
        compiled, x, coeffs, "R_NODE", iterations=3, batched=False
    )
    batched = apply_stencil(compiled, x, coeffs, "R_BATCH", iterations=3)

    expected = x_host
    for _ in range(3):
        expected = reference_stencil(pattern, expected, coeff_host)
    exact_bits = exact.result.to_numpy()
    np.testing.assert_array_equal(exact_bits, expected)
    np.testing.assert_array_equal(per_node.result.to_numpy(), exact_bits)
    np.testing.assert_array_equal(batched.result.to_numpy(), exact_bits)


def test_detached_buffer_falls_back_to_per_node_path():
    """A node buffer no longer backed by machine storage silently routes
    the run through the per-node executor, with identical results."""
    pattern = cross(1)
    machine, compiled, x, coeffs, x_host, coeff_host = make_problem(
        pattern, 8, (16, 24), seed=3
    )
    reference_run = apply_stencil(compiled, x, coeffs, "R_REF")
    assert reference_run.batched

    # Replace one node's view of X with a private copy of the same data.
    node = next(iter(machine.nodes()))
    node.memory.install(x.name, node.memory.buffer(x.name))
    assert machine.stacked(x.name) is None

    run = apply_stencil(compiled, x, coeffs, "R_FALLBACK")
    assert not run.batched
    np.testing.assert_array_equal(
        run.result.to_numpy(), reference_run.result.to_numpy()
    )
