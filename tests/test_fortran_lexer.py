"""Tests for the Fortran tokenizer."""

import pytest

from repro.fortran.errors import LexError
from repro.fortran.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasics:
    def test_identifiers_uppercased(self):
        tokens = tokenize("cshift")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "CSHIFT"

    def test_operators(self):
        assert kinds("+ - * / ( ) , =") == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.COMMA,
            TokenKind.EQUALS,
            TokenKind.NEWLINE,
        ]

    def test_double_colon(self):
        assert kinds("::")[0] is TokenKind.DOUBLE_COLON

    def test_single_colon(self):
        assert kinds("( : , : )") == [
            TokenKind.LPAREN,
            TokenKind.COLON,
            TokenKind.COMMA,
            TokenKind.COLON,
            TokenKind.RPAREN,
            TokenKind.NEWLINE,
        ]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].text == "42"

    def test_real_literal(self):
        tokens = tokenize("3.25")
        assert tokens[0].kind is TokenKind.REAL

    def test_exponent_literal(self):
        tokens = tokenize("1e-3")
        assert tokens[0].kind is TokenKind.REAL
        assert tokens[0].text == "1e-3"

    def test_double_precision_exponent(self):
        tokens = tokenize("1d0")
        assert tokens[0].kind is TokenKind.REAL

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestCommentsAndContinuations:
    def test_bang_comment_stripped(self):
        assert texts("x = 1 ! the answer")[:3] == ["X", "=", "1"]

    def test_trailing_ampersand_continues(self):
        source = "r = c1 * x &\n  + c2 * y"
        token_texts = texts(source)
        assert token_texts.count("\n") == 1  # one statement

    def test_leading_ampersand_consumed(self):
        source = "r = c1 &\n  & + c2"
        assert "&" not in texts(source)

    def test_unterminated_continuation(self):
        with pytest.raises(LexError):
            tokenize("r = c1 * x &")

    def test_blank_lines_collapse(self):
        source = "a = 1\n\n\nb = 2"
        newline_count = sum(
            1 for t in tokenize(source) if t.kind is TokenKind.NEWLINE
        )
        assert newline_count == 2


class TestDirectives:
    def test_repro_directive(self):
        tokens = tokenize("!REPRO$ STENCIL\nr = x")
        assert tokens[0].kind is TokenKind.DIRECTIVE
        assert tokens[0].text == "STENCIL"

    def test_cmf_directive(self):
        tokens = tokenize("!CMF$ stencil\nr = x")
        assert tokens[0].kind is TokenKind.DIRECTIVE
        assert tokens[0].text == "STENCIL"

    def test_ordinary_comment_not_directive(self):
        tokens = tokenize("! just a comment\nr = x")
        assert tokens[0].kind is not TokenKind.DIRECTIVE


class TestLocations:
    def test_line_numbers(self):
        tokens = tokenize("a = 1\nb = 2")
        b_token = [t for t in tokens if t.text == "B"][0]
        assert b_token.location.line == 2

    def test_column_numbers(self):
        tokens = tokenize("  a = 1")
        assert tokens[0].location.column == 3
