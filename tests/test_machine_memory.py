"""Tests for node memory and machine parameters."""

import numpy as np
import pytest

from repro.machine.isa import ONES_BUFFER, MemRef, const_buffer_name
from repro.machine.machine import CM2
from repro.machine.memory import MemoryError_, NodeMemory
from repro.machine.microcode import (
    MICROCODE_MEMORY_WORDS,
    full_strip_routine,
    half_strip_routine,
    routine_set,
)
from repro.machine.params import FULL_CM2, SIXTEEN_NODE, MachineParams


class TestNodeMemory:
    def test_allocate_zeroed(self):
        mem = NodeMemory()
        buf = mem.allocate("a", (2, 3))
        assert buf.shape == (2, 3)
        assert buf.dtype == np.float32
        assert not buf.any()

    def test_install_copies_as_float32(self):
        mem = NodeMemory()
        data = np.ones((2, 2), dtype=np.float64)
        buf = mem.install("a", data)
        assert buf.dtype == np.float32
        data[0, 0] = 5.0
        assert mem.buffer("a")[0, 0] == 1.0  # a copy, not a view

    def test_install_rejects_non_2d(self):
        mem = NodeMemory()
        with pytest.raises(MemoryError_):
            mem.install("a", np.ones(4))

    def test_read_write(self):
        mem = NodeMemory()
        mem.allocate("a", (2, 2))
        mem.write(MemRef("a", 1, 1), 3.5)
        assert mem.read(MemRef("a", 1, 1)) == np.float32(3.5)

    def test_access_counting(self):
        mem = NodeMemory()
        mem.allocate("a", (2, 2))
        mem.write(MemRef("a", 0, 0), 1.0)
        mem.read(MemRef("a", 0, 0))
        mem.read(MemRef("a", 0, 1))
        assert mem.counts.reads == 2
        assert mem.counts.writes == 1
        assert mem.counts.total == 3

    def test_unknown_buffer(self):
        mem = NodeMemory()
        with pytest.raises(MemoryError_, match="no buffer"):
            mem.read(MemRef("nope", 0, 0))

    def test_out_of_bounds(self):
        mem = NodeMemory()
        mem.allocate("a", (2, 2))
        with pytest.raises(MemoryError_, match="outside"):
            mem.read(MemRef("a", 2, 0))
        with pytest.raises(MemoryError_, match="outside"):
            mem.read(MemRef("a", 0, -1))

    def test_constant_pages(self):
        mem = NodeMemory()
        mem.ensure_constant_pages([0.5, -2.0])
        assert mem.read(MemRef(ONES_BUFFER, 0, 0)) == np.float32(1.0)
        assert mem.read(MemRef(const_buffer_name(0.5), 0, 0)) == np.float32(0.5)
        assert mem.read(MemRef(const_buffer_name(-2.0), 0, 0)) == np.float32(-2.0)

    def test_constant_pages_idempotent(self):
        mem = NodeMemory()
        mem.ensure_constant_pages([1.5])
        mem.ensure_constant_pages([1.5])
        names = [n for n in mem.buffer_names if "const" in n]
        assert len(names) == 1

    def test_total_words(self):
        mem = NodeMemory()
        mem.allocate("a", (4, 4))
        mem.allocate("b", (2, 2))
        assert mem.total_words() == 20

    def test_free(self):
        mem = NodeMemory()
        mem.allocate("a", (2, 2))
        mem.free("a")
        assert not mem.has_buffer("a")


class TestMachineParams:
    def test_paper_clock_rate(self):
        assert MachineParams().clock_hz == 7.0e6

    def test_peak_mflops_per_node(self):
        """2 flops/cycle at 7 MHz = 14 Mflops/node."""
        assert MachineParams().peak_mflops_per_node == 14.0

    def test_writeback_latency_is_four(self):
        """Mult at k, add at k+2, writeback at k+4."""
        assert MachineParams().writeback_latency == 4

    def test_presets(self):
        assert SIXTEEN_NODE.num_nodes == 16
        assert FULL_CM2.num_nodes == 2048

    def test_with_nodes(self):
        params = SIXTEEN_NODE.with_nodes(2048)
        assert params.num_nodes == 2048
        assert params.clock_hz == SIXTEEN_NODE.clock_hz

    def test_seconds(self):
        assert MachineParams().seconds(7_000_000) == pytest.approx(1.0)

    def test_host_overhead_recoding(self):
        fast = MachineParams(host_overhead_recoded=True)
        slow = MachineParams(host_overhead_recoded=False)
        assert slow.host_overhead_s(10) > fast.host_overhead_s(10)

    def test_host_overhead_scales_with_halfstrips(self):
        params = MachineParams()
        assert params.host_overhead_s(64) > params.host_overhead_s(16)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            MachineParams(num_nodes=0)


class TestCM2:
    def test_sixteen_node_machine(self):
        machine = CM2(MachineParams(num_nodes=16))
        assert machine.num_nodes == 16
        assert machine.shape == (4, 4)

    def test_node_lookup_wraps(self):
        machine = CM2(MachineParams(num_nodes=16))
        assert machine.node(4, 4) is machine.node(0, 0)

    def test_full_machine_peak(self):
        """2,048 nodes x 14 Mflops = 28.7 Gflops peak."""
        machine = CM2(FULL_CM2)
        assert machine.peak_gflops() == pytest.approx(28.672)

    def test_nodes_have_unique_addresses(self):
        machine = CM2(MachineParams(num_nodes=64))
        addresses = {node.address for node in machine.nodes()}
        assert len(addresses) == 64

    def test_describe(self):
        text = CM2(MachineParams(num_nodes=16)).describe()
        assert "16 nodes" in text and "4x4" in text


class TestMicrocode:
    def test_half_strip_routine(self):
        routine = half_strip_routine(8, MachineParams())
        assert routine.half_strip
        assert routine.width == 8

    def test_full_strip_costs_more_dispatch(self):
        params = MachineParams()
        half = half_strip_routine(4, params)
        full = full_strip_routine(4, params)
        assert full.dispatch_cycles > half.dispatch_cycles
        assert full.instruction_words > half.instruction_words

    def test_routine_set_fits_microcode_memory(self):
        routines = routine_set(MachineParams())
        total = sum(r.instruction_words for r in routines.values())
        assert total <= MICROCODE_MEMORY_WORDS
        assert set(routines) == {8, 4, 2, 1}


class TestNode:
    def test_describe_names_coordinates(self):
        machine = CM2(MachineParams(num_nodes=16))
        node = machine.node(1, 2)
        text = node.describe()
        assert "node(1,2)" in text
        assert "cube" in text

    def test_make_fpu_reserves_registers(self):
        machine = CM2(MachineParams(num_nodes=1))
        node = machine.node(0, 0)
        fpu = node.make_fpu(zero_reg=0, unit_reg=1)
        assert fpu.regs[1] == np.float32(1.0)
        assert fpu.valid[0] and fpu.valid[1]
        assert not fpu.valid[2]

    def test_alias_shares_storage(self):
        mem = NodeMemory()
        mem.allocate("a", (2, 2))
        mem.alias("b", "a")
        mem.write(MemRef("b", 0, 0), 4.0)
        assert mem.read(MemRef("a", 0, 0)) == np.float32(4.0)

    def test_alias_of_missing_target_raises(self):
        mem = NodeMemory()
        with pytest.raises(MemoryError_):
            mem.alias("b", "missing")


class TestParityWord:
    def test_single_bit_flip_changes_word(self):
        from repro.machine.memory import parity_word

        rng = np.random.default_rng(0)
        buf = rng.standard_normal((4, 6)).astype(np.float32)
        sealed = parity_word(buf)
        buf.view(np.uint32)[2, 3] ^= np.uint32(1 << 17)
        assert parity_word(buf) != sealed
        buf.view(np.uint32)[2, 3] ^= np.uint32(1 << 17)
        assert parity_word(buf) == sealed

    def test_empty_region_is_zero(self):
        from repro.machine.memory import parity_word

        assert parity_word(np.zeros((0, 3), dtype=np.float32)) == 0

    def test_non_contiguous_view_matches_copy(self):
        from repro.machine.memory import parity_word

        rng = np.random.default_rng(1)
        stack = rng.standard_normal((2, 2, 8, 8)).astype(np.float32)
        view = stack[:, :, 2:6, 3:7]
        assert not view.flags.c_contiguous
        assert parity_word(view) == parity_word(view.copy())


class TestCheckpointRestore:
    @staticmethod
    def _storage():
        from repro.machine.memory import MachineStorage

        storage = MachineStorage((2, 2))
        stack = storage.allocate("R", (3, 5))
        stack[...] = np.arange(stack.size, dtype=np.float32).reshape(
            stack.shape
        )
        return storage, stack

    def test_restore_rewrites_in_place(self):
        storage, stack = self._storage()
        snapshot = storage.checkpoint(["R"])
        original = stack.copy()
        stack[...] = -1.0
        storage.restore(snapshot)
        np.testing.assert_array_equal(stack, original)
        # In place: node-memory views into the stack stay valid.
        assert storage.lookup("R") is stack

    def test_checkpoint_is_a_deep_copy(self):
        storage, stack = self._storage()
        snapshot = storage.checkpoint(["R"])
        stack[0, 0, 0, 0] = 99.0
        assert snapshot.stacks["R"][0, 0, 0, 0] != np.float32(99.0)
        assert snapshot.words == stack.size

    def test_checkpoint_covers_scratch_stacks(self):
        storage, _ = self._storage()
        ping, _pong = storage.pingpong("R", (7, 9))
        ping[...] = 4.0
        snapshot = storage.checkpoint(["R__ping__"])
        ping[...] = 0.0
        storage.restore(snapshot)
        assert (ping == 4.0).all()

    def test_unknown_name_raises(self):
        storage, _ = self._storage()
        with pytest.raises(MemoryError_, match="unknown buffer"):
            storage.checkpoint(["NOPE"])

    def test_restore_after_free_raises(self):
        storage, _ = self._storage()
        snapshot = storage.checkpoint(["R"])
        storage.free("R")
        with pytest.raises(MemoryError_, match="missing or"):
            storage.restore(snapshot)

    def test_restore_after_reshape_raises(self):
        storage, _ = self._storage()
        snapshot = storage.checkpoint(["R"])
        storage.allocate("R", (4, 4))
        with pytest.raises(MemoryError_, match="reshaped"):
            storage.restore(snapshot)


class TestStorageParitySeal:
    def test_seal_check_clear(self):
        from repro.machine.memory import MachineStorage

        storage = MachineStorage((1, 2))
        stack = storage.allocate("X", (2, 2))
        stack[...] = 1.0
        assert storage.check_parity("X")  # never sealed: vacuously true
        storage.seal_parity("X")
        assert storage.check_parity("X")
        stack.view(np.uint32)[0, 0, 1, 1] ^= np.uint32(1)
        assert not storage.check_parity("X")
        storage.clear_parity("X")
        assert storage.check_parity("X")

    def test_seal_unknown_buffer_raises(self):
        from repro.machine.memory import MachineStorage

        storage = MachineStorage((1, 1))
        with pytest.raises(MemoryError_):
            storage.seal_parity("X")

    def test_check_parity_false_when_buffer_freed(self):
        from repro.machine.memory import MachineStorage

        storage = MachineStorage((1, 1))
        storage.allocate("X", (2, 2))
        storage.seal_parity("X")
        storage.free("X")
        assert not storage.check_parity("X")
