"""Stencil-as-a-service: partitions, the pool, the scheduler, the ledger.

The acceptance property runs throughout: any job scheduled onto a
carved-out partition produces float32 results bit-identical to the same
job run solo on a private machine of the same node-grid shape -- fault
campaigns included -- and the per-tenant cycle accounting reconciles
exactly against the job records.
"""

import threading
import time

import numpy as np
import pytest

from repro.machine.geometry import Partition, PartitionError
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.service import (
    JobCancelledError,
    JobFaultError,
    JobSpecError,
    JobTimeoutError,
    MachinePool,
    Scheduler,
    SchedulerClosedError,
    ServiceAccounts,
    ServicePolicy,
    StencilJob,
    execute_job,
    partition_machine,
    solo_run,
)

PARAMS = MachineParams(num_nodes=16)  # a 4x4 node grid


# ---------------------------------------------------------------------------
# Partition validation
# ---------------------------------------------------------------------------


class TestPartition:
    def test_quarters_tile_the_grid(self):
        for origin in ((0, 0), (0, 2), (2, 0), (2, 2)):
            Partition((4, 4), origin, (2, 2)).validate()

    def test_row_bands_tile_the_grid(self):
        Partition((4, 4), (2, 0), (2, 4)).validate()

    def test_non_power_of_two_extent_rejected(self):
        with pytest.raises(PartitionError, match="powers of two"):
            Partition((4, 4), (0, 0), (3, 4)).validate()

    def test_extent_must_divide_parent(self):
        with pytest.raises(PartitionError):
            Partition((4, 4), (0, 0), (8, 4)).validate()

    def test_origin_must_align_to_the_tiling(self):
        with pytest.raises(PartitionError, match="align"):
            Partition((4, 4), (1, 0), (2, 2)).validate()

    def test_reserved_overlap_names_the_coordinates(self):
        reserved = frozenset({(3, 0), (3, 1), (3, 2), (3, 3)})
        with pytest.raises(PartitionError) as excinfo:
            Partition((4, 4), (2, 0), (2, 2), reserved).validate()
        assert excinfo.value.overlap == ((3, 0), (3, 1))
        assert "(3, 0)" in str(excinfo.value)

    def test_overlap_detection(self):
        a = Partition((4, 4), (0, 0), (2, 2))
        b = Partition((4, 4), (0, 2), (2, 2))
        c = Partition((4, 4), (0, 0), (4, 4))
        assert not a.overlaps(b)
        assert a.overlaps(c) and b.overlaps(c)

    def test_to_parent_maps_through_the_origin(self):
        tile = Partition((4, 4), (2, 2), (2, 2))
        assert tile.to_parent(0, 0) == (2, 2)
        assert tile.to_parent(1, 1) == (3, 3)
        # Logical coordinates wrap: the partition is its own torus.
        assert tile.to_parent(2, 0) == (2, 2)
        assert tile.to_parent(-1, 0) == (3, 2)


class TestPartitionedMachine:
    def test_machine_takes_its_shape_from_the_partition(self):
        tile = Partition((4, 4), (2, 0), (2, 2))
        machine = partition_machine(PARAMS, tile)
        assert machine.shape == (2, 2)
        assert machine.partition is tile
        assert machine.params.num_nodes == 4

    def test_shape_partition_mismatch_rejected(self):
        tile = Partition((4, 4), (0, 0), (2, 2))
        with pytest.raises(PartitionError, match="does not match"):
            CM2(PARAMS.with_nodes(8), shape=(2, 4), partition=tile)

    def test_invalid_partition_rejected_at_construction(self):
        bad = Partition((4, 4), (1, 0), (2, 2))
        with pytest.raises(PartitionError):
            CM2(PARAMS.with_nodes(4), partition=bad)

    def test_parent_coord_translation(self):
        tile = Partition((4, 4), (2, 2), (2, 2))
        machine = partition_machine(PARAMS, tile)
        assert machine.parent_coord(0, 0) == (2, 2)
        whole = CM2(PARAMS)
        assert whole.parent_coord(1, 3) == (1, 3)


# ---------------------------------------------------------------------------
# The machine pool
# ---------------------------------------------------------------------------


class TestMachinePool:
    def test_first_fit_walks_row_major(self):
        pool = MachinePool(PARAMS)
        origins = []
        for _ in range(4):
            tile, _machine = pool.acquire((2, 2))
            origins.append(tile.origin)
        assert origins == [(0, 0), (0, 2), (2, 0), (2, 2)]
        assert pool.acquire((2, 2)) is None  # full: busy, not an error

    def test_release_makes_the_tile_reusable(self):
        pool = MachinePool(PARAMS)
        held = [pool.acquire((2, 2)) for _ in range(4)]
        tile = held[2][0]
        pool.release(tile)
        again, _machine = pool.acquire((2, 2))
        assert again.origin == tile.origin

    def test_releasing_a_foreign_tile_is_an_error(self):
        pool = MachinePool(PARAMS)
        stranger = Partition((4, 4), (0, 0), (2, 2))
        with pytest.raises(PartitionError, match="never lent"):
            pool.release(stranger)

    def test_impossible_shape_raises_not_queues(self):
        pool = MachinePool(PARAMS)
        with pytest.raises(PartitionError):
            pool.acquire((3, 3))
        with pytest.raises(PartitionError):
            pool.acquire((8, 8))

    def test_spare_reservation_blocks_bottom_rows(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        assert pool.num_reserved == 4
        origins = set()
        while True:
            acquired = pool.acquire((2, 2))
            if acquired is None:
                break
            origins.add(acquired[0].origin)
        # The (2, *) tiles cover reserved row 3 and are never lent.
        assert origins == {(0, 0), (0, 2)}
        with pytest.raises(PartitionError, match="reservation"):
            pool.acquire((4, 4))

    def test_spares_lend_and_exhaust(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        first = pool.acquire((2, 2), spares=3)
        assert first is not None and pool.spares_free == 1
        assert pool.acquire((2, 2), spares=2) is None  # busy, retry later
        with pytest.raises(PartitionError, match="reserves"):
            pool.acquire((2, 2), spares=5)  # never satisfiable
        pool.release(first[0], spares=3)
        assert pool.spares_free == 4

    def test_best_fit_packs_against_the_occupied_corner(self):
        pool = MachinePool(PARAMS)
        corner, _machine = pool.acquire((2, 2), policy="best_fit")
        assert corner.origin == (0, 0)  # all corners tie; first wins
        neighbor, _machine = pool.acquire((2, 2), policy="best_fit")
        # Adjacent to the held corner beats the diagonally-opposite one.
        assert neighbor.origin in ((0, 2), (2, 0))

    def test_capacity_counts_simultaneous_tiles(self):
        assert MachinePool(PARAMS).capacity((2, 2)) == 4
        assert MachinePool(PARAMS, spare_rows=1).capacity((2, 2)) == 2


# ---------------------------------------------------------------------------
# Job specs
# ---------------------------------------------------------------------------


class TestStencilJob:
    def test_defaults_validate(self):
        job = StencilJob(tenant="t")
        assert job.pattern == "cross5" and job.label

    def test_bad_specs_raise_typed_errors(self):
        with pytest.raises(JobSpecError):
            StencilJob(tenant="")
        with pytest.raises(JobSpecError):
            StencilJob(tenant="t", pattern="nonesuch")
        with pytest.raises(JobSpecError):
            StencilJob(tenant="t", boundary="reflect")
        with pytest.raises(JobSpecError):
            StencilJob(tenant="t", iterations=0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(JobSpecError, match="unknown job fields"):
            StencilJob.from_dict({"tenant": "t", "color": "red"})

    def test_fault_rates_are_canonicalized(self):
        a = StencilJob(tenant="t", fault_rates={"halo_corrupt": 0.5})
        b = StencilJob(tenant="t", fault_rates={"halo_corrupt": 0.5})
        assert a.fault_rates == b.fault_rates == (("halo_corrupt", 0.5),)
        assert a.guarded

    def test_grid_must_divide_over_the_partition(self):
        job = StencilJob(tenant="t", grid_shape=(15, 15))
        machine = CM2(PARAMS.with_nodes(4), shape=(2, 2))
        with pytest.raises(JobSpecError, match="divide evenly"):
            execute_job(job, machine)

    def test_solo_run_needs_a_shape(self):
        with pytest.raises(JobSpecError, match="shape"):
            solo_run(StencilJob(tenant="t"))


# ---------------------------------------------------------------------------
# The scheduler: bit-identity, priority, accounting
# ---------------------------------------------------------------------------


def _distinct_jobs():
    """K jobs spanning patterns, boundary modes, and iteration counts."""
    specs = [
        ("alice", "cross5", "torus", 1),
        ("alice", "cross9", "fill", 3),
        ("bob", "square9", "torus", 2),
        ("bob", "diamond13", "fill", 1),
        ("carol", "asymmetric5", "torus", 4),
        ("carol", "cross5", "fill", 2),
        ("dave", "diamond13", "torus", 3),
        ("dave", "square9", "fill", 4),
    ]
    return [
        StencilJob(
            tenant=tenant,
            pattern=pattern,
            boundary=boundary,
            iterations=iterations,
            grid_shape=(16, 16),
            seed=index,
        )
        for index, (tenant, pattern, boundary, iterations) in enumerate(specs)
    ]


class TestScheduler:
    def test_scheduled_results_are_bit_identical_to_solo_runs(self):
        """The acceptance property: K jobs with distinct patterns and
        boundary modes through the scheduler == solo sequential runs,
        bit for bit, with the ledger reconciling exactly."""
        jobs = _distinct_jobs()
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            scheduler.submit_all(jobs)
            results = scheduler.drain(timeout=120)
        assert len(results) == len(jobs)
        for result, job in zip(results, jobs):
            assert result.job is job
            reference = solo_run(job, params=PARAMS, shape=result.partition.shape)
            assert result.identical_to(reference), job.label
        accounts = scheduler.accounts
        assert accounts.reconcile()
        assert set(accounts.tenants) == {"alice", "bob", "carol", "dave"}
        assert accounts.total_cycles == sum(r.cycles for r in results)

    def test_fault_campaign_on_one_tenant_leaves_the_others_untouched(self):
        """A seeded soft-fault campaign on one tenant's jobs: its
        results still match its solo runs (the guarded run retries
        through the corruption), and no other tenant sees a fault."""
        clean = _distinct_jobs()[:4]
        chaotic = [
            StencilJob(
                tenant="chaos",
                pattern="cross5",
                boundary="torus",
                iterations=4,
                grid_shape=(16, 16),
                seed=99,
                fault_rates={"halo_corrupt": 0.6},
                fault_seed=5,
            ),
            StencilJob(
                tenant="chaos",
                pattern="square9",
                boundary="fill",
                iterations=3,
                grid_shape=(16, 16),
                seed=98,
                fault_rates={"halo_corrupt": 0.6},
                fault_seed=6,
            ),
        ]
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            scheduler.submit_all(clean + chaotic)
            results = scheduler.drain(timeout=120)
        injected = 0
        for result in results:
            reference = solo_run(
                result.job, params=PARAMS, shape=result.partition.shape
            )
            assert result.identical_to(reference), result.job.label
            if result.job.tenant == "chaos":
                injected += result.fault_stats.total_injected
            else:
                assert result.fault_stats.total_injected == 0
        assert injected > 0, "the campaign must actually inject"
        accounts = scheduler.accounts
        assert accounts.reconcile()
        assert accounts.tenants["chaos"].faults_injected == injected
        for tenant in ("alice", "bob"):
            assert accounts.tenants[tenant].faults_injected == 0

    def test_priority_orders_waiting_jobs(self):
        """On a single-tile pool, queued jobs run highest-priority
        first, FIFO within a priority."""
        pool = MachinePool(PARAMS, default_partition=(4, 4))
        with Scheduler(pool) as scheduler:
            head = scheduler.submit(
                StencilJob(tenant="head", iterations=6, grid_shape=(16, 16))
            )
            # Wait until "head" holds the only tile, so the rest queue
            # behind it and drain strictly by priority.
            deadline = time.perf_counter() + 30
            while head.started_wall is None:
                assert time.perf_counter() < deadline, "head never started"
                time.sleep(0.001)
            for tenant, priority in (("low", 0), ("high", 5), ("mid", 2)):
                scheduler.submit(
                    StencilJob(
                        tenant=tenant, priority=priority, grid_shape=(16, 16)
                    )
                )
            scheduler.drain(timeout=120)
            order = [r.job.tenant for r in scheduler.accounts.records]
        assert order == ["head", "high", "mid", "low"]

    def test_admission_rejects_impossible_jobs_immediately(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        with Scheduler(pool) as scheduler:
            with pytest.raises(PartitionError):
                scheduler.submit(
                    StencilJob(tenant="t", partition_shape=(4, 4))
                )
            with pytest.raises(PartitionError):
                scheduler.submit(StencilJob(tenant="t", spares=99))

    def test_job_failures_surface_through_the_handle(self):
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            handle = scheduler.submit(
                StencilJob(tenant="t", grid_shape=(15, 15))
            )
            with pytest.raises(JobSpecError):
                handle.result(timeout=60)
            assert scheduler.accounts.tenants["t"].failures == 1
            assert scheduler.accounts.reconcile()

    def test_submit_after_close_is_refused(self):
        scheduler = Scheduler(MachinePool(PARAMS))
        scheduler.close()
        # The typed error is also a RuntimeError, for pre-PR 8 callers.
        with pytest.raises(SchedulerClosedError, match="closed"):
            scheduler.submit(StencilJob(tenant="t"))

    def test_guarded_job_borrows_pool_spares(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        job = StencilJob(
            tenant="t",
            grid_shape=(16, 16),
            spares=2,
            fault_rates={"halo_corrupt": 0.2},
        )
        with Scheduler(pool) as scheduler:
            result = scheduler.submit(job).result(timeout=120)
        assert pool.spares_free == pool.num_reserved  # returned on release
        reference = solo_run(job, params=PARAMS, shape=result.partition.shape)
        assert result.identical_to(reference)


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


class TestAccounting:
    def test_fairness_is_one_for_equal_tenants(self):
        accounts = ServiceAccounts()
        jobs = [
            StencilJob(tenant=t, grid_shape=(16, 16), seed=i, iterations=2)
            for i, t in enumerate(("a", "b", "c", "d"))
        ]
        for job in jobs:
            accounts.charge(solo_run(job, params=PARAMS, shape=(2, 2)))
        # Same pattern, same grid, same iterations: identical cycles.
        assert accounts.fairness() == pytest.approx(1.0)
        assert accounts.reconcile()

    def test_reconcile_catches_a_corrupted_counter(self):
        accounts = ServiceAccounts()
        job = StencilJob(tenant="t", grid_shape=(16, 16))
        accounts.charge(solo_run(job, params=PARAMS, shape=(2, 2)))
        assert accounts.reconcile()
        accounts.tenants["t"].comm_cycles += 1  # the lost-update bug
        assert not accounts.reconcile()

    def test_concurrent_charges_are_not_lost(self):
        """The ledger under a thread hammer: every charge lands."""
        accounts = ServiceAccounts()
        result = solo_run(
            StencilJob(tenant="t", grid_shape=(16, 16)),
            params=PARAMS,
            shape=(2, 2),
        )
        num_threads, rounds = 8, 50
        barrier = threading.Barrier(num_threads)

        def worker():
            barrier.wait()
            for _ in range(rounds):
                accounts.charge(result)

        threads = [
            threading.Thread(target=worker) for _ in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        account = accounts.tenants["t"]
        assert account.jobs == num_threads * rounds
        assert account.comm_cycles == num_threads * rounds * result.comm_cycles
        assert accounts.reconcile()

    def test_makespan_is_the_busiest_partition(self):
        accounts = ServiceAccounts()
        jobs = _distinct_jobs()
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            scheduler.submit_all(jobs)
            scheduler.drain(timeout=120)
            accounts = scheduler.accounts
        assert accounts.makespan_seconds <= accounts.serial_seconds
        assert accounts.concurrency_speedup >= 1.0
        assert accounts.aggregate_mflops > 0


# ---------------------------------------------------------------------------
# PR 8: fault containment
# ---------------------------------------------------------------------------

from repro.runtime.faults import (  # noqa: E402 - grouped with their tests
    FaultError,
    ServiceFaultInjector,
    ServiceFaultKind,
)
from repro.service import (  # noqa: E402 - grouped with their tests
    JobJournal,
    JobQuarantinedError,
    JobResult,
    JournalState,
    OverloadError,
    SchedulerShutdownError,
    WorkerCrashError,
    job_key,
)


def _wait_until(predicate, timeout=10.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


def _fast_policy(**overrides):
    defaults = dict(
        deadline_seconds=0.2,
        max_attempts=3,
        backoff_base_seconds=0.001,
        backoff_cap_seconds=0.004,
        breaker_threshold=3,
        breaker_cooldown_seconds=60.0,
        supervision_interval_seconds=0.002,
    )
    defaults.update(overrides)
    return ServicePolicy(**defaults)


def _flaky_job(index, tenant="flaky"):
    """A job whose guarded run always dies with a hard data-path fault."""
    return StencilJob(
        tenant=tenant,
        grid_shape=(16, 16),
        seed=index,
        partition_shape=(2, 2),
        fault_rates={"node_dead": 1.0},
        fault_seed=index + 1,
        label=f"flaky-{index}",
    )


class TestServicePolicy:
    def test_defaults_validate(self):
        ServicePolicy()

    @pytest.mark.parametrize(
        "bad",
        [
            dict(deadline_seconds=0.0),
            dict(cycle_budget=-1),
            dict(max_attempts=0),
            dict(backoff_base_seconds=-0.1),
            dict(backoff_base_seconds=0.1, backoff_cap_seconds=0.01),
            dict(breaker_threshold=0),
            dict(breaker_cooldown_seconds=-1.0),
            dict(max_queue_depth=-1),
            dict(supervision_interval_seconds=0.0),
        ],
    )
    def test_nonsense_values_raise_immediately(self, bad):
        with pytest.raises(ValueError, match="ServicePolicy"):
            ServicePolicy(**bad)

    def test_backoff_doubles_and_caps(self):
        policy = ServicePolicy(
            backoff_base_seconds=0.01, backoff_cap_seconds=0.05
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.01)
        assert policy.backoff_seconds(2) == pytest.approx(0.02)
        assert policy.backoff_seconds(3) == pytest.approx(0.04)
        assert policy.backoff_seconds(4) == pytest.approx(0.05)  # capped
        assert policy.backoff_seconds(10) == pytest.approx(0.05)


class TestTypedOutcomes:
    def test_result_wait_timeout_is_typed_with_tenant_and_label(self):
        # Satellite 1: an expired result() wait raises JobTimeoutError,
        # not a bare TimeoutError, and names the tenant and job.
        with Scheduler(MachinePool(PARAMS)) as scheduler:
            handle = scheduler.submit(
                StencilJob(
                    tenant="slow",
                    grid_shape=(64, 64),
                    iterations=12,
                    label="glacier",
                )
            )
            with pytest.raises(JobTimeoutError) as excinfo:
                handle.result(timeout=1e-4)
            assert excinfo.value.tenant == "slow"
            assert excinfo.value.label == "glacier"
            assert isinstance(excinfo.value, TimeoutError)
            # The job itself was unaffected by the caller's impatience.
            assert handle.result(timeout=60.0).job.label == "glacier"

    def test_close_reports_stuck_workers(self):
        # Satellite 2: a wedged worker makes close() raise a typed
        # SchedulerShutdownError naming the stuck threads.
        injector = ServiceFaultInjector(
            seed=0, rates={ServiceFaultKind.JOB_HANG: 1.0}
        )
        scheduler = Scheduler(
            MachinePool(PARAMS),
            service_policy=_fast_policy(deadline_seconds=1.0, max_attempts=1),
            faults=injector,
        )
        handle = scheduler.submit(StencilJob(tenant="t", label="wedge"))
        assert _wait_until(lambda: handle.outcome == "running")
        with pytest.raises(SchedulerShutdownError) as excinfo:
            scheduler.close(timeout=0.05)
        assert excinfo.value.stuck_workers
        assert all("worker" in name for name in excinfo.value.stuck_workers)

    def test_batched_job_hard_fault_lands_typed_in_the_record(self):
        # Satellite 3: a hard fault inside a batched (filters=) job must
        # reach the job record as a typed FaultError the retry and
        # quarantine paths can classify -- not a raw runtime exception.
        job = StencilJob(
            tenant="t",
            grid_shape=(16, 16),
            filters=("cross5", "square9"),
            batch=2,
            partition_shape=(2, 2),
            fault_rates={"node_dead": 1.0},
            fault_seed=7,
            label="batched-doom",
        )
        with Scheduler(MachinePool(PARAMS)) as scheduler:
            handle = scheduler.submit(job)
            with pytest.raises(JobFaultError) as excinfo:
                handle.result(timeout=60.0)
        assert handle.outcome == "failed"
        assert isinstance(handle.error, FaultError)
        assert excinfo.value.tenant == "t"
        assert excinfo.value.label == "batched-doom"
        assert isinstance(excinfo.value.fault, FaultError)
        assert scheduler.accounts.tenants["t"].failures == 1

    def test_cancelling_a_queued_job_charges_nothing(self):
        # Satellite 4: cancel removes a queued job; the tenant's cycle
        # ledger stays empty and the outcome is typed.
        pool = MachinePool(PARAMS, default_partition=(4, 4))
        with Scheduler(pool, max_workers=1) as scheduler:
            running = scheduler.submit(
                StencilJob(tenant="busy", grid_shape=(64, 64), iterations=8)
            )
            assert _wait_until(lambda: running.outcome == "running")
            queued = scheduler.submit(
                StencilJob(tenant="victim", label="doomed")
            )
            assert queued.cancel() is True
            assert queued.outcome == "cancelled"
            with pytest.raises(JobCancelledError):
                queued.result(timeout=1.0)
            # Cancelling again (or cancelling a settled job) is a no-op.
            assert queued.cancel() is False
            running.result(timeout=60.0)
        victim = scheduler.accounts.tenants["victim"]
        assert victim.cancelled == 1
        assert victim.jobs == 0
        assert victim.cycles == 0
        assert scheduler.accounts.reconcile()

    def test_drain_races_a_concurrent_submitter(self):
        # Satellite 4: drain must pick up jobs submitted while it runs.
        first = [
            StencilJob(
                tenant="a", grid_shape=(32, 32), iterations=4, seed=i,
                partition_shape=(2, 2), label=f"first-{i}",
            )
            for i in range(5)
        ]
        late = [
            StencilJob(
                tenant="b", grid_shape=(16, 16), seed=i,
                partition_shape=(2, 2), label=f"late-{i}",
            )
            for i in range(5)
        ]
        with Scheduler(MachinePool(PARAMS)) as scheduler:
            scheduler.submit_all(first)
            barrier = threading.Barrier(2)

            def submitter():
                barrier.wait()
                scheduler.submit_all(late)

            thread = threading.Thread(target=submitter)
            thread.start()
            barrier.wait()
            results = scheduler.drain(timeout=120.0)
            thread.join()
        assert len(results) == len(first) + len(late)
        assert scheduler.accounts.reconcile()


class TestSupervision:
    def test_crashed_worker_is_detected_and_job_retried_bit_identical(self):
        # Two certain crashes, then the third attempt completes; the
        # retried result must be bit-identical to the solo run.
        injector = ServiceFaultInjector(
            seed=1,
            rates={ServiceFaultKind.WORKER_CRASH: 1.0},
            max_faults=2,
        )
        job = StencilJob(
            tenant="t", grid_shape=(16, 16), seed=3, partition_shape=(2, 2)
        )
        with Scheduler(
            MachinePool(PARAMS),
            service_policy=_fast_policy(),
            faults=injector,
        ) as scheduler:
            handle = scheduler.submit(job)
            result = handle.result(timeout=60.0)
        assert handle.attempts == 3
        assert injector.injected["worker_crash"] == 2
        assert result.identical_to(solo_run(job))
        account = scheduler.accounts.tenants["t"]
        assert account.retries == 2
        assert account.jobs == 1
        assert scheduler.accounts.reconcile()

    def test_crash_budget_exhaustion_records_worker_crash_error(self):
        injector = ServiceFaultInjector(
            seed=1, rates={ServiceFaultKind.WORKER_CRASH: 1.0}
        )
        job = StencilJob(tenant="t", grid_shape=(16, 16), seed=5,
                         partition_shape=(2, 2))
        with Scheduler(
            MachinePool(PARAMS),
            service_policy=_fast_policy(max_attempts=2),
            faults=injector,
        ) as scheduler:
            handle = scheduler.submit(job)
            with pytest.raises(WorkerCrashError):
                handle.result(timeout=60.0)
        assert handle.outcome == "failed"
        assert handle.attempts == 2
        # The pool recovered both leaked partitions.
        assert scheduler.pool.occupied == ()

    def test_hung_job_is_aborted_at_the_deadline_and_times_out(self):
        injector = ServiceFaultInjector(
            seed=1, rates={ServiceFaultKind.JOB_HANG: 1.0}
        )
        job = StencilJob(tenant="t", grid_shape=(16, 16), seed=6,
                         partition_shape=(2, 2))
        with Scheduler(
            MachinePool(PARAMS),
            service_policy=_fast_policy(
                deadline_seconds=0.05, max_attempts=2
            ),
            faults=injector,
        ) as scheduler:
            handle = scheduler.submit(job)
            with pytest.raises(JobTimeoutError):
                handle.result(timeout=60.0)
        assert handle.outcome == "timeout"
        assert scheduler.accounts.tenants["t"].timeouts == 1
        assert scheduler.accounts.tenants["t"].retries == 1
        assert scheduler.accounts.reconcile()

    def test_cycle_budget_breach_is_terminal_not_retried(self):
        job = StencilJob(tenant="t", grid_shape=(32, 32), iterations=4,
                         partition_shape=(2, 2))
        with Scheduler(
            MachinePool(PARAMS),
            service_policy=_fast_policy(cycle_budget=10),
        ) as scheduler:
            handle = scheduler.submit(job)
            with pytest.raises(JobTimeoutError, match="budget"):
                handle.result(timeout=60.0)
        assert handle.outcome == "timeout"
        assert handle.attempts == 1  # deterministic cost: no retry


class TestCircuitBreaker:
    def test_breaker_opens_quarantines_then_probes_after_cooldown(self):
        policy = _fast_policy(
            breaker_threshold=2, breaker_cooldown_seconds=0.05
        )
        with Scheduler(
            MachinePool(PARAMS), service_policy=policy
        ) as scheduler:
            for index in range(2):
                handle = scheduler.submit(_flaky_job(index))
                with pytest.raises(FaultError):
                    handle.result(timeout=60.0)
            assert scheduler.breaker_state("flaky") == "open"
            refused = scheduler.submit(_flaky_job(99))
            assert refused.outcome == "quarantined"
            with pytest.raises(JobQuarantinedError):
                refused.result(timeout=1.0)
            time.sleep(0.08)  # past the cooldown: one probe is admitted
            probe = scheduler.submit(
                StencilJob(
                    tenant="flaky", grid_shape=(16, 16), seed=42,
                    partition_shape=(2, 2), label="probe",
                )
            )
            assert probe.result(timeout=60.0).job.label == "probe"
            assert scheduler.breaker_state("flaky") == "closed"
        assert scheduler.accounts.tenants["flaky"].quarantined == 1
        assert scheduler.accounts.reconcile()

    def test_quarantined_tenant_cannot_slow_healthy_ones(self):
        policy = _fast_policy(breaker_threshold=2)
        clean = StencilJob(
            tenant="clean", grid_shape=(16, 16), seed=9,
            partition_shape=(2, 2),
        )
        with Scheduler(
            MachinePool(PARAMS), service_policy=policy
        ) as scheduler:
            for index in range(2):
                handle = scheduler.submit(_flaky_job(index))
                with pytest.raises(FaultError):
                    handle.result(timeout=60.0)
            scheduler.submit(_flaky_job(50))  # quarantined, never runs
            result = scheduler.submit(clean).result(timeout=60.0)
        assert result.identical_to(solo_run(clean))
        assert scheduler.accounts.tenants["flaky"].jobs == 0
        assert scheduler.accounts.reconcile()


class TestOverloadShedding:
    def test_watermark_sheds_lowest_priority_first(self):
        pool = MachinePool(PARAMS, default_partition=(4, 4))
        policy = _fast_policy(max_queue_depth=1)
        with Scheduler(pool, service_policy=policy, max_workers=1) as sched:
            running = sched.submit(
                StencilJob(tenant="t", grid_shape=(64, 64), iterations=8,
                           priority=5, label="running")
            )
            assert _wait_until(lambda: running.outcome == "running")
            queued = sched.submit(
                StencilJob(tenant="t", grid_shape=(16, 16), priority=5,
                           seed=1, label="queued")
            )
            # Queue is at the watermark.  A lower-priority arrival is
            # itself the victim: typed OverloadError at admission.
            with pytest.raises(OverloadError):
                sched.submit(
                    StencilJob(tenant="lowly", grid_shape=(16, 16),
                               priority=0, seed=2, label="lowly")
                )
            # A higher-priority arrival evicts the queued job instead.
            vip = sched.submit(
                StencilJob(tenant="vip", grid_shape=(16, 16), priority=9,
                           seed=3, label="vip")
            )
            assert queued.outcome == "shed"
            assert isinstance(queued.error, OverloadError)
            running.result(timeout=60.0)
            vip.result(timeout=60.0)
        accounts = sched.accounts
        assert accounts.tenants["lowly"].shed == 1
        assert accounts.tenants["t"].shed == 1
        assert accounts.tenants["vip"].jobs == 1
        assert accounts.reconcile()


class TestJournal:
    def test_job_keys_are_content_addressed_and_occurrence_indexed(self):
        job_a = StencilJob(tenant="t", seed=1)
        job_b = StencilJob(tenant="t", seed=2)
        assert job_key(job_a, 0) == job_key(StencilJob(tenant="t", seed=1), 0)
        assert job_key(job_a, 0) != job_key(job_a, 1)
        assert job_key(job_a, 0) != job_key(job_b, 0)

    def test_result_round_trips_through_the_journal_bit_exact(self):
        job = StencilJob(tenant="t", grid_shape=(16, 16), seed=4,
                         partition_shape=(2, 2))
        result = solo_run(job)
        clone = JobResult.from_journal_dict(result.to_journal_dict())
        assert clone.identical_to(result)
        assert clone.checksum == result.checksum
        assert clone.comm_cycles == result.comm_cycles
        assert clone.compute_cycles == result.compute_cycles
        assert clone.job == job

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(str(path))
        job = StencilJob(tenant="t", seed=1)
        journal.record_submitted(job_key(job, 0), job, 0)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "completed", "key": "abc", "resu')
        state = JournalState.load(str(path))
        assert state.torn_tail
        assert len(state.submitted) == 1
        assert not state.completed

    def test_resumed_service_replays_completed_jobs(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        jobs = [
            StencilJob(tenant=f"t{i % 2}", grid_shape=(16, 16), seed=i,
                       partition_shape=(2, 2), label=f"j{i}")
            for i in range(6)
        ]
        with Scheduler(MachinePool(PARAMS), journal_path=path) as first:
            first.submit_all(jobs)
            originals = first.drain(timeout=120.0)
        fingerprint = first.accounts.ledger_fingerprint()

        with Scheduler(MachinePool(PARAMS), journal_path=path) as second:
            handles = second.submit_all(jobs)
            replayed = second.drain(timeout=120.0)
            # Replays settle instantly from the journal: no re-runs.
            assert all(h.attempts == 0 for h in handles)
        assert len(replayed) == len(originals)
        for original, replay in zip(originals, replayed):
            assert replay.identical_to(original)
        assert second.accounts.ledger_fingerprint() == fingerprint
        assert second.accounts.reconcile()
        assert JournalState.load(path).duplicate_completions == 0

    def test_kill_drops_inflight_work_and_resume_reruns_it(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        jobs = [
            StencilJob(tenant="t", grid_shape=(32, 32), iterations=3,
                       seed=i, partition_shape=(2, 2), label=f"j{i}")
            for i in range(8)
        ]
        reference = Scheduler(MachinePool(PARAMS))
        reference.submit_all(jobs)
        reference.drain(timeout=120.0)
        reference.close()
        fingerprint = reference.accounts.ledger_fingerprint()

        victim = Scheduler(MachinePool(PARAMS), journal_path=path)
        victim.submit_all(jobs)
        victim.kill()  # SIGKILL simulation: no drain, no settling

        resumed = Scheduler(MachinePool(PARAMS), journal_path=path)
        resumed.submit_all(jobs)
        results = resumed.drain(timeout=120.0)
        resumed.close()
        assert len(results) == len(jobs)
        assert resumed.accounts.ledger_fingerprint() == fingerprint
        assert resumed.accounts.reconcile()
        state = JournalState.load(path)
        assert state.duplicate_completions == 0
        assert all(state.is_settled(key) for key in state.submitted)
