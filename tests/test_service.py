"""Stencil-as-a-service: partitions, the pool, the scheduler, the ledger.

The acceptance property runs throughout: any job scheduled onto a
carved-out partition produces float32 results bit-identical to the same
job run solo on a private machine of the same node-grid shape -- fault
campaigns included -- and the per-tenant cycle accounting reconciles
exactly against the job records.
"""

import threading
import time

import numpy as np
import pytest

from repro.machine.geometry import Partition, PartitionError
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.service import (
    JobSpecError,
    MachinePool,
    Scheduler,
    ServiceAccounts,
    StencilJob,
    execute_job,
    partition_machine,
    solo_run,
)

PARAMS = MachineParams(num_nodes=16)  # a 4x4 node grid


# ---------------------------------------------------------------------------
# Partition validation
# ---------------------------------------------------------------------------


class TestPartition:
    def test_quarters_tile_the_grid(self):
        for origin in ((0, 0), (0, 2), (2, 0), (2, 2)):
            Partition((4, 4), origin, (2, 2)).validate()

    def test_row_bands_tile_the_grid(self):
        Partition((4, 4), (2, 0), (2, 4)).validate()

    def test_non_power_of_two_extent_rejected(self):
        with pytest.raises(PartitionError, match="powers of two"):
            Partition((4, 4), (0, 0), (3, 4)).validate()

    def test_extent_must_divide_parent(self):
        with pytest.raises(PartitionError):
            Partition((4, 4), (0, 0), (8, 4)).validate()

    def test_origin_must_align_to_the_tiling(self):
        with pytest.raises(PartitionError, match="align"):
            Partition((4, 4), (1, 0), (2, 2)).validate()

    def test_reserved_overlap_names_the_coordinates(self):
        reserved = frozenset({(3, 0), (3, 1), (3, 2), (3, 3)})
        with pytest.raises(PartitionError) as excinfo:
            Partition((4, 4), (2, 0), (2, 2), reserved).validate()
        assert excinfo.value.overlap == ((3, 0), (3, 1))
        assert "(3, 0)" in str(excinfo.value)

    def test_overlap_detection(self):
        a = Partition((4, 4), (0, 0), (2, 2))
        b = Partition((4, 4), (0, 2), (2, 2))
        c = Partition((4, 4), (0, 0), (4, 4))
        assert not a.overlaps(b)
        assert a.overlaps(c) and b.overlaps(c)

    def test_to_parent_maps_through_the_origin(self):
        tile = Partition((4, 4), (2, 2), (2, 2))
        assert tile.to_parent(0, 0) == (2, 2)
        assert tile.to_parent(1, 1) == (3, 3)
        # Logical coordinates wrap: the partition is its own torus.
        assert tile.to_parent(2, 0) == (2, 2)
        assert tile.to_parent(-1, 0) == (3, 2)


class TestPartitionedMachine:
    def test_machine_takes_its_shape_from_the_partition(self):
        tile = Partition((4, 4), (2, 0), (2, 2))
        machine = partition_machine(PARAMS, tile)
        assert machine.shape == (2, 2)
        assert machine.partition is tile
        assert machine.params.num_nodes == 4

    def test_shape_partition_mismatch_rejected(self):
        tile = Partition((4, 4), (0, 0), (2, 2))
        with pytest.raises(PartitionError, match="does not match"):
            CM2(PARAMS.with_nodes(8), shape=(2, 4), partition=tile)

    def test_invalid_partition_rejected_at_construction(self):
        bad = Partition((4, 4), (1, 0), (2, 2))
        with pytest.raises(PartitionError):
            CM2(PARAMS.with_nodes(4), partition=bad)

    def test_parent_coord_translation(self):
        tile = Partition((4, 4), (2, 2), (2, 2))
        machine = partition_machine(PARAMS, tile)
        assert machine.parent_coord(0, 0) == (2, 2)
        whole = CM2(PARAMS)
        assert whole.parent_coord(1, 3) == (1, 3)


# ---------------------------------------------------------------------------
# The machine pool
# ---------------------------------------------------------------------------


class TestMachinePool:
    def test_first_fit_walks_row_major(self):
        pool = MachinePool(PARAMS)
        origins = []
        for _ in range(4):
            tile, _machine = pool.acquire((2, 2))
            origins.append(tile.origin)
        assert origins == [(0, 0), (0, 2), (2, 0), (2, 2)]
        assert pool.acquire((2, 2)) is None  # full: busy, not an error

    def test_release_makes_the_tile_reusable(self):
        pool = MachinePool(PARAMS)
        held = [pool.acquire((2, 2)) for _ in range(4)]
        tile = held[2][0]
        pool.release(tile)
        again, _machine = pool.acquire((2, 2))
        assert again.origin == tile.origin

    def test_releasing_a_foreign_tile_is_an_error(self):
        pool = MachinePool(PARAMS)
        stranger = Partition((4, 4), (0, 0), (2, 2))
        with pytest.raises(PartitionError, match="never lent"):
            pool.release(stranger)

    def test_impossible_shape_raises_not_queues(self):
        pool = MachinePool(PARAMS)
        with pytest.raises(PartitionError):
            pool.acquire((3, 3))
        with pytest.raises(PartitionError):
            pool.acquire((8, 8))

    def test_spare_reservation_blocks_bottom_rows(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        assert pool.num_reserved == 4
        origins = set()
        while True:
            acquired = pool.acquire((2, 2))
            if acquired is None:
                break
            origins.add(acquired[0].origin)
        # The (2, *) tiles cover reserved row 3 and are never lent.
        assert origins == {(0, 0), (0, 2)}
        with pytest.raises(PartitionError, match="reservation"):
            pool.acquire((4, 4))

    def test_spares_lend_and_exhaust(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        first = pool.acquire((2, 2), spares=3)
        assert first is not None and pool.spares_free == 1
        assert pool.acquire((2, 2), spares=2) is None  # busy, retry later
        with pytest.raises(PartitionError, match="reserves"):
            pool.acquire((2, 2), spares=5)  # never satisfiable
        pool.release(first[0], spares=3)
        assert pool.spares_free == 4

    def test_best_fit_packs_against_the_occupied_corner(self):
        pool = MachinePool(PARAMS)
        corner, _machine = pool.acquire((2, 2), policy="best_fit")
        assert corner.origin == (0, 0)  # all corners tie; first wins
        neighbor, _machine = pool.acquire((2, 2), policy="best_fit")
        # Adjacent to the held corner beats the diagonally-opposite one.
        assert neighbor.origin in ((0, 2), (2, 0))

    def test_capacity_counts_simultaneous_tiles(self):
        assert MachinePool(PARAMS).capacity((2, 2)) == 4
        assert MachinePool(PARAMS, spare_rows=1).capacity((2, 2)) == 2


# ---------------------------------------------------------------------------
# Job specs
# ---------------------------------------------------------------------------


class TestStencilJob:
    def test_defaults_validate(self):
        job = StencilJob(tenant="t")
        assert job.pattern == "cross5" and job.label

    def test_bad_specs_raise_typed_errors(self):
        with pytest.raises(JobSpecError):
            StencilJob(tenant="")
        with pytest.raises(JobSpecError):
            StencilJob(tenant="t", pattern="nonesuch")
        with pytest.raises(JobSpecError):
            StencilJob(tenant="t", boundary="reflect")
        with pytest.raises(JobSpecError):
            StencilJob(tenant="t", iterations=0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(JobSpecError, match="unknown job fields"):
            StencilJob.from_dict({"tenant": "t", "color": "red"})

    def test_fault_rates_are_canonicalized(self):
        a = StencilJob(tenant="t", fault_rates={"halo_corrupt": 0.5})
        b = StencilJob(tenant="t", fault_rates={"halo_corrupt": 0.5})
        assert a.fault_rates == b.fault_rates == (("halo_corrupt", 0.5),)
        assert a.guarded

    def test_grid_must_divide_over_the_partition(self):
        job = StencilJob(tenant="t", grid_shape=(15, 15))
        machine = CM2(PARAMS.with_nodes(4), shape=(2, 2))
        with pytest.raises(JobSpecError, match="divide evenly"):
            execute_job(job, machine)

    def test_solo_run_needs_a_shape(self):
        with pytest.raises(JobSpecError, match="shape"):
            solo_run(StencilJob(tenant="t"))


# ---------------------------------------------------------------------------
# The scheduler: bit-identity, priority, accounting
# ---------------------------------------------------------------------------


def _distinct_jobs():
    """K jobs spanning patterns, boundary modes, and iteration counts."""
    specs = [
        ("alice", "cross5", "torus", 1),
        ("alice", "cross9", "fill", 3),
        ("bob", "square9", "torus", 2),
        ("bob", "diamond13", "fill", 1),
        ("carol", "asymmetric5", "torus", 4),
        ("carol", "cross5", "fill", 2),
        ("dave", "diamond13", "torus", 3),
        ("dave", "square9", "fill", 4),
    ]
    return [
        StencilJob(
            tenant=tenant,
            pattern=pattern,
            boundary=boundary,
            iterations=iterations,
            grid_shape=(16, 16),
            seed=index,
        )
        for index, (tenant, pattern, boundary, iterations) in enumerate(specs)
    ]


class TestScheduler:
    def test_scheduled_results_are_bit_identical_to_solo_runs(self):
        """The acceptance property: K jobs with distinct patterns and
        boundary modes through the scheduler == solo sequential runs,
        bit for bit, with the ledger reconciling exactly."""
        jobs = _distinct_jobs()
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            scheduler.submit_all(jobs)
            results = scheduler.drain(timeout=120)
        assert len(results) == len(jobs)
        for result, job in zip(results, jobs):
            assert result.job is job
            reference = solo_run(job, params=PARAMS, shape=result.partition.shape)
            assert result.identical_to(reference), job.label
        accounts = scheduler.accounts
        assert accounts.reconcile()
        assert set(accounts.tenants) == {"alice", "bob", "carol", "dave"}
        assert accounts.total_cycles == sum(r.cycles for r in results)

    def test_fault_campaign_on_one_tenant_leaves_the_others_untouched(self):
        """A seeded soft-fault campaign on one tenant's jobs: its
        results still match its solo runs (the guarded run retries
        through the corruption), and no other tenant sees a fault."""
        clean = _distinct_jobs()[:4]
        chaotic = [
            StencilJob(
                tenant="chaos",
                pattern="cross5",
                boundary="torus",
                iterations=4,
                grid_shape=(16, 16),
                seed=99,
                fault_rates={"halo_corrupt": 0.6},
                fault_seed=5,
            ),
            StencilJob(
                tenant="chaos",
                pattern="square9",
                boundary="fill",
                iterations=3,
                grid_shape=(16, 16),
                seed=98,
                fault_rates={"halo_corrupt": 0.6},
                fault_seed=6,
            ),
        ]
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            scheduler.submit_all(clean + chaotic)
            results = scheduler.drain(timeout=120)
        injected = 0
        for result in results:
            reference = solo_run(
                result.job, params=PARAMS, shape=result.partition.shape
            )
            assert result.identical_to(reference), result.job.label
            if result.job.tenant == "chaos":
                injected += result.fault_stats.total_injected
            else:
                assert result.fault_stats.total_injected == 0
        assert injected > 0, "the campaign must actually inject"
        accounts = scheduler.accounts
        assert accounts.reconcile()
        assert accounts.tenants["chaos"].faults_injected == injected
        for tenant in ("alice", "bob"):
            assert accounts.tenants[tenant].faults_injected == 0

    def test_priority_orders_waiting_jobs(self):
        """On a single-tile pool, queued jobs run highest-priority
        first, FIFO within a priority."""
        pool = MachinePool(PARAMS, default_partition=(4, 4))
        with Scheduler(pool) as scheduler:
            head = scheduler.submit(
                StencilJob(tenant="head", iterations=6, grid_shape=(16, 16))
            )
            # Wait until "head" holds the only tile, so the rest queue
            # behind it and drain strictly by priority.
            deadline = time.perf_counter() + 30
            while head.started_wall is None:
                assert time.perf_counter() < deadline, "head never started"
                time.sleep(0.001)
            for tenant, priority in (("low", 0), ("high", 5), ("mid", 2)):
                scheduler.submit(
                    StencilJob(
                        tenant=tenant, priority=priority, grid_shape=(16, 16)
                    )
                )
            scheduler.drain(timeout=120)
            order = [r.job.tenant for r in scheduler.accounts.records]
        assert order == ["head", "high", "mid", "low"]

    def test_admission_rejects_impossible_jobs_immediately(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        with Scheduler(pool) as scheduler:
            with pytest.raises(PartitionError):
                scheduler.submit(
                    StencilJob(tenant="t", partition_shape=(4, 4))
                )
            with pytest.raises(PartitionError):
                scheduler.submit(StencilJob(tenant="t", spares=99))

    def test_job_failures_surface_through_the_handle(self):
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            handle = scheduler.submit(
                StencilJob(tenant="t", grid_shape=(15, 15))
            )
            with pytest.raises(JobSpecError):
                handle.result(timeout=60)
            assert scheduler.accounts.tenants["t"].failures == 1
            assert scheduler.accounts.reconcile()

    def test_submit_after_close_is_refused(self):
        scheduler = Scheduler(MachinePool(PARAMS))
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(StencilJob(tenant="t"))

    def test_guarded_job_borrows_pool_spares(self):
        pool = MachinePool(PARAMS, spare_rows=1)
        job = StencilJob(
            tenant="t",
            grid_shape=(16, 16),
            spares=2,
            fault_rates={"halo_corrupt": 0.2},
        )
        with Scheduler(pool) as scheduler:
            result = scheduler.submit(job).result(timeout=120)
        assert pool.spares_free == pool.num_reserved  # returned on release
        reference = solo_run(job, params=PARAMS, shape=result.partition.shape)
        assert result.identical_to(reference)


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


class TestAccounting:
    def test_fairness_is_one_for_equal_tenants(self):
        accounts = ServiceAccounts()
        jobs = [
            StencilJob(tenant=t, grid_shape=(16, 16), seed=i, iterations=2)
            for i, t in enumerate(("a", "b", "c", "d"))
        ]
        for job in jobs:
            accounts.charge(solo_run(job, params=PARAMS, shape=(2, 2)))
        # Same pattern, same grid, same iterations: identical cycles.
        assert accounts.fairness() == pytest.approx(1.0)
        assert accounts.reconcile()

    def test_reconcile_catches_a_corrupted_counter(self):
        accounts = ServiceAccounts()
        job = StencilJob(tenant="t", grid_shape=(16, 16))
        accounts.charge(solo_run(job, params=PARAMS, shape=(2, 2)))
        assert accounts.reconcile()
        accounts.tenants["t"].comm_cycles += 1  # the lost-update bug
        assert not accounts.reconcile()

    def test_concurrent_charges_are_not_lost(self):
        """The ledger under a thread hammer: every charge lands."""
        accounts = ServiceAccounts()
        result = solo_run(
            StencilJob(tenant="t", grid_shape=(16, 16)),
            params=PARAMS,
            shape=(2, 2),
        )
        num_threads, rounds = 8, 50
        barrier = threading.Barrier(num_threads)

        def worker():
            barrier.wait()
            for _ in range(rounds):
                accounts.charge(result)

        threads = [
            threading.Thread(target=worker) for _ in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        account = accounts.tenants["t"]
        assert account.jobs == num_threads * rounds
        assert account.comm_cycles == num_threads * rounds * result.comm_cycles
        assert accounts.reconcile()

    def test_makespan_is_the_busiest_partition(self):
        accounts = ServiceAccounts()
        jobs = _distinct_jobs()
        pool = MachinePool(PARAMS)
        with Scheduler(pool) as scheduler:
            scheduler.submit_all(jobs)
            scheduler.drain(timeout=120)
            accounts = scheduler.accounts
        assert accounts.makespan_seconds <= accounts.serial_seconds
        assert accounts.concurrency_speedup >= 1.0
        assert accounts.aggregate_mflops > 0
