"""Tests for the callable stencil wrappers (paper versions 1 and 2)."""

import numpy as np
import pytest

from repro.baseline.reference import reference_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.subroutine import make_stencil_function, make_subroutine

CROSS_SUBROUTINE = """
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""

CROSS_DEFSTENCIL = """
(defstencil cross (r x c1 c2 c3 c4 c5)
  (single-float single-float)
  (:= r (+ (* c1 (cshift x 1 -1))
           (* c2 (cshift x 2 -1))
           (* c3 x)
           (* c4 (cshift x 2 +1))
           (* c5 (cshift x 1 +1)))))
"""


@pytest.fixture
def machine():
    return CM2(MachineParams(num_nodes=4))


def build_arrays(machine, seed=0, shape=(16, 16), names=None):
    """Six arrays with arbitrary storage names, plus their host copies."""
    rng = np.random.default_rng(seed)
    names = names or ["OUT", "DATA", "A1", "A2", "A3", "A4", "A5"]
    host = {}
    arrays = []
    for index, name in enumerate(names):
        data = (
            np.zeros(shape, dtype=np.float32)
            if index == 0
            else rng.standard_normal(shape).astype(np.float32)
        )
        host[name] = data
        arrays.append(CMArray.from_numpy(name, machine, data))
    return arrays, host


class TestFortranSubroutineCall:
    def test_call_computes_cross(self, machine):
        cross = make_subroutine(
            CROSS_SUBROUTINE, machine.params
        )
        arrays, host = build_arrays(machine)
        run = cross(*arrays)
        names = ["OUT", "DATA", "A1", "A2", "A3", "A4", "A5"]
        expected = reference_stencil(
            cross.compiled.pattern,
            host["DATA"],
            {
                f"C{i}": host[f"A{i}"]
                for i in range(1, 6)
            },
        )
        np.testing.assert_array_equal(arrays[0].to_numpy(), expected)
        assert run.mflops > 0

    def test_parameter_order_respected(self, machine):
        """Swapping two coefficient arguments changes the result."""
        cross = make_subroutine(CROSS_SUBROUTINE, machine.params)
        arrays, _ = build_arrays(machine, seed=3)
        cross(*arrays)
        straight = arrays[0].to_numpy().copy()
        swapped_args = [arrays[0], arrays[1], arrays[3], arrays[2]] + arrays[4:]
        cross(*swapped_args)
        assert not np.array_equal(arrays[0].to_numpy(), straight)

    def test_wrong_arity_rejected(self, machine):
        cross = make_subroutine(CROSS_SUBROUTINE, machine.params)
        arrays, _ = build_arrays(machine)
        with pytest.raises(TypeError, match="takes 7 arrays"):
            cross(*arrays[:3])

    def test_statement_must_use_declared_arguments(self, machine):
        source = (
            "SUBROUTINE BAD (R, X)\n"
            "REAL, ARRAY(:, :) :: R, X\n"
            "R = C9 * CSHIFT(X, 1, -1)\n"
            "END"
        )
        with pytest.raises(ValueError, match="C9"):
            make_subroutine(source, machine.params)

    def test_repeated_calls_are_independent(self, machine):
        cross = make_subroutine(CROSS_SUBROUTINE, machine.params)
        arrays, _ = build_arrays(machine, seed=5)
        cross(*arrays)
        first = arrays[0].to_numpy().copy()
        cross(*arrays)
        np.testing.assert_array_equal(arrays[0].to_numpy(), first)


class TestLispFunctionCall:
    def test_defstencil_yields_callable(self, machine):
        """'The result is an ordinary Lisp function named cross that
        takes Connection Machine arrays as arguments.'"""
        cross = make_stencil_function(CROSS_DEFSTENCIL, machine.params)
        assert cross.name == "cross"
        arrays, host = build_arrays(machine, seed=7)
        cross(*arrays)
        expected = reference_stencil(
            cross.compiled.pattern,
            host["DATA"],
            {f"C{i}": host[f"A{i}"] for i in range(1, 6)},
        )
        np.testing.assert_array_equal(arrays[0].to_numpy(), expected)

    def test_both_front_ends_agree_through_calls(self, machine):
        fortran_fn = make_subroutine(CROSS_SUBROUTINE, machine.params)
        lisp_fn = make_stencil_function(CROSS_DEFSTENCIL, machine.params)
        arrays_a, _ = build_arrays(machine, seed=9)
        arrays_b, _ = build_arrays(
            machine,
            seed=9,
            names=["OUT2", "DATA2", "B1", "B2", "B3", "B4", "B5"],
        )
        fortran_fn(*arrays_a)
        lisp_fn(*arrays_b)
        np.testing.assert_array_equal(
            arrays_a[0].to_numpy(), arrays_b[0].to_numpy()
        )
