"""Tests for the public problem-generator helpers."""

import numpy as np
import pytest

from repro.stencil.gallery import cross5, diamond13
from repro.testing import StencilProblem, random_problem


class TestRandomProblem:
    def test_assembles_everything(self):
        problem = random_problem(cross5())
        assert problem.compiled.max_width == 8
        assert set(problem.coefficients) == set(
            cross5().coefficient_names()
        )

    def test_run_and_check(self):
        problem = random_problem(cross5(), seed=5)
        run = problem.run()
        assert problem.check(run)

    def test_exact_mode(self):
        problem = random_problem(diamond13(), global_shape=(8, 12))
        assert problem.check(problem.run(exact=True))

    def test_seed_reproducibility(self):
        a = random_problem(cross5(), seed=9)
        b = random_problem(cross5(), seed=9)
        np.testing.assert_array_equal(a.host_source, b.host_source)
        c = random_problem(cross5(), seed=10)
        assert not np.array_equal(a.host_source, c.host_source)

    def test_source_named_after_statement(self):
        problem = random_problem(cross5())
        assert problem.source.name == "X"
