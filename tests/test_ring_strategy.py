"""Tests for the LCM-minimizing ring-size strategy (paper future work).

"This approach tends to minimize the LCM, at least for the column
heights typically encountered (less than 10).  In the general case even
more clever strategies may be required." -- section 5.4.  The optimal
strategy is that clever one; it must reproduce the paper's worked
examples exactly and strictly dominate the heuristic when the heuristic
misses.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.allocation import allocate
from repro.compiler.driver import compile_stencil
from repro.compiler.ringbuf import (
    lcm_of,
    plan_ring_sizes,
    plan_ring_sizes_optimal,
)
from repro.stencil.gallery import cross5, cross9, diamond13, square9
from repro.stencil.multistencil import ColumnProfile, Multistencil


def columns_of(heights):
    return [
        ColumnProfile(x=i, rows=tuple(range(h)))
        for i, h in enumerate(heights)
    ]


class TestOptimalStrategy:
    def test_reproduces_paper_diamond(self):
        """The paper's worked example is already optimal."""
        ms = Multistencil(diamond13(), 4)
        sizes = plan_ring_sizes_optimal(ms.columns, 31)
        assert lcm_of(sizes) == 15
        assert sum(sizes) <= 31

    def test_reproduces_paper_cross(self):
        ms = Multistencil(cross5(), 8)
        sizes = plan_ring_sizes_optimal(ms.columns, 31)
        assert lcm_of(sizes) == 3

    def test_beats_heuristic_on_mixed_heights(self):
        """Heights (2, 3, 5) under a budget of 12: the heuristic settles
        for rings (2, 5, 5) with LCM 10; padding smartly gives LCM 6."""
        cols = columns_of([2, 3, 5])
        heuristic = plan_ring_sizes(cols, 12)
        optimal = plan_ring_sizes_optimal(cols, 12)
        assert lcm_of(heuristic) == 10
        assert lcm_of(optimal) == 6

    def test_infeasible_returns_none(self):
        assert plan_ring_sizes_optimal(columns_of([5, 5, 5]), 10) is None

    @given(
        heights=st.lists(st.integers(1, 7), min_size=1, max_size=8),
        budget=st.integers(8, 31),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_heuristic(self, heights, budget):
        cols = columns_of(heights)
        heuristic = plan_ring_sizes(cols, budget)
        optimal = plan_ring_sizes_optimal(cols, budget)
        if heuristic is None:
            assert optimal is None
            return
        assert optimal is not None
        assert lcm_of(optimal) <= lcm_of(heuristic)
        assert sum(optimal) <= budget
        for size, height in zip(optimal, heights):
            assert size >= height

    @given(
        heights=st.lists(st.integers(1, 6), min_size=1, max_size=6),
        budget=st.integers(8, 31),
    )
    @settings(max_examples=40, deadline=None)
    def test_result_is_a_valid_assignment(self, heights, budget):
        cols = columns_of(heights)
        sizes = plan_ring_sizes_optimal(cols, budget)
        if sizes is None:
            return
        assert len(sizes) == len(heights)
        assert math.lcm(*sizes) == lcm_of(sizes)


class TestStrategyEndToEnd:
    def test_allocate_with_optimal_strategy(self):
        alloc = allocate(diamond13(), 4, strategy="optimal")
        assert alloc.unroll == 15  # paper case: strategies agree

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            allocate(cross5(), 8, strategy="telepathic")

    def test_compiled_results_identical_across_strategies(self):
        """Ring sizing changes scratch usage, never semantics."""
        import numpy as np

        from repro.machine.machine import CM2
        from repro.machine.params import MachineParams
        from repro.runtime.cm_array import CMArray
        from repro.runtime.stencil_op import apply_stencil

        params = MachineParams(num_nodes=4)
        rng = np.random.default_rng(0)
        x_host = rng.standard_normal((16, 24)).astype(np.float32)
        results = []
        for strategy in ("paper", "optimal"):
            machine = CM2(params)
            pattern = diamond13()
            compiled = compile_stencil(pattern, params, strategy=strategy)
            X = CMArray.from_numpy("X", machine, x_host)
            C = {
                name: CMArray.from_numpy(
                    name,
                    machine,
                    rng.standard_normal((16, 24)).astype(np.float32),
                )
                for name in pattern.coefficient_names()
            }
            # Reuse the same coefficient data across strategies.
            rng = np.random.default_rng(1)
            for name in pattern.coefficient_names():
                data = rng.standard_normal((16, 24)).astype(np.float32)
                C[name].set(data)
            run = apply_stencil(compiled, X, C, exact=True)
            results.append(run.result.to_numpy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_optimal_never_uses_more_scratch(self):
        from repro.compiler.plan import compile_pattern

        for pattern in (cross5(), cross9(), square9(), diamond13()):
            paper = compile_pattern(pattern, strategy="paper")
            optimal = compile_pattern(pattern, strategy="optimal")
            for width in paper.widths:
                assert (
                    optimal.plans[width].scratch_words
                    <= paper.plans[width].scratch_words
                )
