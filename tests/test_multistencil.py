"""Tests for multistencil geometry, the paper's worked examples included."""

import pytest

from repro.stencil.gallery import asymmetric5, cross5, cross9, diamond13, square9
from repro.stencil.multistencil import Multistencil, multistencil_widths


class TestPaperExamples:
    def test_cross5_width8_spans_26_positions(self):
        """Paper section 5.3: 26 elements suffice for eight results."""
        ms = Multistencil(cross5(), 8)
        assert ms.num_positions == 26

    def test_cross5_width8_naive_needs_40_loads(self):
        ms = Multistencil(cross5(), 8)
        assert ms.naive_load_count() == 40
        assert ms.load_savings() == pytest.approx((40 - 26) / 40)

    def test_diamond13_width8_needs_48_positions(self):
        """Paper section 5.3: 'A width-8 multistencil would require 48
        registers.'"""
        assert Multistencil(diamond13(), 8).num_positions == 48

    def test_diamond13_width4_needs_28_positions(self):
        """'...but the width-4 multistencil requires only 28 registers.'"""
        assert Multistencil(diamond13(), 4).num_positions == 28

    def test_diamond13_width4_column_heights(self):
        """Paper section 5.4: first and last columns need 1 register,
        second and seventh need 3, the middle four need 5."""
        ms = Multistencil(diamond13(), 4)
        heights = [col.height for col in ms.columns]
        assert heights == [1, 3, 5, 5, 5, 5, 3, 1]

    def test_cross5_width8_column_heights(self):
        ms = Multistencil(cross5(), 8)
        heights = [col.height for col in ms.columns]
        assert heights == [1] + [3] * 8 + [1]


class TestGeometry:
    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            Multistencil(cross5(), 0)

    def test_width1_equals_pattern_footprint(self):
        ms = Multistencil(diamond13(), 1)
        assert ms.num_positions == 13

    def test_positions_are_union_of_shifted_copies(self):
        ms = Multistencil(cross5(), 2)
        expected = set()
        for r in range(2):
            for (dy, dx) in cross5().offsets:
                expected.add((dy, dx + r))
        assert set(ms.positions) == expected

    def test_span_covers_pattern_extent(self):
        ms = Multistencil(cross5(), 8)
        assert ms.span == (-1, 8)

    def test_max_column_height(self):
        assert Multistencil(diamond13(), 4).max_column_height == 5
        assert Multistencil(cross5(), 8).max_column_height == 3

    def test_columns_sorted_left_to_right(self):
        ms = Multistencil(square9(), 4)
        xs = [col.x for col in ms.columns]
        assert xs == sorted(xs)

    def test_column_rows_sorted(self):
        for col in Multistencil(diamond13(), 4).columns:
            assert list(col.rows) == sorted(col.rows)


class TestTagging:
    def test_tag_is_bottom_left(self):
        """The tagged position is the leftmost element of the bottom row."""
        assert Multistencil(cross5(), 8).tag_offset() == (1, 0)
        assert Multistencil(diamond13(), 4).tag_offset() == (2, 0)

    def test_tag_asymmetric(self):
        # asymmetric5 offsets: (0,0),(0,1),(1,-1),(1,0),(2,0); bottom row
        # is dy=2, whose only (hence leftmost) element is dx=0.
        assert Multistencil(asymmetric5(), 4).tag_offset() == (2, 0)

    def test_accumulator_positions_march_right(self):
        ms = Multistencil(cross5(), 4)
        positions = [ms.accumulator_position(r) for r in range(4)]
        assert positions == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_accumulator_position_bounds(self):
        ms = Multistencil(cross5(), 4)
        with pytest.raises(ValueError):
            ms.accumulator_position(4)

    def test_accumulators_never_needed_by_later_occurrences(self):
        """The paper's key invariant: because the tag is the leftmost
        element of its row, no occurrence to the right reads it."""
        for pattern in (cross5(), cross9(), square9(), diamond13(), asymmetric5()):
            for width in multistencil_widths():
                ms = Multistencil(pattern, width)
                for r in range(width):
                    acc = ms.accumulator_position(r)
                    for later in range(r + 1, width):
                        assert acc not in ms.occurrence_positions(later), (
                            f"{pattern.name} width {width}: accumulator of "
                            f"occurrence {r} read by occurrence {later}"
                        )


class TestSweep:
    def test_leading_edge_one_per_column(self):
        ms = Multistencil(cross5(), 8)
        edge = ms.leading_edge()
        assert len(edge) == len(ms.columns)

    def test_leading_edge_is_column_tops(self):
        ms = Multistencil(diamond13(), 4)
        edge = dict((x, row) for row, x in ms.leading_edge())
        for col in ms.columns:
            assert edge[col.x] == col.rows[0]

    def test_retiring_edge_is_column_bottoms(self):
        ms = Multistencil(diamond13(), 4)
        retiring = dict((x, row) for row, x in ms.retiring_edge())
        for col in ms.columns:
            assert retiring[col.x] == col.rows[-1]

    def test_leading_edge_is_exactly_new_footprint(self):
        """Moving the footprint one line North, the new positions are
        exactly the leading edge."""
        for pattern in (cross5(), diamond13(), asymmetric5()):
            ms = Multistencil(pattern, 4)
            here = set(ms.positions)
            above = {(dy - 1, dx) for (dy, dx) in here}
            new_positions = above - here
            assert new_positions == {
                (row - 1, x) for row, x in ms.leading_edge()
            }

    def test_accumulators_subset_of_retiring_edge(self):
        for pattern in (cross5(), cross9(), square9(), diamond13()):
            ms = Multistencil(pattern, 8)
            retiring = set(ms.retiring_edge())
            for r in range(8):
                assert ms.accumulator_position(r) in retiring


class TestOccurrences:
    def test_occurrence_positions_in_tap_order(self):
        ms = Multistencil(cross5(), 2)
        taps = cross5().data_taps
        for r in range(2):
            positions = ms.occurrence_positions(r)
            assert positions == tuple(
                (tap.dy, tap.dx + r) for tap in taps
            )

    def test_occurrence_positions_within_multistencil(self):
        ms = Multistencil(diamond13(), 4)
        for r in range(4):
            for pos in ms.occurrence_positions(r):
                assert pos in ms.positions

    def test_widths_are_descending_powers(self):
        assert multistencil_widths() == (8, 4, 2, 1)


class TestRendering:
    def test_pictogram_width(self):
        ms = Multistencil(cross5(), 4)
        lines = ms.pictogram().splitlines()
        left, right = ms.span
        assert all(len(line.split()) == right - left + 1 for line in lines)

    def test_describe_mentions_width(self):
        assert "width=8" in Multistencil(cross5(), 8).describe()
