"""Failure injection: corrupted schedules must fail loudly.

The cycle-stepped FPU validates the pipeline protocol, so a buggy
register allocator or code generator produces a ScheduleError, never
quietly wrong numbers.  These tests corrupt correct plans in the ways a
real compiler bug would and check each corruption is caught.
"""

import dataclasses

import numpy as np
import pytest

from repro.compiler.plan import compile_pattern
from repro.machine.fpu import ScheduleError, Wtl3164
from repro.machine.isa import Instr, LoadOp, MAOp, NopOp, StoreOp
from repro.machine.memory import NodeMemory
from repro.machine.params import MachineParams
from repro.machine.sequencer import HalfStripJob, Sequencer
from repro.stencil.gallery import cross5


@pytest.fixture
def params():
    return MachineParams(num_nodes=1)


@pytest.fixture
def memory():
    mem = NodeMemory()
    rng = np.random.default_rng(0)
    mem.install(
        "X__halo__", rng.standard_normal((10, 18)).astype(np.float32)
    )
    mem.allocate("R", (8, 16))
    for name in ("C1", "C2", "C3", "C4", "C5"):
        mem.install(name, rng.standard_normal((8, 16)).astype(np.float32))
    return mem


def run_plan(plan, params, memory, mutate=None):
    """Run one half-strip of a (possibly mutated) plan."""
    if mutate is not None:
        plan = mutate(plan)
    sequencer = Sequencer(
        params, memory, source_buffer="X__halo__", result_buffer="R", halo=1
    )
    fpu = Wtl3164(params, memory)
    sequencer.run_half_strip(plan, HalfStripJob(x0=0, y_start=7, lines=4), fpu)
    fpu.drain()
    return fpu


def replace_steady_ops(plan, new_ops):
    """A copy of the plan whose steady line patterns carry new_ops."""
    steady = tuple(
        dataclasses.replace(line, ops=tuple(new_ops(line.ops)))
        for line in plan.steady
    )
    return dataclasses.replace(plan, steady=steady)


class TestInjectedCorruptions:
    def test_baseline_plan_runs_clean(self, params, memory):
        compiled = compile_pattern(cross5(), params)
        fpu = run_plan(compiled.plans[8], params, memory)
        assert fpu.stats.ma_issues > 0

    def test_dropping_drain_nops_breaks_store_timing(self, params, memory):
        """Removing the drain gap makes a store precede its writeback
        (or reverse the memory pipe too fast)."""
        compiled = compile_pattern(cross5(), params)

        def strip_drain(ops):
            return [
                op
                for op in ops
                if not (isinstance(op, NopOp) and op.reason == "drain")
            ]

        with pytest.raises(ScheduleError):
            run_plan(
                compiled.plans[8],
                params,
                memory,
                mutate=lambda plan: replace_steady_ops(plan, strip_drain),
            )

    def test_swapped_load_registers_caught_by_oracle(self, params, memory):
        """A register-allocation bug (two load targets swapped) violates
        no pipeline protocol -- it silently computes the wrong answer,
        which is exactly what the bit-exact end-to-end comparison against
        the unmutated plan exists to catch."""
        compiled = compile_pattern(cross5(), params)
        good = run_plan(compiled.plans[8], params, memory)
        good_result = memory.buffer("R").copy()
        memory.buffer("R")[:] = 0.0

        def swap_two_loads(ops):
            loads = [i for i, op in enumerate(ops) if isinstance(op, LoadOp)]
            a, b = loads[1], loads[2]
            out = list(ops)
            out[a] = dataclasses.replace(out[a], reg=ops[b].reg)
            out[b] = dataclasses.replace(out[b], reg=ops[a].reg)
            return out

        def mutate(plan):
            prologue = dataclasses.replace(
                plan.prologue, ops=tuple(swap_two_loads(plan.prologue.ops))
            )
            return dataclasses.replace(plan, prologue=prologue)

        run_plan(compiled.plans[8], params, memory, mutate=mutate)
        bad_result = memory.buffer("R")
        assert not np.array_equal(bad_result, good_result)

    def test_writing_the_zero_register_is_caught(self, params, memory):
        compiled = compile_pattern(cross5(), params)

        def clobber_dest(ops):
            out = []
            for op in ops:
                if isinstance(op, MAOp):
                    op = dataclasses.replace(op, dest_reg=0)
                out.append(op)
            return out

        with pytest.raises(ScheduleError, match="reserved"):
            run_plan(
                compiled.plans[8],
                params,
                memory,
                mutate=lambda plan: replace_steady_ops(plan, clobber_dest),
            )

    def test_out_of_range_register_is_caught(self, params, memory):
        compiled = compile_pattern(cross5(), params)

        def wild_register(ops):
            out = []
            for op in ops:
                if isinstance(op, LoadOp):
                    op = dataclasses.replace(op, reg=40)
                out.append(op)
            return out

        def mutate(plan):
            prologue = dataclasses.replace(
                plan.prologue, ops=tuple(wild_register(plan.prologue.ops))
            )
            return dataclasses.replace(plan, prologue=prologue)

        with pytest.raises(ScheduleError, match="register file"):
            run_plan(compiled.plans[8], params, memory, mutate=mutate)

    def test_breaking_chain_protocol_is_caught(self, params, memory):
        """Marking every multiply-add first-and-last double-opens chains
        on the same thread within a pair."""
        compiled = compile_pattern(cross5(), params)

        def always_first(ops):
            out = []
            for op in ops:
                if isinstance(op, MAOp):
                    op = dataclasses.replace(op, first=True, last=False)
                out.append(op)
            return out

        with pytest.raises(ScheduleError):
            run_plan(
                compiled.plans[8],
                params,
                memory,
                mutate=lambda plan: replace_steady_ops(plan, always_first),
            )

    def test_out_of_bounds_address_is_caught(self, params, memory):
        """A wrong halo width makes the sequencer address off-buffer."""
        from repro.machine.memory import MemoryError_

        compiled = compile_pattern(cross5(), params)
        sequencer = Sequencer(
            params,
            memory,
            source_buffer="X__halo__",
            result_buffer="R",
            halo=0,  # wrong: the pattern needs halo 1
        )
        fpu = Wtl3164(params, memory)
        with pytest.raises(MemoryError_):
            sequencer.run_half_strip(
                compiled.plans[8],
                HalfStripJob(x0=0, y_start=7, lines=8),
                fpu,
            )
