"""The front-end linter: RS### codes, spans, carets, and fix-its."""

from pathlib import Path

import pytest

from repro.__main__ import main
from repro.fortran.errors import (
    Diagnostic,
    has_errors,
    render_diagnostic,
    render_diagnostics,
)
from repro.verify.lint import lint_source

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestStatementLint:
    def test_clean_keyword_statement(self):
        source = "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + C2 * X"
        assert lint_source(source) == []

    def test_rs201_positional_shift_warns_with_fixit(self):
        source = "R = C1 * CSHIFT(X, 1, -1) + C2 * X"
        diagnostics = lint_source(source)
        assert codes(diagnostics) == ["RS201"]
        diag = diagnostics[0]
        assert diag.severity == "warning"
        assert not has_errors(diagnostics)
        assert diag.fixit == "CSHIFT(X, DIM=1, SHIFT=-1)"
        # The span covers the whole call.
        fragment = source[diag.span.start.column - 1 : diag.span.end.column - 1]
        assert fragment.startswith("CSHIFT")
        assert fragment.endswith(")")

    def test_rs301_non_stencil_with_subexpression_span(self):
        source = "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + X / C2"
        diagnostics = lint_source(source)
        assert "RS301" in codes(diagnostics)
        diag = next(d for d in diagnostics if d.code == "RS301")
        assert diag.severity == "error"
        fragment = source[diag.span.start.column - 1 : diag.span.end.column - 1]
        assert "/" in fragment

    def test_rs102_mixed_shift_kinds_on_one_axis(self):
        source = (
            "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) "
            "+ C2 * EOSHIFT(X, DIM=1, SHIFT=+1)"
        )
        diagnostics = lint_source(source)
        assert "RS102" in codes(diagnostics)

    def test_rs101_halo_ceiling(self):
        source = "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + C2 * X"
        diagnostics = lint_source(source, max_halo=0)
        assert "RS101" in codes(diagnostics)
        assert has_errors(diagnostics)

    def test_rs001_lex_error(self):
        diagnostics = lint_source("R = X ? C1")
        assert codes(diagnostics) == ["RS001"]
        assert diagnostics[0].location is not None

    def test_rs002_parse_error(self):
        diagnostics = lint_source("R = (X + C1")
        assert codes(diagnostics) == ["RS002"]


class TestCaretRendering:
    def test_caret_underlines_the_span(self):
        source = "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + X / C2"
        diagnostics = lint_source(source)
        diag = next(d for d in diagnostics if d.code == "RS301")
        rendered = render_diagnostic(diag, source.splitlines()).splitlines()
        assert rendered[1] == "  " + source
        caret_line = rendered[2]
        caret_col = caret_line.index("^") - 2  # strip the 2-space indent
        width = 1 + caret_line.count("~")
        assert source[caret_col : caret_col + width] == "X / C2"

    def test_fixit_line_rendered(self):
        source = "R = C1 * CSHIFT(X, 1, -1) + C2 * X"
        rendered = render_diagnostics(lint_source(source), source)
        assert "fix-it: CSHIFT(X, DIM=1, SHIFT=-1)" in rendered

    def test_describe_carries_code_and_location(self):
        source = "R = X / C1"
        (diag,) = [
            d for d in lint_source(source) if d.code == "RS301"
        ]
        text = diag.describe()
        assert "error[RS301]" in text
        assert ":1:" in text


class TestSubroutineLint:
    def test_example_cross5_is_clean(self):
        diagnostics = lint_source(
            (EXAMPLES / "cross5.f90").read_text(), "cross5.f90"
        )
        assert diagnostics == []

    def test_example_seismic9_warns_only(self):
        diagnostics = lint_source(
            (EXAMPLES / "seismic9.f90").read_text(), "seismic9.f90"
        )
        assert diagnostics, "expected RS201 warnings"
        assert set(codes(diagnostics)) == {"RS201"}
        assert not has_errors(diagnostics)

    def test_multiple_subroutines_lint_independently(self):
        source = (
            "SUBROUTINE GOOD (R, X, C1)\n"
            "REAL, ARRAY(:, :) :: R, X, C1\n"
            "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1)\n"
            "END\n"
            "SUBROUTINE BAD (R, X, C1)\n"
            "REAL, ARRAY(:, :) :: R, X, C1\n"
            "R = X / C1\n"
            "END\n"
        )
        diagnostics = lint_source(source, "two.f90")
        assert codes(diagnostics) == ["RS301"]
        # The diagnostic points into the second subroutine's statement.
        assert diagnostics[0].location.line == 7


class TestCli:
    def test_lint_clean_example_exits_zero(self, capsys):
        assert main(["lint", str(EXAMPLES / "cross5.f90")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_warning_example_exits_zero(self, capsys):
        assert main(["lint", str(EXAMPLES / "seismic9.f90")]) == 0
        out = capsys.readouterr().out
        assert "warning[RS201]" in out
        assert "fix-it:" in out

    def test_lint_error_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.f90"
        bad.write_text("R = X / C1\n")
        assert main(["lint", str(bad)]) == 1
        assert "error[RS301]" in capsys.readouterr().out

    def test_lint_halo_ceiling_flag(self, tmp_path, capsys):
        deep = tmp_path / "deep.f90"
        deep.write_text("R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + C2 * X\n")
        assert main(["lint", str(deep)]) == 0
        capsys.readouterr()
        assert main(["lint", "--max-halo", "0", str(deep)]) == 1
        assert "RS101" in capsys.readouterr().out

    def test_lint_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent.f90")]) == 1

    def test_verify_subcommand_sweeps_gallery(self, capsys):
        assert main(["verify", "--strategy", "paper"]) == 0
        out = capsys.readouterr().out
        assert "cross5" in out
        assert "6/6 pattern/strategy combos verified" in out
