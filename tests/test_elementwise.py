"""Tests for the elementwise passes (tenth term, time-step copies)."""

import numpy as np
import pytest

from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.elementwise import add_scaled, copy_array


@pytest.fixture
def machine():
    return CM2(MachineParams(num_nodes=4))


def distributed(machine, name, data):
    return CMArray.from_numpy(name, machine, data.astype(np.float32))


class TestAddScaled:
    def test_semantics(self, machine):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((8, 8))
        coeff = rng.standard_normal((8, 8))
        data = rng.standard_normal((8, 8))
        b = distributed(machine, "B", base)
        c = distributed(machine, "C", coeff)
        d = distributed(machine, "D", data)
        out = CMArray("OUT", machine, (8, 8))
        add_scaled(out, b, c, d, machine.params)
        expected = (
            base.astype(np.float32)
            + (coeff.astype(np.float32) * data.astype(np.float32)).astype(
                np.float32
            )
        ).astype(np.float32)
        np.testing.assert_array_equal(out.to_numpy(), expected)

    def test_aliased_output_and_operand(self, machine):
        """out = base + c*out must read the old out values."""
        base = np.full((8, 8), 1.0)
        coeff = np.full((8, 8), 2.0)
        b = distributed(machine, "B", base)
        c = distributed(machine, "C", coeff)
        out = distributed(machine, "OUT", np.full((8, 8), 3.0))
        add_scaled(out, b, c, out, machine.params)
        np.testing.assert_array_equal(
            out.to_numpy(), np.full((8, 8), 7.0, dtype=np.float32)
        )

    def test_cost_accounting(self, machine):
        params = machine.params
        b = CMArray("B", machine, (8, 8))
        c = CMArray("C", machine, (8, 8))
        d = CMArray("D", machine, (8, 8))
        out = CMArray("OUT", machine, (8, 8))
        run = add_scaled(out, b, c, d, params)
        points = 4 * 4  # per-node subgrid on the 2x2 grid
        assert run.cycles == points * (3 * params.memory_access_cycles + 1)
        assert run.useful_flops_per_node == 2 * points
        assert run.seconds(params) > params.seconds(run.cycles)


class TestCopy:
    def test_semantics(self, machine):
        rng = np.random.default_rng(1)
        src_data = rng.standard_normal((8, 8))
        src = distributed(machine, "SRC", src_data)
        dst = CMArray("DST", machine, (8, 8))
        copy_array(dst, src, machine.params)
        np.testing.assert_array_equal(dst.to_numpy(), src.to_numpy())

    def test_copy_contributes_no_flops(self, machine):
        src = CMArray("SRC", machine, (8, 8))
        dst = CMArray("DST", machine, (8, 8))
        run = copy_array(dst, src, machine.params)
        assert run.useful_flops_per_node == 0
        assert run.cycles > 0

    def test_copy_cheaper_than_add_scaled(self, machine):
        params = machine.params
        arrays = {
            name: CMArray(name, machine, (8, 8))
            for name in ("A", "B", "C", "D")
        }
        copy_run = copy_array(arrays["A"], arrays["B"], params)
        term_run = add_scaled(
            arrays["A"], arrays["B"], arrays["C"], arrays["D"], params
        )
        assert copy_run.cycles < term_run.cycles
