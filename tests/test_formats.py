"""Tests for the slicewise/processorwise format model."""

import numpy as np
import pytest

from repro.machine.formats import (
    BITS_PER_WORD,
    PROCESSORS_PER_BANK,
    MemoryBank,
    float_to_words,
    processorwise_fetch_cycles,
    read_word_slicewise,
    read_words_processorwise,
    slicewise_fetch_cycles,
    store_processorwise,
    store_slicewise,
    transpose_bank,
    words_to_float,
)


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    return float_to_words(
        rng.standard_normal(PROCESSORS_PER_BANK).astype(np.float32)
    )


class TestBitPlumbing:
    def test_float_word_round_trip(self):
        values = np.array([1.5, -2.25, 0.0, 1e-30], dtype=np.float32)
        np.testing.assert_array_equal(
            words_to_float(float_to_words(values)), values
        )

    def test_batch_size_enforced(self):
        with pytest.raises(ValueError, match="exactly"):
            store_slicewise(np.zeros(16, dtype=np.uint32))


class TestLayouts:
    def test_slicewise_row_is_one_word(self, batch):
        bank = store_slicewise(batch)
        for index in (0, 7, 31):
            assert read_word_slicewise(bank, index) == batch[index]

    def test_processorwise_column_is_one_word(self, batch):
        bank = store_processorwise(batch)
        # Bit b of word j sits at row b, processor j.
        j, b = 5, 17
        expected = bool((int(batch[j]) >> b) & 1)
        assert bank.rows[b, j] == expected

    def test_processorwise_readout_needs_all_rows(self, batch):
        bank = store_processorwise(batch)
        np.testing.assert_array_equal(read_words_processorwise(bank), batch)

    def test_transposer_swaps_layouts(self, batch):
        processorwise = store_processorwise(batch)
        slicewise = store_slicewise(batch)
        np.testing.assert_array_equal(
            transpose_bank(processorwise).rows, slicewise.rows
        )

    def test_transposer_is_an_involution(self, batch):
        bank = store_processorwise(batch)
        twice = transpose_bank(transpose_bank(bank))
        np.testing.assert_array_equal(twice.rows, bank.rows)

    def test_single_memory_cycle_reads_one_slicewise_word(self, batch):
        """The paper's point: a slice through memory is a whole word."""
        bank = store_slicewise(batch)
        row = bank.fetch_row(3)
        assert row.shape == (PROCESSORS_PER_BANK,)
        weights = np.uint64(1) << np.arange(BITS_PER_WORD, dtype=np.uint64)
        assert (row.astype(np.uint64) * weights).sum() == batch[3]


class TestFetchCosts:
    def test_slicewise_costs_one_cycle_per_word(self):
        assert slicewise_fetch_cycles(4) == 4
        assert slicewise_fetch_cycles(1) == 1

    def test_processorwise_costs_full_batches(self):
        """Even 4 wanted words drag in a 32-cycle batch."""
        assert processorwise_fetch_cycles(4) == 32
        assert processorwise_fetch_cycles(32) == 32
        assert processorwise_fetch_cycles(33) == 64

    def test_slicewise_enables_batch_of_four(self):
        """The flexibility the convolution compiler is built on: small
        batches cost proportionally, not 32 cycles minimum."""
        assert slicewise_fetch_cycles(4) < processorwise_fetch_cycles(4)

    def test_equal_cost_only_at_full_batches(self):
        assert slicewise_fetch_cycles(32) == processorwise_fetch_cycles(32)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            slicewise_fetch_cycles(-1)
        with pytest.raises(ValueError):
            processorwise_fetch_cycles(-1)
