"""Temporal blocking: deep-halo multi-iteration fusion.

The contract under test is strict bit-identity: a blocked run at any
depth must reproduce, bit for bit in float32, what ``T`` sequential
single-exchange iterations produce -- across boundary modes, pads, and
tail blocks -- while exchanging halos only ``ceil(k / T)`` times and
reusing its preallocated ping-pong buffers across calls.
"""

import math

import numpy as np
import pytest

from repro.compiler.driver import compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime import stencil_op
from repro.runtime.blocking import blocked_costs, depth_cap
from repro.runtime.cm_array import CMArray
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import cross, diamond, square
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import pattern_from_offsets

SHAPE = (16, 24)  # 4 nodes -> 2x2 grid of 8x12 subgrids
ITERATIONS = 7  # not a multiple of any tested depth > 1: tail blocks


def boundary_variant(pattern, mode, fill_value=0.0):
    """The same taps under a chosen boundary mode."""
    modes = {
        "torus": {1: BoundaryMode.CIRCULAR, 2: BoundaryMode.CIRCULAR},
        "fill": {1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
        "mixed": {1: BoundaryMode.FILL, 2: BoundaryMode.CIRCULAR},
    }[mode]
    return pattern_from_offsets(
        [tap.offset for tap in pattern.taps],
        name=f"{pattern.name}_{mode}",
        boundary=modes,
        fill_value=fill_value,
    )


def make_problem(pattern, *, num_nodes=4, seed=0, shape=SHAPE):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }
    return machine, compiled, x, coeffs


GALLERY = [
    ("cross1", lambda: cross(1)),  # pad 1, no corner taps
    ("cross2", lambda: cross(2)),  # pad 2
    ("cross3", lambda: cross(3)),  # pad 3: depth clamps at 8x12 subgrids
    ("square1", lambda: square(1)),  # pad 1 with corner taps
    ("diamond2", lambda: diamond(2)),  # pad 2, diagonal reach
]


class TestBitIdentity:
    @pytest.mark.parametrize("patname,make", GALLERY)
    @pytest.mark.parametrize("mode", ["torus", "fill", "mixed"])
    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_blocked_equals_unblocked_bit_for_bit(
        self, patname, make, mode, depth
    ):
        pattern = boundary_variant(make(), mode, fill_value=1.5)
        _, compiled, x, coeffs = make_problem(pattern)
        reference = apply_stencil(
            compiled, x, coeffs, "R_REF", iterations=ITERATIONS
        )
        _, compiled2, x2, coeffs2 = make_problem(pattern)
        blocked = apply_stencil(
            compiled2,
            x2,
            coeffs2,
            "R_BLK",
            iterations=ITERATIONS,
            block_depth=depth,
        )
        np.testing.assert_array_equal(
            blocked.result.to_numpy(), reference.result.to_numpy()
        )
        cap = depth_cap(pattern, x.subgrid_shape, ITERATIONS)
        assert blocked.block_depth == min(depth, cap)

    def test_auto_depth_is_feasible_and_bit_identical(self):
        pattern = cross(1)
        _, compiled, x, coeffs = make_problem(pattern, seed=9)
        reference = apply_stencil(compiled, x, coeffs, "R_REF", iterations=12)
        _, compiled2, x2, coeffs2 = make_problem(pattern, seed=9)
        auto = apply_stencil(
            compiled2, x2, coeffs2, "R_AUTO", iterations=12, block_depth="auto"
        )
        np.testing.assert_array_equal(
            auto.result.to_numpy(), reference.result.to_numpy()
        )
        assert 1 <= auto.block_depth <= depth_cap(pattern, x.subgrid_shape, 12)

    def test_source_array_is_never_modified(self):
        pattern = square(1)
        _, compiled, x, coeffs = make_problem(pattern, seed=4)
        before = x.to_numpy().copy()
        apply_stencil(compiled, x, coeffs, "R", iterations=6, block_depth=3)
        np.testing.assert_array_equal(x.to_numpy(), before)

    def test_invalid_depth_rejected(self):
        pattern = cross(1)
        _, compiled, x, coeffs = make_problem(pattern)
        with pytest.raises(ValueError):
            apply_stencil(compiled, x, coeffs, "R", iterations=4, block_depth=0)
        with pytest.raises(ValueError):
            apply_stencil(
                compiled, x, coeffs, "R", iterations=4, block_depth="deep"
            )

    def test_per_node_mode_resolves_to_unblocked(self):
        pattern = cross(1)
        _, compiled, x, coeffs = make_problem(pattern, seed=7)
        run = apply_stencil(
            compiled,
            x,
            coeffs,
            "R",
            iterations=4,
            batched=False,
            block_depth=4,
        )
        assert run.block_depth == 1
        _, compiled2, x2, coeffs2 = make_problem(pattern, seed=7)
        reference = apply_stencil(compiled2, x2, coeffs2, "R2", iterations=4)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference.result.to_numpy()
        )


class TestExchangeAccounting:
    @pytest.mark.parametrize("depth", [2, 3, 4])
    def test_blocked_run_exchanges_ceil_k_over_t(self, depth):
        pattern = cross(1)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R", iterations=ITERATIONS, block_depth=depth
        )
        assert run.block_depth == depth
        assert run.exchanges == math.ceil(ITERATIONS / depth)
        assert run.coeff_exchanges == len(pattern.coefficient_names())

    def test_blocked_totals_match_the_cost_model(self):
        pattern = square(1)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R", iterations=ITERATIONS, block_depth=3
        )
        costs = blocked_costs(compiled, x.subgrid_shape, ITERATIONS, 3)
        assert run.comm_cycles_total == costs.total_comm_cycles
        assert run.compute_cycles_total == costs.total_compute_cycles
        assert run.half_strips_total == costs.total_half_strips
        assert run.block_comm == costs.block_comm

    def test_unblocked_run_aggregates_per_iteration_comm(self):
        """Satellite: every iteration's exchange is charged, not just
        the first one's."""
        pattern = cross(2)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(compiled, x, coeffs, "R", iterations=5)
        assert run.exchanges == 5
        assert run.comm_cycles_total == 5 * run.comm.cycles
        single = apply_stencil(compiled, x, coeffs, "R1")
        assert single.exchanges == 1
        assert single.comm_cycles_total == single.comm.cycles

    def test_blocked_exchange_cycles_beat_unblocked(self):
        """The point of the whole exercise: fewer, deeper exchanges cost
        fewer total comm cycles once the run is long enough to amortize
        the per-coefficient deep exchanges."""
        pattern = cross(1)
        params = MachineParams(num_nodes=16)
        machine = CM2(params)
        compiled = compile_stencil(pattern, params)
        rng = np.random.default_rng(0)
        x = CMArray.from_numpy(
            "X", machine, rng.standard_normal((16, 16)).astype(np.float32)
        )
        coeffs = {
            name: CMArray.from_numpy(
                name, machine, rng.standard_normal((16, 16)).astype(np.float32)
            )
            for name in pattern.coefficient_names()
        }
        unblocked = apply_stencil(compiled, x, coeffs, "RU", iterations=32)
        blocked = apply_stencil(
            compiled, x, coeffs, "RB", iterations=32, block_depth=4
        )
        assert blocked.exchanges == 8
        assert blocked.comm_cycles_total < unblocked.comm_cycles_total

    def test_blocked_fixed_point_still_charges_whole_run(self):
        """An all-zero iterate is a fixed point; the blocked loop stops
        computing but the accounting still covers every block."""
        pattern = cross(1)
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_stencil(pattern, params)
        x = CMArray.from_numpy(
            "X", machine, np.zeros(SHAPE, dtype=np.float32)
        )
        rng = np.random.default_rng(1)
        coeffs = {
            name: CMArray.from_numpy(
                name, machine, rng.standard_normal(SHAPE).astype(np.float32)
            )
            for name in pattern.coefficient_names()
        }
        run = apply_stencil(
            compiled, x, coeffs, "R", iterations=8, block_depth=2
        )
        np.testing.assert_array_equal(
            run.result.to_numpy(), np.zeros(SHAPE, dtype=np.float32)
        )
        assert run.exchanges == 4
        costs = blocked_costs(compiled, x.subgrid_shape, 8, 2)
        assert run.comm_cycles_total == costs.total_comm_cycles


class TestPingPongReuse:
    def test_no_new_allocations_after_warm_up(self):
        pattern = square(1)
        machine, compiled, x, coeffs = make_problem(pattern, seed=11)
        apply_stencil(
            compiled, x, coeffs, "R", iterations=ITERATIONS, block_depth=3
        )
        warm = machine.storage.scratch_allocations
        assert warm > 0
        for seed in range(3):
            apply_stencil(
                compiled, x, coeffs, "R", iterations=ITERATIONS, block_depth=3
            )
        assert machine.storage.scratch_allocations == warm

    def test_ping_pong_pair_is_stable_across_calls(self):
        pattern = cross(1)
        machine, compiled, x, coeffs = make_problem(pattern, seed=12)
        apply_stencil(compiled, x, coeffs, "R", iterations=4, block_depth=2)
        from repro.runtime.halo import halo_buffer_name

        shape = tuple(s + 4 for s in x.subgrid_shape)
        ping, pong = machine.pingpong_stacked(halo_buffer_name("X"), shape)
        apply_stencil(compiled, x, coeffs, "R", iterations=4, block_depth=2)
        ping2, pong2 = machine.pingpong_stacked(halo_buffer_name("X"), shape)
        assert ping is ping2 and pong is pong2

    def test_depth_change_reallocates_then_stabilizes(self):
        pattern = cross(1)
        machine, compiled, x, coeffs = make_problem(pattern, seed=13)
        apply_stencil(compiled, x, coeffs, "R", iterations=8, block_depth=2)
        after_d2 = machine.storage.scratch_allocations
        apply_stencil(compiled, x, coeffs, "R", iterations=8, block_depth=4)
        after_d4 = machine.storage.scratch_allocations
        assert after_d4 > after_d2  # deeper halo -> bigger buffers
        apply_stencil(compiled, x, coeffs, "R", iterations=8, block_depth=4)
        assert machine.storage.scratch_allocations == after_d4


class TestPerNodeFixedPoint:
    def test_per_node_fast_path_short_circuits(self, monkeypatch):
        """Satellite: the batched=False fast path stops computing at a
        fixed point too, with identical charging semantics."""
        pattern = pattern_from_offsets([(0, 0)], name="identity")
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_stencil(pattern, params)
        rng = np.random.default_rng(3)
        x_host = rng.standard_normal(SHAPE).astype(np.float32)
        x = CMArray.from_numpy("X", machine, x_host)
        coeffs = {
            "C1": CMArray.from_numpy(
                "C1", machine, np.ones(SHAPE, dtype=np.float32)
            )
        }
        calls = []
        real = stencil_op.node_execute_fast

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(stencil_op, "node_execute_fast", counting)
        run = apply_stencil(
            compiled, x, coeffs, "R", iterations=50, batched=False
        )
        np.testing.assert_array_equal(run.result.to_numpy(), x_host)
        # One iteration's worth of per-node work, not fifty.
        assert len(calls) == machine.num_nodes
        # ...while the accounting still charges the full run.
        assert run.exchanges == 50
        assert run.comm_cycles_total == 50 * run.comm.cycles
        one = apply_stencil(compiled, x, coeffs, "R1", batched=False)
        assert run.elapsed_seconds == pytest.approx(50 * one.elapsed_seconds)
