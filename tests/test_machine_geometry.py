"""Tests for node-grid geometry and the hypercube embedding."""

import pytest

from repro.machine.geometry import (
    NodeCoord,
    all_coords,
    gray_code,
    grid_shape,
    hamming_distance,
    node_address,
)


class TestGridShape:
    def test_sixteen_nodes_form_4x4(self):
        """Paper: 'if there were only 16 nodes, they would be arranged
        as a 4x4 grid'."""
        assert grid_shape(16) == (4, 4)

    def test_full_machine_2048_nodes(self):
        rows, cols = grid_shape(2048)
        assert rows * cols == 2048
        assert cols == 2 * rows  # 32x64: nearly square, wider than tall

    def test_single_node(self):
        assert grid_shape(1) == (1, 1)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            grid_shape(12)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            grid_shape(0)


class TestGrayCode:
    def test_first_values(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_adjacent_codes_differ_in_one_bit(self):
        for i in range(255):
            assert hamming_distance(gray_code(i), gray_code(i + 1)) == 1

    def test_gray_code_is_a_permutation(self):
        codes = {gray_code(i) for i in range(256)}
        assert codes == set(range(256))


class TestEmbedding:
    """Grid neighbors must be hypercube neighbors (paper section 4.1)."""

    @pytest.mark.parametrize("num_nodes", [4, 16, 64, 2048])
    def test_grid_neighbors_are_hypercube_neighbors(self, num_nodes):
        shape = grid_shape(num_nodes)
        rows, cols = shape
        for coord in all_coords(shape):
            address = node_address(coord.row, coord.col, shape)
            # Non-wrapping neighbors: Gray code guarantees distance 1.
            if coord.row + 1 < rows:
                other = node_address(coord.row + 1, coord.col, shape)
                assert hamming_distance(address, other) == 1
            if coord.col + 1 < cols:
                other = node_address(coord.row, coord.col + 1, shape)
                assert hamming_distance(address, other) == 1

    def test_addresses_unique(self):
        shape = grid_shape(64)
        addresses = {
            node_address(c.row, c.col, shape) for c in all_coords(shape)
        }
        assert len(addresses) == 64

    def test_addresses_dense(self):
        shape = grid_shape(16)
        addresses = {
            node_address(c.row, c.col, shape) for c in all_coords(shape)
        }
        assert addresses == set(range(16))

    def test_out_of_grid_rejected(self):
        with pytest.raises(ValueError):
            node_address(4, 0, (4, 4))


class TestNodeCoord:
    def test_neighbors_torus_wrap(self):
        coord = NodeCoord(0, 0)
        neighbors = coord.neighbors((4, 4))
        assert neighbors["N"] == NodeCoord(3, 0)
        assert neighbors["W"] == NodeCoord(0, 3)
        assert neighbors["S"] == NodeCoord(1, 0)
        assert neighbors["E"] == NodeCoord(0, 1)

    def test_diagonal_neighbors(self):
        coord = NodeCoord(0, 0)
        diag = coord.diagonal_neighbors((4, 4))
        assert diag["NW"] == NodeCoord(3, 3)
        assert diag["SE"] == NodeCoord(1, 1)

    def test_all_coords_count(self):
        assert len(list(all_coords((4, 8)))) == 32
