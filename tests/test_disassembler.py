"""Tests for the microcode-listing disassembler."""

import pytest

from repro.compiler.codegen import disassemble_ops
from repro.compiler.driver import compile_stencil
from repro.machine.isa import LoadOp, NopOp
from repro.stencil.gallery import cross5, diamond13


@pytest.fixture(scope="module")
def plan():
    return compile_stencil(cross5()).plans[8]


class TestDisassembler:
    def test_one_row_per_cycle(self, plan):
        listing = plan.disassemble(phase=0)
        body = listing.splitlines()[1:]  # drop the header
        assert len(body) == plan.steady_line_cycles

    def test_header_counts(self, plan):
        header = plan.disassemble(phase=0).splitlines()[0]
        assert "10 loads" in header
        assert "40 multiply-adds" in header
        assert "8 stores" in header

    def test_prologue_listing(self, plan):
        listing = plan.disassemble(prologue=True)
        assert "prologue" in listing.splitlines()[0]
        assert listing.count("LOAD") == 26

    def test_phases_differ(self, plan):
        assert plan.disassemble(phase=0) != plan.disassemble(phase=1)

    def test_phase_wraps_by_unroll(self, plan):
        assert plan.disassemble(phase=0) == plan.disassemble(
            phase=plan.unroll
        )

    def test_chain_markers(self, plan):
        listing = plan.disassemble(phase=0)
        assert " F-" in listing  # chain opens
        assert " -L" in listing  # chain closes

    def test_store_rows_name_result_columns(self, plan):
        listing = plan.disassemble(phase=0)
        for column in range(8):
            assert f"result[col {column}]" in listing

    def test_ops_helper_directly(self):
        text = disassemble_ops(
            [LoadOp(reg=5, row=-1, col=2), NopOp("drain")]
        )
        assert "LOAD" in text and "r5" in text and "(drain)" in text

    def test_unrolled_diamond_listing_is_finite(self):
        compiled = compile_stencil(diamond13())
        plan4 = compiled.plans[4]
        for phase in range(plan4.unroll):
            listing = plan4.disassemble(phase=phase)
            assert len(listing.splitlines()) == plan4.steady_line_cycles + 1
