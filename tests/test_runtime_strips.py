"""Tests for strip mining and half-strip scheduling."""

import pytest

from repro.compiler.plan import compile_pattern
from repro.machine.params import MachineParams
from repro.runtime.strips import StripSchedule, split_rows
from repro.stencil.gallery import cross5, diamond13


@pytest.fixture
def params():
    return MachineParams()


class TestSplitRows:
    def test_even_height(self):
        lower, upper = split_rows(64)
        assert lower == (63, 32)
        assert upper == (31, 32)

    def test_odd_height_lower_gets_extra(self):
        lower, upper = split_rows(7)
        assert lower == (6, 4)  # rows 3..6, swept North from the edge
        assert upper == (2, 3)  # rows 0..2

    def test_single_row(self):
        lower, upper = split_rows(1)
        assert lower == (0, 1)
        assert upper[1] == 0

    def test_halves_cover_all_rows_disjointly(self):
        for rows in range(1, 40):
            (ys_lo, n_lo), (ys_hi, n_hi) = split_rows(rows)
            covered = set()
            for y_start, lines in ((ys_lo, n_lo), (ys_hi, n_hi)):
                for line in range(lines):
                    covered.add(y_start - line)
            assert covered == set(range(rows))


class TestStripSchedule:
    def test_width_decomposition(self, params):
        compiled = compile_pattern(cross5(), params)
        schedule = StripSchedule(compiled, (64, 21))
        assert schedule.widths() == [8, 8, 4, 1]

    def test_strip_bases_tile_the_axis(self, params):
        compiled = compile_pattern(cross5(), params)
        schedule = StripSchedule(compiled, (64, 21))
        x = 0
        for strip in schedule.strips:
            assert strip.x0 == x
            x += strip.width
        assert x == 21

    def test_two_half_strips_per_strip(self, params):
        compiled = compile_pattern(cross5(), params)
        schedule = StripSchedule(compiled, (64, 64))
        assert schedule.num_half_strips == 2 * schedule.num_strips

    def test_half_strip_lines_cover_subgrid(self, params):
        compiled = compile_pattern(cross5(), params)
        schedule = StripSchedule(compiled, (17, 16))
        for strip in schedule.strips:
            rows = set()
            for job in strip.half_strips:
                for line in range(job.lines):
                    rows.add(job.y_start - line)
            assert rows == set(range(17))

    def test_single_row_subgrid(self, params):
        compiled = compile_pattern(cross5(), params)
        schedule = StripSchedule(compiled, (1, 16))
        assert schedule.num_half_strips == schedule.num_strips

    def test_degenerate_shape_rejected(self, params):
        compiled = compile_pattern(cross5(), params)
        with pytest.raises(ValueError):
            StripSchedule(compiled, (0, 16))

    def test_compute_cycles_formula(self, params):
        compiled = compile_pattern(cross5(), params)
        schedule = StripSchedule(compiled, (64, 64))
        plan = compiled.plans[8]
        per_strip = params.strip_setup_cycles + 2 * plan.half_strip_cycles(
            32, params
        )
        assert schedule.compute_cycles(params) == 8 * per_strip

    def test_narrow_widths_cost_more(self, params):
        """Without width 8, the same subgrid costs more cycles (more
        half-strip dispatches, less reuse)."""
        full = compile_pattern(cross5(), params)
        narrow = compile_pattern(cross5(), params, widths=(4, 2, 1))
        cost_full = StripSchedule(full, (64, 64)).compute_cycles(params)
        cost_narrow = StripSchedule(narrow, (64, 64)).compute_cycles(params)
        assert cost_narrow > cost_full

    def test_describe(self, params):
        compiled = compile_pattern(diamond13(), params)
        text = StripSchedule(compiled, (64, 21)).describe()
        assert "4+4+4+4+4+1" in text
