"""Analytic validation: the wave solver follows the exact discrete
dispersion relation.

For a standing-wave mode ``sin(2 pi ky y / R) sin(2 pi kx x / C)``, the
5-point leapfrog scheme has the exact solution

    p^n = cos(n*theta + theta/2) / cos(theta/2) * mode

with ``cos(theta) = 1 - lam2 * mu / 2`` and
``mu = 4 (sin^2(pi ky / R) + sin^2(pi kx / C))``, given the solver's
initialization ``p^0 = p^(-1) = mode``.  The whole stack -- front end,
compiled schedules, halo exchange, strip mining, float32 chained
multiply-adds -- must track that closed form to single-precision
accumulation accuracy.
"""

import numpy as np
import pytest

from repro.apps.wave import WaveSolver
from repro.machine.machine import CM2
from repro.machine.params import MachineParams


def analytic_amplitude(steps, lam2, ky, kx, shape):
    rows, cols = shape
    mu = 4.0 * (
        np.sin(np.pi * ky / rows) ** 2 + np.sin(np.pi * kx / cols) ** 2
    )
    cos_theta = 1.0 - lam2 * mu / 2.0
    theta = np.arccos(np.clip(cos_theta, -1.0, 1.0))
    return np.cos(steps * theta + theta / 2.0) / np.cos(theta / 2.0)


@pytest.mark.parametrize("steps", [1, 5, 20, 60])
@pytest.mark.parametrize("mode", [(1, 1), (2, 1), (3, 2)])
def test_standing_wave_tracks_discrete_dispersion(steps, mode):
    ky, kx = mode
    shape = (16, 32)
    courant = 0.5
    machine = CM2(MachineParams(num_nodes=4))
    solver = WaveSolver(machine, shape, courant=courant)
    solver.set_standing_wave(kx=kx, ky=ky)
    solver.step(steps)
    field = solver.wavefield().astype(np.float64)

    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols]
    spatial = np.sin(2 * np.pi * ky * yy / rows) * np.sin(
        2 * np.pi * kx * xx / cols
    )
    amplitude = analytic_amplitude(
        steps, courant * courant, ky, kx, shape
    )
    expected = amplitude * spatial
    # float32 accumulation over `steps` leapfrog updates: allow growth
    # in the tolerance with step count.
    tolerance = 5e-6 * (steps + 1) * max(1.0, abs(amplitude))
    assert np.max(np.abs(field - expected)) < max(tolerance, 1e-5)


def test_dispersion_predicts_oscillation_period():
    """The (1,1) mode at courant 0.5 returns near its initial state
    after a full discrete period."""
    shape = (16, 16)
    courant = 0.5
    lam2 = courant * courant
    mu = 8.0 * np.sin(np.pi / 16) ** 2
    theta = np.arccos(1.0 - lam2 * mu / 2.0)
    period = 2.0 * np.pi / theta
    steps = int(round(period))
    machine = CM2(MachineParams(num_nodes=4))
    solver = WaveSolver(machine, shape, courant=courant)
    solver.set_standing_wave()
    initial = solver.wavefield().astype(np.float64)
    solver.step(steps)
    final = solver.wavefield().astype(np.float64)
    # Near-period: fields correlate strongly and amplitudes agree.
    correlation = float(
        (initial * final).sum()
        / np.sqrt((initial**2).sum() * (final**2).sum())
    )
    assert correlation > 0.95
