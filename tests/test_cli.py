"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCompileCommand:
    def test_compile_fortran_file(self, tmp_path, capsys):
        source = tmp_path / "cross.f90"
        source.write_text(
            "SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)\n"
            "REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5\n"
            "R = C1 * CSHIFT (X, 1, -1) &\n"
            "  + C2 * CSHIFT (X, 2, -1) &\n"
            "  + C3 * X &\n"
            "  + C4 * CSHIFT (X, 2, +1) &\n"
            "  + C5 * CSHIFT (X, 1, +1)\n"
            "END\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "width 8" in out
        assert "@" in out  # the pictogram

    def test_compile_defstencil_file(self, tmp_path, capsys):
        source = tmp_path / "cross.lisp"
        source.write_text(
            "(defstencil cross (r x c)\n"
            "  (single-float single-float)\n"
            "  (:= r (* c (cshift x 1 -1))))\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "cross" in out

    def test_compile_statement_file(self, tmp_path, capsys):
        source = tmp_path / "stmt.f90"
        source.write_text("R = C1 * CSHIFT(X, 1, -1) + C2 * X\n")
        assert main(["compile", str(source)]) == 0
        assert "taps: 2" in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_gallery_pattern(self, capsys):
        assert (
            main(["bench", "cross5", "--subgrid", "64x64", "--nodes", "4"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Mflops" in out and "Gflops" in out

    def test_bench_unknown_pattern(self, capsys):
        assert main(["bench", "nonexistent"]) == 1
        assert "unknown pattern" in capsys.readouterr().err

    def test_bad_subgrid_spec(self):
        with pytest.raises(SystemExit):
            main(["bench", "cross5", "--subgrid", "garbage"])


class TestFigure1Command:
    def test_figure1(self, capsys):
        assert main(["figure1", "--shape", "64x64", "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "A(1:32,1:32)" in out

    def test_figure1_default_is_paper_configuration(self, capsys):
        assert main(["figure1"]) == 0
        assert "A(1:64,1:64)" in capsys.readouterr().out


class TestGalleryCommand:
    def test_gallery_lists_patterns(self, capsys):
        assert main(["gallery"]) == 0
        out = capsys.readouterr().out
        for name in ("cross5", "diamond13", "border_demo"):
            assert name in out


class TestValidateCommand:
    def test_validate_passes(self, capsys):
        assert main(["validate", "--nodes", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "all semantics agree" in out
        assert "FAIL " not in out


class TestReproduceCommand:
    def test_reproduce_prints_comparison(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "Section 7 results table" in out
        assert "GB copy loop" in out
        assert "Ratio" in out


class TestChaosCommand:
    def test_chaos_campaign_survives_and_roundtrips(self, tmp_path, capsys):
        import json

        from repro.analysis.chaos import ChaosReport

        out_path = tmp_path / "chaos.json"
        assert (
            main(["chaos", "--seeds", "1", "--json", str(out_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "survived bit-identically" in out
        data = json.loads(out_path.read_text())
        assert data["ok"] is True
        assert data["num_trials"] == data["num_survived"] > 0
        assert data["silent_corruptions"] == 0
        # The FaultEvent/FaultStats streams round-trip exactly.
        assert ChaosReport.from_dict(data).to_dict() == data

    def test_chaos_json_to_stdout(self, capsys):
        import json

        assert (
            main(
                [
                    "chaos", "--seeds", "2", "--json", "-",
                    "--iterations", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        data = json.loads(out[out.index("{"):])
        assert data["ok"] is True

    def test_seed_range_spelling(self, capsys):
        assert main(["chaos", "--seeds", "1-2", "--iterations", "3"]) == 0
        assert "survived" in capsys.readouterr().out

    def test_bad_seed_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--seeds", "garbage"])


class TestRacecheckCommand:
    def test_racecheck_default_tree_is_clean(self, capsys):
        assert main(["racecheck"]) == 0
        out = capsys.readouterr().out
        assert "0 diagnostic(s)" in out
        assert "locks" in out and "lock-order edges" in out

    def test_racecheck_graph_prints_predicted_edges(self, capsys):
        assert main(["racecheck", "--graph"]) == 0
        out = capsys.readouterr().out
        assert "Scheduler._cond -> " in out

    def test_racecheck_flags_a_bad_file_with_carets(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import threading\n\n\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # guarded-by: _lock\n\n"
            "    def bump(self):\n"
            "        self._n += 1\n"
        )
        assert main(["racecheck", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RS701" in out
        assert "^" in out  # caret rendering under the mutation

    def test_racecheck_json_roundtrips(self, tmp_path, capsys):
        import json

        from repro.verify.diagnostics import (
            diagnostic_from_dict,
            diagnostic_to_dict,
        )

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import threading\n\n\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # guarded-by: _lock\n\n"
            "    def bump(self):\n"
            "        self._n += 1\n"
        )
        out_path = tmp_path / "race.json"
        assert main(["racecheck", str(bad), "--json", str(out_path)]) == 1
        capsys.readouterr()
        data = json.loads(out_path.read_text())
        assert data["command"] == "racecheck"
        assert data["ok"] is False
        assert data["files"] == 1
        assert "S._lock" in data["locks"]
        assert len(data["diagnostics"]) == 1
        entry = data["diagnostics"][0]
        assert entry["code"] == "RS701"
        assert entry["line"] == 10
        # Every diagnostic dict rebuilds into an equal dict.
        assert diagnostic_to_dict(diagnostic_from_dict(entry)) == entry

    def test_racecheck_json_to_stdout(self, tmp_path, capsys):
        import json

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["racecheck", str(clean), "--json", "-"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out[out.index("{"):])
        assert data["ok"] is True
        assert data["diagnostics"] == []


class TestLintJson:
    def test_lint_json_roundtrips(self, tmp_path, capsys):
        import json

        from repro.verify.diagnostics import (
            diagnostic_from_dict,
            diagnostic_to_dict,
        )

        source = tmp_path / "warn.f90"
        source.write_text("R = C1 * CSHIFT(X, 1, -1) + C2 * X\n")
        out_path = tmp_path / "lint.json"
        assert main(["lint", str(source), "--json", str(out_path)]) == 0
        capsys.readouterr()
        data = json.loads(out_path.read_text())
        assert data["command"] == "lint"
        assert data["ok"] is True  # RS201 is a warning, not an error
        entry = data["diagnostics"][0]
        assert entry["code"] == "RS201"
        assert entry["fixit"] == "CSHIFT(X, DIM=1, SHIFT=-1)"
        assert diagnostic_to_dict(diagnostic_from_dict(entry)) == entry

    def test_lint_json_error_exit(self, tmp_path, capsys):
        import json

        source = tmp_path / "bad.f90"
        source.write_text("R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + X / C2\n")
        assert main(["lint", str(source), "--json", "-"]) == 1
        out = capsys.readouterr().out
        data = json.loads(out[out.index("{"):])
        assert data["ok"] is False
        assert any(d["code"] == "RS301" for d in data["diagnostics"])


class TestStrategyFlag:
    def test_compile_with_optimal_strategy(self, tmp_path, capsys):
        source = tmp_path / "s.f90"
        source.write_text("R = C1 * CSHIFT(X, 1, -1) + C2 * X\n")
        assert main(["compile", str(source), "--strategy", "optimal"]) == 0
        assert "width 8" in capsys.readouterr().out

    def test_bad_strategy_rejected(self, tmp_path):
        source = tmp_path / "s.f90"
        source.write_text("R = C1 * CSHIFT(X, 1, -1)\n")
        with pytest.raises(SystemExit):
            main(["compile", str(source), "--strategy", "psychic"])
