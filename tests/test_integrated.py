"""Tests for the integrated (version 3) compiler."""

import pytest

from repro.compiler.integrated import compile_program
from repro.machine.params import MachineParams

MIXED_PROGRAM = """
SUBROUTINE RELAX (R, X, C1, C2, C3, C4, C5, T)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5, T
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
T = C1 / X
END

SUBROUTINE SCALE (Y, X, A)
REAL, ARRAY(:, :) :: Y, X, A
Y = A * CSHIFT(X, 1, -1)
END
"""


class TestCompileProgram:
    def test_handles_stencils_and_leaves_the_rest(self):
        result = compile_program(MIXED_PROGRAM)
        assert len(result.statements) == 3
        assert len(result.handled) == 2
        assert len(result.fallback) == 1
        assert result.fallback[0].statement.target == "T"

    def test_no_isolated_subroutine_requirement(self):
        """Multiple statements per subroutine, multiple subroutines."""
        result = compile_program(MIXED_PROGRAM)
        assert result.handled_in("RELAX")[0].compiled.max_width == 8
        assert result.handled_in("SCALE")[0].compiled.pattern.offsets == (
            (-1, 0),
        )

    def test_undirected_failures_are_silent(self):
        result = compile_program(MIXED_PROGRAM)
        assert not result.diagnostics.warnings

    def test_directive_failure_warns(self):
        source = (
            "SUBROUTINE S (R, X, Y, C1)\n"
            "REAL, ARRAY(:, :) :: R, X, Y, C1\n"
            "!REPRO$ STENCIL\n"
            "R = C1 * CSHIFT(X, 1, -1) + C1 * CSHIFT(Y, 1, +1)\n"
            "END"
        )
        result = compile_program(source)
        assert len(result.diagnostics.warnings) == 1
        assert "same variable" in result.diagnostics.warnings[0].message

    def test_directive_resource_failure_warns(self):
        """Recognized but uncompilable: the 'for lack of registers'
        feedback the paper promises."""
        terms = " + ".join(
            f"C{i} * CSHIFT(X, 2, {i - 20:+d})" for i in range(1, 40)
        )
        names = ", ".join(f"C{i}" for i in range(1, 40))
        source = (
            f"SUBROUTINE WIDE (R, X, {names})\n"
            f"REAL, ARRAY(:, :) :: R, X, {names}\n"
            "!REPRO$ STENCIL\n"
            f"R = {terms}\n"
            "END"
        )
        result = compile_program(source)
        assert not result.handled
        assert any(
            "could not be compiled" in d.message
            for d in result.diagnostics.warnings
        )

    def test_describe_lists_dispositions(self):
        text = compile_program(MIXED_PROGRAM).describe()
        assert "convolution module" in text
        assert "stock compiler" in text

    def test_params_thread_through(self):
        tiny = MachineParams(scratch_memory_words=60)
        result = compile_program(MIXED_PROGRAM, tiny)
        # Every width of the cross needs more than 60 scratch words, so
        # the stencil falls back entirely.
        relax = [s for s in result.statements if s.subroutine == "RELAX"]
        assert not relax[0].handled
