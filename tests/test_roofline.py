"""Tests for the roofline bound analysis (paper section 4.4)."""

import pytest

from repro.analysis.roofline import analyze, analyze_plan, describe
from repro.compiler.driver import compile_stencil
from repro.machine.params import MachineParams
from repro.stencil.gallery import cross5, diamond13, square9


@pytest.fixture(scope="module")
def cross():
    return compile_stencil(cross5())


class TestRoofline:
    def test_points_for_every_width(self, cross):
        points = analyze(cross)
        assert set(points) == set(cross.widths)

    def test_compute_bound_is_ma_block(self, cross):
        point = analyze(cross)[8]
        assert point.compute_cycles == 8 * 5

    def test_memory_bound_counts_streams_and_transfers(self, cross):
        params = cross.params
        point = analyze(cross)[8]
        # 40 coefficient streams + (10 loads + 8 stores) * 2 cycles.
        assert point.memory_cycles == 40 + 18 * params.memory_access_cycles

    def test_actual_cycles_match_line_pattern(self, cross):
        for width, point in analyze(cross).items():
            assert point.actual_cycles == cross.plans[width].steady_line_cycles

    def test_actual_never_beats_the_floor(self, cross):
        for point in analyze(cross).values():
            assert point.actual_cycles >= max(
                point.compute_cycles, point.memory_cycles
            )
            assert 0 < point.efficiency <= 1.0

    def test_wider_multistencils_are_more_efficient(self):
        """The whole point of the multistencil: register reuse pushes the
        schedule toward the binding resource's floor."""
        for pattern in (cross5(), square9(), diamond13()):
            compiled = compile_stencil(pattern)
            efficiencies = [
                analyze(compiled)[w].efficiency
                for w in sorted(compiled.widths)
            ]
            assert efficiencies == sorted(efficiencies)

    def test_memory_per_result_shrinks_with_width(self, cross):
        points = analyze(cross)
        per_result = {
            w: p.memory_cycles / w for w, p in points.items()
        }
        assert per_result[8] < per_result[4] < per_result[1]

    def test_heavy_patterns_reach_compute_bound_at_width_one(self):
        compiled = compile_stencil(diamond13())
        points = analyze(compiled)
        assert points[1].bound == "compute"
        assert points[4].bound == "memory"

    def test_balance_definition(self, cross):
        point = analyze(cross)[8]
        assert point.balance == pytest.approx(
            point.memory_cycles / point.compute_cycles
        )

    def test_describe_renders_table(self, cross):
        text = describe(cross)
        assert "bound" in text and "memory" in text
