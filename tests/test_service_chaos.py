"""Service chaos campaign: seeded faults, SIGKILL resume, exact ledgers.

The invariants under test are the service-level restatement of the
repo's contract -- bit-identical or typed error, never silent
corruption: no job is lost, no job runs twice, healthy tenants stay
bit-identical to their solo runs while other tenants crash, hang, storm
and get quarantined, and the resumed ledger fingerprint equals an
uninterrupted run's.

``CHAOS_SEED`` parametrizes the campaign from the environment (the CI
``service-chaos`` job sweeps it) exactly like ``tests/test_faults.py``.
"""

import os

import pytest

from repro.analysis.chaos import (
    ServiceChaosReport,
    ServiceChaosTrial,
    run_service_campaign,
    run_service_trial,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


class TestServiceChaosTrial:
    def test_seeded_trial_upholds_every_invariant(self):
        trial = run_service_trial(CHAOS_SEED + 1)
        assert trial.survived, trial.outcome
        assert trial.lost_jobs == 0
        assert trial.double_runs == 0
        assert trial.fingerprint_match
        assert trial.healthy_identical
        assert trial.reconciled
        assert trial.sheds_typed

    def test_faults_actually_fired(self):
        # A chaos campaign that injects nothing proves nothing.  At
        # boosted rates, crashes and hangs must land for any seed, the
        # storm phase must shed, and every invariant must still hold.
        rates = {"worker_crash": 0.5, "job_hang": 0.35, "tenant_storm": 1.0}
        trials = [
            run_service_trial(CHAOS_SEED + s, rates=rates) for s in (2, 3)
        ]
        assert all(t.survived for t in trials), [t.outcome for t in trials]
        assert sum(t.crashes_injected for t in trials) > 0
        assert sum(t.hangs_injected for t in trials) > 0
        assert sum(t.shed for t in trials) > 0
        assert all(t.quarantine_observed for t in trials)

    def test_trial_round_trips_through_dict(self):
        trial = run_service_trial(CHAOS_SEED + 1)
        clone = ServiceChaosTrial.from_dict(trial.to_dict())
        assert clone == trial


class TestServiceChaosCampaign:
    def test_two_seed_campaign_reports_ok(self):
        report = run_service_campaign(
            seeds=(CHAOS_SEED + 4, CHAOS_SEED + 5)
        )
        assert report.ok, report.describe()
        assert report.num_survived == 2
        clone = ServiceChaosReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert "service chaos" in report.describe().lower()


class TestTrialDeterminism:
    def test_same_seed_same_story(self):
        # Seeded injection is hashed per job key, not per thread
        # interleaving: two runs of the same seed inject the same
        # faults and produce the same ledger fingerprint.
        first = run_service_trial(CHAOS_SEED + 1)
        second = run_service_trial(CHAOS_SEED + 1)
        assert first.crashes_injected == second.crashes_injected
        assert first.hangs_injected == second.hangs_injected
        assert first.completed == second.completed
        assert first.failed == second.failed


class TestFullCampaign:
    def test_reference_seed_sweep(self):
        report = run_service_campaign(seeds=(1, 2, 3, 4, 5))
        assert report.ok, report.describe()
