"""Batched multi-convolution: bit-identity, amortization, accounting.

The contract under test: ``apply_stencil_batch(filters, sources)[b, f]``
is bit-identical in float32 to ``apply_stencil(filters[f], sources[b])``
for every boundary mode, block depth, node-grid shape, and execution
mode -- while the whole batch shares halo exchanges (one machine pass of
``batch`` messages per boundary group per iteration, instead of
``batch * filters`` solo exchanges).
"""

import numpy as np
import pytest

from repro.analysis.chaos import boundary_variant
from repro.analysis.flops import account_batch
from repro.analysis.timing import batch_report
from repro.compiler.driver import compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.batch import (
    BatchStencilRun,
    CMBatch,
    apply_stencil_batch,
)
from repro.runtime.blocking import (
    batch_blocked_costs,
    best_batch_block_depth,
    blocked_costs,
)
from repro.runtime.cm_array import CMArray
from repro.runtime.executor import ExecutionSetupError
from repro.runtime.faults import (
    FaultInjector,
    NonFiniteInputError,
    ResiliencePolicy,
)
from repro.runtime.multidim import (
    CMArray3D,
    apply_laplacian27,
    apply_laplacian27_reference,
)
from repro.runtime.stencil_op import apply_stencil
from repro.service.jobs import JobSpecError, StencilJob, solo_run
from repro.stencil import gallery

GRID = (16, 16)


def make_machine(shape=(2, 2)):
    params = MachineParams(num_nodes=shape[0] * shape[1])
    return CM2(params, shape=shape)


def make_batch(machine, batch, grid=GRID, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((batch,) + grid).astype(np.float32)
    return CMBatch.from_numpy("Xb", machine, data), data


def make_coeffs(machine, patterns, grid=GRID, seed=100):
    rng = np.random.default_rng(seed)
    names = sorted(
        {name for p in patterns for name in p.coefficient_names()}
    )
    return {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(grid).astype(np.float32)
        )
        for name in names
    }


def solo_results(machine, filters, coeffs, data, grid, **kwargs):
    """The loop of solo runs the batched call must reproduce bit for
    bit."""
    batch = data.shape[0]
    out = np.zeros(
        (batch, len(filters)) + grid, dtype=np.float32
    )
    for b in range(batch):
        src = CMArray.from_numpy(f"__solo_src{b}__", machine, data[b])
        for fi, compiled in enumerate(filters):
            res = CMArray(f"__solo_res{b}_{fi}__", machine, grid)
            apply_stencil(compiled, src, coeffs, res, **kwargs)
            out[b, fi] = res.to_numpy()
    return out


class TestBitIdentity:
    @pytest.mark.parametrize("boundary", ["torus", "fill"])
    @pytest.mark.parametrize("iterations", [1, 3])
    def test_mixed_pad_filter_set(self, boundary, iterations):
        """The headline shape: four filters of three different pads in
        one boundary group, several iterations."""
        machine = make_machine()
        patterns = [
            boundary_variant(p, boundary)
            for p in (
                gallery.cross5(),
                gallery.cross9(),
                gallery.square9(),
                gallery.diamond13(),
            )
        ]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, data = make_batch(machine, 3)
        run = apply_stencil_batch(
            filters, source, coeffs, iterations=iterations
        )
        expected = solo_results(
            machine, filters, coeffs, data, GRID, iterations=iterations
        )
        assert np.array_equal(run.result.to_numpy(), expected)

    def test_mixed_boundary_groups(self):
        """Torus and FILL filters in one call: two exchange groups,
        each bit-identical to its members' solo exchanges."""
        machine = make_machine()
        patterns = [
            boundary_variant(gallery.cross5(), "torus"),
            boundary_variant(gallery.square9(), "fill"),
            boundary_variant(gallery.diamond13(), "torus"),
        ]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, data = make_batch(machine, 2)
        run = apply_stencil_batch(filters, source, coeffs, iterations=2)
        expected = solo_results(
            machine, filters, coeffs, data, GRID, iterations=2
        )
        assert np.array_equal(run.result.to_numpy(), expected)

    @pytest.mark.parametrize("shape", [(1, 4), (4, 1)])
    def test_degenerate_node_grids(self, shape):
        """1xN and Nx1 node grids: self-neighbor exchanges still
        bit-identical through the shared batch halo."""
        machine = make_machine(shape)
        patterns = [gallery.cross5(), gallery.square9()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, data = make_batch(machine, 2)
        run = apply_stencil_batch(filters, source, coeffs, iterations=2)
        expected = solo_results(
            machine, filters, coeffs, data, GRID, iterations=2
        )
        assert np.array_equal(run.result.to_numpy(), expected)

    @pytest.mark.parametrize("depth", [2, 3, "auto"])
    def test_temporal_blocking(self, depth):
        """Blocked batched runs match blocked solo runs bit for bit at
        every filter's resolved depth."""
        machine = make_machine()
        patterns = [gallery.cross5(), gallery.diamond13()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, data = make_batch(machine, 2)
        run = apply_stencil_batch(
            filters, source, coeffs, iterations=5, block_depth=depth
        )
        batch = data.shape[0]
        expected = np.zeros((batch, len(filters)) + GRID, dtype=np.float32)
        for b in range(batch):
            src = CMArray.from_numpy(f"__bsrc{b}__", machine, data[b])
            for fi, compiled in enumerate(filters):
                res = CMArray(f"__bres{b}_{fi}__", machine, GRID)
                apply_stencil(
                    compiled,
                    src,
                    coeffs,
                    res,
                    iterations=5,
                    block_depth=run.block_depths[fi],
                )
                expected[b, fi] = res.to_numpy()
        assert np.array_equal(run.result.to_numpy(), expected)

    def test_blocked_fill_boundary(self):
        machine = make_machine()
        patterns = [
            boundary_variant(gallery.cross5(), "fill"),
            boundary_variant(gallery.square9(), "fill"),
        ]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, data = make_batch(machine, 2)
        run = apply_stencil_batch(
            filters, source, coeffs, iterations=4, block_depth=2
        )
        expected = solo_results(
            machine, filters, coeffs, data, GRID,
            iterations=4, block_depth=2,
        )
        assert np.array_equal(run.result.to_numpy(), expected)

    def test_exact_mode(self):
        """The staged cycle-stepped oracle equals both the solo exact
        runs and the batched fast path."""
        machine = make_machine()
        patterns = [gallery.cross5(), gallery.square9()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns, grid=(8, 8))
        source, data = make_batch(machine, 2, grid=(8, 8))
        run = apply_stencil_batch(
            filters, source, coeffs, iterations=2, exact=True
        )
        assert run.exact
        expected = solo_results(
            machine, filters, coeffs, data, (8, 8),
            iterations=2, exact=True,
        )
        assert np.array_equal(run.result.to_numpy(), expected)
        fast = apply_stencil_batch(
            filters, source, coeffs, result="Rfast", iterations=2
        )
        assert np.array_equal(
            run.result.to_numpy(), fast.result.to_numpy()
        )

    def test_single_filter_single_grid(self):
        """B=1, F=1 degenerates to exactly one solo call's bits and
        exchange count."""
        machine = make_machine()
        pattern = gallery.diamond13()
        compiled = compile_stencil(pattern, machine.params)
        coeffs = make_coeffs(machine, [pattern])
        source, data = make_batch(machine, 1)
        run = apply_stencil_batch([compiled], source, coeffs, iterations=3)
        src = CMArray.from_numpy("__one__", machine, data[0])
        res = CMArray("__oneres__", machine, GRID)
        solo = apply_stencil(compiled, src, coeffs, res, iterations=3)
        assert np.array_equal(run.result.to_numpy()[0, 0], res.to_numpy())
        assert run.num_exchanges == solo.exchanges


class TestAmortization:
    def test_one_pass_exchange_count(self):
        """Iterations=1, one boundary group: B messages serve B x F
        convolutions -- the tentpole invariant."""
        machine = make_machine()
        patterns = [
            gallery.cross5(),
            gallery.cross9(),
            gallery.square9(),
            gallery.diamond13(),
        ]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        batch = 5
        source, _ = make_batch(machine, batch)
        run = apply_stencil_batch(filters, source, coeffs)
        assert run.num_exchanges == batch
        assert run.host_calls == 1
        loop_exchanges = batch * len(filters)
        assert run.num_exchanges < loop_exchanges

    def test_iterated_exchange_count(self):
        """From iteration 1 on the filter states diverge, so each
        (entry, filter) pays its own message -- but still one machine
        pass (host call) per group per iteration."""
        machine = make_machine()
        patterns = [gallery.cross5(), gallery.square9()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        batch, iters = 3, 4
        source, _ = make_batch(machine, batch)
        run = apply_stencil_batch(filters, source, coeffs, iterations=iters)
        expected = batch + (iters - 1) * batch * len(filters)
        assert run.num_exchanges == expected
        assert run.host_calls == iters

    def test_host_half_strips_not_scaled_by_batch(self):
        """The front end issues each filter's schedule once per pass;
        the sequencer's batch-stride loop executes it B times."""
        machine = make_machine()
        patterns = [gallery.cross5()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        batch = 4
        source, _ = make_batch(machine, batch)
        run = apply_stencil_batch(filters, source, coeffs, iterations=2)
        assert run.total_half_strips == batch * run.host_half_strips

    def test_blocked_coeff_exchanges_amortized(self):
        """A blocked batch deep-exchanges each coefficient once, not
        once per entry: the per-filter coefficient cost a solo loop
        pays B times."""
        machine = make_machine()
        pattern = gallery.cross5()
        compiled = compile_stencil(pattern, machine.params)
        coeffs = make_coeffs(machine, [pattern])
        batch = 4
        source, _ = make_batch(machine, batch)
        run = apply_stencil_batch(
            [compiled], source, coeffs, iterations=4, block_depth=2
        )
        assert run.coeff_exchanges == len(pattern.coefficient_names())
        solo_costs = blocked_costs(compiled, run.result.subgrid_shape, 4, 2)
        loop_coeff = batch * solo_costs.coeff_exchanges
        assert run.coeff_exchanges < loop_coeff

    def test_per_filter_attribution_sums(self):
        """Per-filter compute/strip attribution partitions the totals."""
        machine = make_machine()
        patterns = [gallery.cross5(), gallery.diamond13()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, _ = make_batch(machine, 3)
        run = apply_stencil_batch(filters, source, coeffs, iterations=2)
        assert (
            sum(c.compute_cycles for c in run.per_filter)
            == run.total_compute_cycles
        )
        assert (
            sum(c.half_strips for c in run.per_filter)
            == run.total_half_strips
        )
        assert sum(
            c.comm_cycles for c in run.per_filter
        ) == pytest.approx(run.total_comm_cycles)

    def test_batch_cost_model_depth1_matches_unblocked(self):
        """batch_blocked_costs(depth=1) reproduces the unblocked
        batched accounting."""
        machine = make_machine()
        compiled = compile_stencil(gallery.cross5(), machine.params)
        costs = batch_blocked_costs(compiled, (8, 8), 3, 1, batch=4)
        assert costs.num_blocks == 3
        assert costs.num_exchanges == 12
        assert costs.coeff_exchanges == 0
        assert costs.total_half_strips == 4 * costs.host_half_strips

    def test_best_batch_depth_never_worse_than_forced(self):
        params = MachineParams(num_nodes=4)
        compiled = compile_stencil(gallery.cross5(), params)
        best = best_batch_block_depth(compiled, (8, 8), 16, batch=8)
        best_cost = batch_blocked_costs(
            compiled, (8, 8), 16, best, 8
        ).modeled_seconds(params, 16)
        for depth in (1, 2, 4):
            other = batch_blocked_costs(
                compiled, (8, 8), 16, depth, 8
            ).modeled_seconds(params, 16)
            assert best_cost <= other + 1e-12


class TestValidationAndStorage:
    def test_cmbatch_roundtrip(self):
        machine = make_machine()
        rng = np.random.default_rng(5)
        data = rng.standard_normal((2, 3) + GRID).astype(np.float32)
        batch = CMBatch.from_numpy("BB", machine, data)
        assert batch.lead_shape == (2, 3)
        assert batch.global_shape == GRID
        assert np.array_equal(batch.to_numpy(), data)
        batch.fill(1.5)
        assert np.all(batch.to_numpy() == np.float32(1.5))
        batch.free()
        assert machine.storage.get("BB") is None

    def test_cmbatch_rejects_rank2(self):
        machine = make_machine()
        with pytest.raises(ValueError, match="lead axis"):
            CMBatch.from_numpy(
                "B2", machine, np.zeros(GRID, dtype=np.float32)
            )

    def test_cmbatch_set_shape_error(self):
        machine = make_machine()
        batch = CMBatch("B3", machine, (2,), GRID)
        with pytest.raises(ValueError, match="does not match"):
            batch.set(np.zeros((3,) + GRID, dtype=np.float32))

    def test_result_must_not_alias_source(self):
        machine = make_machine()
        compiled = compile_stencil(gallery.cross5(), machine.params)
        coeffs = make_coeffs(machine, [gallery.cross5()])
        source, _ = make_batch(machine, 2)
        with pytest.raises(ExecutionSetupError, match="alias"):
            apply_stencil_batch(
                [compiled], source, coeffs, result=source.name
            )

    def test_mismatched_params_rejected(self):
        machine = make_machine()
        other = MachineParams(num_nodes=4, clock_hz=9e6)
        filters = [
            compile_stencil(gallery.cross5(), machine.params),
            compile_stencil(gallery.square9(), other),
        ]
        coeffs = make_coeffs(
            machine, [gallery.cross5(), gallery.square9()]
        )
        source, _ = make_batch(machine, 2)
        with pytest.raises(ExecutionSetupError, match="parameters"):
            apply_stencil_batch(filters, source, coeffs)

    def test_empty_filters_rejected(self):
        machine = make_machine()
        source, _ = make_batch(machine, 2)
        with pytest.raises(ValueError, match="at least one"):
            apply_stencil_batch([], source)

    def test_missing_coefficient_named(self):
        machine = make_machine()
        compiled = compile_stencil(gallery.cross5(), machine.params)
        source, _ = make_batch(machine, 2)
        with pytest.raises(ExecutionSetupError, match="C1"):
            apply_stencil_batch([compiled], source, {})

    def test_source_sequence_staging(self):
        """A list of plain CMArrays stages into the batch and matches
        the CMBatch path bit for bit."""
        machine = make_machine()
        patterns = [gallery.cross5(), gallery.square9()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        rng = np.random.default_rng(9)
        data = rng.standard_normal((3,) + GRID).astype(np.float32)
        arrays = [
            CMArray.from_numpy(f"S{i}", machine, data[i]) for i in range(3)
        ]
        run = apply_stencil_batch(filters, arrays, coeffs, iterations=2)
        batch = CMBatch.from_numpy("SB", machine, data)
        run2 = apply_stencil_batch(
            filters, batch, coeffs, result="R2", iterations=2
        )
        assert np.array_equal(
            run.result.to_numpy(), run2.result.to_numpy()
        )

    def test_check_finite_names_offender(self):
        machine = make_machine()
        pattern = gallery.cross5()
        compiled = compile_stencil(pattern, machine.params)
        coeffs = make_coeffs(machine, [pattern])
        bad = coeffs["C1"].to_numpy()
        bad[0, 0] = np.nan
        coeffs["C1"].set(bad)
        source, _ = make_batch(machine, 2)
        with pytest.raises(NonFiniteInputError, match="C1"):
            apply_stencil_batch(
                [compiled], source, coeffs, check_finite=True
            )

    def test_batched_shape_validation_names_axis(self):
        """Satellite: batched result-shape mismatches report the
        offending axis and expected extent, not a numpy broadcast
        error."""
        machine = make_machine()
        compiled = compile_stencil(gallery.cross5(), machine.params)
        coeffs = make_coeffs(machine, [gallery.cross5()])
        source, _ = make_batch(machine, 2)
        wrong = CMBatch("RW", machine, (2, 3), GRID)  # 3 != 1 filter
        with pytest.raises(ExecutionSetupError, match="axis 1"):
            apply_stencil_batch([compiled], source, coeffs, result=wrong)


class TestFaults:
    def test_soft_fault_campaign_bit_identical(self):
        """A seeded soft-fault campaign on a batched run detects and
        recovers every injected fault and lands on the clean bits."""
        machine = make_machine()
        patterns = [gallery.cross5(), gallery.diamond13()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, _ = make_batch(machine, 2)
        clean = apply_stencil_batch(
            filters, source, coeffs, result="Rclean", iterations=3
        )
        injector = FaultInjector(
            seed=11,
            rates={"node_poison": 0.25, "halo_corrupt": 0.2},
        )
        guarded = apply_stencil_batch(
            filters,
            source,
            coeffs,
            result="Rchaos",
            iterations=3,
            faults=injector,
            resilience=ResiliencePolicy(max_retries=6),
        )
        assert np.array_equal(
            guarded.result.to_numpy(), clean.result.to_numpy()
        )
        stats = guarded.fault_stats
        assert stats.total_injected > 0
        assert stats.total_detected > 0
        assert guarded.num_exchanges == clean.num_exchanges
        assert guarded.total_compute_cycles > clean.total_compute_cycles

    def test_guarded_forces_depth_one(self):
        machine = make_machine()
        compiled = compile_stencil(gallery.cross5(), machine.params)
        coeffs = make_coeffs(machine, [gallery.cross5()])
        source, _ = make_batch(machine, 2)
        run = apply_stencil_batch(
            [compiled],
            source,
            coeffs,
            iterations=4,
            block_depth=4,
            faults=FaultInjector(seed=1),
        )
        assert run.block_depths == (1,)


class TestLaplacian27:
    def test_batched_matches_reference_bits(self):
        machine = make_machine()
        rng = np.random.default_rng(21)
        x = CMArray3D.from_numpy(
            "X3",
            machine,
            rng.standard_normal((16, 16, 5)).astype(np.float32),
        )
        ref = apply_laplacian27_reference(
            x, "REF", params=machine.params
        )
        res, run = apply_laplacian27(x, "BAT", params=machine.params)
        assert np.array_equal(ref.to_numpy(), res.to_numpy())
        # 5 slabs x 3 filters share one exchange per slab.
        assert run.num_exchanges == 5
        assert run.batch == 5

    def test_matches_dense_float64_laplacian(self):
        machine = make_machine()
        rng = np.random.default_rng(22)
        host = rng.standard_normal((16, 16, 4)).astype(np.float32)
        x = CMArray3D.from_numpy("X3d", machine, host)
        res, _ = apply_laplacian27(x, "BATd", params=machine.params)
        data = host.astype(np.float64)
        expect = np.zeros_like(data)
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    nonzero = (dy != 0) + (dx != 0) + (dz != 0)
                    weight = (-88.0, 6.0, 3.0, 2.0)[nonzero] / 26.0
                    expect += weight * np.roll(
                        np.roll(np.roll(data, -dy, 0), -dx, 1), -dz, 2
                    )
        assert np.allclose(res.to_numpy(), expect, atol=1e-4)

    def test_weights_sum_to_zero(self):
        taps = [
            tap
            for pattern in (
                gallery.laplacian27_below(),
                gallery.laplacian27_mid(),
                gallery.laplacian27_above(),
            )
            for tap in pattern.taps
        ]
        assert len(taps) == 27
        assert sum(t.coeff.value for t in taps) == pytest.approx(0.0)


class TestAnalysis:
    def test_account_batch_scales_points(self):
        patterns = [gallery.cross5(), gallery.square9()]
        accounts = account_batch(patterns, (8, 8), batch=4, nodes=16)
        assert accounts[0].points == 8 * 8 * 16 * 4
        assert accounts[0].useful_flops == 9 * accounts[0].points
        blocked = account_batch(
            patterns, (8, 8), batch=4, iterations=4, nodes=16, depths=(2, 2)
        )
        assert blocked[0].redundant_points > 0

    def test_batch_report_rows(self):
        machine = make_machine()
        patterns = [gallery.cross5(), gallery.square9()]
        filters = [compile_stencil(p, machine.params) for p in patterns]
        coeffs = make_coeffs(machine, patterns)
        source, _ = make_batch(machine, 2)
        run = apply_stencil_batch(filters, source, coeffs, iterations=2)
        report = batch_report(run)
        assert report.batch == 2
        assert len(report.per_filter) == 2
        text = report.rows()
        assert "cross5" in text and "square9" in text
        assert report.measured_mflops == pytest.approx(run.mflops)


class TestService:
    def test_batched_job_solo_identical_to_loop(self):
        """A batched service job's output entry (b, f) equals the
        equivalent per-filter solo jobs run on the same machine data."""
        job = StencilJob(
            tenant="t",
            filters=("cross5", "square9"),
            batch=2,
            grid_shape=(16, 16),
            iterations=2,
            seed=77,
            partition_shape=(2, 2),
        )
        result = solo_run(job)
        assert result.output.shape == (2, 2, 16, 16)
        # Re-derive the job's deterministic inputs and loop solo.
        machine = make_machine()
        patterns = job.build_filters()
        filters = [compile_stencil(p, machine.params) for p in patterns]
        rng = np.random.default_rng(job.seed)
        data = rng.standard_normal((2,) + (16, 16)).astype(np.float32)
        names = sorted(
            {n for p in patterns for n in p.coefficient_names()}
        )
        coeffs = {
            name: CMArray.from_numpy(
                name,
                machine,
                rng.standard_normal((16, 16)).astype(np.float32),
            )
            for name in names
        }
        expected = solo_results(
            machine, filters, coeffs, data, (16, 16), iterations=2
        )
        assert np.array_equal(result.output, expected)

    def test_batched_job_rerun_identical(self):
        job = StencilJob(
            tenant="t",
            filters=("cross5", "diamond13"),
            batch=3,
            grid_shape=(16, 16),
            seed=5,
            partition_shape=(2, 2),
        )
        a = solo_run(job)
        b = solo_run(job)
        assert a.identical_to(b)

    def test_batch_validation(self):
        with pytest.raises(JobSpecError, match="batch must be >= 1"):
            StencilJob(tenant="t", batch=0)
        with pytest.raises(JobSpecError, match="unknown gallery pattern"):
            StencilJob(tenant="t", filters=("no_such_pattern",))
        with pytest.raises(JobSpecError, match="at least one"):
            StencilJob(tenant="t", filters=())
        with pytest.raises(JobSpecError, match="spare"):
            StencilJob(tenant="t", batch=2, spares=1)
        with pytest.raises(JobSpecError, match="spare"):
            StencilJob(tenant="t", filters=("cross5", "cross9"), spares=2)

    def test_from_dict_filters(self):
        job = StencilJob.from_dict(
            {
                "tenant": "t",
                "filters": ["cross5", "cross9"],
                "batch": 2,
                "grid_shape": [16, 16],
            }
        )
        assert job.filters == ("cross5", "cross9")
        assert job.batched

    def test_chaos_batched_job_runs(self):
        job = StencilJob(
            tenant="t",
            filters=("cross5",),
            batch=2,
            grid_shape=(16, 16),
            iterations=2,
            seed=3,
            fault_rates={"halo_corrupt": 0.3},
            fault_seed=4,
            partition_shape=(2, 2),
        )
        guarded = solo_run(job)
        clean_job = StencilJob(
            tenant="t",
            filters=("cross5",),
            batch=2,
            grid_shape=(16, 16),
            iterations=2,
            seed=3,
            partition_shape=(2, 2),
        )
        clean = solo_run(clean_job)
        assert guarded.identical_to(clean)
