"""Tests for the application kernels: seismic, heat, wave."""

import numpy as np
import pytest

from repro.apps.heat import HeatSolver, heat_source
from repro.apps.seismic import (
    SeismicModel,
    layered_velocity,
    ricker_wavelet,
)
from repro.apps.wave import WaveSolver, wave_defstencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams


def machine4():
    return CM2(MachineParams(num_nodes=4))


class TestSeismicSetup:
    def test_layered_velocity_is_layered(self):
        model = layered_velocity((32, 16))
        assert (model[0, :] == model[0, 0]).all()
        assert model[0, 0] < model[-1, 0]

    def test_ricker_wavelet_shape(self):
        wavelet = ricker_wavelet(200, 0.001)
        assert wavelet.shape == (200,)
        assert wavelet.max() == pytest.approx(1.0, abs=1e-3)

    def test_unstable_configuration_rejected(self):
        with pytest.raises(ValueError, match="Courant"):
            SeismicModel(machine4(), (32, 32), dt=0.01, dx=1.0)

    def test_velocity_shape_checked(self):
        with pytest.raises(ValueError, match="velocity"):
            SeismicModel(
                machine4(), (32, 32), velocity=np.ones((8, 8)), dt=0.001
            )

    def test_coefficients_encode_fd4(self):
        model = SeismicModel(machine4(), (32, 32), dt=0.001, dx=10.0)
        c5 = model.coefficients["C5"].to_numpy()
        c2 = model.coefficients["C2"].to_numpy()
        c1 = model.coefficients["C1"].to_numpy()
        lam2 = (layered_velocity((32, 32)) * 0.001 / 10.0) ** 2
        np.testing.assert_allclose(c5, 2.0 - 5.0 * lam2, rtol=1e-5)
        np.testing.assert_allclose(c2, (4.0 / 3.0) * lam2, rtol=1e-5)
        np.testing.assert_allclose(c1, (-1.0 / 12.0) * lam2, rtol=1e-5)


class TestSeismicStepping:
    def test_kernel_matches_reference(self):
        model = SeismicModel(machine4(), (16, 32), dt=0.001, dx=10.0)
        model.set_initial_pulse(sigma=2.0)
        current = model.fields[1].to_numpy()
        previous = model.fields[0].to_numpy()
        expected = model.reference_step(current, previous)
        model.run_copy_loop(1)
        np.testing.assert_array_equal(model.wavefield(), expected)

    def test_copy_and_unrolled_loops_bit_identical(self):
        wavelet = ricker_wavelet(12, 0.001)
        results = []
        for runner in ("run_copy_loop", "run_unrolled_loop"):
            model = SeismicModel(
                machine4(), (16, 32), dt=0.001, dx=10.0, source=(8, 16)
            )
            model.set_initial_pulse(sigma=2.0)
            getattr(model, runner)(12, wavelet)
            results.append(model.wavefield())
        np.testing.assert_array_equal(results[0], results[1])

    def test_unrolled_loop_is_faster(self):
        """The paper's 14.88 vs 11.62 Gflops: eliminating the two copies
        raises the flop rate."""
        copies = SeismicModel(machine4(), (16, 32), dt=0.001, dx=10.0)
        copies.set_initial_pulse()
        copies.run_copy_loop(6)
        unrolled = SeismicModel(machine4(), (16, 32), dt=0.001, dx=10.0)
        unrolled.set_initial_pulse()
        unrolled.run_unrolled_loop(6)
        assert unrolled.timing.gflops > copies.timing.gflops
        assert unrolled.timing.useful_flops == copies.timing.useful_flops

    def test_wave_propagates_outward(self):
        model = SeismicModel(
            machine4(), (32, 64), dt=0.001, dx=10.0, source=(16, 32)
        )
        model.set_initial_pulse(sigma=2.0)
        model.run_unrolled_loop(20)
        field = model.wavefield()
        assert np.abs(field).max() > 0
        # Energy has reached beyond the initial pulse footprint.
        assert np.abs(field[16, 48]) > 0

    def test_source_injection(self):
        model = SeismicModel(
            machine4(), (16, 32), dt=0.001, dx=10.0, source=(4, 20)
        )
        model.inject_source(2.0)
        assert model.wavefield()[4, 20] == pytest.approx(2.0)


class TestHeat:
    def test_statement_is_recognizable(self):
        from repro.compiler.driver import compile_fortran

        compiled = compile_fortran(heat_source(0.5))
        assert compiled.pattern.num_points == 9

    def test_weights_sum_below_one_for_stability(self):
        solver = HeatSolver(machine4(), (16, 16), blend=0.5)
        taps = solver.compiled.pattern.taps
        total = sum(t.coeff.value for t in taps)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_heat_decays_to_boundary(self):
        solver = HeatSolver(machine4(), (16, 16))
        solver.set_hot_spot(radius=2, temperature=100.0)
        start = solver.total_heat()
        solver.step(30)
        end = solver.total_heat()
        assert 0 < end < start

    def test_max_principle(self):
        """Relaxation never exceeds the initial maximum."""
        solver = HeatSolver(machine4(), (16, 16))
        solver.set_hot_spot(radius=2, temperature=50.0)
        solver.step(10)
        assert solver.temperature().max() <= 50.0 + 1e-3
        assert solver.temperature().min() >= -1e-3

    def test_uniform_interior_spreads(self):
        solver = HeatSolver(machine4(), (16, 16))
        solver.set_hot_spot(radius=1, temperature=10.0)
        hot_before = (solver.temperature() > 0.01).sum()
        solver.step(5)
        hot_after = (solver.temperature() > 0.01).sum()
        assert hot_after > hot_before

    def test_invalid_blend(self):
        with pytest.raises(ValueError):
            HeatSolver(machine4(), (16, 16), blend=0.0)

    def test_timing_accumulates(self):
        solver = HeatSolver(machine4(), (16, 16))
        solver.set_hot_spot()
        solver.step(3)
        assert solver.timing.steps == 3
        assert solver.timing.elapsed_seconds > 0
        assert solver.timing.mflops > 0


class TestWave:
    def test_defstencil_compiles(self):
        from repro.compiler.driver import compile_defstencil

        compiled = compile_defstencil(wave_defstencil(0.25))
        assert compiled.pattern.num_points == 5
        assert compiled.max_width == 8

    def test_standing_wave_oscillates(self):
        solver = WaveSolver(machine4(), (16, 16), courant=0.5)
        solver.set_standing_wave()
        initial = solver.wavefield().copy()
        solver.step(8)
        changed = solver.wavefield()
        assert not np.array_equal(initial, changed)

    def test_energy_bounded(self):
        """Leapfrog in a stable regime: the energy diagnostic stays
        within a constant factor of its start."""
        solver = WaveSolver(machine4(), (16, 32), courant=0.4)
        solver.set_standing_wave()
        start = solver.energy()
        solver.step(50)
        assert solver.energy() < 5.0 * start + 1.0

    def test_pulse_spreads(self):
        solver = WaveSolver(machine4(), (32, 32), courant=0.5)
        solver.set_pulse(sigma=2.0)
        solver.step(10)
        field = solver.wavefield()
        assert np.abs(field[16, 26]) > 1e-6

    def test_unstable_courant_rejected(self):
        with pytest.raises(ValueError, match="stability|courant|Courant"):
            WaveSolver(machine4(), (16, 16), courant=0.9)

    def test_timing_counts_flops(self):
        solver = WaveSolver(machine4(), (16, 16))
        solver.set_pulse()
        solver.step(2)
        assert solver.timing.useful_flops > 0
        assert solver.timing.mflops > 0


class TestSeismogram:
    def test_receiver_validation(self):
        model = SeismicModel(machine4(), (16, 32), dt=0.001, dx=10.0)
        with pytest.raises(ValueError, match="outside"):
            model.place_receivers([(99, 0)])

    def test_traces_record_every_step(self):
        model = SeismicModel(
            machine4(), (16, 32), dt=0.001, dx=10.0, source=(8, 8)
        )
        model.place_receivers([(8, 12), (8, 20)])
        model.run_unrolled_loop(15, ricker_wavelet(15, 0.001))
        traces = model.seismogram_array()
        assert traces.shape == (2, 15)

    def test_moveout_farther_receivers_arrive_later(self):
        """Physics check: in a uniform medium the wavefront reaches the
        far receiver after the near one."""
        velocity = np.full((32, 64), 3000.0, dtype=np.float32)
        model = SeismicModel(
            machine4(),
            (32, 64),
            velocity=velocity,
            dt=0.001,
            dx=10.0,
            source=(16, 16),
        )
        model.place_receivers([(16, 24), (16, 36)])
        model.run_unrolled_loop(120, ricker_wavelet(120, 0.001))
        traces = model.seismogram_array()
        threshold = 0.01 * np.abs(traces).max()
        near = int(np.argmax(np.abs(traces[0]) > threshold))
        far = int(np.argmax(np.abs(traces[1]) > threshold))
        assert np.abs(traces[1]).max() > threshold  # it did arrive
        assert far > near

    def test_all_loops_record_identical_seismograms(self):
        wavelet = ricker_wavelet(10, 0.001)
        traces = {}
        for runner in ("run_copy_loop", "run_unrolled_loop", "run_fused_loop"):
            model = SeismicModel(
                machine4(), (16, 32), dt=0.001, dx=10.0, source=(8, 8)
            )
            model.place_receivers([(8, 16)])
            getattr(model, runner)(10, wavelet)
            traces[runner] = model.seismogram_array()
        np.testing.assert_array_equal(
            traces["run_copy_loop"], traces["run_unrolled_loop"]
        )
        np.testing.assert_array_equal(
            traces["run_copy_loop"], traces["run_fused_loop"]
        )


class TestHeatedWalls:
    def test_wall_temperature_threads_through(self):
        solver = HeatSolver(machine4(), (16, 16), wall_temperature=25.0)
        assert solver.compiled.pattern.fill_value == pytest.approx(25.0)

    def test_cold_domain_warms_toward_walls(self):
        solver = HeatSolver(machine4(), (16, 16), wall_temperature=50.0)
        # Domain starts at zero; heat flows in from the hot walls.
        solver.step(60)
        field = solver.temperature()
        assert field.min() > 0.0
        assert field.max() <= 50.0 + 1e-3
        # Edges warm first.
        assert field[0].mean() > field[8].mean()

    def test_uniform_wall_temperature_is_steady_state(self):
        """A domain already at the wall temperature stays there."""
        solver = HeatSolver(machine4(), (16, 16), wall_temperature=30.0)
        solver.u.fill(30.0)
        solver.step(5)
        np.testing.assert_allclose(
            solver.temperature(), 30.0, rtol=0, atol=1e-3
        )
