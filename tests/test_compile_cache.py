"""The compiled-plan cache: one compilation per (pattern, params)."""

import pytest

from repro.compiler.driver import (
    clear_compile_cache,
    compile_cache_info,
    compile_defstencil,
    compile_fortran,
    compile_stencil,
)
from repro.machine.params import MachineParams
from repro.runtime.strips import StripSchedule
from repro.stencil.gallery import cross, square

CROSS_FORTRAN = """
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def test_same_pattern_and_params_return_the_same_plan():
    params = MachineParams(num_nodes=16)
    first = compile_stencil(cross(2), params)
    second = compile_stencil(cross(2), params)
    assert second is first
    hits, misses, entries = compile_cache_info()
    assert (hits, misses, entries) == (1, 1, 1)


def test_different_params_compile_separately():
    first = compile_stencil(cross(2), MachineParams(num_nodes=16))
    second = compile_stencil(cross(2), MachineParams(num_nodes=64))
    assert second is not first
    hits, misses, entries = compile_cache_info()
    assert (hits, misses, entries) == (0, 2, 2)


def test_different_patterns_compile_separately():
    params = MachineParams(num_nodes=16)
    assert compile_stencil(cross(2), params) is not compile_stencil(
        square(1), params
    )


def test_display_name_is_part_of_the_key():
    """Pattern equality ignores the display name; the cache must not,
    or a cached plan could report another statement's label."""
    params = MachineParams(num_nodes=16)
    a = compile_stencil(cross(2, name="seismic"), params)
    b = compile_stencil(cross(2, name="relax"), params)
    assert a is not b
    assert a.pattern.name == "seismic"
    assert b.pattern.name == "relax"


def test_front_ends_share_the_cache():
    params = MachineParams(num_nodes=16)
    first = compile_fortran(CROSS_FORTRAN, params)
    second = compile_fortran(CROSS_FORTRAN, params)
    assert second is first
    hits, _, _ = compile_cache_info()
    assert hits == 1


def test_clear_resets_counters():
    params = MachineParams(num_nodes=16)
    compile_stencil(cross(1), params)
    compile_stencil(cross(1), params)
    clear_compile_cache()
    assert compile_cache_info() == (0, 0, 0)
    compile_stencil(cross(1), params)
    assert compile_cache_info() == (0, 1, 1)


def test_strip_schedules_are_cached_per_plan_and_subgrid():
    params = MachineParams(num_nodes=16)
    compiled = compile_stencil(cross(2), params)
    first = StripSchedule.cached(compiled, (64, 64))
    assert StripSchedule.cached(compiled, (64, 64)) is first
    assert StripSchedule.cached(compiled, (64, 128)) is not first
