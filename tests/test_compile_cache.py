"""The compiled-plan cache: one compilation per (pattern, params).

Including the thread-safety regression suite: the caches started life
as bare module globals, and a multi-tenant scheduler compiling from
worker threads exposed duplicate compilations racing into one key,
lost counter updates, and cross-tenant telemetry corruption.  The
tests in ``TestThreadSafety`` fail on that module-global
implementation and pass on the lock-guarded :class:`SyncCache`.
"""

import threading
import time

import pytest

import repro.compiler.driver as driver
from repro.compiler.driver import (
    clear_compile_cache,
    compile_cache_info,
    compile_defstencil,
    compile_fortran,
    compile_stencil,
    depth_cache_info,
)
from repro.machine.params import MachineParams
from repro.runtime.strips import StripSchedule
from repro.stencil.gallery import cross, square

CROSS_FORTRAN = """
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def test_same_pattern_and_params_return_the_same_plan():
    params = MachineParams(num_nodes=16)
    first = compile_stencil(cross(2), params)
    second = compile_stencil(cross(2), params)
    assert second is first
    hits, misses, entries = compile_cache_info()
    assert (hits, misses, entries) == (1, 1, 1)


def test_different_params_compile_separately():
    first = compile_stencil(cross(2), MachineParams(num_nodes=16))
    second = compile_stencil(cross(2), MachineParams(num_nodes=64))
    assert second is not first
    hits, misses, entries = compile_cache_info()
    assert (hits, misses, entries) == (0, 2, 2)


def test_different_patterns_compile_separately():
    params = MachineParams(num_nodes=16)
    assert compile_stencil(cross(2), params) is not compile_stencil(
        square(1), params
    )


def test_display_name_is_part_of_the_key():
    """Pattern equality ignores the display name; the cache must not,
    or a cached plan could report another statement's label."""
    params = MachineParams(num_nodes=16)
    a = compile_stencil(cross(2, name="seismic"), params)
    b = compile_stencil(cross(2, name="relax"), params)
    assert a is not b
    assert a.pattern.name == "seismic"
    assert b.pattern.name == "relax"


def test_front_ends_share_the_cache():
    params = MachineParams(num_nodes=16)
    first = compile_fortran(CROSS_FORTRAN, params)
    second = compile_fortran(CROSS_FORTRAN, params)
    assert second is first
    hits, _, _ = compile_cache_info()
    assert hits == 1


def test_clear_resets_counters():
    params = MachineParams(num_nodes=16)
    compile_stencil(cross(1), params)
    compile_stencil(cross(1), params)
    clear_compile_cache()
    assert compile_cache_info() == (0, 0, 0)
    compile_stencil(cross(1), params)
    assert compile_cache_info() == (0, 1, 1)


def test_strip_schedules_are_cached_per_plan_and_subgrid():
    params = MachineParams(num_nodes=16)
    compiled = compile_stencil(cross(2), params)
    first = StripSchedule.cached(compiled, (64, 64))
    assert StripSchedule.cached(compiled, (64, 64)) is first
    assert StripSchedule.cached(compiled, (64, 128)) is not first


class TestThreadSafety:
    """The service-exposed races, reproduced deterministically."""

    def test_concurrent_misses_compile_once(self, monkeypatch):
        """Two threads missing on one key must run one compilation and
        share the object.

        This is the regression test for the module-global cache: there,
        both threads saw the empty dict, both compiled, and the callers
        ended up holding *different* plan objects -- breaking the
        driver's identity guarantee the moment a second tenant arrived.
        The slow compile plus the stagger makes the old interleaving
        certain, not probabilistic: the second thread arrives while the
        first is still inside ``compile_pattern``.
        """
        real_compile = driver.compile_pattern
        calls = []

        def slow_compile(*args, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.2)
            return real_compile(*args, **kwargs)

        monkeypatch.setattr(driver, "compile_pattern", slow_compile)
        params = MachineParams(num_nodes=16)
        plans = {}

        def worker(slot):
            plans[slot] = compile_stencil(cross(2), params)

        first = threading.Thread(target=worker, args=("a",))
        second = threading.Thread(target=worker, args=("b",))
        first.start()
        time.sleep(0.05)  # lands mid-compilation, guaranteed
        second.start()
        first.join()
        second.join()

        assert len(calls) == 1, "concurrent misses must deduplicate"
        assert plans["a"] is plans["b"]
        hits, misses, entries = compile_cache_info()
        assert (misses, entries) == (1, 1)
        assert hits == 1  # the waiter re-checked and hit

    def test_counters_stay_exact_under_a_thread_hammer(self):
        """N threads x M lookups: every call is exactly one hit or one
        miss, so the totals must sum to N*M with one miss per distinct
        key.  The unlocked counters lost updates here."""
        params = MachineParams(num_nodes=16)
        patterns = [cross(1), cross(2), square(1), square(2)]
        num_threads, rounds = 8, 25
        barrier = threading.Barrier(num_threads)

        def worker(index):
            barrier.wait()
            for round_number in range(rounds):
                pattern = patterns[(index + round_number) % len(patterns)]
                compile_stencil(pattern, params)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        hits, misses, entries = compile_cache_info()
        assert hits + misses == num_threads * rounds
        assert misses == len(patterns)
        assert entries == len(patterns)

    def test_factory_failure_releases_waiters(self, monkeypatch):
        """A compilation that raises must not wedge the key: waiters
        wake, and the next caller retries and succeeds."""
        real_compile = driver.compile_pattern
        attempts = []

        def flaky_compile(*args, **kwargs):
            attempts.append(None)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return real_compile(*args, **kwargs)

        monkeypatch.setattr(driver, "compile_pattern", flaky_compile)
        params = MachineParams(num_nodes=16)
        with pytest.raises(RuntimeError):
            compile_stencil(cross(2), params)
        compiled = compile_stencil(cross(2), params)
        assert compiled is compile_stencil(cross(2), params)
        assert len(attempts) == 2


class TestTenantScopes:
    """Per-tenant telemetry over the shared tables."""

    def test_scoped_stats_are_isolated(self):
        params = MachineParams(num_nodes=16)
        compile_stencil(cross(2), params, tenant="alice")  # miss
        compile_stencil(cross(2), params, tenant="alice")  # hit
        compile_stencil(cross(2), params, tenant="bob")  # hit
        assert compile_cache_info(tenant="alice") == (1, 1, 1)
        assert compile_cache_info(tenant="bob") == (1, 0, 1)
        # The aggregate view sums every scope.
        assert compile_cache_info() == (2, 1, 1)

    def test_anonymous_scope_is_a_scope(self):
        params = MachineParams(num_nodes=16)
        compile_stencil(cross(2), params)  # anonymous miss
        compile_stencil(cross(2), params, tenant="alice")  # hit
        assert compile_cache_info(tenant=None) == (0, 1, 1)
        assert compile_cache_info(tenant="alice") == (1, 0, 1)

    def test_clearing_one_tenant_leaves_the_others_alone(self):
        """The bug this scoping exists to fix: one tenant's reset used
        to zero every tenant's counters and drop the shared plans."""
        params = MachineParams(num_nodes=16)
        compile_stencil(cross(2), params, tenant="alice")
        compile_stencil(cross(2), params, tenant="bob")
        clear_compile_cache(tenant="alice")
        # Alice's view is pristine; the shared entry survives.
        assert compile_cache_info(tenant="alice") == (0, 0, 1)
        # Bob's telemetry is untouched.
        assert compile_cache_info(tenant="bob") == (1, 0, 1)
        # Alice's next compile hits the still-cached plan.
        compile_stencil(cross(2), params, tenant="alice")
        assert compile_cache_info(tenant="alice") == (1, 0, 1)

    def test_full_clear_resets_both_caches_and_every_scope(self):
        params = MachineParams(num_nodes=16)
        compile_stencil(cross(2), params, tenant="alice")
        clear_compile_cache()
        assert compile_cache_info() == (0, 0, 0)
        assert compile_cache_info(tenant="alice") == (0, 0, 0)
        assert depth_cache_info() == (0, 0, 0)
