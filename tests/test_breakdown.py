"""Tests for the cycle-breakdown decomposition."""

import pytest

from repro.analysis.breakdown import breakdown_run
from repro.analysis.sweeps import run_cell
from repro.stencil.gallery import cross5, cross9, diamond13


@pytest.fixture(scope="module")
def cross5_run():
    return run_cell(cross5(), (64, 64), num_nodes=4)


class TestBreakdown:
    def test_compute_buckets_sum_exactly(self, cross5_run):
        breakdown = breakdown_run(cross5_run)
        assert breakdown.compute_total == cross5_run.compute_cycles

    def test_all_patterns_sum_exactly(self):
        for pattern_fn in (cross9, diamond13):
            run = run_cell(pattern_fn(), (32, 32), num_nodes=4)
            breakdown = breakdown_run(run)
            assert breakdown.compute_total == run.compute_cycles

    def test_odd_width_subgrid_has_dummy_cycles(self):
        """A 33-wide subgrid ends in a width-1 strip whose solo chain
        wastes every other issue slot."""
        run = run_cell(cross5(), (32, 33), num_nodes=4)
        breakdown = breakdown_run(run)
        assert breakdown.dummy_ma > 0
        assert breakdown.compute_total == run.compute_cycles

    def test_even_width_subgrid_has_no_dummies(self, cross5_run):
        assert breakdown_run(cross5_run).dummy_ma == 0

    def test_shares_sum_to_one(self, cross5_run):
        shares = breakdown_run(cross5_run).shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_useful_ma_matches_issued_work(self, cross5_run):
        """MA cycles = points x taps."""
        breakdown = breakdown_run(cross5_run)
        rows, cols = cross5_run.result.subgrid_shape
        assert breakdown.useful_ma == rows * cols * 5

    def test_loads_reflect_multistencil_reuse(self, cross5_run):
        """Total load cycles sit well below the naive 5-per-point."""
        breakdown = breakdown_run(cross5_run)
        rows, cols = cross5_run.result.subgrid_shape
        params = cross5_run.params
        naive = rows * cols * 5 * params.memory_access_cycles
        assert breakdown.loads < 0.4 * naive

    def test_describe_lists_buckets(self, cross5_run):
        text = breakdown_run(cross5_run).describe()
        assert "useful multiply-adds" in text
        assert "communication" in text


class TestFusedBreakdown:
    def test_fused_runs_decompose_exactly(self):
        from repro.compiler.codegen import ExtraTerm
        from repro.compiler.fusion import fuse
        from repro.machine.machine import CM2
        from repro.machine.params import MachineParams
        from repro.runtime.cm_array import CMArray
        from repro.runtime.stencil_op import apply_stencil
        from repro.stencil.pattern import Coefficient

        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        fused = fuse(
            cross5(),
            [ExtraTerm(source="Y", coeff=Coefficient.array("CY"))],
            params,
        )
        CMArray("Y", machine, (16, 16))
        x = CMArray("X", machine, (16, 16))
        coeffs = {
            name: CMArray(name, machine, (16, 16))
            for name in fused.pattern.coefficient_names()
        }
        run = apply_stencil(fused, x, coeffs, "R")
        breakdown = breakdown_run(run)
        assert breakdown.compute_total == run.compute_cycles
        # The fused term's multiply-adds and loads are in the buckets.
        rows, cols = run.result.subgrid_shape
        assert breakdown.useful_ma == rows * cols * 6  # 5 taps + 1 fused
