"""Iterated-run semantics: ``iterations=k`` equals k sequential calls.

The result of iteration k is the source of iteration k+1, halos
re-exchanged from it each time, in both execution modes -- and the
source array itself is never modified.  Also covers the call-scoped
coefficient aliasing and the executor's extra-term shape validation.
"""

import numpy as np
import pytest

from repro.baseline.reference import reference_stencil
from repro.compiler.codegen import ExtraTerm
from repro.compiler.driver import compile_stencil
from repro.compiler.fusion import fuse
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.executor import ExecutionSetupError
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import cross, square
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import Coefficient, pattern_from_offsets

SHAPE = (16, 24)


def make_problem(pattern, *, num_nodes=4, seed=0, with_coeffs=True):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x_host = rng.standard_normal(SHAPE).astype(np.float32)
    coeff_host = {
        name: rng.standard_normal(SHAPE).astype(np.float32)
        for name in pattern.coefficient_names()
    }
    x = CMArray.from_numpy("X", machine, x_host)
    coeffs = {}
    if with_coeffs:
        coeffs = {
            name: CMArray.from_numpy(name, machine, data)
            for name, data in coeff_host.items()
        }
    return machine, compiled, x, coeffs, x_host, coeff_host


class TestIteratedSemantics:
    def test_iterated_equals_sequential_single_calls(self):
        machine, compiled, x, coeffs, _, _ = make_problem(cross(1))

        iterated = apply_stencil(compiled, x, coeffs, "R_ITER", iterations=3)

        current = x
        for k in range(3):
            single = apply_stencil(compiled, current, coeffs, f"R_SEQ{k}")
            current = single.result
        np.testing.assert_array_equal(
            iterated.result.to_numpy(), current.to_numpy()
        )

    def test_iterated_matches_numpy_reference_chain(self):
        machine, compiled, x, coeffs, x_host, coeff_host = make_problem(
            square(1), seed=5
        )
        run = apply_stencil(compiled, x, coeffs, "R", iterations=4)
        expected = x_host
        for _ in range(4):
            expected = reference_stencil(
                compiled.pattern, expected, coeff_host
            )
        np.testing.assert_array_equal(run.result.to_numpy(), expected)

    def test_exact_mode_iterates_identically(self):
        machine, compiled, x, coeffs, _, _ = make_problem(cross(1), seed=2)
        fast = apply_stencil(compiled, x, coeffs, "R_FAST", iterations=3)
        exact = apply_stencil(
            compiled, x, coeffs, "R_EXACT", iterations=3, exact=True
        )
        np.testing.assert_array_equal(
            exact.result.to_numpy(), fast.result.to_numpy()
        )

    def test_source_array_is_never_modified(self):
        machine, compiled, x, coeffs, x_host, _ = make_problem(
            cross(2), seed=9
        )
        apply_stencil(compiled, x, coeffs, "R", iterations=5)
        np.testing.assert_array_equal(x.to_numpy(), x_host)

    def test_fill_boundary_iterates_identically(self):
        pattern = pattern_from_offsets(
            [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)],
            name="cross5_fill",
            boundary={1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
            fill_value=0.5,
        )
        machine, compiled, x, coeffs, x_host, coeff_host = make_problem(
            pattern, seed=11
        )
        run = apply_stencil(compiled, x, coeffs, "R", iterations=3)
        expected = x_host
        for _ in range(3):
            expected = reference_stencil(pattern, expected, coeff_host)
        np.testing.assert_array_equal(run.result.to_numpy(), expected)

    def test_fixed_point_short_circuit_is_invisible(self):
        """Zero data reaches a fixed point after one iteration; the run
        must still report every iteration's cost and the same result a
        full run would produce (all zeros with all-zero coefficients
        would be trivial, so use a constant-coefficient identity)."""
        pattern = pattern_from_offsets([(0, 0)], name="identity")
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_stencil(pattern, params)
        rng = np.random.default_rng(3)
        x_host = rng.standard_normal(SHAPE).astype(np.float32)
        x = CMArray.from_numpy("X", machine, x_host)
        coeffs = {
            "C1": CMArray.from_numpy(
                "C1", machine, np.ones(SHAPE, dtype=np.float32)
            )
        }
        run = apply_stencil(compiled, x, coeffs, "R", iterations=50)
        np.testing.assert_array_equal(run.result.to_numpy(), x_host)
        assert run.iterations == 50
        fifty = run.elapsed_seconds
        one = apply_stencil(compiled, x, coeffs, "R1").elapsed_seconds
        assert fifty == pytest.approx(50 * one)


class TestCoefficientAliasScoping:
    def test_aliases_do_not_leak_after_the_call(self):
        machine, compiled, x, _, x_host, _ = make_problem(
            cross(1), with_coeffs=False
        )
        rng = np.random.default_rng(21)
        named = {
            stmt: CMArray.from_numpy(
                f"K{i}", machine, rng.standard_normal(SHAPE).astype(np.float32)
            )
            for i, stmt in enumerate(compiled.pattern.coefficient_names())
        }
        apply_stencil(compiled, x, named, "R")
        for stmt in compiled.pattern.coefficient_names():
            for node in machine.nodes():
                assert node.memory.view(stmt) is None
            assert machine.storage.get(stmt) is None

    def test_rebinding_to_a_different_array_uses_new_values(self):
        machine, compiled, x, _, x_host, _ = make_problem(cross(1))
        statement_names = compiled.pattern.coefficient_names()
        rng = np.random.default_rng(22)
        host_a = {s: rng.standard_normal(SHAPE).astype(np.float32)
                  for s in statement_names}
        host_b = {s: rng.standard_normal(SHAPE).astype(np.float32)
                  for s in statement_names}
        arrays_a = {
            s: CMArray.from_numpy(f"A_{s}", machine, host_a[s])
            for s in statement_names
        }
        arrays_b = {
            s: CMArray.from_numpy(f"B_{s}", machine, host_b[s])
            for s in statement_names
        }
        run_a = apply_stencil(compiled, x, arrays_a, "RA")
        run_b = apply_stencil(compiled, x, arrays_b, "RB")
        np.testing.assert_array_equal(
            run_a.result.to_numpy(),
            reference_stencil(compiled.pattern, x.to_numpy(), host_a),
        )
        np.testing.assert_array_equal(
            run_b.result.to_numpy(),
            reference_stencil(compiled.pattern, x.to_numpy(), host_b),
        )

    def test_preexisting_binding_is_restored(self):
        """A buffer that already exists under a statement name survives a
        call that temporarily aliases the name elsewhere."""
        machine, compiled, x, _, _, _ = make_problem(cross(1))
        statement_names = compiled.pattern.coefficient_names()
        first = statement_names[0]
        rng = np.random.default_rng(23)
        original_host = rng.standard_normal(SHAPE).astype(np.float32)
        original = CMArray.from_numpy(first, machine, original_host)
        arrays = {
            s: CMArray.from_numpy(f"N_{s}",
                                  machine,
                                  rng.standard_normal(SHAPE).astype(np.float32))
            for s in statement_names
        }
        apply_stencil(compiled, x, arrays, "R")
        np.testing.assert_array_equal(original.to_numpy(), original_host)


class TestExtraTermValidation:
    def fused_setup(self, *, num_nodes=4):
        params = MachineParams(num_nodes=num_nodes)
        machine = CM2(params)
        fused = fuse(
            cross(1),
            [ExtraTerm(source="Y", coeff=Coefficient.array("CY"))],
            params,
        )
        rng = np.random.default_rng(31)
        x = CMArray.from_numpy(
            "X", machine, rng.standard_normal(SHAPE).astype(np.float32)
        )
        coeffs = {
            name: CMArray.from_numpy(
                name, machine, rng.standard_normal(SHAPE).astype(np.float32)
            )
            for name in fused.pattern.coefficient_names()
        }
        return machine, fused, x, coeffs

    def test_missing_extra_source_is_reported(self):
        machine, fused, x, coeffs = self.fused_setup()
        with pytest.raises(ExecutionSetupError, match="extra-source.*'Y'"):
            apply_stencil(fused, x, coeffs, "R")

    def test_wrong_shape_extra_source_is_reported(self):
        machine, fused, x, coeffs = self.fused_setup()
        # Same machine, different global shape: the subgrids disagree.
        CMArray("Y", machine, (SHAPE[0] * 2, SHAPE[1]))
        with pytest.raises(ExecutionSetupError, match="subgrid shape"):
            apply_stencil(fused, x, coeffs, "R")

    def test_wrong_shape_coefficient_is_reported(self):
        machine, fused, x, coeffs = self.fused_setup()
        CMArray("Y", machine, SHAPE)
        coeffs["CY"] = CMArray("CY_BAD", machine, (SHAPE[0] * 2, SHAPE[1]))
        with pytest.raises(ExecutionSetupError, match="shape"):
            apply_stencil(fused, x, coeffs, "R")

    def test_valid_fused_setup_runs(self):
        machine, fused, x, coeffs = self.fused_setup()
        rng = np.random.default_rng(32)
        CMArray.from_numpy(
            "Y", machine, rng.standard_normal(SHAPE).astype(np.float32)
        )
        run = apply_stencil(fused, x, coeffs, "R")
        assert run.batched
