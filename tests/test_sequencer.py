"""Tests for the sequencer: address generation and half-strip driving."""

import numpy as np
import pytest

from repro.compiler.plan import compile_pattern
from repro.machine.isa import (
    ONES_BUFFER,
    LoadOp,
    MAOp,
    MemRef,
    NopOp,
    StoreOp,
    const_buffer_name,
)
from repro.machine.memory import NodeMemory
from repro.machine.microcode import full_strip_routine
from repro.machine.params import MachineParams
from repro.machine.sequencer import HalfStripJob, Sequencer
from repro.machine.fpu import Wtl3164
from repro.stencil.gallery import cross5
from repro.stencil.pattern import Coefficient


@pytest.fixture
def params():
    return MachineParams(num_nodes=1)


@pytest.fixture
def memory():
    mem = NodeMemory()
    mem.install("X__halo__", np.zeros((10, 18), dtype=np.float32))
    mem.allocate("R", (8, 16))
    for name in ("C1", "C2", "C3", "C4", "C5"):
        mem.install(name, np.zeros((8, 16), dtype=np.float32))
    mem.ensure_constant_pages([0.5])
    return mem


@pytest.fixture
def sequencer(params, memory):
    return Sequencer(
        params,
        memory,
        source_buffer="X__halo__",
        result_buffer="R",
        halo=1,
    )


class TestAddressGeneration:
    def test_load_address_adds_halo_offset(self, sequencer):
        op = LoadOp(reg=2, row=-1, col=3)
        ref = sequencer.resolve(op, y=4, x0=8)
        assert ref == MemRef("X__halo__", 1 + 4 - 1, 1 + 8 + 3)

    def test_extra_source_load_is_unpadded(self, sequencer):
        op = LoadOp(reg=2, row=0, col=3, buffer="Y")
        ref = sequencer.resolve(op, y=4, x0=8)
        assert ref == MemRef("Y", 4, 11)

    def test_array_coefficient_address(self, sequencer):
        op = MAOp(
            coeff=Coefficient.array("C1"),
            data_reg=2,
            dest_reg=3,
            thread=0,
            first=True,
            last=True,
            result_col=5,
        )
        assert sequencer.resolve(op, y=2, x0=8) == MemRef("C1", 2, 13)

    def test_scalar_coefficient_streams_constant_page(self, sequencer):
        op = MAOp(
            coeff=Coefficient.scalar(0.5),
            data_reg=2,
            dest_reg=3,
            thread=0,
            first=True,
            last=True,
            result_col=0,
        )
        assert sequencer.resolve(op, y=2, x0=0) == MemRef(
            const_buffer_name(0.5), 0, 0
        )

    def test_unit_coefficient_streams_ones_page(self, sequencer):
        op = MAOp(
            coeff=Coefficient.unit(),
            data_reg=2,
            dest_reg=3,
            thread=0,
            first=True,
            last=True,
            result_col=0,
        )
        assert sequencer.resolve(op, y=2, x0=0) == MemRef(ONES_BUFFER, 0, 0)

    def test_store_address_is_unpadded(self, sequencer):
        op = StoreOp(reg=2, result_col=3)
        assert sequencer.resolve(op, y=5, x0=8) == MemRef("R", 5, 11)

    def test_nop_touches_no_memory(self, sequencer):
        assert sequencer.resolve(NopOp("x"), y=0, x0=0) is None


class TestHalfStripDriving:
    def test_cycle_count_matches_plan_formula(self, params, memory, sequencer):
        compiled = compile_pattern(cross5(), params)
        plan = compiled.plans[8]
        fpu = Wtl3164(params, memory)
        job = HalfStripJob(x0=0, y_start=7, lines=8)
        sequencer.run_half_strip(plan, job, fpu)
        assert fpu.stats.cycles == plan.half_strip_cycles(8, params)

    def test_routine_override_changes_dispatch(self, params, memory, sequencer):
        compiled = compile_pattern(cross5(), params)
        plan = compiled.plans[8]
        routine = full_strip_routine(8, params)
        fpu = Wtl3164(params, memory)
        sequencer.run_half_strip(plan, HalfStripJob(0, 7, 8), fpu, routine)
        expected = (
            routine.dispatch_cycles
            + plan.prologue_cycles
            + 7 * plan.steady_line_cycles
            + 8 * routine.line_overhead_cycles
        )
        assert fpu.stats.cycles == expected

    def test_results_land_in_correct_rows(self, params, memory, sequencer):
        """A half-strip sweeping North writes rows y_start down-to
        y_start - lines + 1."""
        rng = np.random.default_rng(0)
        halo = np.zeros((10, 18), dtype=np.float32)
        halo[1:9, 1:17] = rng.standard_normal((8, 16)).astype(np.float32)
        memory.install("X__halo__", halo)
        memory.install(
            "C1", np.ones((8, 16), dtype=np.float32)
        )
        # Single-tap stencil: R = C1 * X.
        from repro.stencil.pattern import StencilPattern, Tap

        pattern = StencilPattern(
            [Tap(offset=(0, 0), coeff=Coefficient.array("C1"))]
        )
        compiled = compile_pattern(pattern, params)
        plan = compiled.plans[8]
        fpu = Wtl3164(params, memory)
        sequencer.run_half_strip(plan, HalfStripJob(x0=0, y_start=7, lines=4), fpu)
        fpu.drain()
        result = memory.buffer("R")
        np.testing.assert_array_equal(result[4:8, 0:8], halo[5:9, 1:9])
        assert not result[0:4, :].any()  # untouched rows stay zero
