"""Hard faults: dead nodes, dead links, slow nodes -- and surviving them.

The acceptance property: on a machine configured with spares, killing
any single node (or link) at any point of a run recovers bit-identically
in float32 against the fault-free reference; with no spare available the
run ends in a *typed* ``FaultError`` -- never silent corruption.  All
recovery actions are charged, and the charged totals reconcile exactly
as ``fault-free closed form + recovery buckets``.

``CHAOS_SEED`` parameterizes the random campaigns from the environment
so CI can sweep seeds without code changes.
"""

import os

import numpy as np
import pytest

from repro.analysis.chaos import ChaosReport, run_campaign, run_trial
from repro.compiler.driver import compile_stencil, select_block_depth
from repro.machine.geometry import (
    CoordinateMap,
    SpareExhaustedError,
    spare_count,
)
from repro.machine.health import MachineHealth, link_key
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.blocking import best_block_depth, reroute_penalty_cycles
from repro.runtime.cm_array import CMArray
from repro.runtime.faults import (
    FaultInjector,
    FaultKind,
    HardFaultSpec,
    LinkDownError,
    NoSpareError,
    ResiliencePolicy,
)
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import cross, square
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import pattern_from_offsets

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

SHAPE = (16, 24)  # 4 nodes -> 2x2 grid of 8x12 subgrids
ITERATIONS = 6

EXECUTION_MODES = [
    ("blocked", dict(block_depth=3)),
    ("fast", dict()),
    ("exact", dict(exact=True)),
]


def boundary_variant(pattern, mode, fill_value=1.5):
    modes = {
        "torus": {1: BoundaryMode.CIRCULAR, 2: BoundaryMode.CIRCULAR},
        "fill": {1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
    }[mode]
    return pattern_from_offsets(
        [tap.offset for tap in pattern.taps],
        name=f"{pattern.name}_{mode}",
        boundary=modes,
        fill_value=fill_value,
    )


def make_problem(pattern, *, spares=0, num_nodes=4, seed=0, shape=SHAPE,
                 grid=None):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params, shape=grid, spares=spares)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }
    return machine, compiled, x, coeffs


def reference_result(pattern, **kwargs):
    _, compiled, x, coeffs = make_problem(pattern)
    run = apply_stencil(
        compiled, x, coeffs, "R_REF", iterations=ITERATIONS, **kwargs
    )
    return run, run.result.to_numpy()


def chaos_run(pattern, schedule, *, spares=2, policy=None, **kwargs):
    machine, compiled, x, coeffs = make_problem(pattern, spares=spares)
    injector = FaultInjector(seed=CHAOS_SEED, schedule=schedule)
    run = apply_stencil(
        compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
        faults=injector, resilience=policy, **kwargs,
    )
    return machine, run


# ----------------------------------------------------------------------
# Configuration: spares, the coordinate map, the health ledger
# ----------------------------------------------------------------------


class TestSpareConfiguration:
    def test_spare_count_spellings(self):
        assert spare_count((4, 8), None) == 0
        assert spare_count((4, 8), 0) == 0
        assert spare_count((4, 8), 3) == 3
        assert spare_count((4, 8), "row") == 8
        assert spare_count((4, 8), "col") == 4
        assert spare_count((4, 8), "column") == 4

    @pytest.mark.parametrize("bad", [-1, True, False, "diagonal", 2.5])
    def test_bad_spare_specs_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            spare_count((4, 4), bad)

    def test_machine_exposes_spares(self):
        machine = CM2(MachineParams(num_nodes=4), spares=3)
        assert machine.has_spares
        assert machine.spares_remaining == 3
        assert "3/3 spares" in machine.describe()
        plain = CM2(MachineParams(num_nodes=4))
        assert not plain.has_spares
        assert "spares" not in plain.describe()

    def test_coordinate_map_remap_and_exhaustion(self):
        cmap = CoordinateMap((2, 2), num_spares=1)
        original = cmap.physical(1, 1)
        spare = cmap.remap(1, 1)
        assert spare == 4  # first spare id = rows * cols
        assert cmap.physical(1, 1) == spare
        assert original not in cmap.in_service
        assert cmap.spares_remaining == 0
        with pytest.raises(SpareExhaustedError):
            cmap.remap(0, 0)

    def test_spare_node_inherits_views_and_address_space(self):
        machine = CM2(MachineParams(num_nodes=4), spares=2)
        machine.alloc_stacked("A", (3, 3))
        stack = machine.stacked("A")
        stack[...] = np.arange(stack.size, dtype=np.float32).reshape(
            stack.shape
        )
        before = machine.node(1, 0).memory.buffer("A").copy()
        spare = machine.remap_node(1, 0)
        assert machine.node(1, 0) is spare
        assert spare.address >= 4  # beyond the original address space
        np.testing.assert_array_equal(
            machine.node(1, 0).memory.buffer("A"), before
        )
        # The stacked view integrity is preserved machine-wide.
        assert machine.stacked("A") is not None


class TestMachineHealth:
    def test_retire_heals_links_of_the_retired_node(self):
        health = MachineHealth()
        health.mark_link_dead(0, 1, "h")
        health.mark_link_dead(2, 3, "v")
        health.mark_link_rerouted(0, 1)
        assert health.link_delivers(0, 1)  # rerouted: arrives, pays detour
        assert not health.link_delivers(2, 3)
        health.retire_node(1)
        assert health.link_delivers(0, 1)
        assert link_key(0, 1) not in health.dead_links
        assert not health.link_delivers(2, 3)  # untouched by the retire

    def test_epoch_bumps_on_every_change(self):
        health = MachineHealth()
        e0 = health.epoch
        health.mark_node_dead(5)
        health.mark_link_dead(0, 1, "h")
        health.mark_link_rerouted(0, 1)
        health.retire_node(5)
        assert health.epoch == e0 + 4

    def test_dead_wins_over_slow(self):
        health = MachineHealth()
        health.mark_node_dead(3)
        health.mark_node_slow(3)
        assert health.node_dead(3)
        assert not health.node_slow(3)


# ----------------------------------------------------------------------
# Satellite: policy validation
# ----------------------------------------------------------------------


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_retries", -1),
            ("backoff_base_cycles", 0),
            ("checkpoint_interval", -2),
            ("max_replays", -1),
            ("checkpoint_cycles_per_word", 0.0),
            ("exchange_deadline_cycles", 0),
            ("probe_cycles", 0),
            ("probe_attempts", 0),
            ("link_failure_threshold", 0),
            ("slow_overrun_cycles", -5),
            ("slow_confirmations", 0),
            ("max_remaps", -1),
            ("migration_cycles_per_word", -1.0),
        ],
    )
    def test_each_field_validated_with_clear_message(self, field, value):
        with pytest.raises(ValueError, match=field):
            ResiliencePolicy(**{field: value})

    def test_backoff_cap_must_cover_base(self):
        with pytest.raises(ValueError, match="backoff_cap"):
            ResiliencePolicy(backoff_base_cycles=100, backoff_cap_cycles=50)

    def test_defaults_are_valid(self):
        ResiliencePolicy()  # must not raise


class TestHardFaultSpecValidation:
    def test_transient_kind_rejected(self):
        with pytest.raises(ValueError, match="hard fault"):
            HardFaultSpec(FaultKind.HALO_CORRUPT, 0, 0, 0)

    def test_link_down_requires_direction(self):
        with pytest.raises(ValueError, match="direction"):
            HardFaultSpec(FaultKind.LINK_DOWN, 0, 0, 0)
        with pytest.raises(ValueError, match="direction"):
            HardFaultSpec(FaultKind.NODE_DEAD, 0, 0, 0, direction="N")

    def test_negative_exchange_rejected(self):
        with pytest.raises(ValueError, match="at_exchange"):
            HardFaultSpec(FaultKind.NODE_DEAD, -1, 0, 0)


# ----------------------------------------------------------------------
# The acceptance property: kill anything once, recover bit-identically
# ----------------------------------------------------------------------


class TestKillAnyNode:
    @pytest.mark.parametrize("mode", ["torus", "fill"])
    @pytest.mark.parametrize("exec_name,exec_kwargs", EXECUTION_MODES)
    def test_every_node_every_epoch(self, mode, exec_name, exec_kwargs):
        pattern = boundary_variant(cross(1), mode)
        _, expected = reference_result(pattern, **exec_kwargs)
        for row in range(2):
            for col in range(2):
                for at in (0, 2, 5):
                    schedule = [
                        HardFaultSpec(FaultKind.NODE_DEAD, at, row, col)
                    ]
                    machine, run = chaos_run(
                        pattern, schedule, **exec_kwargs
                    )
                    assert np.array_equal(
                        run.result.to_numpy(), expected
                    ), f"node({row},{col}) at exchange {at} diverged"
                    stats = run.fault_stats
                    assert stats.remaps == 1
                    assert stats.timeouts >= 1
                    assert machine.spares_remaining == 1

    def test_source_and_coefficients_restored_bitwise(self):
        pattern = boundary_variant(square(1), "torus")
        machine, compiled, x, coeffs = make_problem(pattern, spares=2)
        before = {"X": x.to_numpy()}
        before.update({n: c.to_numpy() for n, c in coeffs.items()})
        injector = FaultInjector(
            seed=CHAOS_SEED,
            schedule=[HardFaultSpec(FaultKind.NODE_DEAD, 2, 1, 1)],
        )
        apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
            faults=injector,
        )
        np.testing.assert_array_equal(x.to_numpy(), before["X"])
        for name, coeff in coeffs.items():
            np.testing.assert_array_equal(coeff.to_numpy(), before[name])


class TestKillAnyLink:
    @pytest.mark.parametrize("mode", ["torus", "fill"])
    @pytest.mark.parametrize("exec_name,exec_kwargs", EXECUTION_MODES)
    def test_every_direction(self, mode, exec_name, exec_kwargs):
        pattern = boundary_variant(cross(1), mode)
        _, expected = reference_result(pattern, **exec_kwargs)
        for direction in ("N", "S", "W", "E"):
            for at in (0, 3):
                schedule = [
                    HardFaultSpec(
                        FaultKind.LINK_DOWN, at, 0, 1, direction=direction
                    )
                ]
                _, run = chaos_run(pattern, schedule, **exec_kwargs)
                assert np.array_equal(
                    run.result.to_numpy(), expected
                ), f"link {direction} at exchange {at} diverged"
                stats = run.fault_stats
                assert stats.reroutes >= 1
                assert stats.detour_cycles > 0

    def test_remap_heals_the_dead_link(self):
        """Killing the link then the node retires the bad wires: the
        spare's fresh links stop paying the detour."""
        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern)
        schedule = [
            HardFaultSpec(FaultKind.LINK_DOWN, 1, 0, 1, direction="E"),
            HardFaultSpec(FaultKind.NODE_DEAD, 3, 0, 1),
        ]
        machine, run = chaos_run(pattern, schedule)
        assert np.array_equal(run.result.to_numpy(), expected)
        assert not machine.health.dead_links


class TestSlowNode:
    @pytest.mark.parametrize("exec_name,exec_kwargs", EXECUTION_MODES)
    def test_live_migration_no_rollback(self, exec_name, exec_kwargs):
        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern, **exec_kwargs)
        schedule = [HardFaultSpec(FaultKind.NODE_SLOW, 1, 1, 0)]
        machine, run = chaos_run(pattern, schedule, **exec_kwargs)
        assert np.array_equal(run.result.to_numpy(), expected)
        stats = run.fault_stats
        assert stats.live_migrations == 1
        assert stats.remaps == 0
        assert stats.slow_overruns >= 1
        assert machine.spares_remaining == 1

    def test_spare_less_machine_limps_through(self):
        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern)
        schedule = [HardFaultSpec(FaultKind.NODE_SLOW, 1, 1, 0)]
        machine, run = chaos_run(pattern, schedule, spares=0)
        assert np.array_equal(run.result.to_numpy(), expected)
        stats = run.fault_stats
        assert stats.live_migrations == 0
        assert stats.slow_overruns >= ITERATIONS - 1


class TestTypedFailures:
    def test_dead_node_without_spare_is_typed(self):
        pattern = boundary_variant(cross(1), "torus")
        schedule = [HardFaultSpec(FaultKind.NODE_DEAD, 2, 0, 0)]
        with pytest.raises(NoSpareError, match="no spare"):
            chaos_run(pattern, schedule, spares=0)

    def test_remap_budget_exhaustion_is_typed(self):
        pattern = boundary_variant(cross(1), "torus")
        schedule = [
            HardFaultSpec(FaultKind.NODE_DEAD, 1, 0, 0),
            HardFaultSpec(FaultKind.NODE_DEAD, 3, 1, 1),
        ]
        policy = ResiliencePolicy(max_remaps=1)
        with pytest.raises(NoSpareError, match="budget"):
            chaos_run(pattern, schedule, spares=4, policy=policy)

    def test_link_down_with_no_detour_is_typed(self):
        # A 1x4 grid has no second row to route an E/W band around.
        pattern = boundary_variant(cross(1), "torus")
        machine, compiled, x, coeffs = make_problem(
            pattern, spares=2, grid=(1, 4), shape=(8, 48)
        )
        injector = FaultInjector(
            seed=CHAOS_SEED,
            schedule=[
                HardFaultSpec(FaultKind.LINK_DOWN, 1, 0, 1, direction="E")
            ],
        )
        with pytest.raises(LinkDownError):
            apply_stencil(
                compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
                faults=injector,
            )


# ----------------------------------------------------------------------
# Accounting: recovery costs reconcile exactly
# ----------------------------------------------------------------------


class TestRecoveryAccounting:
    @pytest.mark.parametrize("exec_name,exec_kwargs", EXECUTION_MODES)
    @pytest.mark.parametrize(
        "spec_kind,spec_kwargs",
        [
            (FaultKind.NODE_DEAD, dict(row=1, col=1)),
            (FaultKind.LINK_DOWN, dict(row=0, col=1, direction="S")),
            (FaultKind.NODE_SLOW, dict(row=0, col=0)),
        ],
    )
    def test_totals_reconcile_with_closed_form(
        self, exec_name, exec_kwargs, spec_kind, spec_kwargs
    ):
        pattern = boundary_variant(cross(1), "torus")
        reference, expected = reference_result(pattern, **exec_kwargs)
        schedule = [HardFaultSpec(spec_kind, 2, **spec_kwargs)]
        _, run = chaos_run(pattern, schedule, **exec_kwargs)
        assert np.array_equal(run.result.to_numpy(), expected)
        stats = run.fault_stats
        assert (
            run.comm_cycles_total
            == reference.comm_cycles_total + stats.recovery_comm_cycles()
        )
        assert (
            run.compute_cycles_total
            == reference.compute_cycles_total
            + stats.recovery_compute_cycles()
        )
        # The canonical exchange count survives rollback and replay.
        assert run.exchanges == reference.exchanges
        assert run.coeff_exchanges == reference.coeff_exchanges

    def test_no_fault_guarded_run_with_spares_reconciles(self):
        """The genesis checkpoint is charged, but only into the recovery
        bucket: guarded totals still decompose exactly."""
        pattern = boundary_variant(cross(1), "torus")
        reference, expected = reference_result(pattern)
        machine, run = chaos_run(pattern, schedule=[], spares=2)
        assert np.array_equal(run.result.to_numpy(), expected)
        stats = run.fault_stats
        assert stats.checkpoints >= 1  # genesis
        assert (
            run.comm_cycles_total
            == reference.comm_cycles_total + stats.recovery_comm_cycles()
        )
        assert (
            run.compute_cycles_total
            == reference.compute_cycles_total
            + stats.recovery_compute_cycles()
        )

    def test_recovery_shows_up_in_rate_report(self):
        from repro.analysis.timing import report

        pattern = boundary_variant(cross(1), "torus")
        schedule = [HardFaultSpec(FaultKind.NODE_DEAD, 2, 1, 1)]
        _, run = chaos_run(pattern, schedule)
        row = report(run).row()
        assert "remaps" in row and "timeouts" in row


# ----------------------------------------------------------------------
# Satellite: checkpoint/restore x auto temporal blocking under faults
# ----------------------------------------------------------------------


class TestCheckpointAutoBlocking:
    def test_auto_depth_chaos_is_bit_identical(self):
        pattern = cross(1)
        _, compiled, x, coeffs = make_problem(pattern, seed=9)
        reference = apply_stencil(
            compiled, x, coeffs, "R_REF", iterations=12, block_depth="auto"
        )
        _, compiled2, x2, coeffs2 = make_problem(pattern, seed=9, spares=4)
        injector = FaultInjector(
            seed=CHAOS_SEED,
            rates={"halo_corrupt": 0.1, "node_dead": 0.05},
        )
        chaos = apply_stencil(
            compiled2, x2, coeffs2, "R_CHAOS", iterations=12,
            block_depth="auto", faults=injector,
            resilience=ResiliencePolicy(checkpoint_interval=2, max_remaps=4),
        )
        np.testing.assert_array_equal(
            chaos.result.to_numpy(), reference.result.to_numpy()
        )
        assert chaos.block_depth == reference.block_depth

    def test_checkpoint_bounds_the_replay_distance(self):
        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern)
        schedule = [HardFaultSpec(FaultKind.NODE_DEAD, 5, 1, 0)]
        policy = ResiliencePolicy(checkpoint_interval=2)
        _, run = chaos_run(pattern, schedule, policy=policy)
        assert np.array_equal(run.result.to_numpy(), expected)
        stats = run.fault_stats
        assert stats.rollbacks == 1
        # Rewound to the last periodic checkpoint, not to iteration 0.
        assert 0 < stats.replayed_iterations <= policy.checkpoint_interval


# ----------------------------------------------------------------------
# Remap-aware block-depth selection
# ----------------------------------------------------------------------


class TestRemapAwareDepthSelection:
    def test_healthy_machine_matches_machineless_selection(self):
        pattern = cross(1)
        machine, compiled, x, _ = make_problem(pattern)
        d_plain = select_block_depth(compiled, x.subgrid_shape, 12)
        d_machine = select_block_depth(
            compiled, x.subgrid_shape, 12, machine=machine
        )
        assert d_plain == d_machine

    def test_reroute_penalty_scales_with_depth_and_is_zero_when_healthy(self):
        machine, compiled, x, _ = make_problem(cross(1))
        params = compiled.params
        assert (
            reroute_penalty_cycles(machine, x.subgrid_shape, params, 2, 1)
            == 0
        )
        machine.health.mark_link_dead(0, 1, "h")
        machine.health.mark_link_rerouted(0, 1)
        shallow = reroute_penalty_cycles(
            machine, x.subgrid_shape, params, 1, 1
        )
        deep = reroute_penalty_cycles(machine, x.subgrid_shape, params, 4, 1)
        assert 0 < shallow < deep

    def test_degraded_machine_does_not_poison_the_healthy_cache(self):
        pattern = cross(1)
        machine, compiled, x, _ = make_problem(pattern)
        healthy = select_block_depth(
            compiled, x.subgrid_shape, 12, machine=machine
        )
        machine.health.mark_link_dead(0, 2, "v")
        machine.health.mark_link_rerouted(0, 2)
        degraded = select_block_depth(
            compiled, x.subgrid_shape, 12, machine=machine
        )
        # The degraded selection is priced on the degraded machine.
        assert degraded == best_block_depth(
            compiled, x.subgrid_shape, 12, machine=machine
        )
        # A healthy machine still gets the healthy answer afterwards.
        fresh, compiled2, x2, _ = make_problem(pattern)
        assert (
            select_block_depth(
                compiled2, x2.subgrid_shape, 12, machine=fresh
            )
            == healthy
        )


# ----------------------------------------------------------------------
# The seeded campaign (CI sweeps CHAOS_SEED)
# ----------------------------------------------------------------------


class TestChaosCampaign:
    def test_seeded_campaign_survives_and_reconciles(self):
        report = run_campaign(
            seeds=(CHAOS_SEED,) if CHAOS_SEED else (1,),
            patterns=("cross5", "square9"),
        )
        assert report.ok, report.describe()
        assert report.num_trials == 12
        assert report.survival_rate == 1.0

    def test_trial_roundtrips_through_dict(self):
        trial = run_trial(
            "cross5", "torus", "fast", {}, seed=max(CHAOS_SEED, 1),
            schedule=[HardFaultSpec(FaultKind.NODE_DEAD, 2, 1, 1)],
            rates={},
        )
        assert trial.survived
        assert trial.stats.remaps == 1
        from repro.analysis.chaos import ChaosTrial

        clone = ChaosTrial.from_dict(trial.to_dict())
        assert clone.to_dict() == trial.to_dict()
        report = ChaosReport(trials=[trial])
        assert ChaosReport.from_dict(report.to_dict()).to_dict() == (
            report.to_dict()
        )
