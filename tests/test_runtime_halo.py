"""Tests for the halo exchange: data movement and the cost model."""

import numpy as np
import pytest

from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.halo import (
    exchange_cost,
    exchange_halo,
    halo_buffer_name,
)
from repro.stencil.gallery import border_demo, cross5, diamond13, square9
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import pattern_from_offsets


@pytest.fixture
def machine():
    return CM2(MachineParams(num_nodes=16))


def padded_of(machine, name, row, col):
    return machine.node(row, col).memory.buffer(halo_buffer_name(name))


class TestExchangeData:
    def test_interior_matches_own_subgrid(self, machine):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((64, 64)).astype(np.float32)
        x = CMArray.from_numpy("X", machine, data)
        exchange_halo(x, cross5(), machine.params)
        padded = padded_of(machine, "X", 1, 1)
        np.testing.assert_array_equal(padded[1:-1, 1:-1], x.subgrid(1, 1))

    def test_halo_equals_global_window_circular(self, machine):
        """Every node's padded buffer must equal the correspondingly
        wrapped window of the global array."""
        rng = np.random.default_rng(3)
        data = rng.standard_normal((64, 64)).astype(np.float32)
        x = CMArray.from_numpy("X", machine, data)
        pattern = diamond13()  # pad 2, needs corners
        exchange_halo(x, pattern, machine.params)
        pad = 2
        wrapped = np.pad(data, pad, mode="wrap")
        sr, sc = x.subgrid_shape
        for node in machine.nodes():
            r, c = node.coord.row, node.coord.col
            window = wrapped[r * sr : (r + 1) * sr + 2 * pad,
                             c * sc : (c + 1) * sc + 2 * pad]
            padded = padded_of(machine, "X", r, c)
            np.testing.assert_array_equal(padded, window)

    def test_halo_equals_global_window_fill(self, machine):
        """EOSHIFT (FILL) dimensions fill out-of-bounds halo with the
        boundary value at global edges only."""
        rng = np.random.default_rng(4)
        data = rng.standard_normal((64, 64)).astype(np.float32)
        x = CMArray.from_numpy("X", machine, data)
        pattern = pattern_from_offsets(
            [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)],
            boundary={1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
            fill_value=9.0,
        )
        exchange_halo(x, pattern, machine.params)
        padded_global = np.pad(data, 1, mode="constant", constant_values=9.0)
        sr, sc = x.subgrid_shape
        for node in machine.nodes():
            r, c = node.coord.row, node.coord.col
            window = padded_global[r * sr : (r + 1) * sr + 2,
                                   c * sc : (c + 1) * sc + 2]
            padded = padded_of(machine, "X", r, c)
            # Corners were skipped (cross pattern): compare edges + center.
            np.testing.assert_array_equal(padded[1:-1, :], window[1:-1, :])
            np.testing.assert_array_equal(padded[:, 1:-1], window[:, 1:-1])

    def test_mixed_boundary_modes(self, machine):
        """Circular rows, filled columns."""
        rng = np.random.default_rng(5)
        data = rng.standard_normal((64, 64)).astype(np.float32)
        x = CMArray.from_numpy("X", machine, data)
        pattern = pattern_from_offsets(
            [(dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)],
            boundary={1: BoundaryMode.CIRCULAR, 2: BoundaryMode.FILL},
            fill_value=0.0,
        )
        exchange_halo(x, pattern, machine.params)
        padded_global = np.pad(data, 1, mode="wrap")
        padded_global[:, 0] = 0.0
        padded_global[:, -1] = 0.0
        sr, sc = x.subgrid_shape
        for node in machine.nodes():
            r, c = node.coord.row, node.coord.col
            window = padded_global[r * sr : (r + 1) * sr + 2,
                                   c * sc : (c + 1) * sc + 2]
            np.testing.assert_array_equal(
                padded_of(machine, "X", r, c), window
            )

    def test_corner_skip_leaves_corners_unfilled(self, machine):
        data = np.ones((64, 64), dtype=np.float32)
        x = CMArray.from_numpy("X", machine, data)
        stats = exchange_halo(x, cross5(), machine.params)
        assert stats.corner_step_skipped
        padded = padded_of(machine, "X", 0, 0)
        assert padded[0, 0] == 0.0  # temp storage, never read

    def test_corner_step_runs_for_diagonal_patterns(self, machine):
        data = np.ones((64, 64), dtype=np.float32)
        x = CMArray.from_numpy("X", machine, data)
        stats = exchange_halo(x, square9(), machine.params)
        assert not stats.corner_step_skipped
        padded = padded_of(machine, "X", 0, 0)
        assert padded[0, 0] == 1.0

    def test_pad_wider_than_subgrid_rejected(self):
        machine = CM2(MachineParams(num_nodes=16))
        x = CMArray("X", machine, (4, 4))  # 1x1 subgrids
        with pytest.raises(ValueError, match="halo width"):
            exchange_halo(x, diamond13(), machine.params)

    def test_asymmetric_pattern_pads_by_max(self, machine):
        """Padding uses the largest of the four border widths on all
        sides (paper section 5.1)."""
        data = np.zeros((64, 64), dtype=np.float32)
        x = CMArray.from_numpy("X", machine, data)
        stats = exchange_halo(x, border_demo(), machine.params)
        assert stats.pad == 3  # West border width dominates
        padded = padded_of(machine, "X", 0, 0)
        # 64x64 global over the 4x4 grid: 16x16 subgrids.
        assert padded.shape == (16 + 6, 16 + 6)


class TestCostModel:
    def test_zero_pad_costs_nothing(self, machine):
        pattern = pattern_from_offsets([(0, 0)])
        stats = exchange_cost(pattern, (64, 64), machine.params)
        assert stats.cycles == 0
        assert stats.pad == 0

    def test_cost_proportional_to_longer_side(self, machine):
        """'the communications time will be proportional to the length
        of the longer side' (paper section 5.1)."""
        params = machine.params
        square = exchange_cost(cross5(), (64, 64), params)
        wide = exchange_cost(cross5(), (64, 128), params)
        tall = exchange_cost(cross5(), (128, 64), params)
        assert wide.cycles == tall.cycles
        assert (wide.cycles - params.comm_startup_cycles) == 2 * (
            square.cycles - params.comm_startup_cycles
        )

    def test_cost_scales_with_border_width(self, machine):
        params = machine.params
        narrow = exchange_cost(cross5(), (64, 64), params)  # pad 1
        # diamond13 pads 2 but also pays the corner step; compare a
        # corner-free radius-2 cross instead.
        from repro.stencil.gallery import cross9

        wide = exchange_cost(cross9(), (64, 64), params)  # pad 2
        assert (wide.cycles - params.comm_startup_cycles) == 2 * (
            narrow.cycles - params.comm_startup_cycles
        )

    def test_corner_step_costs_extra(self, machine):
        params = machine.params
        no_corners = exchange_cost(cross5(), (64, 64), params)
        corners = exchange_cost(square9(), (64, 64), params)
        assert corners.cycles > no_corners.cycles
        assert corners.corner_elements == 4

    def test_temp_words_accounting(self, machine):
        stats = exchange_cost(diamond13(), (64, 64), machine.params)
        assert stats.temp_words == 68 * 68

    def test_comm_fraction_shrinks_with_problem_size(self, machine):
        """Section 4.1: communication cost grows as the square root of
        the flops, so its share vanishes for large problems."""
        params = machine.params
        small = exchange_cost(cross5(), (32, 32), params)
        large = exchange_cost(cross5(), (256, 256), params)
        small_share = small.cycles / (32 * 32)
        large_share = large.cycles / (256 * 256)
        assert large_share < small_share / 4


class TestLegacyPrimitive:
    """The section 4.1 comparison: the old one-direction-at-a-time grid
    primitive vs the new simultaneous four-neighbor exchange."""

    def test_old_primitive_is_slower(self, machine):
        from repro.runtime.halo import legacy_exchange_cost

        params = machine.params
        for pattern in (cross5(), diamond13()):
            new = exchange_cost(pattern, (64, 64), params)
            old = legacy_exchange_cost(pattern, (64, 64), params)
            assert old.cycles > new.cycles
            assert old.pad == new.pad
            assert old.edge_elements == new.edge_elements

    def test_old_primitive_pays_per_direction_startups(self, machine):
        from repro.runtime.halo import legacy_exchange_cost

        params = machine.params
        old = legacy_exchange_cost(cross5(), (64, 64), params)
        # Four directions x pad 1: at least four startups.
        assert old.cycles >= 4 * params.comm_startup_cycles

    def test_old_primitive_zero_pad_free(self, machine):
        from repro.runtime.halo import legacy_exchange_cost
        from repro.stencil.pattern import pattern_from_offsets

        pattern = pattern_from_offsets([(0, 0)])
        assert legacy_exchange_cost(pattern, (64, 64), machine.params).cycles == 0

    def test_wider_halos_widen_the_gap(self, machine):
        from repro.runtime.halo import legacy_exchange_cost
        from repro.stencil.gallery import cross9

        params = machine.params
        narrow_ratio = (
            legacy_exchange_cost(cross5(), (64, 64), params).cycles
            / exchange_cost(cross5(), (64, 64), params).cycles
        )
        wide_ratio = (
            legacy_exchange_cost(cross9(), (64, 64), params).cycles
            / exchange_cost(cross9(), (64, 64), params).cycles
        )
        assert wide_ratio > narrow_ratio


class TestDegenerateGrids:
    """1xN and Nx1 node grids: every neighbor direction along the
    degenerate axis is the node itself (torus) or the global boundary
    (FILL), which stresses the roll/overwrite order of both halo paths."""

    MODES = {
        "torus": {1: BoundaryMode.CIRCULAR, 2: BoundaryMode.CIRCULAR},
        "fill": {1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
    }

    def _pattern(self, mode):
        # Corner taps (pad 1 square) exercise the diagonal messages.
        return pattern_from_offsets(
            [(dr, dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1)],
            name=f"square_{mode}",
            boundary=self.MODES[mode],
            fill_value=2.5,
        )

    @staticmethod
    def _scatter(shape, seed=7):
        machine = CM2(MachineParams(num_nodes=4), shape=shape)
        data = (
            np.random.default_rng(seed)
            .standard_normal((16, 24))
            .astype(np.float32)
        )
        return machine, CMArray.from_numpy("X", machine, data), data

    @pytest.mark.parametrize("shape", [(1, 4), (4, 1)])
    @pytest.mark.parametrize("mode", ["torus", "fill"])
    def test_batched_equals_per_node(self, shape, mode):
        pattern = self._pattern(mode)
        m1, x1, _ = self._scatter(shape)
        m2, x2, _ = self._scatter(shape)
        exchange_halo(x1, pattern, m1.params, batched=True)
        exchange_halo(x2, pattern, m2.params, batched=False)
        for node in m1.nodes():
            r, c = node.coord.row, node.coord.col
            np.testing.assert_array_equal(
                padded_of(m1, "X", r, c), padded_of(m2, "X", r, c)
            )

    @pytest.mark.parametrize("shape", [(1, 4), (4, 1)])
    def test_halo_matches_global_wrap(self, shape):
        pattern = self._pattern("torus")
        machine, x, data = self._scatter(shape)
        exchange_halo(x, pattern, machine.params)
        wrapped = np.pad(data, 1, mode="wrap")
        sr, sc = x.subgrid_shape
        for node in machine.nodes():
            r, c = node.coord.row, node.coord.col
            window = wrapped[r * sr : (r + 1) * sr + 2,
                             c * sc : (c + 1) * sc + 2]
            np.testing.assert_array_equal(
                padded_of(machine, "X", r, c), window
            )

    @pytest.mark.parametrize("shape", [(1, 4), (4, 1)])
    @pytest.mark.parametrize("mode", ["torus", "fill"])
    def test_blocked_equals_unblocked(self, shape, mode):
        """exchange_halo_deep bit-identity on degenerate grids, checked
        end to end through the blocked executor."""
        from repro.compiler.driver import compile_stencil
        from repro.runtime.stencil_op import apply_stencil

        pattern = self._pattern(mode)

        def run(block_depth):
            machine, x, _ = self._scatter(shape)
            compiled = compile_stencil(pattern, machine.params)
            rng = np.random.default_rng(11)
            coeffs = {
                name: CMArray.from_numpy(
                    name, machine,
                    rng.standard_normal((16, 24)).astype(np.float32),
                )
                for name in pattern.coefficient_names()
            }
            return apply_stencil(
                compiled, x, coeffs, "R",
                iterations=5, block_depth=block_depth,
            ).result.to_numpy()

        np.testing.assert_array_equal(run(1), run(2))

    def test_shape_must_hold_all_nodes(self):
        with pytest.raises(ValueError, match="does not hold"):
            CM2(MachineParams(num_nodes=4), shape=(1, 2))

    def test_shape_extents_must_be_powers_of_two(self):
        with pytest.raises(ValueError, match="powers of two"):
            CM2(MachineParams(num_nodes=12), shape=(3, 4))
