"""Tests for flop accounting, rate reporting, and extrapolation."""

import numpy as np
import pytest

from repro.analysis.flops import account
from repro.analysis.tables import format_comparison, format_table
from repro.analysis.timing import (
    extrapolate_mflops,
    report,
    resimulated_gflops,
)
from repro.compiler.driver import compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import cross5, diamond13


def small_run(num_nodes=4, subgrid=(16, 16), iterations=100):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    pattern = cross5()
    compiled = compile_stencil(pattern, params)
    gshape = (
        subgrid[0] * machine.grid_rows,
        subgrid[1] * machine.grid_cols,
    )
    X = CMArray("X", machine, gshape)
    C = {n: CMArray(n, machine, gshape) for n in pattern.coefficient_names()}
    return apply_stencil(compiled, X, C, iterations=iterations)


class TestFlopAccounting:
    def test_cross5_usefulness(self):
        """9 useful of 10 issued flops per point."""
        acc = account(cross5(), points=100)
        assert acc.useful_flops == 900
        assert acc.issued_flops == 1000
        assert acc.usefulness == pytest.approx(0.9)

    def test_diamond13_usefulness(self):
        acc = account(diamond13(), points=1)
        assert acc.useful_flops == 25
        assert acc.issued_flops == 26

    def test_iterations_multiply(self):
        acc = account(cross5(), points=10, iterations=5)
        assert acc.useful_flops == 9 * 10 * 5


class TestExtrapolation:
    def test_paper_scaling_16_to_2048(self):
        """The paper multiplies 16-node rates by 128."""
        assert extrapolate_mflops(72.8, 16, 2048) == pytest.approx(9318.4)

    def test_report_fields(self):
        run = small_run()
        rep = report(run)
        assert rep.nodes == 4
        assert rep.iterations == 100
        assert rep.subgrid_rows == 16
        assert rep.measured_mflops == pytest.approx(run.mflops)
        assert rep.extrapolated_gflops == pytest.approx(
            run.mflops * 2048 / 4 / 1e3
        )

    def test_resimulation_below_linear_extrapolation(self):
        """The honest 2,048-node rate falls short of the linear
        extrapolation because the single front end does not scale --
        the paper's own 13.65-extrapolated vs 11.62-measured gap."""
        run = small_run(num_nodes=16, subgrid=(64, 64))
        linear = extrapolate_mflops(run.mflops, 16, 2048) / 1e3
        honest = resimulated_gflops(run, 2048)
        assert honest == pytest.approx(linear, rel=0.01) or honest <= linear

    def test_resimulation_matches_at_same_size(self):
        run = small_run(num_nodes=16, subgrid=(64, 64))
        assert resimulated_gflops(run, 16) == pytest.approx(
            run.mflops / 1e3, rel=1e-9
        )


class TestTables:
    def test_format_table_groups_by_stencil(self):
        run = small_run()
        rows = [report(run), report(run)]
        text = format_table(rows)
        assert "Stencil" in text
        assert "Mflops" in text

    def test_format_comparison(self):
        text = format_comparison(
            [("GB copy loop", 11.62, 10.5), ("GB unrolled", 14.88, 13.0)]
        )
        assert "GB copy loop" in text
        assert "0.90x" in text or "0.9" in text
