"""Tests for the Fortran parser over the paper's own source shapes."""

import pytest

from repro.fortran.ast_nodes import BinOp, Call, IntLit, Name, UnaryOp
from repro.fortran.errors import ParseError
from repro.fortran.parser import (
    parse_assignment,
    parse_program,
    parse_subroutine,
)

PAPER_CROSS = """
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""


class TestSubroutine:
    def test_paper_cross_subroutine(self):
        sub = parse_subroutine(PAPER_CROSS)
        assert sub.name == "CROSS"
        assert sub.params == ("R", "X", "C1", "C2", "C3", "C4", "C5")
        assert len(sub.declarations) == 1
        assert len(sub.statements) == 1

    def test_declaration_rank(self):
        sub = parse_subroutine(PAPER_CROSS)
        assert sub.rank_of("R") == 2
        assert sub.rank_of("C5") == 2
        assert sub.rank_of("NOPE") is None

    def test_dimension_attribute(self):
        sub = parse_subroutine(
            "SUBROUTINE S (A)\nREAL, DIMENSION(:, :, :) :: A\nA = A * 2\nEND"
        )
        assert sub.rank_of("A") == 3

    def test_end_subroutine_with_name(self):
        sub = parse_subroutine(
            "SUBROUTINE S (A, B)\nA = B\nEND SUBROUTINE S"
        )
        assert sub.name == "S"

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_subroutine("SUBROUTINE S (A)\nA = 1")

    def test_multiple_subroutines(self):
        program = parse_program(
            "SUBROUTINE A (X, Y)\nX = Y\nEND\nSUBROUTINE B (X, Y)\nX = Y\nEND"
        )
        assert [s.name for s in program.subroutines] == ["A", "B"]
        assert program.find("b").name == "B"

    def test_find_missing_raises(self):
        program = parse_program("SUBROUTINE A (X, Y)\nX = Y\nEND")
        with pytest.raises(KeyError):
            program.find("missing")

    def test_exactly_one_subroutine_enforced(self):
        with pytest.raises(ParseError):
            parse_subroutine(
                "SUBROUTINE A (X, Y)\nX = Y\nEND\nSUBROUTINE B (X, Y)\nX = Y\nEND"
            )

    def test_intent_attribute_skipped(self):
        sub = parse_subroutine(
            "SUBROUTINE S (A)\nREAL, INTENT(IN), ARRAY(:, :) :: A\nA = A + 1\nEND"
        )
        assert sub.rank_of("A") == 2


class TestExpressions:
    def test_precedence_multiplication_binds_tighter(self):
        stmt = parse_assignment("R = A + B * C")
        assert isinstance(stmt.expr, BinOp)
        assert stmt.expr.op == "+"
        assert isinstance(stmt.expr.right, BinOp)
        assert stmt.expr.right.op == "*"

    def test_left_associativity(self):
        stmt = parse_assignment("R = A - B - C")
        # (A - B) - C
        assert stmt.expr.op == "-"
        assert isinstance(stmt.expr.left, BinOp)
        assert stmt.expr.left.op == "-"

    def test_unary_minus(self):
        stmt = parse_assignment("R = -A")
        assert isinstance(stmt.expr, UnaryOp)
        assert stmt.expr.op == "-"

    def test_parentheses(self):
        stmt = parse_assignment("R = (A + B) * C")
        assert stmt.expr.op == "*"
        assert isinstance(stmt.expr.left, BinOp)

    def test_call_positional_arguments(self):
        stmt = parse_assignment("R = CSHIFT(X, 1, -1)")
        call = stmt.expr
        assert isinstance(call, Call)
        assert call.func == "CSHIFT"
        assert len(call.args) == 3
        assert isinstance(call.args[0], Name)

    def test_call_keyword_arguments(self):
        stmt = parse_assignment("R = CSHIFT(X, DIM=1, SHIFT=-1)")
        call = stmt.expr
        assert dict(call.kwargs).keys() == {"DIM", "SHIFT"}

    def test_positional_after_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse_assignment("R = CSHIFT(X, DIM=1, 2)")

    def test_nested_calls(self):
        stmt = parse_assignment("R = CSHIFT(CSHIFT(X, 1, -1), 2, +1)")
        outer = stmt.expr
        assert isinstance(outer.args[0], Call)

    def test_continuation_statement(self):
        stmt = parse_assignment("R = C1 * X &\n  + C2 * X")
        assert stmt.expr.op == "+"

    def test_directive_attaches_to_assignment(self):
        stmt = parse_assignment("!REPRO$ STENCIL\nR = C1 * X")
        assert stmt.directive == "STENCIL"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_assignment("R = A\nR = B")

    def test_describe_round_trip(self):
        stmt = parse_assignment("R = C1 * CSHIFT(X, 1, -1) + C2")
        text = stmt.describe()
        assert "CSHIFT" in text and "C1" in text


class TestErrors:
    def test_empty_expression(self):
        with pytest.raises(ParseError):
            parse_assignment("R = ")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_assignment("R = (A + B")

    def test_program_must_start_with_subroutine(self):
        with pytest.raises(ParseError):
            parse_program("R = A + B")
