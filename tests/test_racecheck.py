"""Mutation self-tests for the ``repro racecheck`` concurrency analyzer.

Two layers of evidence that the analyzer is non-vacuous:

* the shipped tree is clean (zero RS7xx diagnostics over ``src/repro``),
  and
* re-introducing each class of concurrency bug into the *real* corpus --
  a stripped lock, an ``if`` around a Condition wait, a deleted
  caller-holds-lock annotation, a removed blocking-ok waiver, a stale
  guard name -- is caught with its specific RS7xx code.

Synthetic snippets cover the shapes the corpus deliberately does not
contain (lock-order inversions for RS702, wait/notify outside the lock
for RS704).
"""

import pathlib

from repro.verify import render_diagnostics
from repro.verify.concurrency import (
    analyze_sources,
    collect_python_files,
    predicted_lock_graph,
    racecheck_paths,
)

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def read(rel: str) -> str:
    return (SRC / rel).read_text()


def mutate(rel: str, old: str, new: str) -> str:
    """The corpus file with one verified-unique substitution applied."""
    source = read(rel)
    assert source.count(old) == 1, f"probe anchor not unique in {rel}: {old!r}"
    return source.replace(old, new)


def codes(result):
    return sorted({d.code for d in result.diagnostics})


def explain(result) -> str:
    return render_diagnostics(result.diagnostics)


class TestCleanTree:
    def test_shipped_tree_has_zero_diagnostics(self):
        result = racecheck_paths([str(SRC)])
        assert result.clean, explain(result)

    def test_collects_the_whole_package(self):
        files = collect_python_files([str(SRC)])
        names = {pathlib.Path(f).name for f in files}
        assert {"scheduler.py", "journal.py", "cache.py"} <= names
        assert len(files) > 50

    def test_predicted_lock_graph_shape(self):
        graph = predicted_lock_graph()
        assert set(graph.get("Scheduler._cond", ())) == {
            "JobJournal._lock",
            "MachinePool._lock",
            "Scheduler._breaker_lock",
            "ServiceAccounts._lock",
        }
        # Leaf locks acquire nothing further.
        assert "SyncCache._lock" not in graph or not graph["SyncCache._lock"]

    def test_result_reports_known_locks(self):
        result = racecheck_paths([str(SRC)])
        assert {
            "Scheduler._cond",
            "JobJournal._lock",
            "ServiceAccounts._lock",
            "SyncCache._lock",
            "MachinePool._lock",
        } <= set(result.locks)


class TestCorpusMutations:
    """Each probe resurrects a real bug class in the real corpus file."""

    def test_rs701_unguarded_mutation(self):
        # Strip the lock around the supervisor stop flag (the exact bug
        # this PR fixed in Scheduler.close).
        mutated = mutate(
            "service/scheduler.py",
            "with self._cond:\n            self._stop_supervisor = True",
            "if True:\n            self._stop_supervisor = True",
        )
        result = analyze_sources([("service/scheduler.py", mutated)])
        assert "RS701" in codes(result), explain(result)
        flagged = [d for d in result.diagnostics if d.code == "RS701"]
        assert any("_stop_supervisor" in d.message for d in flagged)

    def test_rs703_if_instead_of_while_around_wait(self):
        mutated = mutate(
            "service/scheduler.py",
            "while claimed is None:",
            "if claimed is None:",
        )
        result = analyze_sources([("service/scheduler.py", mutated)])
        # The enclosing ``while True`` dispatch loop must not count as
        # the predicate re-check.
        assert "RS703" in codes(result), explain(result)

    def test_rs704_annotation_removal_exposes_precondition(self):
        # Deleting the caller-holds-lock annotation turns the helper's
        # own _cond-guarded mutations into RS701s and its wait/notify
        # uses into RS704s.
        mutated = mutate(
            "service/scheduler.py",
            "def _requeue_or_fail_locked(self, entry: _QueueEntry, "
            "kind: str) -> None:  # guarded-by: _cond",
            "def _requeue_or_fail_locked(self, entry: _QueueEntry, "
            "kind: str) -> None:",
        )
        result = analyze_sources([("service/scheduler.py", mutated)])
        got = codes(result)
        assert "RS704" in got, explain(result)
        assert "RS701" in got, explain(result)

    def test_rs705_blocking_call_waiver_removal(self):
        mutated = mutate(
            "service/journal.py",
            "# lock-blocking-ok: append order is durability order.",
            "#",
        )
        result = analyze_sources([("service/journal.py", mutated)])
        assert "RS705" in codes(result), explain(result)
        flagged = [d for d in result.diagnostics if d.code == "RS705"]
        assert any("fsync" in d.message for d in flagged)

    def test_rs706_stale_guard_annotation_with_fixit(self):
        mutated = mutate(
            "compiler/cache.py",
            "self._entries: Dict[Hashable, object] = {}"
            "  # guarded-by: _lock",
            "self._entries: Dict[Hashable, object] = {}"
            "  # guarded-by: _cache_lock",
        )
        result = analyze_sources([("compiler/cache.py", mutated)])
        flagged = [d for d in result.diagnostics if d.code == "RS706"]
        assert len(flagged) == 1, explain(result)
        assert flagged[0].fixit is not None
        assert "_lock" in flagged[0].fixit

    def test_each_probe_is_the_only_regression(self):
        # The clean corpus analyzed alone stays clean, so every probe
        # diagnosis above is attributable to the mutation itself.
        for rel in (
            "service/scheduler.py",
            "service/journal.py",
            "compiler/cache.py",
        ):
            result = analyze_sources([(rel, read(rel))])
            assert result.clean, f"{rel}:\n{explain(result)}"


DIRECT_INVERSION = """\
import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def ab(self):
        with self._a:
            with self._b:
                pass

    def ba(self):
        with self._b:
            with self._a:
                pass
"""

INTERPROCEDURAL_INVERSION = """\
import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def ab(self):
        with self._a:
            with self._b:
                pass

    def ba(self):
        with self._b:
            self.inner_a()

    def inner_a(self):
        with self._a:
            pass
"""


class TestSyntheticSnippets:
    def test_rs702_direct_inversion(self):
        result = analyze_sources([("pair.py", DIRECT_INVERSION)])
        assert "RS702" in codes(result), explain(result)
        flagged = [d for d in result.diagnostics if d.code == "RS702"]
        assert any(
            "Pair._a" in d.message and "Pair._b" in d.message
            for d in flagged
        )

    def test_rs702_inversion_hidden_behind_a_call(self):
        result = analyze_sources(
            [("pair.py", INTERPROCEDURAL_INVERSION)]
        )
        assert "RS702" in codes(result), explain(result)

    def test_consistent_order_is_clean(self):
        consistent = DIRECT_INVERSION.replace(
            "    def ba(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n",
            "    def ba(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n",
        )
        result = analyze_sources([("pair.py", consistent)])
        assert result.clean, explain(result)

    def test_rs704_wait_outside_lock(self):
        snippet = (
            "import threading\n\n\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n\n"
            "    def bad(self):\n"
            "        self._cond.notify_all()\n"
        )
        result = analyze_sources([("w.py", snippet)])
        assert "RS704" in codes(result), explain(result)

    def test_rs703_while_true_does_not_satisfy_the_loop_rule(self):
        snippet = (
            "import threading\n\n\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n\n"
            "    def run(self):\n"
            "        with self._cond:\n"
            "            while True:\n"
            "                self._cond.wait()\n"
        )
        result = analyze_sources([("w.py", snippet)])
        assert "RS703" in codes(result), explain(result)

    def test_rs703_predicate_while_is_clean(self):
        snippet = (
            "import threading\n\n\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "        self.ready = False  # guarded-by: _cond\n\n"
            "    def run(self):\n"
            "        with self._cond:\n"
            "            while not self.ready:\n"
            "                self._cond.wait()\n"
        )
        result = analyze_sources([("w.py", snippet)])
        assert result.clean, explain(result)

    def test_rs705_blocking_call_and_trailing_waiver(self):
        body = (
            "import os\n"
            "import threading\n\n\n"
            "class J:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._fd = 3\n\n"
            "    def flush(self):\n"
            "        with self._lock:\n"
            "            os.fsync(self._fd){marker}\n"
        )
        flagged = analyze_sources(
            [("j.py", body.format(marker=""))]
        )
        assert "RS705" in codes(flagged), explain(flagged)
        waived = analyze_sources(
            [("j.py", body.format(marker="  # lock-blocking-ok: flush"))]
        )
        assert waived.clean, explain(waived)

    def test_rs701_caller_must_hold_declared_precondition(self):
        snippet = (
            "import threading\n\n\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # guarded-by: _lock\n\n"
            "    def _bump(self):  # guarded-by: _lock\n"
            "        self._n += 1\n\n"
            "    def good(self):\n"
            "        with self._lock:\n"
            "            self._bump()\n\n"
            "    def bad(self):\n"
            "        self._bump()\n"
        )
        result = analyze_sources([("s.py", snippet)])
        flagged = [d for d in result.diagnostics if d.code == "RS701"]
        assert len(flagged) == 1, explain(result)
        assert flagged[0].location is not None
        assert "_bump" in flagged[0].message
