"""Tests for the Lisp prototype front end (paper section 6, version 1)."""

import pytest

from repro.lisp.defstencil import (
    DefstencilError,
    parse_defstencil,
    parse_defstencil_with_types,
)
from repro.lisp.sexpr import SexprError, Symbol, read, read_all, write
from repro.stencil.pattern import CoeffKind

PAPER_DEFSTENCIL = """
(defstencil cross (r x c1 c2 c3 c4 c5)
  (single-float single-float)
  (:= r (+ (* c1 (cshift x 1 -1))
           (* c2 (cshift x 2 -1))
           (* c3 x)
           (* c4 (cshift x 2 +1))
           (* c5 (cshift x 1 +1)))))
"""


class TestSexprReader:
    def test_read_atom(self):
        assert read("42") == 42

    def test_read_float(self):
        assert read("2.5") == 2.5

    def test_read_symbol_uppercases(self):
        assert read("cshift") == Symbol("CSHIFT")

    def test_read_signed_integers(self):
        assert read("(-1 +1)") == [-1, 1]

    def test_nested_lists(self):
        assert read("(a (b c) d)") == [
            Symbol("A"),
            [Symbol("B"), Symbol("C")],
            Symbol("D"),
        ]

    def test_comments_ignored(self):
        assert read("(a ; comment\n b)") == [Symbol("A"), Symbol("B")]

    def test_unclosed_paren(self):
        with pytest.raises(SexprError):
            read("(a b")

    def test_stray_close_paren(self):
        with pytest.raises(SexprError):
            read(")")

    def test_read_all(self):
        assert len(read_all("(a) (b)")) == 2

    def test_write_round_trip(self):
        form = read("(a (b 1) 2.5)")
        assert read(write(form)) == form


class TestDefstencil:
    def test_paper_form_with_types(self):
        pattern = parse_defstencil_with_types(PAPER_DEFSTENCIL)
        assert pattern.name == "cross"
        assert set(pattern.offsets) == {
            (-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)
        }
        assert pattern.result == "R"
        assert pattern.source == "X"

    def test_coefficients_in_order(self):
        pattern = parse_defstencil_with_types(PAPER_DEFSTENCIL)
        assert pattern.coefficient_names() == ("C1", "C2", "C3", "C4", "C5")

    def test_four_element_form(self):
        pattern = parse_defstencil(
            "(defstencil s (r x c) (:= r (* c (cshift x 1 -1))))"
        )
        assert pattern.offsets == ((-1, 0),)

    def test_matches_fortran_front_end(self):
        from repro.fortran.parser import parse_assignment
        from repro.fortran.recognizer import recognize_assignment

        lisp = parse_defstencil_with_types(PAPER_DEFSTENCIL)
        fortran = recognize_assignment(
            parse_assignment(
                "R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(X, 2, -1)"
                " + C3 * X + C4 * CSHIFT(X, 2, +1) + C5 * CSHIFT(X, 1, +1)"
            )
        )
        assert lisp.offsets == fortran.offsets
        assert [t.coeff for t in lisp.taps] == [t.coeff for t in fortran.taps]

    def test_nested_cshift(self):
        pattern = parse_defstencil(
            "(defstencil s (r x c) (:= r (* c (cshift (cshift x 1 -1) 2 +1))))"
        )
        assert pattern.offsets == ((-1, 1),)

    def test_bare_data_term(self):
        pattern = parse_defstencil(
            "(defstencil s (r x c) (:= r (+ (* c (cshift x 1 -1)) x)))"
        )
        assert pattern.taps[1].coeff.kind is CoeffKind.UNIT

    def test_scalar_coefficient(self):
        pattern = parse_defstencil(
            "(defstencil s (r x) (:= r (* 0.25 (cshift x 1 -1))))"
        )
        assert pattern.taps[0].coeff.kind is CoeffKind.SCALAR

    def test_eoshift_supported(self):
        pattern = parse_defstencil(
            "(defstencil s (r x c) (:= r (* c (eoshift x 1 -1))))"
        )
        from repro.stencil.offsets import BoundaryMode

        assert pattern.boundary[1] is BoundaryMode.FILL


class TestDefstencilErrors:
    def test_result_must_be_argument(self):
        with pytest.raises(DefstencilError, match="not an argument"):
            parse_defstencil(
                "(defstencil s (x c) (:= r (* c (cshift x 1 -1))))"
            )

    def test_two_sources_rejected(self):
        with pytest.raises(DefstencilError, match="same variable"):
            parse_defstencil(
                "(defstencil s (r x y c) "
                "(:= r (+ (* c (cshift x 1 -1)) (* c (cshift y 1 1)))))"
            )

    def test_not_defstencil(self):
        with pytest.raises(DefstencilError):
            parse_defstencil("(defun f (x) x)")

    def test_no_shifts_rejected(self):
        with pytest.raises(DefstencilError, match="cannot identify"):
            parse_defstencil("(defstencil s (r x c) (:= r (* c x)))")

    def test_three_factor_product_rejected(self):
        with pytest.raises(DefstencilError, match="two factors"):
            parse_defstencil(
                "(defstencil s (r x a b) (:= r (* a b (cshift x 1 -1))))"
            )

    def test_missing_body(self):
        with pytest.raises(DefstencilError):
            parse_defstencil("(defstencil s (r x) (single-float))")
