"""Tests for the Fortran emitter and the stability/dispersion analysis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stability import (
    gravity_wave_courant,
    is_von_neumann_stable,
    leapfrog_stability_limit,
    leapfrog_theta,
    max_amplification,
    mode_mu_2d,
    standing_wave_amplitude,
    symbol,
)
from repro.fortran.parser import parse_assignment, parse_subroutine
from repro.fortran.printer import emit_statement, emit_subroutine
from repro.fortran.recognizer import recognize_assignment, recognize_subroutine
from repro.stencil.gallery import cross5, diamond13, square9
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import (
    Coefficient,
    StencilPattern,
    Tap,
    pattern_from_offsets,
)


class TestEmitter:
    def test_cross5_round_trips(self):
        pattern = cross5()
        source = emit_statement(pattern)
        recovered = recognize_assignment(parse_assignment(source))
        assert recovered.offsets == pattern.offsets
        assert recovered.coefficient_names() == pattern.coefficient_names()

    def test_subroutine_round_trips(self):
        pattern = diamond13()
        source = emit_subroutine(pattern)
        recovered = recognize_subroutine(parse_subroutine(source))
        assert set(recovered.offsets) == set(pattern.offsets)

    def test_scalar_coefficients_round_trip(self):
        taps = [
            Tap(offset=(0, -1), coeff=Coefficient.scalar(0.25)),
            Tap(offset=(0, 0), coeff=Coefficient.scalar(-0.5)),
            Tap(offset=(1, 1), coeff=Coefficient.unit()),
        ]
        pattern = StencilPattern(taps)
        recovered = recognize_assignment(
            parse_assignment(emit_statement(pattern))
        )
        assert recovered.offsets == pattern.offsets
        assert [t.coeff for t in recovered.taps] == [
            t.coeff for t in pattern.taps
        ]

    def test_eoshift_with_fill_round_trips(self):
        pattern = pattern_from_offsets(
            [(-1, 0), (0, 0), (1, 0)],
            boundary={1: BoundaryMode.FILL, 2: BoundaryMode.CIRCULAR},
            fill_value=2.5,
        )
        recovered = recognize_assignment(
            parse_assignment(emit_statement(pattern))
        )
        assert recovered.boundary[1] is BoundaryMode.FILL
        assert recovered.fill_value == 2.5

    def test_constant_term_round_trips(self):
        taps = [
            Tap(offset=(0, -1), coeff=Coefficient.array("C1")),
            Tap(
                offset=(0, 0),
                coeff=Coefficient.array("K"),
                is_constant_term=True,
            ),
        ]
        pattern = StencilPattern(taps)
        recovered = recognize_assignment(
            parse_assignment(emit_statement(pattern))
        )
        assert recovered.taps[1].is_constant_term
        assert recovered.taps[1].coeff.name == "K"

    def test_continued_statement_format(self):
        text = emit_statement(cross5(), width=60)
        assert text.count("&") == 4
        assert recognize_assignment(parse_assignment(text)).num_points == 5

    @given(
        offsets=st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, offsets):
        if all(o == (0, 0) for o in offsets):
            offsets = offsets + [(0, 1)]
        pattern = pattern_from_offsets(offsets)
        recovered = recognize_assignment(
            parse_assignment(emit_statement(pattern))
        )
        assert set(recovered.offsets) == set(offsets)


class TestVonNeumann:
    def scalar_pattern(self, weights):
        taps = [
            Tap(offset=o, coeff=Coefficient.scalar(w))
            for o, w in weights.items()
        ]
        return StencilPattern(taps)

    def test_stable_diffusion(self):
        lam = 0.2
        pattern = self.scalar_pattern(
            {(0, 0): 1 - 4 * lam, (0, 1): lam, (0, -1): lam,
             (1, 0): lam, (-1, 0): lam}
        )
        assert is_von_neumann_stable(pattern)

    def test_unstable_diffusion(self):
        lam = 0.35  # beyond the 2-D explicit limit of 0.25
        pattern = self.scalar_pattern(
            {(0, 0): 1 - 4 * lam, (0, 1): lam, (0, -1): lam,
             (1, 0): lam, (-1, 0): lam}
        )
        assert not is_von_neumann_stable(pattern)

    def test_symbol_at_zero_is_weight_sum(self):
        pattern = self.scalar_pattern({(0, 0): 0.5, (0, 1): 0.25, (1, 0): 0.25})
        assert symbol(pattern, 0.0, 0.0) == pytest.approx(1.0)

    def test_array_coefficients_rejected(self):
        with pytest.raises(ValueError, match="scalar"):
            symbol(cross5(), 0.0, 0.0)

    def test_heat_kernel_is_stable(self):
        from repro.apps.heat import heat_source
        from repro.fortran.parser import parse_assignment
        from repro.fortran.recognizer import recognize_assignment

        pattern = recognize_assignment(parse_assignment(heat_source(0.5)))
        assert is_von_neumann_stable(pattern)

    def test_amplification_bounded_by_weight_abs_sum(self):
        pattern = self.scalar_pattern({(0, 0): 0.3, (0, 1): -0.4})
        assert max_amplification(pattern) <= 0.7 + 1e-9


class TestLeapfrogDispersion:
    def test_theta_zero_mode(self):
        assert leapfrog_theta(0.25, 0.0) == 0.0

    def test_theta_monotone_in_mu(self):
        thetas = [leapfrog_theta(0.25, mu) for mu in (0.5, 1.0, 2.0, 4.0)]
        assert thetas == sorted(thetas)

    def test_unstable_mode_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            leapfrog_theta(1.0, 8.0)

    def test_stability_limit_2d(self):
        assert leapfrog_stability_limit(2) == pytest.approx(1 / math.sqrt(2))

    def test_amplitude_matches_wave_solver(self):
        """The library formula agrees with the simulated WaveSolver."""
        from repro.apps.wave import WaveSolver
        from repro.machine.machine import CM2
        from repro.machine.params import MachineParams

        shape = (16, 16)
        courant = 0.5
        solver = WaveSolver(
            CM2(MachineParams(num_nodes=4)), shape, courant=courant
        )
        solver.set_standing_wave(kx=1, ky=1)
        steps = 12
        solver.step(steps)
        amplitude = standing_wave_amplitude(
            steps, courant * courant, 1, 1, shape
        )
        rows, cols = shape
        yy, xx = np.mgrid[0:rows, 0:cols]
        mode = np.sin(2 * np.pi * yy / rows) * np.sin(2 * np.pi * xx / cols)
        expected = amplitude * mode
        np.testing.assert_allclose(
            solver.wavefield(), expected, atol=5e-4
        )

    def test_gravity_wave_courant(self):
        assert gravity_wave_courant(100.0, 1.0, 1000.0) == pytest.approx(
            math.sqrt(981.0) / 1000.0
        )

    def test_mode_mu_range(self):
        assert mode_mu_2d(0, 0, (16, 16)) == 0.0
        assert mode_mu_2d(8, 8, (16, 16)) == pytest.approx(8.0)
