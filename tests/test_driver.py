"""Tests for the high-level compilation drivers."""

import pytest

from repro.compiler.driver import (
    compile_defstencil,
    compile_fortran,
    compile_stencil,
)
from repro.fortran.errors import NotAStencilError
from repro.machine.params import MachineParams
from repro.stencil.gallery import cross5

PAPER_SUBROUTINE = """
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""

PAPER_DEFSTENCIL = """
(defstencil cross (r x c1 c2 c3 c4 c5)
  (single-float single-float)
  (:= r (+ (* c1 (cshift x 1 -1))
           (* c2 (cshift x 2 -1))
           (* c3 x)
           (* c4 (cshift x 2 +1))
           (* c5 (cshift x 1 +1)))))
"""


class TestDrivers:
    def test_compile_stencil(self):
        compiled = compile_stencil(cross5())
        assert compiled.max_width == 8

    def test_compile_fortran_subroutine(self):
        compiled = compile_fortran(PAPER_SUBROUTINE)
        assert compiled.pattern.name == "cross"
        assert compiled.max_width == 8

    def test_compile_fortran_bare_statement(self):
        compiled = compile_fortran("R = C1 * CSHIFT(X, 1, -1) + C2 * X")
        assert compiled.pattern.num_points == 2

    def test_compile_defstencil_with_types(self):
        compiled = compile_defstencil(PAPER_DEFSTENCIL)
        assert compiled.pattern.name == "cross"

    def test_compile_defstencil_without_types(self):
        compiled = compile_defstencil(
            "(defstencil s (r x c) (:= r (* c (cshift x 1 -1))))"
        )
        assert compiled.pattern.offsets == ((-1, 0),)

    def test_all_three_front_ends_agree(self):
        from_pattern = compile_stencil(cross5())
        from_fortran = compile_fortran(PAPER_SUBROUTINE)
        from_lisp = compile_defstencil(PAPER_DEFSTENCIL)
        assert (
            from_pattern.pattern.offsets
            == from_fortran.pattern.offsets
            == from_lisp.pattern.offsets
        )
        assert (
            from_pattern.widths == from_fortran.widths == from_lisp.widths
        )
        for width in from_pattern.widths:
            assert (
                from_pattern.plans[width].steady_line_cycles
                == from_fortran.plans[width].steady_line_cycles
                == from_lisp.plans[width].steady_line_cycles
            )

    def test_params_thread_through(self):
        params = MachineParams(scratch_memory_words=100)
        compiled = compile_fortran(PAPER_SUBROUTINE, params)
        assert 8 not in compiled.plans  # scratch limit bites

    def test_width_menu_respected(self):
        compiled = compile_stencil(cross5(), widths=(4, 2))
        assert compiled.widths == (4, 2)

    def test_fortran_non_stencil_raises(self):
        with pytest.raises(NotAStencilError):
            compile_fortran("R = C1 / CSHIFT(X, 1, -1)")
