"""Tests for the sweep drivers and the fieldwise baseline variant."""

import pytest

from repro.analysis.sweeps import (
    PAPER_SUBGRIDS,
    paper_iterations,
    run_cell,
    table1_sweep,
)
from repro.analysis.tables import format_table
from repro.baseline.cmfortran import (
    FIELDWISE_COSTS,
    CmFortranCosts,
    run_cmfortran,
)
from repro.machine.params import MachineParams
from repro.stencil.gallery import cross5, cross9


class TestSweeps:
    def test_paper_iterations_match_table(self):
        """The paper runs 500 iterations at 64x64, 250 at 64/128x128,
        100 at the large sizes."""
        assert paper_iterations((64, 64)) == 500
        assert paper_iterations((64, 128)) == 250
        assert paper_iterations((128, 128)) == 250
        assert paper_iterations((128, 256)) == 100
        assert paper_iterations((256, 256)) == 100

    def test_run_cell(self):
        run = run_cell(cross5(), (64, 64), num_nodes=4)
        assert run.iterations == 500
        assert run.mflops > 0

    def test_table1_sweep_shape(self):
        reports = table1_sweep(
            patterns=[cross5()], subgrids=[(32, 32), (64, 64)], num_nodes=4
        )
        assert len(reports) == 2
        assert reports[0].stencil == "cross5"
        text = format_table(reports)
        assert "cross5" in text

    def test_sweep_covers_paper_grid(self):
        assert len(PAPER_SUBGRIDS) == 5


class TestFieldwiseBaseline:
    def test_fieldwise_slower_than_slicewise(self):
        """Section 3's stacking: fieldwise < slicewise (~4 Gflops) <
        convolution compiler (>10 Gflops)."""
        params = MachineParams(num_nodes=2048)
        slicewise = run_cmfortran(cross9(), (128, 256), params)
        fieldwise = run_cmfortran(
            cross9(), (128, 256), params, costs=FIELDWISE_COSTS
        )
        assert fieldwise.gflops < slicewise.gflops / 2

    def test_fieldwise_order_of_magnitude(self):
        """Roughly 1-2 Gflops full-machine: the pre-slicewise world."""
        params = MachineParams(num_nodes=2048)
        fieldwise = run_cmfortran(
            cross9(), (128, 256), params, costs=FIELDWISE_COSTS
        )
        assert 0.5 < fieldwise.gflops < 2.5

    def test_custom_costs_respected(self):
        params = MachineParams(num_nodes=16)
        cheap = run_cmfortran(
            cross5(),
            (64, 64),
            params,
            costs=CmFortranCosts(cycles_per_elementwise_point=1.0),
        )
        dear = run_cmfortran(
            cross5(),
            (64, 64),
            params,
            costs=CmFortranCosts(cycles_per_elementwise_point=10.0),
        )
        assert cheap.mflops > dear.mflops
