"""The ``RS_LOCKDEP=1`` runtime: observed lock-order validation.

The registry is exercised directly (edges, cycles, cross-check), then
through the instrumented factories against the real control plane: a
multi-thread cache hammer, a scheduler crash/respawn cycle under fault
injection, and an injected inversion that must trip the cycle assertion
at the acquisition that closes it.  ``enabled()`` is consulted at lock
*creation*, so every test that wants instrumentation sets the flag
before constructing the object under test.
"""

import os
import pathlib
import subprocess
import sys
import threading

import pytest

import repro
from repro.verify import lockdep, predicted_lock_graph
from repro.verify.lockdep import (
    REGISTRY,
    LockdepRegistry,
    LockOrderViolation,
)

SRC_DIR = pathlib.Path(repro.__file__).resolve().parents[1]


@pytest.fixture
def lockdep_on(monkeypatch):
    monkeypatch.setenv(lockdep.ENV_FLAG, "1")
    REGISTRY.reset()
    yield REGISTRY
    REGISTRY.reset()


class TestRegistry:
    def test_records_edges_and_counts(self):
        registry = LockdepRegistry()
        registry.note_acquire("A", [])
        registry.note_acquire("B", ["A"])
        registry.note_acquire("B", ["A"])
        assert registry.edges() == {"A": ("B",)}
        assert registry.acquisitions("A") == 1
        assert registry.acquisitions("B") == 2
        assert registry.acquisitions() == 3
        assert registry.locks() == ("A", "B")

    def test_reentrant_hold_is_not_an_edge(self):
        registry = LockdepRegistry()
        registry.note_acquire("A", ["A"])
        assert registry.edges() == {}

    def test_cycle_closing_edge_raises_immediately(self):
        registry = LockdepRegistry()
        registry.note_acquire("B", ["A"])
        with pytest.raises(LockOrderViolation) as excinfo:
            registry.note_acquire("A", ["B"])
        assert set(excinfo.value.cycle) == {"A", "B"}
        # The edge is kept, so the post-mortem queries agree.
        assert registry.find_cycle() is not None
        with pytest.raises(LockOrderViolation):
            registry.assert_acyclic()

    def test_acyclic_graph_passes_assertion(self):
        registry = LockdepRegistry()
        registry.note_acquire("B", ["A"])
        registry.note_acquire("C", ["A", "B"])
        assert registry.find_cycle() is None
        registry.assert_acyclic()

    def test_cross_check_accepts_transitively_predicted_edges(self):
        registry = LockdepRegistry()
        registry.note_acquire("C", ["A"])  # observed A -> C directly
        predicted = {"A": ["B"], "B": ["C"]}
        assert registry.cross_check(predicted) == []

    def test_cross_check_reports_unpredicted_edges(self):
        registry = LockdepRegistry()
        registry.note_acquire("B", ["A"])
        registry.note_acquire("D", ["C"])
        assert registry.cross_check({"A": ["B"]}) == [("C", "D")]

    def test_reset_clears_everything(self):
        registry = LockdepRegistry()
        registry.note_acquire("B", ["A"])
        registry.reset()
        assert registry.edges() == {}
        assert registry.acquisitions() == 0


class TestFactories:
    def test_disabled_factories_return_plain_primitives(self, monkeypatch):
        monkeypatch.delenv(lockdep.ENV_FLAG, raising=False)
        assert type(lockdep.lock("X")) is type(threading.Lock())
        assert type(lockdep.rlock("X")) is type(threading.RLock())
        assert isinstance(lockdep.condition("X"), threading.Condition)

    def test_enabled_factories_instrument(self, lockdep_on):
        mutex = lockdep.lock("TestFactories.mutex")
        with mutex:
            pass
        assert REGISTRY.acquisitions("TestFactories.mutex") == 1

    def test_condition_wait_notify_across_threads(self, lockdep_on):
        cond = lockdep.condition("TestFactories.cond")
        state = {"ready": False, "seen": False}

        def waiter():
            with cond:
                while not state["ready"]:
                    cond.wait(timeout=5.0)
                state["seen"] = True

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            state["ready"] = True
            cond.notify_all()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert state["seen"] is True
        assert REGISTRY.acquisitions("TestFactories.cond") >= 2

    def test_injected_inversion_trips_the_cycle_assertion(self, lockdep_on):
        a = lockdep.lock("Inversion.a")
        b = lockdep.lock("Inversion.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation) as excinfo:
                a.acquire()
        assert "Inversion.a" in excinfo.value.cycle
        assert "Inversion.b" in excinfo.value.cycle


class TestControlPlaneUnderLockdep:
    def test_cache_hammer_records_an_acyclic_leaf(self, lockdep_on):
        from repro.compiler.cache import SyncCache

        cache = SyncCache("lockdep-test", limit=64)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(200):
                    key = (worker + i) % 10
                    value = cache.get_or_compute(key, lambda k=key: k * 2)
                    assert value == key * 2
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert REGISTRY.acquisitions("SyncCache._lock") >= 8 * 200
        REGISTRY.assert_acyclic()
        # The cache is a leaf: it never acquires another lock.
        assert "SyncCache._lock" not in REGISTRY.edges()

    def test_scheduler_crash_respawn_matches_static_graph(self, lockdep_on):
        from repro.machine.params import MachineParams
        from repro.runtime.faults import (
            ServiceFaultInjector,
            ServiceFaultKind,
        )
        from repro.service import (
            MachinePool,
            Scheduler,
            ServicePolicy,
            StencilJob,
        )

        injector = ServiceFaultInjector(
            seed=1,
            rates={ServiceFaultKind.WORKER_CRASH: 1.0},
            max_faults=2,
        )
        policy = ServicePolicy(
            deadline_seconds=0.2,
            max_attempts=3,
            backoff_base_seconds=0.001,
            backoff_cap_seconds=0.004,
            supervision_interval_seconds=0.002,
        )
        params = MachineParams(num_nodes=16)
        with Scheduler(
            MachinePool(params),
            service_policy=policy,
            faults=injector,
        ) as scheduler:
            handles = [
                scheduler.submit(
                    StencilJob(
                        tenant="t",
                        grid_shape=(16, 16),
                        seed=index,
                        partition_shape=(2, 2),
                    )
                )
                for index in range(3)
            ]
            for handle in handles:
                handle.result(timeout=60.0)
        assert injector.total_injected == 2

        # The crash/respawn cycle exercised every control-plane lock;
        # the observed DAG must be acyclic and fully explained by the
        # statically predicted graph.
        REGISTRY.assert_acyclic()
        assert REGISTRY.acquisitions("Scheduler._cond") > 0
        assert REGISTRY.acquisitions("MachinePool._lock") > 0
        assert REGISTRY.cross_check(predicted_lock_graph()) == []

    def test_rs_lockdep_smoke_in_a_fresh_process(self):
        # The tier-1-style smoke: a whole scheduler run in a subprocess
        # with RS_LOCKDEP=1 from the very first import, cross-checked
        # against the static graph before exit.
        script = (
            "from repro.machine.params import MachineParams\n"
            "from repro.service import MachinePool, Scheduler, StencilJob\n"
            "from repro.verify import lockdep, predicted_lock_graph\n"
            "assert lockdep.enabled()\n"
            "with Scheduler(MachinePool(MachineParams(num_nodes=16)))"
            " as scheduler:\n"
            "    handles = [scheduler.submit(StencilJob(tenant='t',"
            " grid_shape=(16, 16), seed=s)) for s in range(2)]\n"
            "    for handle in handles:\n"
            "        handle.result(timeout=60.0)\n"
            "registry = lockdep.REGISTRY\n"
            "registry.assert_acyclic()\n"
            "assert registry.cross_check(predicted_lock_graph()) == []\n"
            "print(registry.describe())\n"
        )
        env = dict(os.environ)
        env["RS_LOCKDEP"] = "1"
        env["PYTHONPATH"] = os.pathsep.join(
            path
            for path in (str(SRC_DIR), env.get("PYTHONPATH", ""))
            if path
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "lockdep:" in result.stdout
        assert "Scheduler._cond" in result.stdout
