"""Tests for array decomposition (Figure 1) and CMArray scatter/gather."""

import numpy as np
import pytest

from repro.machine.geometry import NodeCoord
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.decomposition import Decomposition


@pytest.fixture
def machine16():
    return CM2(MachineParams(num_nodes=16))


class TestDecomposition:
    def test_figure1_shapes(self, machine16):
        """256x256 over 16 nodes: 64x64 subgrids (paper Figure 1)."""
        decomp = Decomposition((256, 256), machine16)
        assert decomp.subgrid_shape == (64, 64)
        assert decomp.points_per_node == 4096

    def test_figure1_corner_blocks(self, machine16):
        decomp = Decomposition((256, 256), machine16)
        assert decomp.block(NodeCoord(0, 0)).fortran_ranges() == "A(1:64,1:64)"
        assert (
            decomp.block(NodeCoord(3, 3)).fortran_ranges()
            == "A(193:256,193:256)"
        )

    def test_figure1_interior_block(self, machine16):
        """Paper Figure 1 shows A(65:128,65:128) for node (1,1)."""
        decomp = Decomposition((256, 256), machine16)
        assert (
            decomp.block(NodeCoord(1, 1)).fortran_ranges()
            == "A(65:128,65:128)"
        )

    def test_figure1_text_contains_all_blocks(self, machine16):
        text = Decomposition((256, 256), machine16).figure1_text()
        assert "A(1:64,1:64)" in text
        assert "A(193:256,129:192)" in text
        assert text.count("A(") == 16

    def test_blocks_cover_array_exactly(self, machine16):
        decomp = Decomposition((128, 256), machine16)
        covered = np.zeros((128, 256), dtype=int)
        for block in decomp.blocks():
            covered[block.slices()] += 1
        assert (covered == 1).all()

    def test_non_divisible_rejected(self, machine16):
        with pytest.raises(ValueError, match="divide"):
            Decomposition((66, 256), machine16)

    def test_rectangular_subgrids(self, machine16):
        decomp = Decomposition((256, 512), machine16)
        assert decomp.subgrid_shape == (64, 128)

    def test_scatter_gather_round_trip(self, machine16):
        decomp = Decomposition((64, 64), machine16)
        rng = np.random.default_rng(0)
        array = rng.standard_normal((64, 64)).astype(np.float32)
        subgrids = decomp.scatter(array)
        assert len(subgrids) == 16
        np.testing.assert_array_equal(decomp.gather(subgrids), array)

    def test_scatter_shape_mismatch(self, machine16):
        decomp = Decomposition((64, 64), machine16)
        with pytest.raises(ValueError, match="shape"):
            decomp.scatter(np.zeros((32, 32)))

    def test_scatter_places_correct_values(self, machine16):
        decomp = Decomposition((64, 64), machine16)
        array = np.arange(64 * 64, dtype=np.float32).reshape(64, 64)
        subgrids = decomp.scatter(array)
        assert subgrids[NodeCoord(1, 2)][0, 0] == array[16, 32]


class TestCMArray:
    def test_from_numpy_round_trip(self, machine16):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((64, 128)).astype(np.float32)
        array = CMArray.from_numpy("A", machine16, data)
        np.testing.assert_array_equal(array.to_numpy(), data)

    def test_allocation_is_zeroed(self, machine16):
        array = CMArray("Z", machine16, (64, 64))
        assert not array.to_numpy().any()

    def test_fill(self, machine16):
        array = CMArray("F", machine16, (64, 64))
        array.fill(2.5)
        assert (array.to_numpy() == np.float32(2.5)).all()

    def test_subgrid_view_is_live(self, machine16):
        array = CMArray("V", machine16, (64, 64))
        array.subgrid(2, 3)[0, 0] = 7.0
        assert array.to_numpy()[32, 48] == 7.0

    def test_like_creates_sibling(self, machine16):
        a = CMArray("A", machine16, (64, 64))
        b = a.like("B")
        assert b.global_shape == a.global_shape
        assert b.name == "B"

    def test_buffers_installed_on_every_node(self, machine16):
        CMArray("EVERY", machine16, (64, 64))
        for node in machine16.nodes():
            assert node.memory.has_buffer("EVERY")

    def test_float32_conversion(self, machine16):
        data = np.ones((64, 64), dtype=np.float64)
        array = CMArray.from_numpy("D", machine16, data)
        assert array.to_numpy().dtype == np.float32
