"""Algorithm-based fault tolerance: checksums, forward correction, SDC.

The contract under test is the ABFT acceptance property: every injected
silent bit-flip in a resident result stack is *detected* by the GF(2)
row/column checksum residuals; single-cell damage per tile is
*localized* (intersect the violated row and column) and
*forward-corrected* in place -- bit-exactly, with zero rollback and zero
replay; multi-cell damage falls back to the checkpoint/rollback ladder
or surfaces as the typed :class:`SdcUncorrectableError`.  Seal/verify
overhead is charged to the dedicated ``abft_cycles`` bucket and the
run's totals reconcile exactly as ``reference + recovery + abft``.
"""

import numpy as np
import pytest

from repro.compiler.driver import compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.abft import (
    AbftSeal,
    col_parity,
    row_parity,
    seal_checksums,
    verify_and_correct,
)
from repro.runtime.batch import apply_stencil_batch
from repro.runtime.cm_array import CMArray
from repro.runtime.faults import (
    FaultError,
    FaultGuard,
    FaultInjector,
    FaultKind,
    ResiliencePolicy,
    SdcUncorrectableError,
)
from repro.runtime.stencil_op import apply_stencil
from repro.stencil.gallery import cross5, cross9, square9

SHAPE = (16, 24)  # 4 nodes -> 2x2 grid of 8x12 subgrids
ITERATIONS = 6


def make_problem(pattern, *, num_nodes=4, seed=0, shape=SHAPE,
                 grid=None):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params, shape=grid)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }
    return machine, compiled, x, coeffs


def random_stack(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


def flip(stack, index, bit):
    stack.view(np.uint32)[index] ^= np.uint32(1 << bit)


# ----------------------------------------------------------------------
# Checksum algebra
# ----------------------------------------------------------------------


def test_parity_shapes_drop_the_reduced_axis():
    stack = random_stack((2, 2, 8, 12))
    assert row_parity(stack).shape == (2, 2, 8)
    assert col_parity(stack).shape == (2, 2, 12)
    batched = random_stack((3, 2, 2, 8, 12), seed=1)
    assert row_parity(batched).shape == (3, 2, 2, 8)
    assert col_parity(batched).shape == (3, 2, 2, 12)


def test_parity_requires_float32():
    with pytest.raises(TypeError, match="float32"):
        row_parity(np.zeros((2, 2, 4, 4), dtype=np.float64))


def test_clean_stack_verifies_with_zero_corrections():
    stack = random_stack((2, 2, 8, 12))
    sealed = seal_checksums(stack)
    before = stack.copy()
    assert verify_and_correct(stack, sealed, site="clean") == 0
    assert np.array_equal(stack, before)


def test_single_flip_is_localized_and_restored_bit_exactly():
    stack = random_stack((2, 2, 8, 12))
    pristine = stack.copy()
    sealed = seal_checksums(stack)
    flip(stack, (1, 0, 5, 7), 22)
    assert not np.array_equal(stack, pristine)
    assert verify_and_correct(stack, sealed, site="single") == 1
    assert np.array_equal(
        stack.view(np.uint32), pristine.view(np.uint32)
    )


def test_single_flip_under_batched_lead_axes():
    stack = random_stack((3, 2, 2, 2, 6, 8), seed=2)
    pristine = stack.copy()
    sealed = seal_checksums(stack)
    flip(stack, (2, 1, 0, 1, 3, 5), 3)
    assert verify_and_correct(stack, sealed, site="batched") == 1
    assert np.array_equal(
        stack.view(np.uint32), pristine.view(np.uint32)
    )


def test_two_flips_in_one_tile_row_are_uncorrectable():
    stack = random_stack((2, 2, 8, 12))
    sealed = seal_checksums(stack)
    flip(stack, (0, 1, 4, 2), 9)
    flip(stack, (0, 1, 4, 10), 17)
    with pytest.raises(SdcUncorrectableError, match="multi-cell"):
        verify_and_correct(stack, sealed, site="same-row")


def test_flips_in_two_different_tiles_both_forward_correct():
    stack = random_stack((2, 2, 8, 12))
    pristine = stack.copy()
    sealed = seal_checksums(stack)
    flip(stack, (0, 0, 1, 2), 5)
    flip(stack, (1, 1, 6, 9), 28)
    assert verify_and_correct(stack, sealed, site="two-tiles") == 2
    assert np.array_equal(
        stack.view(np.uint32), pristine.view(np.uint32)
    )


def test_missing_seal_and_shape_mismatch_are_typed():
    stack = random_stack((2, 2, 4, 4))
    with pytest.raises(SdcUncorrectableError, match="no ABFT seal"):
        verify_and_correct(stack, None, site="missing")
    sealed = seal_checksums(stack)
    stale = AbftSeal(row=sealed.row, col=sealed.col, shape=(2, 2, 8, 8))
    with pytest.raises(SdcUncorrectableError, match="shape"):
        verify_and_correct(stack, stale, site="stale")


# ----------------------------------------------------------------------
# Knob validation
# ----------------------------------------------------------------------


def test_policy_rejects_abft_without_a_fallback_ladder():
    with pytest.raises(ValueError) as excinfo:
        ResiliencePolicy(abft=True, max_replays=0)
    message = str(excinfo.value)
    assert "abft" in message and "max_replays" in message


def test_guard_rejects_sdc_rate_without_abft():
    injector = FaultInjector(seed=1, rates={"sdc": 0.5})
    with pytest.raises(ValueError, match="abft"):
        FaultGuard(policy=ResiliencePolicy(), injector=injector)
    # The same pairing with abft on constructs fine.
    FaultGuard(policy=ResiliencePolicy(abft=True), injector=injector)


def test_sdc_is_a_registered_fault_kind_but_not_transient_or_hard():
    from repro.runtime.faults import (
        ALL_FAULT_KINDS,
        HARD_FAULT_KINDS,
        TRANSIENT_FAULT_KINDS,
    )

    assert FaultKind.SDC.value in ALL_FAULT_KINDS
    assert FaultKind.SDC.value not in TRANSIENT_FAULT_KINDS
    assert FaultKind.SDC.value not in HARD_FAULT_KINDS


# ----------------------------------------------------------------------
# End-to-end: solo executor
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_solo_fast_forward_corrects_every_strike(seed):
    pattern = cross5()
    _, ref_compiled, ref_x, ref_coeffs = make_problem(pattern, seed=seed)
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF", iterations=ITERATIONS
    )
    _, compiled, x, coeffs = make_problem(pattern, seed=seed)
    injector = FaultInjector(seed=seed, rates={"sdc": 1.0})
    run = apply_stencil(
        compiled, x, coeffs, "R", iterations=ITERATIONS,
        faults=injector, resilience=ResiliencePolicy(abft=True),
    )
    stats = run.fault_stats
    assert np.array_equal(
        run.result.to_numpy(), reference.result.to_numpy()
    )
    assert stats.total_injected == ITERATIONS
    assert stats.sdc_corrections == stats.total_injected
    assert stats.total_detected >= stats.total_injected
    # Forward recovery: no rollback, no replay, no rung degradation.
    assert stats.rollbacks == 0
    assert stats.replayed_iterations == 0
    assert not stats.degradations
    # Exact reconciliation, abft overhead in its own bucket.
    assert stats.abft_seals == ITERATIONS
    assert stats.abft_verifies == ITERATIONS
    assert stats.abft_cycles > 0
    assert (
        run.comm_cycles_total
        == reference.comm_cycles_total + stats.recovery_comm_cycles()
    )
    assert run.compute_cycles_total == (
        reference.compute_cycles_total
        + stats.recovery_compute_cycles()
        + stats.abft_cycles
    )


def test_solo_blocked_forward_corrects_between_blocks():
    pattern = square9()
    _, ref_compiled, ref_x, ref_coeffs = make_problem(pattern, seed=4)
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF",
        iterations=ITERATIONS, block_depth=3,
    )
    _, compiled, x, coeffs = make_problem(pattern, seed=4)
    run = apply_stencil(
        compiled, x, coeffs, "R", iterations=ITERATIONS, block_depth=3,
        faults=FaultInjector(seed=4, rates={"sdc": 1.0}),
        resilience=ResiliencePolicy(abft=True),
    )
    stats = run.fault_stats
    assert np.array_equal(
        run.result.to_numpy(), reference.result.to_numpy()
    )
    assert stats.sdc_corrections == stats.total_injected > 0
    assert stats.rollbacks == 0 and stats.replayed_iterations == 0
    assert run.compute_cycles_total == (
        reference.compute_cycles_total
        + stats.recovery_compute_cycles()
        + stats.abft_cycles
    )


@pytest.mark.parametrize(
    "grid,shape",
    [((1, 2), (8, 24)), ((2, 1), (16, 12))],
    ids=["1x2", "2x1"],
)
def test_degenerate_node_grids_forward_correct(grid, shape):
    """1xN / Nx1 node grids: row/col checksums still localize."""
    pattern = cross5()
    _, ref_compiled, ref_x, ref_coeffs = make_problem(
        pattern, num_nodes=2, seed=5, shape=shape, grid=grid
    )
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF", iterations=ITERATIONS
    )
    _, compiled, x, coeffs = make_problem(
        pattern, num_nodes=2, seed=5, shape=shape, grid=grid
    )
    run = apply_stencil(
        compiled, x, coeffs, "R", iterations=ITERATIONS,
        faults=FaultInjector(seed=5, rates={"sdc": 1.0}),
        resilience=ResiliencePolicy(abft=True),
    )
    stats = run.fault_stats
    assert np.array_equal(
        run.result.to_numpy(), reference.result.to_numpy()
    )
    assert stats.sdc_corrections == stats.total_injected > 0
    assert stats.rollbacks == 0


def test_multicell_damage_takes_the_ladder_or_a_typed_error():
    """Three flips per strike on one node: beyond forward correction."""
    pattern = cross5()
    _, ref_compiled, ref_x, ref_coeffs = make_problem(
        pattern, num_nodes=1, seed=6, shape=(8, 12)
    )
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF", iterations=ITERATIONS
    )
    _, compiled, x, coeffs = make_problem(
        pattern, num_nodes=1, seed=6, shape=(8, 12)
    )
    injector = FaultInjector(seed=6, rates={"sdc": 1.0}, sdc_cells=3)
    try:
        run = apply_stencil(
            compiled, x, coeffs, "R", iterations=ITERATIONS,
            faults=injector, resilience=ResiliencePolicy(abft=True),
        )
    except FaultError:
        return  # typed refusal is within contract
    stats = run.fault_stats
    assert np.array_equal(
        run.result.to_numpy(), reference.result.to_numpy()
    )
    # Forward correction cannot have healed a 3-cell strike alone.
    assert stats.total_injected > 0
    assert stats.rollbacks > 0 or stats.degradations


def test_abft_knob_alone_is_bit_identical_with_charged_overhead():
    pattern = cross9()
    _, ref_compiled, ref_x, ref_coeffs = make_problem(pattern, seed=7)
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF", iterations=ITERATIONS
    )
    _, compiled, x, coeffs = make_problem(pattern, seed=7)
    run = apply_stencil(
        compiled, x, coeffs, "R", iterations=ITERATIONS, abft=True
    )
    stats = run.fault_stats
    assert np.array_equal(
        run.result.to_numpy(), reference.result.to_numpy()
    )
    assert stats.abft_seals == ITERATIONS
    assert stats.abft_verifies == ITERATIONS
    assert stats.sdc_corrections == 0
    # Periodic checkpoints still charge their copies into the recovery
    # bucket; the abft overhead stays separate.
    assert run.compute_cycles_total == (
        reference.compute_cycles_total
        + stats.recovery_compute_cycles()
        + stats.abft_cycles
    )


# ----------------------------------------------------------------------
# End-to-end: batched executor
# ----------------------------------------------------------------------


def build_batch(seed, *, batch=2, shape=SHAPE, nodes=4):
    params = MachineParams(num_nodes=nodes)
    machine = CM2(params)
    patterns = (cross5(), cross9())  # mixed pads: 1 and 2
    filters = tuple(compile_stencil(p, params) for p in patterns)
    rng = np.random.default_rng(seed)
    sources = [
        CMArray.from_numpy(
            f"X{b}", machine, rng.standard_normal(shape).astype(np.float32)
        )
        for b in range(batch)
    ]
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for p in patterns
        for name in p.coefficient_names()
    }
    return filters, sources, coeffs


def test_batched_mixed_pads_forward_correct():
    ref_filters, ref_sources, ref_coeffs = build_batch(8)
    reference = apply_stencil_batch(
        ref_filters, ref_sources, ref_coeffs, "R_REF", iterations=4
    )
    filters, sources, coeffs = build_batch(8)
    run = apply_stencil_batch(
        filters, sources, coeffs, "R", iterations=4,
        faults=FaultInjector(seed=8, rates={"sdc": 1.0}),
        resilience=ResiliencePolicy(abft=True),
    )
    stats = run.fault_stats
    assert np.array_equal(
        run.result.to_numpy(), reference.result.to_numpy()
    )
    assert stats.sdc_corrections == stats.total_injected > 0
    assert stats.rollbacks == 0 and stats.replayed_iterations == 0
    assert run.total_comm_cycles == (
        reference.total_comm_cycles + stats.recovery_comm_cycles()
    )
    assert run.total_compute_cycles == (
        reference.total_compute_cycles
        + stats.recovery_compute_cycles()
        + stats.abft_cycles
    )


def test_batched_abft_knob_matches_solo_runs():
    filters, sources, coeffs = build_batch(9)
    run = apply_stencil_batch(
        filters, sources, coeffs, "R", iterations=3, abft=True
    )
    assert run.fault_stats.abft_seals > 0
    solo_filters, solo_sources, solo_coeffs = build_batch(9)
    for b, source in enumerate(solo_sources):
        for f, compiled in enumerate(solo_filters):
            solo = apply_stencil(
                compiled, source, solo_coeffs, f"R_{b}_{f}", iterations=3
            )
            assert np.array_equal(
                run.result.to_numpy()[b, f], solo.result.to_numpy()
            )


# ----------------------------------------------------------------------
# Mutation self-test: the verifier must be load-bearing
# ----------------------------------------------------------------------


def test_disabled_verifier_lets_corruption_through(monkeypatch):
    """Neuter verify_and_correct and the single-cell suite MUST fail:
    proof the bit-identity above is earned by the verifier, not by
    accident."""
    import repro.runtime.stencil_op as stencil_op

    monkeypatch.setattr(
        stencil_op, "verify_and_correct",
        lambda stack, sealed, *, site, guard=None: 0,
    )
    pattern = cross5()
    _, ref_compiled, ref_x, ref_coeffs = make_problem(pattern, seed=1)
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF", iterations=ITERATIONS
    )
    _, compiled, x, coeffs = make_problem(pattern, seed=1)
    run = apply_stencil(
        compiled, x, coeffs, "R", iterations=ITERATIONS,
        faults=FaultInjector(seed=1, rates={"sdc": 1.0}),
        resilience=ResiliencePolicy(abft=True),
    )
    assert not np.array_equal(
        run.result.to_numpy(), reference.result.to_numpy()
    )


# ----------------------------------------------------------------------
# The SDC campaign and the CLI seed grammar
# ----------------------------------------------------------------------


def test_sdc_campaign_single_seed_is_ok():
    from repro.analysis.chaos import SdcReport, run_sdc_campaign

    report = run_sdc_campaign(seeds=(3,))
    assert report.ok
    assert report.silent_corruptions == 0
    assert report.unreconciled == 0
    singles = report.single_cell_trials
    assert singles and all(t.forward and t.survived for t in singles)
    assert all(
        t.rollbacks == 0 and t.replays == 0 for t in singles
    )
    assert report.multicell_trials
    roundtrip = SdcReport.from_dict(report.to_dict())
    assert roundtrip.to_dict() == report.to_dict()


def test_parse_seeds_grammar():
    from repro.__main__ import SeedSpecError, _parse_seeds

    assert _parse_seeds("1,2,3") == (1, 2, 3)
    assert _parse_seeds("1-5") == (1, 2, 3, 4, 5)
    assert _parse_seeds("1-3,7") == (1, 2, 3, 7)
    assert _parse_seeds(" 2 , 4-5 ") == (2, 4, 5)


@pytest.mark.parametrize(
    "text,needle",
    [
        ("x", "'x'"),
        ("1-3,y", "'y'"),
        ("1--3", "'1--3'"),
        ("5-2", "'5-2'"),
        ("", "''"),
    ],
)
def test_parse_seeds_names_the_bad_token(text, needle):
    from repro.__main__ import SeedSpecError, _parse_seeds

    with pytest.raises(SeedSpecError) as excinfo:
        _parse_seeds(text)
    assert needle in str(excinfo.value)
    assert isinstance(excinfo.value, ValueError)


# ----------------------------------------------------------------------
# Service plumbing
# ----------------------------------------------------------------------


def test_stencil_job_abft_roundtrip_and_contradiction():
    from repro.service import JobSpecError, StencilJob

    job = StencilJob(
        tenant="acme", pattern="cross5", grid_shape=(16, 24),
        iterations=3, abft=True,
        fault_rates={"sdc": 1.0}, fault_seed=2,
    )
    assert StencilJob.from_dict(job.to_dict()) == job
    assert job.guarded
    with pytest.raises(JobSpecError, match="abft"):
        StencilJob(
            tenant="acme", pattern="cross5", grid_shape=(16, 24),
            fault_rates={"sdc": 1.0},
        )


def test_service_job_heals_sdc_bit_identically():
    from repro.service import StencilJob, execute_job, solo_run

    job = StencilJob(
        tenant="acme", pattern="cross5", grid_shape=(16, 24),
        iterations=4, abft=True,
        fault_rates={"sdc": 1.0}, fault_seed=3,
    )
    clean = StencilJob(
        tenant="acme", pattern="cross5", grid_shape=(16, 24),
        iterations=4,
    )
    params = MachineParams(num_nodes=4)
    chaos = solo_run(job, params=params, shape=(2, 2))
    reference = solo_run(clean, params=params, shape=(2, 2))
    assert chaos.fault_stats.sdc_corrections > 0
    assert np.array_equal(chaos.output, reference.output)
