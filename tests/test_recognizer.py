"""Tests for the stencil recognizer: the paper's grammar, enforced."""

import pytest

from repro.fortran.errors import DiagnosticSink, NotAStencilError
from repro.fortran.parser import parse_assignment, parse_subroutine
from repro.fortran.recognizer import (
    recognize_assignment,
    recognize_subroutine,
    scan_subroutine,
)
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import CoeffKind

PAPER_CROSS5 = """R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) &
  + C2 * CSHIFT (X, DIM=2, SHIFT=-1) &
  + C3 * X &
  + C4 * CSHIFT (X, DIM=2, SHIFT=+1) &
  + C5 * CSHIFT (X, DIM=1, SHIFT=+1)"""

PAPER_CROSS9 = """R = C1 * CSHIFT (X, DIM=1, SHIFT=-2) &
  + C2 * CSHIFT (X, DIM=1, SHIFT=-1) &
  + C3 * CSHIFT (X, DIM=2, SHIFT=-2) &
  + C4 * CSHIFT (X, DIM=2, SHIFT=-1) &
  + C5 * X &
  + C6 * CSHIFT (X, DIM=2, SHIFT=+2) &
  + C7 * CSHIFT (X, DIM=2, SHIFT=+1) &
  + C8 * CSHIFT (X, DIM=1, SHIFT=+1) &
  + C9 * CSHIFT (X, DIM=1, SHIFT=+2)"""

PAPER_SQUARE9 = """R = C1 * CSHIFT(CSHIFT (X, 1, -1), 2, -1) &
  + C2 * CSHIFT(X, 1, -1) &
  + C3 * CSHIFT(CSHIFT (X, 1, -1), 2, +1) &
  + C4 * CSHIFT (X, 2, -1) &
  + C5 * X &
  + C6 * CSHIFT (X, 2, +1) &
  + C7 * CSHIFT (CSHIFT (X, 1, +1), 2, -1) &
  + C8 * CSHIFT(X, 1, +1) &
  + C9 * CSHIFT(CSHIFT (X, 1, +1), 2, +1)"""

PAPER_ASYM5 = """R = C1 * X &
  + C2 * CSHIFT (X, 2, +1) &
  + C3 * CSHIFT(CSHIFT (X, 1, +1), 2, -1) &
  + C4 * CSHIFT (X, 1, +1) &
  + C5 * CSHIFT (X, 1, +2)"""


def recognize(source, **kwargs):
    return recognize_assignment(parse_assignment(source), **kwargs)


class TestPaperStatements:
    def test_cross5_offsets(self):
        pattern = recognize(PAPER_CROSS5)
        assert set(pattern.offsets) == {
            (-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)
        }
        assert pattern.source == "X"
        assert pattern.result == "R"

    def test_cross5_tap_order_preserved(self):
        pattern = recognize(PAPER_CROSS5)
        assert pattern.offsets == ((-1, 0), (0, -1), (0, 0), (0, 1), (1, 0))

    def test_cross9_offsets(self):
        pattern = recognize(PAPER_CROSS9)
        assert set(pattern.offsets) == {
            (-2, 0), (-1, 0), (0, -2), (0, -1), (0, 0),
            (0, 2), (0, 1), (1, 0), (2, 0),
        }

    def test_square9_composed_shifts(self):
        pattern = recognize(PAPER_SQUARE9)
        assert set(pattern.offsets) == {
            (dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)
        }

    def test_asymmetric5(self):
        pattern = recognize(PAPER_ASYM5)
        assert set(pattern.offsets) == {
            (0, 0), (0, 1), (1, -1), (1, 0), (2, 0)
        }

    def test_positional_form_is_dim_then_shift(self):
        """Paper convention: CSHIFT(X, 2, +1) is the East neighbor."""
        pattern = recognize("R = C1 * CSHIFT(X, 2, +1)")
        assert pattern.offsets == ((0, 1),)

    def test_coefficient_on_either_side(self):
        left = recognize("R = C1 * CSHIFT(X, 1, -1)")
        right = recognize("R = CSHIFT(X, 1, -1) * C1")
        assert left.offsets == right.offsets
        assert left.taps[0].coeff == right.taps[0].coeff


class TestTermForms:
    def test_bare_shifted_term(self):
        pattern = recognize("R = CSHIFT(X, 1, -1) + C2 * X")
        assert pattern.taps[0].coeff.kind is CoeffKind.UNIT
        assert pattern.needs_unit_register()

    def test_constant_term(self):
        pattern = recognize("R = C1 * CSHIFT(X, 1, -1) + C2")
        constant = pattern.taps[1]
        assert constant.is_constant_term
        assert constant.coeff.name == "C2"
        assert pattern.needs_unit_register()

    def test_scalar_coefficient(self):
        pattern = recognize("R = 0.5 * CSHIFT(X, 1, -1) + 2.0 * X")
        assert pattern.taps[0].coeff.kind is CoeffKind.SCALAR
        assert pattern.taps[0].coeff.value == 0.5

    def test_scalar_subtraction_folds_sign(self):
        pattern = recognize("R = 4.0 * X - 1.0 * CSHIFT(X, 1, -1)")
        assert pattern.taps[1].coeff.value == -1.0

    def test_bare_term_subtraction_becomes_scalar(self):
        pattern = recognize("R = 4.0 * X - CSHIFT(X, 1, -1)")
        assert pattern.taps[1].coeff.kind is CoeffKind.SCALAR
        assert pattern.taps[1].coeff.value == -1.0

    def test_array_subtraction_rejected(self):
        with pytest.raises(NotAStencilError, match="negate the coefficient"):
            recognize("R = C1 * X - C2 * CSHIFT(X, 1, -1)")

    def test_duplicate_scalar_offsets_fold(self):
        pattern = recognize("R = 2.0 * CSHIFT(X, 1, -1) + 3.0 * CSHIFT(X, 1, -1)")
        assert len(pattern.taps) == 1
        assert pattern.taps[0].coeff.value == 5.0

    def test_duplicate_array_offsets_rejected(self):
        with pytest.raises(NotAStencilError, match="same offset"):
            recognize("R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(X, 1, -1)")


class TestRejections:
    def test_two_shifted_variables_rejected(self):
        with pytest.raises(NotAStencilError, match="same variable"):
            recognize("R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(Y, 1, +1)")

    def test_result_as_source_rejected(self):
        with pytest.raises(NotAStencilError, match="result array"):
            recognize("X = C1 * CSHIFT(X, 1, -1)")

    def test_division_rejected(self):
        with pytest.raises(NotAStencilError, match="division"):
            recognize("R = C1 / CSHIFT(X, 1, -1)")

    def test_three_factor_product_rejected(self):
        with pytest.raises(NotAStencilError):
            recognize("R = C1 * C2 * CSHIFT(X, 1, -1)")

    def test_variable_shift_amount_rejected(self):
        with pytest.raises(NotAStencilError, match="compile-time"):
            recognize("R = C1 * CSHIFT(X, 1, N)")

    def test_non_shift_intrinsic_rejected(self):
        with pytest.raises(NotAStencilError, match="shifting intrinsic"):
            recognize("R = C1 * TRANSPOSE(X)")

    def test_three_plane_dims_rejected(self):
        source = (
            "R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(X, 2, -1)"
            " + C3 * CSHIFT(X, 3, -1)"
        )
        with pytest.raises(NotAStencilError, match="two-dimensional"):
            recognize(source)

    def test_unidentifiable_source_rejected(self):
        with pytest.raises(NotAStencilError, match="cannot identify"):
            recognize("R = C1 * X")

    def test_mixed_boundary_same_dim_rejected(self):
        with pytest.raises(NotAStencilError):
            recognize(
                "R = C1 * CSHIFT(X, 1, -1) + C2 * EOSHIFT(X, 1, +1)"
            )

    def test_mixed_boundary_within_chain_rejected(self):
        with pytest.raises(NotAStencilError):
            recognize("R = C1 * EOSHIFT(CSHIFT(X, 1, -1), 1, +1)")

    def test_eoshift_fill_values_must_agree(self):
        with pytest.raises(NotAStencilError, match="fill"):
            recognize(
                "R = C1 * EOSHIFT(X, 1, -1, 1.0) + C2 * EOSHIFT(X, 1, +1, 2.0)"
            )


class TestBoundaryModes:
    def test_cshift_gives_circular(self):
        pattern = recognize(PAPER_CROSS5)
        assert pattern.boundary[1] is BoundaryMode.CIRCULAR
        assert pattern.boundary[2] is BoundaryMode.CIRCULAR

    def test_eoshift_gives_fill(self):
        pattern = recognize(
            "R = C1 * EOSHIFT(X, 1, -1) + C2 * EOSHIFT(X, 1, +1)"
        )
        assert pattern.boundary[1] is BoundaryMode.FILL

    def test_eoshift_boundary_value_captured(self):
        pattern = recognize("R = C1 * EOSHIFT(X, 1, -1, 3.5)")
        assert pattern.fill_value == 3.5

    def test_mixed_modes_across_dims_allowed(self):
        pattern = recognize(
            "R = C1 * CSHIFT(X, 1, -1) + C2 * EOSHIFT(X, 2, +1)"
        )
        assert pattern.boundary[1] is BoundaryMode.CIRCULAR
        assert pattern.boundary[2] is BoundaryMode.FILL


class TestSubroutineLevel:
    def test_paper_cross_subroutine(self):
        sub = parse_subroutine(
            "SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)\n"
            "REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5\n"
            + PAPER_CROSS5
            + "\nEND"
        )
        pattern = recognize_subroutine(sub)
        assert pattern.name == "cross"
        assert pattern.num_points == 5

    def test_rank_mismatch_rejected(self):
        sub = parse_subroutine(
            "SUBROUTINE S (R, X, C1)\n"
            "REAL, ARRAY(:, :) :: R, X\n"
            "REAL, ARRAY(:, :, :) :: C1\n"
            "R = C1 * CSHIFT(X, 1, -1)\n"
            "END"
        )
        with pytest.raises(NotAStencilError, match="rank"):
            recognize_subroutine(sub)

    def test_shift_beyond_rank_rejected(self):
        sub = parse_subroutine(
            "SUBROUTINE S (R, X, C1)\n"
            "REAL, ARRAY(:, :) :: R, X, C1\n"
            "R = C1 * CSHIFT(X, 3, -1)\n"
            "END"
        )
        with pytest.raises(NotAStencilError, match="rank"):
            recognize_subroutine(sub)

    def test_multiple_statements_rejected_at_subroutine_level(self):
        sub = parse_subroutine(
            "SUBROUTINE S (R, X, C1)\n"
            "R = C1 * CSHIFT(X, 1, -1)\n"
            "R = C1 * CSHIFT(X, 1, +1)\n"
            "END"
        )
        with pytest.raises(NotAStencilError, match="exactly one"):
            recognize_subroutine(sub)


class TestScan:
    """The version-3 integrated behaviour: scan, compile what fits, warn
    on directive-flagged failures."""

    def test_scan_finds_stencils_and_skips_others(self):
        sub = parse_subroutine(
            "SUBROUTINE S (R, T, X, C1)\n"
            "REAL, ARRAY(:, :) :: R, T, X, C1\n"
            "R = C1 * CSHIFT(X, 1, -1)\n"
            "T = C1 / X\n"
            "END"
        )
        results = scan_subroutine(sub)
        assert results[0][1] is not None
        assert results[1][1] is None

    def test_directive_failure_warns(self):
        sub = parse_subroutine(
            "SUBROUTINE S (R, X, C1)\n"
            "REAL, ARRAY(:, :) :: R, X, C1\n"
            "!REPRO$ STENCIL\n"
            "R = C1 / X\n"
            "END"
        )
        sink = DiagnosticSink()
        scan_subroutine(sub, sink)
        assert len(sink.warnings) == 1
        assert "could not be processed" in sink.warnings[0].message

    def test_undirected_failure_is_silent(self):
        sub = parse_subroutine(
            "SUBROUTINE S (R, X, C1)\n"
            "REAL, ARRAY(:, :) :: R, X, C1\n"
            "R = C1 / X\n"
            "END"
        )
        sink = DiagnosticSink()
        scan_subroutine(sub, sink)
        assert not sink.warnings


class TestEoshiftChains:
    def test_same_sign_chain_accepted(self):
        pattern = recognize("R = C1 * EOSHIFT(EOSHIFT(X, 1, +1), 1, +1)")
        assert pattern.offsets == ((2, 0),)

    def test_mixed_sign_chain_rejected(self):
        """EOSHIFT(+1) then EOSHIFT(-1) blanks two rows but has net
        offset zero: not expressible as a stencil tap."""
        with pytest.raises(NotAStencilError, match="directions"):
            recognize("R = C1 * EOSHIFT(EOSHIFT(X, 1, +1), 1, -1)")

    def test_mixed_sign_across_dims_accepted(self):
        pattern = recognize("R = C1 * EOSHIFT(EOSHIFT(X, 1, +1), 2, -1)")
        assert pattern.offsets == ((1, -1),)
