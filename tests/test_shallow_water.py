"""Tests for the shallow-water model: coupled fused-stencil updates."""

import numpy as np
import pytest

from repro.apps.shallow_water import GRAVITY, ShallowWaterModel
from repro.machine.machine import CM2
from repro.machine.params import MachineParams


def machine4():
    return CM2(MachineParams(num_nodes=4))


def make_model(shape=(16, 32), **kwargs):
    defaults = dict(depth=100.0, dt=1.0, dx=1000.0)
    defaults.update(kwargs)
    return ShallowWaterModel(machine4(), shape, **defaults)


class TestSetup:
    def test_unstable_configuration_rejected(self):
        with pytest.raises(ValueError, match="Courant"):
            make_model(dt=100.0)

    def test_courant_number(self):
        model = make_model()
        assert model.courant == pytest.approx(
            np.sqrt(GRAVITY * 100.0) / 1000.0
        )

    def test_initial_bump(self):
        model = make_model()
        model.set_gaussian_bump(amplitude=2.0)
        fields = model.fields()
        assert fields["h"].max() == pytest.approx(2.0, rel=1e-3)
        assert not fields["u"].any()
        assert not fields["v"].any()

    def test_updates_compile_fused(self):
        model = make_model()
        for compiled in (
            model._u_update,
            model._v_update,
            model._h_from_u,
            model._h_from_v,
        ):
            assert len(compiled.pattern.extra_terms) == 1
            assert compiled.max_width >= 4


class TestDynamics:
    def test_step_matches_reference_bitwise(self):
        model = make_model()
        model.set_gaussian_bump()
        h0, u0, v0 = (
            model.h.to_numpy(),
            model.u.to_numpy(),
            model.v.to_numpy(),
        )
        expected = model.reference_step(h0, u0, v0)
        model.step(1)
        fields = model.fields()
        np.testing.assert_array_equal(fields["h"], expected[0])
        np.testing.assert_array_equal(fields["u"], expected[1])
        np.testing.assert_array_equal(fields["v"], expected[2])

    def test_many_steps_match_reference(self):
        model = make_model()
        model.set_gaussian_bump()
        h, u, v = model.h.to_numpy(), model.u.to_numpy(), model.v.to_numpy()
        for _ in range(5):
            h, u, v = model.reference_step(h, u, v)
        model.step(5)
        np.testing.assert_array_equal(model.fields()["h"], h)

    def test_mass_conserved(self):
        """Periodic centered differences conserve total height exactly
        up to float32 summation noise."""
        model = make_model((32, 32))
        model.set_gaussian_bump()
        before = model.total_mass()
        model.step(25)
        after = model.total_mass()
        assert after == pytest.approx(before, abs=1e-2)

    def test_energy_bounded(self):
        model = make_model((32, 32))
        model.set_gaussian_bump()
        model.step(1)
        start = model.energy()
        model.step(40)
        assert model.energy() < 2.0 * start + 1.0

    def test_waves_radiate_outward(self):
        # dt=15 s: gravity-wave Courant ~0.47, so the front moves about
        # half a cell per step and clears the bump within 20 steps.
        model = make_model((32, 64), dt=15.0)
        model.set_gaussian_bump(sigma=3.0)
        model.step(40)
        h = model.fields()["h"]
        # The crest has left the center...
        assert abs(h[16, 32]) < 0.5 * abs(h).max()
        # ...and the ring's peak sits well away from it.
        peak = np.unravel_index(np.abs(h).argmax(), h.shape)
        assert abs(peak[0] - 16) + abs(peak[1] - 32) > 5
        # Velocities have developed.
        assert abs(model.fields()["u"]).max() > 0

    def test_symmetry_preserved(self):
        """A centered bump stays symmetric under the symmetric scheme."""
        model = make_model((32, 32))
        model.set_gaussian_bump()
        model.step(10)
        h = model.fields()["h"].astype(np.float64)
        np.testing.assert_allclose(h, np.flip(np.roll(h, -1, 0), 0), atol=1e-5)
        np.testing.assert_allclose(h, np.flip(np.roll(h, -1, 1), 1), atol=1e-5)

    def test_timing_accumulates(self):
        model = make_model()
        model.set_gaussian_bump()
        model.step(3)
        assert model.timing.steps == 3
        assert model.timing.useful_flops > 0
        assert model.timing.mflops > 0
