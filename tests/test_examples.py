"""Smoke tests: every example script runs and prints what it promises.

Each example is a deliverable in its own right; these tests keep them
from rotting as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: script -> substrings its output must contain
EXPECTATIONS = {
    "quickstart.py": [
        "bit-for-bit: True",
        "Mflops",
        "extrapolated to a full 2,048-node CM-2",
    ],
    "compiler_tour.py": [
        "width-8 multistencil: 26 positions",
        "REJECTED",
        "unroll x15",
        "dynamic-part listing",
        "warning: statement flagged",
    ],
    "heat_diffusion.py": [
        "compiled widths: (8, 4, 2, 1)",
        "total heat",
        "Mflops",
    ],
    "laplacian3d.py": [
        "fused depth taps",
        "depth profile through the center",
    ],
    "results_table.py": [
        "cross5",
        "diamond13",
        "Gordon Bell seismic kernel",
        "fused 10-term",
    ],
    "seismic_model.py": [
        "bit-identical across all three loops: True",
        "unrolled / copy speedup",
    ],
    "seismic_survey.py": [
        "shot record",
        "first arrival",
        "moveout",
    ],
    "ocean_gravity_waves.py": [
        "4 fused stencil applications",
        "mass drift",
        "Mflops",
    ],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs(name):
    output = run_example(name)
    for expected in EXPECTATIONS[name]:
        assert expected in output, f"{name}: missing {expected!r}"
