"""Tests for shift composition and exact CSHIFT/EOSHIFT semantics."""

import numpy as np
import pytest

from repro.stencil.offsets import (
    BoundaryMode,
    MixedBoundaryError,
    Shift,
    ShiftKind,
    apply_one_shift,
    apply_shift_chain,
    compose_boundary_modes,
    compose_offsets,
    plane_offset,
    shifted_dims,
)


def cshift(dim, amount):
    return Shift(ShiftKind.CSHIFT, dim, amount)


def eoshift(dim, amount, boundary=0.0):
    return Shift(ShiftKind.EOSHIFT, dim, amount, boundary)


class TestShift:
    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            Shift(ShiftKind.CSHIFT, 0, 1)

    def test_describe_renders_fortran(self):
        assert cshift(1, -1).describe() == "CSHIFT(_, DIM=1, SHIFT=-1)"


class TestCompose:
    def test_offsets_sum_per_dimension(self):
        totals = compose_offsets([cshift(1, -1), cshift(2, +1), cshift(1, -1)])
        assert totals == {1: -2, 2: 1}

    def test_net_zero_dimension_is_kept(self):
        totals = compose_offsets([cshift(1, -1), cshift(1, +1)])
        assert totals == {1: 0}

    def test_boundary_modes_uniform(self):
        modes = compose_boundary_modes([cshift(1, -1), cshift(2, 1)])
        assert modes == {1: BoundaryMode.CIRCULAR, 2: BoundaryMode.CIRCULAR}

    def test_boundary_modes_eoshift(self):
        modes = compose_boundary_modes([eoshift(1, 2)])
        assert modes == {1: BoundaryMode.FILL}

    def test_mixed_modes_same_dim_rejected(self):
        with pytest.raises(MixedBoundaryError):
            compose_boundary_modes([cshift(1, -1), eoshift(1, 1)])

    def test_mixed_modes_different_dims_allowed(self):
        modes = compose_boundary_modes([cshift(1, -1), eoshift(2, 1)])
        assert modes[1] is BoundaryMode.CIRCULAR
        assert modes[2] is BoundaryMode.FILL


class TestCshiftSemantics:
    """CSHIFT(A, SHIFT=m)(i) = A(i + m) with wraparound."""

    def test_positive_shift_1d(self):
        a = np.array([10.0, 20.0, 30.0, 40.0])
        shifted = apply_one_shift(a, Shift(ShiftKind.CSHIFT, 1, 1))
        assert list(shifted) == [20.0, 30.0, 40.0, 10.0]

    def test_negative_shift_1d(self):
        a = np.array([10.0, 20.0, 30.0, 40.0])
        shifted = apply_one_shift(a, Shift(ShiftKind.CSHIFT, 1, -1))
        assert list(shifted) == [40.0, 10.0, 20.0, 30.0]

    def test_paper_neighbor_example(self):
        """CSHIFT(X, DIM=1, SHIFT=-1) at (4,3) yields X(3,3) (1-based)."""
        x = np.arange(64, dtype=float).reshape(8, 8)
        north = apply_one_shift(x, cshift(1, -1))
        # 0-based: result[3, 2] must be x[2, 2].
        assert north[3, 2] == x[2, 2]
        west = apply_one_shift(x, cshift(2, -1))
        assert west[3, 2] == x[3, 1]
        east = apply_one_shift(x, cshift(2, +1))
        assert east[3, 2] == x[3, 3]
        south = apply_one_shift(x, cshift(1, +1))
        assert south[3, 2] == x[4, 2]

    def test_wraparound(self):
        x = np.arange(16, dtype=float).reshape(4, 4)
        north = apply_one_shift(x, cshift(1, -1))
        assert north[0, 0] == x[3, 0]

    def test_dim_beyond_rank_rejected(self):
        with pytest.raises(ValueError):
            apply_one_shift(np.zeros((4, 4)), cshift(3, 1))


class TestEoshiftSemantics:
    def test_positive_shift_fills_end(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        shifted = apply_one_shift(a, eoshift(1, 1))
        assert list(shifted) == [2.0, 3.0, 4.0, 0.0]

    def test_negative_shift_fills_start(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        shifted = apply_one_shift(a, eoshift(1, -1, boundary=9.0))
        assert list(shifted) == [9.0, 1.0, 2.0, 3.0]

    def test_shift_exceeding_extent_fills_all(self):
        a = np.array([1.0, 2.0])
        shifted = apply_one_shift(a, eoshift(1, 5, boundary=7.0))
        assert list(shifted) == [7.0, 7.0]

    def test_2d_along_dim2(self):
        x = np.arange(9, dtype=float).reshape(3, 3)
        shifted = apply_one_shift(x, eoshift(2, 1))
        assert shifted[0, 0] == x[0, 1]
        assert shifted[0, 2] == 0.0


class TestChains:
    def test_chain_matches_sequential_application(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((6, 5))
        chain = [cshift(1, +1), cshift(2, -1)]
        via_chain = apply_shift_chain(x, chain)
        manual = apply_one_shift(apply_one_shift(x, chain[0]), chain[1])
        np.testing.assert_array_equal(via_chain, manual)

    def test_composed_chain_equals_single_offset_shift(self):
        """CSHIFT(CSHIFT(X,1,-1),1,-1) == CSHIFT(X,1,-2)."""
        rng = np.random.default_rng(8)
        x = rng.standard_normal((7, 7))
        double = apply_shift_chain(x, [cshift(1, -1), cshift(1, -1)])
        single = apply_shift_chain(x, [cshift(1, -2)])
        np.testing.assert_array_equal(double, single)

    def test_plane_offset_projection(self):
        chain = [cshift(1, +1), cshift(2, -1)]
        assert plane_offset(chain, (1, 2)) == (1, -1)

    def test_plane_offset_rejects_out_of_plane(self):
        with pytest.raises(ValueError):
            plane_offset([cshift(3, 1)], (1, 2))

    def test_shifted_dims(self):
        assert shifted_dims([cshift(2, 1), cshift(1, -1)]) == (1, 2)
