"""End-to-end execution tests: the heart of the correctness story.

For a battery of patterns, subgrid shapes, and machine sizes:

* the fast (vectorized) path must match the pure-numpy reference
  bit for bit;
* the exact (cycle-stepped WTL3164) path must match the fast path
  bit for bit -- proving the register allocation, ring-buffer rotation,
  pipelined writeback timing, and just-in-time accumulator reuse are all
  correct;
* the exact path's measured cycle count must equal the closed-form cost
  model exactly.
"""

import numpy as np
import pytest

from repro.baseline.reference import reference_stencil
from repro.compiler.driver import compile_fortran, compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.executor import ExecutionSetupError
from repro.runtime.stencil_op import apply_stencil
from repro.stencil import gallery

PATTERNS = [
    gallery.cross5,
    gallery.cross9,
    gallery.square9,
    gallery.diamond13,
    gallery.asymmetric5,
    gallery.border_demo,
]


def make_problem(pattern, machine, global_shape, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(global_shape).astype(np.float32)
    coeffs = {
        name: rng.standard_normal(global_shape).astype(np.float32)
        for name in pattern.coefficient_names()
    }
    X = CMArray.from_numpy("X", machine, x)
    C = {
        name: CMArray.from_numpy(name, machine, data)
        for name, data in coeffs.items()
    }
    return x, coeffs, X, C


class TestFastPathCorrectness:
    @pytest.mark.parametrize("pattern_fn", PATTERNS)
    def test_matches_reference_bitwise(self, pattern_fn):
        pattern = pattern_fn()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        x, coeffs, X, C = make_problem(pattern, machine, (16, 24))
        compiled = compile_stencil(pattern, params)
        run = apply_stencil(compiled, X, C)
        expected = reference_stencil(pattern, x, coeffs)
        np.testing.assert_array_equal(run.result.to_numpy(), expected)

    def test_sixteen_nodes(self):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=16)
        machine = CM2(params)
        x, coeffs, X, C = make_problem(pattern, machine, (32, 32), seed=7)
        compiled = compile_stencil(pattern, params)
        run = apply_stencil(compiled, X, C)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
        )

    def test_single_node_machine(self):
        pattern = gallery.square9()
        params = MachineParams(num_nodes=1)
        machine = CM2(params)
        x, coeffs, X, C = make_problem(pattern, machine, (12, 12), seed=3)
        compiled = compile_stencil(pattern, params)
        run = apply_stencil(compiled, X, C)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
        )

    def test_rectangular_awkward_widths(self):
        """A 21-wide subgrid exercises the 8+8+4+1 strip decomposition."""
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        x, coeffs, X, C = make_problem(pattern, machine, (14, 42), seed=9)
        compiled = compile_stencil(pattern, params)
        run = apply_stencil(compiled, X, C)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
        )


class TestExactPathCorrectness:
    @pytest.mark.parametrize("pattern_fn", PATTERNS)
    def test_exact_matches_fast_bitwise(self, pattern_fn):
        pattern = pattern_fn()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (16, 24), seed=1)
        compiled = compile_stencil(pattern, params)
        fast = apply_stencil(compiled, X, C, "RFAST").result.to_numpy()
        exact = apply_stencil(
            compiled, X, C, "REXACT", exact=True
        ).result.to_numpy()
        np.testing.assert_array_equal(exact, fast)

    @pytest.mark.parametrize("pattern_fn", PATTERNS)
    def test_cycle_model_is_exact(self, pattern_fn):
        pattern = pattern_fn()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (16, 24), seed=2)
        compiled = compile_stencil(pattern, params)
        fast = apply_stencil(compiled, X, C, "RFAST")
        exact = apply_stencil(compiled, X, C, "REXACT", exact=True)
        assert exact.compute_cycles == fast.compute_cycles

    @pytest.mark.parametrize("cols", [1, 2, 3, 5, 8, 13, 21])
    def test_cycle_model_odd_strip_mixes(self, cols):
        """Cycle-model equality across every strip-width mix."""
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=1)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (6, cols), seed=4)
        compiled = compile_stencil(pattern, params)
        fast = apply_stencil(compiled, X, C, "RF")
        exact = apply_stencil(compiled, X, C, "RE", exact=True)
        assert exact.compute_cycles == fast.compute_cycles
        np.testing.assert_array_equal(
            exact.result.to_numpy(), fast.result.to_numpy()
        )

    @pytest.mark.parametrize("rows", [1, 2, 3, 7])
    def test_tiny_heights(self, rows):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=1)
        machine = CM2(params)
        x, coeffs, X, C = make_problem(pattern, machine, (rows, 8), seed=5)
        compiled = compile_stencil(pattern, params)
        run = apply_stencil(compiled, X, C, exact=True)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
        )


class TestStatementForms:
    def test_scalar_coefficients_end_to_end(self):
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_fortran(
            "R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X - 0.125 * CSHIFT(X, 2, +1)",
            params,
        )
        rng = np.random.default_rng(6)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        X = CMArray.from_numpy("X", machine, x)
        for exact in (False, True):
            run = apply_stencil(
                compiled, X, {}, f"R{exact}", exact=exact
            )
            expected = reference_stencil(compiled.pattern, x, {})
            np.testing.assert_array_equal(run.result.to_numpy(), expected)

    def test_bare_data_term_end_to_end(self):
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_fortran(
            "R = CSHIFT(X, 1, -1) + C1 * X + CSHIFT(X, 1, +1)", params
        )
        rng = np.random.default_rng(8)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        c1 = rng.standard_normal((8, 16)).astype(np.float32)
        X = CMArray.from_numpy("X", machine, x)
        C = {"C1": CMArray.from_numpy("C1", machine, c1)}
        expected = reference_stencil(compiled.pattern, x, {"C1": c1})
        for exact in (False, True):
            run = apply_stencil(compiled, X, C, f"R{exact}", exact=exact)
            np.testing.assert_array_equal(run.result.to_numpy(), expected)

    def test_constant_term_end_to_end(self):
        """The bare-c form exercises the reserved 1.0 register."""
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_fortran(
            "R = C1 * CSHIFT(X, 1, -1) + C2", params
        )
        assert compiled.pattern.needs_unit_register()
        rng = np.random.default_rng(10)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        c1 = rng.standard_normal((8, 16)).astype(np.float32)
        c2 = rng.standard_normal((8, 16)).astype(np.float32)
        X = CMArray.from_numpy("X", machine, x)
        C = {
            "C1": CMArray.from_numpy("C1", machine, c1),
            "C2": CMArray.from_numpy("C2", machine, c2),
        }
        expected = reference_stencil(
            compiled.pattern, x, {"C1": c1, "C2": c2}
        )
        for exact in (False, True):
            run = apply_stencil(compiled, X, C, f"R{exact}", exact=exact)
            np.testing.assert_array_equal(run.result.to_numpy(), expected)

    def test_eoshift_end_to_end(self):
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_fortran(
            "R = C1 * EOSHIFT(X, 1, -1) + C2 * EOSHIFT(X, 1, +1)", params
        )
        rng = np.random.default_rng(11)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        c1 = rng.standard_normal((8, 16)).astype(np.float32)
        c2 = rng.standard_normal((8, 16)).astype(np.float32)
        X = CMArray.from_numpy("X", machine, x)
        C = {
            "C1": CMArray.from_numpy("C1", machine, c1),
            "C2": CMArray.from_numpy("C2", machine, c2),
        }
        expected = reference_stencil(
            compiled.pattern, x, {"C1": c1, "C2": c2}
        )
        for exact in (False, True):
            run = apply_stencil(compiled, X, C, f"R{exact}", exact=exact)
            np.testing.assert_array_equal(run.result.to_numpy(), expected)


class TestRunAccounting:
    def test_iterations_scale_elapsed_time(self):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (16, 16))
        compiled = compile_stencil(pattern, params)
        one = apply_stencil(compiled, X, C, "R1", iterations=1)
        hundred = apply_stencil(compiled, X, C, "R2", iterations=100)
        assert hundred.elapsed_seconds == pytest.approx(
            100 * one.elapsed_seconds
        )
        assert hundred.mflops == pytest.approx(one.mflops)

    def test_useful_flops_counted_per_paper(self):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (16, 16))
        compiled = compile_stencil(pattern, params)
        run = apply_stencil(compiled, X, C)
        assert run.useful_flops == 16 * 16 * 9

    def test_missing_coefficient_rejected(self):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        X = CMArray("X", machine, (16, 16))
        compiled = compile_stencil(pattern, params)
        with pytest.raises(ExecutionSetupError, match="missing"):
            apply_stencil(compiled, X, {})

    def test_shape_mismatch_rejected(self):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (16, 16))
        bad = CMArray("RBAD", machine, (32, 32))
        compiled = compile_stencil(pattern, params)
        with pytest.raises(ExecutionSetupError, match="shape"):
            apply_stencil(compiled, X, C, bad)

    def test_zero_iterations_rejected(self):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (16, 16))
        compiled = compile_stencil(pattern, params)
        with pytest.raises(ValueError):
            apply_stencil(compiled, X, C, iterations=0)

    def test_describe_mentions_rate(self):
        pattern = gallery.cross5()
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        _, _, X, C = make_problem(pattern, machine, (16, 16))
        compiled = compile_stencil(pattern, params)
        text = apply_stencil(compiled, X, C).describe()
        assert "Mflops" in text


class TestNonzeroFill:
    def test_eoshift_nonzero_boundary_end_to_end(self):
        """The fill value threads from the source text through the halo
        exchange into both execution modes."""
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_fortran(
            "R = C1 * EOSHIFT(X, 1, -1, 2.5) + C2 * EOSHIFT(X, 1, +1, 2.5)",
            params,
        )
        assert compiled.pattern.fill_value == 2.5
        rng = np.random.default_rng(12)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        c1 = rng.standard_normal((8, 16)).astype(np.float32)
        c2 = rng.standard_normal((8, 16)).astype(np.float32)
        X = CMArray.from_numpy("X", machine, x)
        C = {
            "C1": CMArray.from_numpy("C1", machine, c1),
            "C2": CMArray.from_numpy("C2", machine, c2),
        }
        expected = reference_stencil(
            compiled.pattern, x, {"C1": c1, "C2": c2}
        )
        # Sanity: the boundary really enters the result.
        assert (expected[0] != (c1[0] * np.roll(x, 1, 0)[0])).any()
        for exact in (False, True):
            run = apply_stencil(compiled, X, C, f"RNZ{exact}", exact=exact)
            np.testing.assert_array_equal(run.result.to_numpy(), expected)
