"""Tests for ring buffers and register allocation, including the paper's
worked diamond13 example."""

import pytest

from repro.compiler.allocation import (
    UNIT_REG,
    ZERO_REG,
    AllocationError,
    allocate,
)
from repro.compiler.ringbuf import (
    RingBuffer,
    build_rings,
    column_span,
    lcm_of,
    plan_ring_sizes,
)
from repro.machine.params import MachineParams
from repro.stencil.gallery import cross5, cross9, diamond13, square9
from repro.stencil.multistencil import ColumnProfile, Multistencil
from repro.stencil.pattern import Coefficient, StencilPattern, Tap


def col(x, rows):
    return ColumnProfile(x=x, rows=tuple(rows))


class TestRingBuffer:
    def test_size_matches_registers(self):
        with pytest.raises(ValueError):
            RingBuffer(column=col(0, [0, 1]), size=3, registers=(2, 3))

    def test_size_below_span_rejected(self):
        with pytest.raises(ValueError, match="span"):
            RingBuffer(column=col(0, [-1, 0, 1]), size=2, registers=(2, 3))

    def test_slot_rotation(self):
        ring = RingBuffer(column=col(0, [-1, 0, 1]), size=3, registers=(5, 6, 7))
        # Line 0: rows -1, 0, 1 in slots 0, 1, 2.
        assert [ring.register_for(r, 0) for r in (-1, 0, 1)] == [5, 6, 7]
        # Line 1: everything rotates up one slot.
        assert [ring.register_for(r, 1) for r in (-1, 0, 1)] == [7, 5, 6]
        # Period 3.
        assert [ring.register_for(r, 3) for r in (-1, 0, 1)] == [5, 6, 7]

    def test_load_slot_is_vacated_slot(self):
        """The new leading-edge element enters the slot the retiring
        bottom element (the just-stored accumulator) vacated."""
        ring = RingBuffer(column=col(0, [-1, 0, 1]), size=3, registers=(5, 6, 7))
        for line in range(6):
            bottom_before = ring.register_for(1, line)
            top_next = ring.load_register(line + 1)
            assert bottom_before == top_next

    def test_row_outside_extent(self):
        ring = RingBuffer(column=col(0, [0]), size=1, registers=(5,))
        with pytest.raises(ValueError):
            ring.slot_for(1, 0)

    def test_gapped_column_uses_span(self):
        assert column_span(col(0, [-1, 1])) == 3


class TestRingPlanning:
    def test_uniform_when_budget_allows(self):
        columns = [col(-1, [0]), col(0, [-1, 0, 1]), col(1, [0, 1])]
        sizes = plan_ring_sizes(columns, budget=31)
        # height-1 column stays 1; others padded to the max (3).
        assert sizes == [1, 3, 3]

    def test_lcm_of_uniform_equals_max(self):
        assert lcm_of([1, 3, 3, 3, 1]) == 3

    def test_diamond13_width4_paper_example(self):
        """Ring sizes 1,3,5,5,5,5,3,1 and LCM 15 (paper section 5.4)."""
        ms = Multistencil(diamond13(), 4)
        sizes = plan_ring_sizes(ms.columns, budget=31)
        assert sizes == [1, 3, 5, 5, 5, 5, 3, 1]
        assert sum(sizes) == 28
        assert lcm_of(sizes) == 15

    def test_diamond13_width8_infeasible(self):
        """48 registers needed, 31 available (paper section 5.3)."""
        ms = Multistencil(diamond13(), 8)
        assert plan_ring_sizes(ms.columns, budget=31) is None

    def test_compression_level_by_level(self):
        # Columns with naturals [1, 2, 2, 4, 4]: uniform [1,4,4,4,4]=17;
        # budget 15 compresses both 2-level columns at once: [1,2,2,4,4]=13.
        columns = [
            col(0, [0]),
            col(1, [0, 1]),
            col(2, [0, 1]),
            col(3, [0, 1, 2, 3]),
            col(4, [0, 1, 2, 3]),
        ]
        assert plan_ring_sizes(columns, budget=15) == [1, 2, 2, 4, 4]

    def test_build_rings_assigns_disjoint_registers(self):
        columns = [col(0, [0]), col(1, [-1, 0, 1])]
        rings = build_rings(columns, [1, 3], first_register=2)
        all_regs = [r for ring in rings for r in ring.registers]
        assert all_regs == [2, 3, 4, 5]


class TestAllocation:
    def test_cross5_width8(self):
        alloc = allocate(cross5(), 8)
        assert alloc.data_registers == 26
        assert alloc.unroll == 3
        assert alloc.zero_reg == ZERO_REG
        assert alloc.unit_reg is None
        assert alloc.total_registers == 27

    def test_diamond13_width8_raises(self):
        with pytest.raises(AllocationError, match="48"):
            allocate(diamond13(), 8)

    def test_diamond13_width4_fits(self):
        alloc = allocate(diamond13(), 4)
        assert alloc.data_registers == 28
        assert alloc.unroll == 15

    def test_cross9_width8_raises(self):
        """The radius-2 cross needs 44 data registers at width 8: the
        eight interior columns span 5 rows each plus four singletons."""
        with pytest.raises(AllocationError, match="44"):
            allocate(cross9(), 8)

    def test_square9_width8_fits(self):
        alloc = allocate(square9(), 8)
        assert alloc.data_registers == 30
        assert alloc.unroll == 3

    def test_unit_register_reduces_budget(self):
        taps = list(square9().taps) + [
            Tap(
                offset=(0, 0),
                coeff=Coefficient.array("C10"),
                is_constant_term=True,
            )
        ]
        pattern = StencilPattern(taps, name="square9_plus_const")
        # square9 width 8 needs exactly 30 data registers; with the unit
        # register reserved only 30 remain, so it still (barely) fits.
        alloc = allocate(pattern, 8)
        assert alloc.unit_reg == UNIT_REG
        assert alloc.total_registers == 32

    def test_registers_never_exceed_file(self):
        for pattern in (cross5(), cross9(), square9(), diamond13()):
            for width in (8, 4, 2, 1):
                try:
                    alloc = allocate(pattern, width)
                except AllocationError:
                    continue
                assert alloc.total_registers <= 32
                regs = [r for ring in alloc.rings for r in ring.registers]
                assert len(regs) == len(set(regs))
                assert ZERO_REG not in regs

    def test_register_for_lookup(self):
        alloc = allocate(cross5(), 8)
        # The same (row, column) on consecutive lines gives different regs
        # (rotation), but the same line and position is deterministic.
        a = alloc.register_for(0, 3, line=0)
        b = alloc.register_for(0, 3, line=1)
        assert a != b
        assert alloc.register_for(0, 3, line=0) == a

    def test_ring_for_missing_column(self):
        alloc = allocate(cross5(), 8)
        with pytest.raises(KeyError):
            alloc.ring_for_column(99)
