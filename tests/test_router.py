"""Tests for the hypercube router and the grid-exchange derivation."""

import pytest

from repro.machine.geometry import grid_shape, hamming_distance
from repro.machine.params import MachineParams
from repro.machine.router import (
    Transfer,
    binary_embedding,
    corner_transfers,
    exchange_route_cost,
    four_neighbor_transfers,
    gray_embedding,
    route,
    schedule_transfers,
)


class TestRouting:
    def test_route_length_is_hamming_distance(self):
        for source, destination in [(0, 0), (0, 1), (5, 10), (0b1011, 0b0100)]:
            hops = route(source, destination)
            assert len(hops) == hamming_distance(source, destination)

    def test_route_is_connected(self):
        hops = route(0b0000, 0b1011)
        position = 0b0000
        for start, end in hops:
            assert start == position
            assert hamming_distance(start, end) == 1
            position = end
        assert position == 0b1011

    def test_dimension_order(self):
        """E-cube routing corrects the lowest dimension first."""
        hops = route(0b00, 0b11)
        assert hops == [(0b00, 0b01), (0b01, 0b11)]

    def test_self_route_is_empty(self):
        assert route(7, 7) == []


class TestScheduling:
    def test_single_transfer(self):
        cost = schedule_transfers([Transfer(0, 1, 64)])
        assert cost.max_hops == 1
        assert cost.busiest_wire_words == 64
        assert cost.total_wire_words == 64

    def test_disjoint_transfers_run_in_parallel(self):
        cost = schedule_transfers(
            [Transfer(0, 1, 64), Transfer(2, 3, 64)]
        )
        assert cost.busiest_wire_words == 64

    def test_shared_wire_serializes(self):
        cost = schedule_transfers(
            [Transfer(0, 1, 64), Transfer(0, 1, 64)]
        )
        assert cost.busiest_wire_words == 128

    def test_multi_hop_loads_every_wire(self):
        cost = schedule_transfers([Transfer(0b00, 0b11, 10)])
        assert cost.max_hops == 2
        assert cost.total_wire_words == 20

    def test_empty(self):
        cost = schedule_transfers([])
        assert cost.busiest_wire_words == 0


class TestGridExchange:
    def test_gray_embedding_exchanges_in_one_hop(self):
        params = MachineParams(num_nodes=16)
        cost = exchange_route_cost(params, (64, 64), pad=1)
        assert cost.max_hops == 1

    def test_busiest_wire_matches_closed_form(self):
        """The routed derivation reproduces the halo cost model: the
        busiest wire carries pad x (longer subgrid side) words."""
        params = MachineParams(num_nodes=16)
        for subgrid in ((64, 64), (64, 128), (128, 64)):
            for pad in (1, 2, 3):
                cost = exchange_route_cost(params, subgrid, pad)
                assert cost.busiest_wire_words == pad * max(subgrid)

    def test_routed_cycles_equal_halo_model(self):
        from repro.runtime.halo import exchange_cost
        from repro.stencil.gallery import cross5, cross9

        params = MachineParams(num_nodes=16)
        for pattern in (cross5(), cross9()):
            pad = pattern.border_widths().max_width
            routed = exchange_route_cost(params, (64, 128), pad)
            modeled = exchange_cost(pattern, (64, 128), params)
            assert routed.cycles(params) == modeled.cycles

    def test_corner_step_is_two_hops(self):
        """Diagonal neighbors differ in one row bit and one column bit."""
        shape = grid_shape(16)
        cost = schedule_transfers(corner_transfers(shape, pad=2))
        assert cost.max_hops == 2

    def test_binary_embedding_needs_multiple_hops(self):
        """The ablation: without the Gray code, a grid step across a
        power-of-two boundary flips several address bits."""
        params = MachineParams(num_nodes=16)
        shape = grid_shape(16)
        transfers = four_neighbor_transfers(
            shape, (64, 64), 1, embedding=binary_embedding
        )
        cost = schedule_transfers(transfers)
        assert cost.max_hops > 1

    def test_binary_embedding_slower_than_gray(self):
        params = MachineParams(num_nodes=64)
        gray = exchange_route_cost(
            params, (64, 64), 1, embedding=gray_embedding
        )
        binary = exchange_route_cost(
            params, (64, 64), 1, embedding=binary_embedding
        )
        assert binary.busiest_wire_words > gray.busiest_wire_words
        assert binary.total_wire_words > gray.total_wire_words

    def test_single_row_grid_self_transfers_skipped(self):
        params = MachineParams(num_nodes=2)
        shape = grid_shape(2)  # 1x2: N/S neighbors are the node itself
        transfers = four_neighbor_transfers(shape, (8, 8), 1)
        assert all(t.source != t.destination for t in transfers)

    def test_corner_inclusion_adds_cost(self):
        params = MachineParams(num_nodes=16)
        without = exchange_route_cost(params, (64, 64), 2)
        with_corners = exchange_route_cost(
            params, (64, 64), 2, include_corners=True
        )
        assert with_corners.busiest_wire_words > without.busiest_wire_words
