"""Machine-size invariance: decomposition must not change the answer.

The same global problem on 1, 4, and 16 nodes must produce bit-identical
results (the decomposition, halo exchange, and strip mining differ, the
arithmetic does not), and per-node cycle counts must be determined by
the subgrid alone.
"""

import numpy as np
import pytest

from repro.compiler.driver import compile_stencil
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.stencil_op import apply_stencil
from repro.stencil import gallery


def run_on(num_nodes, pattern, x, coeffs):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    compiled = compile_stencil(pattern, params)
    X = CMArray.from_numpy("X", machine, x)
    C = {
        name: CMArray.from_numpy(name, machine, data)
        for name, data in coeffs.items()
    }
    return apply_stencil(compiled, X, C)


@pytest.mark.parametrize(
    "pattern_fn", [gallery.cross5, gallery.square9, gallery.diamond13]
)
def test_results_independent_of_machine_size(pattern_fn):
    pattern = pattern_fn()
    rng = np.random.default_rng(42)
    shape = (32, 32)
    x = rng.standard_normal(shape).astype(np.float32)
    coeffs = {
        name: rng.standard_normal(shape).astype(np.float32)
        for name in pattern.coefficient_names()
    }
    results = [
        run_on(nodes, pattern, x, coeffs).result.to_numpy()
        for nodes in (1, 4, 16)
    ]
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[1], results[2])


def test_cycles_depend_on_subgrid_not_machine_size():
    """SIMD: per-node time is fixed by the subgrid shape; machines of
    any size with the same subgrid take the same cycles -- the basis of
    the paper's 16-to-2,048-node extrapolation."""
    pattern = gallery.cross5()
    cycles = []
    for num_nodes in (1, 4, 16, 64):
        params = MachineParams(num_nodes=num_nodes)
        machine = CM2(params)
        subgrid = (16, 16)
        gshape = (
            subgrid[0] * machine.grid_rows,
            subgrid[1] * machine.grid_cols,
        )
        compiled = compile_stencil(pattern, params)
        X = CMArray("X", machine, gshape)
        C = {
            name: CMArray(name, machine, gshape)
            for name in pattern.coefficient_names()
        }
        run = apply_stencil(compiled, X, C)
        cycles.append(run.compute_cycles)
    assert len(set(cycles)) == 1


def test_rate_scales_linearly_with_nodes():
    """Same subgrid, more nodes: Mflops scale exactly linearly (all
    per-iteration times are identical, work multiplies)."""
    pattern = gallery.cross9()
    rates = {}
    for num_nodes in (16, 64):
        params = MachineParams(num_nodes=num_nodes)
        machine = CM2(params)
        gshape = (64 * machine.grid_rows, 64 * machine.grid_cols)
        compiled = compile_stencil(pattern, params)
        X = CMArray("X", machine, gshape)
        C = {
            name: CMArray(name, machine, gshape)
            for name in pattern.coefficient_names()
        }
        rates[num_nodes] = apply_stencil(compiled, X, C).mflops
    assert rates[64] == pytest.approx(4 * rates[16])
