"""Tests for the reference oracle and the two comparison baselines."""

import numpy as np
import pytest

from repro.baseline.cmfortran import count_operations, run_cmfortran
from repro.baseline.handlib import (
    UnsupportedPattern,
    compile_library_routine,
    handlib_params,
)
from repro.baseline.reference import (
    evaluate_assignment,
    reference_stencil,
    shift_by_offset,
)
from repro.fortran.parser import parse_assignment
from repro.fortran.recognizer import recognize_assignment
from repro.machine.params import MachineParams
from repro.stencil.gallery import cross5, cross9, diamond13, square9
from repro.stencil.offsets import BoundaryMode


class TestShiftByOffset:
    def test_matches_roll_for_circular(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((6, 7)).astype(np.float32)
        shifted = shift_by_offset(x, (1, -2), {}, 0.0)
        np.testing.assert_array_equal(shifted, np.roll(x, (-1, 2), (0, 1)))

    def test_fill_mode(self):
        x = np.ones((4, 4), dtype=np.float32)
        shifted = shift_by_offset(
            x, (1, 0), {1: BoundaryMode.FILL}, fill_value=5.0
        )
        assert shifted[3, 0] == 5.0
        assert shifted[0, 0] == 1.0


class TestReferenceStencil:
    def test_cross5_by_hand(self):
        x = np.zeros((4, 4), dtype=np.float32)
        x[1, 1] = 1.0
        coeffs = {
            f"C{i}": np.full((4, 4), float(i), dtype=np.float32)
            for i in range(1, 6)
        }
        out = reference_stencil(cross5(), x, coeffs)
        # Tap order: N, W, center, E, S with coefficients C1..C5.
        assert out[2, 1] == 1.0  # C1 * x[i-1,j]: north neighbor of (2,1)
        assert out[1, 2] == 2.0  # C2 * x[i,j-1]
        assert out[1, 1] == 3.0  # C3 * x
        assert out[1, 0] == 4.0  # C4 * x[i,j+1]
        assert out[0, 1] == 5.0  # C5 * x[i+1,j]

    def test_missing_coefficient_raises(self):
        with pytest.raises(KeyError):
            reference_stencil(cross5(), np.zeros((4, 4)), {})

    def test_coefficient_shape_mismatch_raises(self):
        coeffs = {f"C{i}": np.zeros((2, 2)) for i in range(1, 6)}
        with pytest.raises(ValueError, match="shape"):
            reference_stencil(cross5(), np.zeros((4, 4)), coeffs)

    def test_recognizer_agrees_with_ast_interpretation(self):
        """Recognize-then-evaluate must equal direct AST execution."""
        source = (
            "R = C1 * CSHIFT(X, 1, -1) + 2.5 * CSHIFT(X, 2, +1)"
            " + X + C2"
        )
        statement = parse_assignment(source)
        pattern = recognize_assignment(statement)
        rng = np.random.default_rng(1)
        env = {
            "X": rng.standard_normal((8, 8)).astype(np.float32),
            "C1": rng.standard_normal((8, 8)).astype(np.float32),
            "C2": rng.standard_normal((8, 8)).astype(np.float32),
        }
        direct = evaluate_assignment(statement, env)
        via_pattern = reference_stencil(
            pattern, env["X"], {"C1": env["C1"], "C2": env["C2"]}
        )
        np.testing.assert_allclose(via_pattern, direct, rtol=1e-6)

    def test_composed_cshift_agreement(self):
        source = "R = C1 * CSHIFT(CSHIFT(X, 1, -1), 2, +1) + C2 * X"
        statement = parse_assignment(source)
        pattern = recognize_assignment(statement)
        rng = np.random.default_rng(2)
        env = {
            "X": rng.standard_normal((6, 6)).astype(np.float32),
            "C1": rng.standard_normal((6, 6)).astype(np.float32),
            "C2": rng.standard_normal((6, 6)).astype(np.float32),
        }
        direct = evaluate_assignment(statement, env)
        via_pattern = reference_stencil(
            pattern, env["X"], {"C1": env["C1"], "C2": env["C2"]}
        )
        np.testing.assert_allclose(via_pattern, direct, rtol=1e-6)


class TestCmFortranBaseline:
    def test_operation_counting_cross5(self):
        passes, shifts = count_operations(cross5())
        assert passes == 9  # 5 multiplies + 4 adds
        assert shifts == 4  # four shifted taps, one call each

    def test_operation_counting_square9(self):
        # Built from offsets: corners count as two axis shifts each.
        passes, shifts = count_operations(square9())
        assert passes == 17
        assert shifts == 4 * 2 + 4 * 1

    def test_baseline_full_machine_around_4_gflops(self):
        """Section 3: stock slicewise CM Fortran sustains ~4 Gflops on
        the full machine for stencil-like code."""
        params = MachineParams(num_nodes=2048)
        run = run_cmfortran(cross9(), (64, 128), params, iterations=100)
        assert 2.0 < run.gflops < 6.0

    def test_convolution_compiler_beats_baseline(self):
        """The headline comparison: >2x over stock CM Fortran."""
        from repro.compiler.plan import compile_pattern
        from repro.runtime.strips import StripSchedule

        params = MachineParams(num_nodes=2048)
        baseline = run_cmfortran(cross9(), (128, 256), params)
        compiled = compile_pattern(cross9(), params)
        schedule = StripSchedule(compiled, (128, 256))
        cycles = schedule.compute_cycles(params)
        compiled_rate = (
            128 * 256 * cross9().useful_flops_per_point()
            / params.seconds(cycles)
        )
        baseline_rate = (
            128 * 256 * cross9().useful_flops_per_point()
            / params.seconds(baseline.cycles_per_iteration)
        )
        assert compiled_rate > 2.0 * baseline_rate

    def test_numerics_attached_when_data_given(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 8)).astype(np.float32)
        coeffs = {
            name: rng.standard_normal((8, 8)).astype(np.float32)
            for name in cross5().coefficient_names()
        }
        run = run_cmfortran(cross5(), (8, 8), x=x, coefficients=coeffs)
        np.testing.assert_array_equal(
            run.result, reference_stencil(cross5(), x, coeffs)
        )


class TestHandLibrary:
    def test_library_has_crosses_only(self):
        compile_library_routine("cross5")
        compile_library_routine("cross9")
        with pytest.raises(UnsupportedPattern):
            compile_library_routine("diamond13")

    def test_library_uses_width_4(self):
        compiled = compile_library_routine("cross5")
        assert compiled.max_width == 4

    def test_library_params_slower(self):
        stock = MachineParams()
        lib = handlib_params(stock)
        assert lib.sequencer_line_overhead > stock.sequencer_line_overhead
        assert not lib.host_overhead_recoded

    def test_compiler_beats_library(self):
        """1990's compiled cross5 outruns the 1989 hand routine."""
        from repro.compiler.plan import compile_pattern
        from repro.runtime.strips import StripSchedule

        params = MachineParams()
        new = compile_pattern(cross5(), params)
        old = compile_library_routine("cross5", params)
        shape = (128, 256)
        new_cycles = StripSchedule(new, shape).compute_cycles(params)
        old_cycles = StripSchedule(old, shape).compute_cycles(
            handlib_params(params)
        )
        assert new_cycles < old_cycles
