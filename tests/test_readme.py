"""The README's quickstart code must actually run as printed."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def extract_python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_readme_quickstart_runs():
    blocks = extract_python_blocks(README.read_text())
    assert blocks, "README lost its quickstart block"
    # Shrink the problem so the doc check stays fast: same code, smaller
    # machine and arrays.
    source = blocks[0]
    source = source.replace("num_nodes=16", "num_nodes=4")
    source = source.replace("(1024, 1024)", "(64, 64)")
    source = source.replace("iterations=100", "iterations=2")
    namespace = {}
    exec(compile(source, "README.md", "exec"), namespace)  # noqa: S102
    assert "run" in namespace
    assert namespace["run"].mflops > 0


def test_readme_mentions_all_examples():
    text = README.read_text()
    examples = Path(__file__).resolve().parent.parent / "examples"
    for script in examples.glob("*.py"):
        assert script.name in text, f"README does not mention {script.name}"
