"""Tests for rank-3 arrays and the outer-iteration stencil application."""

import numpy as np
import pytest

from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.multidim import (
    CMArray3D,
    DepthTap,
    apply_stencil_3d,
    compile_3d,
    depth_alias,
)
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import (
    Coefficient,
    StencilPattern,
    Tap,
    pattern_from_offsets,
)


@pytest.fixture
def machine():
    return CM2(MachineParams(num_nodes=4))


def laplacian_pattern(lam=0.1):
    """In-plane 5-point part of the 7-point 3-D Laplacian."""
    offsets = [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)]
    taps = [
        Tap(
            offset=o,
            coeff=Coefficient.scalar(lam if o != (0, 0) else 1 - 6 * lam),
        )
        for o in offsets
    ]
    return StencilPattern(taps, name="lap5")


def depth_taps(lam=0.1):
    return [
        DepthTap(-1, Coefficient.scalar(lam)),
        DepthTap(+1, Coefficient.scalar(lam)),
    ]


def reference_laplacian_3d(x, lam=0.1, depth_mode="wrap"):
    lamf, cf = np.float32(lam), np.float32(1 - 6 * lam)
    acc = np.zeros_like(x)
    for (dy, dx), c in zip(
        [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)], [lamf, lamf, cf, lamf, lamf]
    ):
        acc = acc + (c * np.roll(x, (-dy, -dx), (0, 1))).astype(np.float32)
    if depth_mode == "wrap":
        below = np.roll(x, 1, 2)
        above = np.roll(x, -1, 2)
    else:
        zeros = np.zeros_like(x[:, :, :1])
        below = np.concatenate([zeros, x[:, :, :-1]], axis=2)
        above = np.concatenate([x[:, :, 1:], zeros], axis=2)
    acc = acc + (lamf * below).astype(np.float32)
    acc = acc + (lamf * above).astype(np.float32)
    return acc


class TestCMArray3D:
    def test_round_trip(self, machine):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((8, 12, 4)).astype(np.float32)
        array = CMArray3D.from_numpy("A", machine, data)
        np.testing.assert_array_equal(array.to_numpy(), data)

    def test_shape_validation(self, machine):
        with pytest.raises(ValueError, match="rank-3"):
            CMArray3D.from_numpy("A", machine, np.zeros((4, 4)))

    def test_depth_validation(self, machine):
        with pytest.raises(ValueError, match="depth"):
            CMArray3D("A", machine, (8, 8, 0))

    def test_slab_access(self, machine):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((8, 8, 3)).astype(np.float32)
        array = CMArray3D.from_numpy("A", machine, data)
        np.testing.assert_array_equal(array.slab(1).to_numpy(), data[:, :, 1])

    def test_like(self, machine):
        a = CMArray3D("A", machine, (8, 8, 3))
        b = a.like("B")
        assert b.global_shape == a.global_shape


class TestDepthTap:
    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError, match="in-plane"):
            DepthTap(0, Coefficient.scalar(1.0))

    def test_alias_names(self):
        assert depth_alias(-1) != depth_alias(1)
        assert depth_alias(-2) != depth_alias(-1)


class TestCompile3D:
    def test_no_depth_taps_is_plain_compilation(self, machine):
        compiled = compile_3d(laplacian_pattern(), (), machine.params)
        assert not hasattr(compiled.pattern, "extra_terms")

    def test_depth_taps_fuse(self, machine):
        compiled = compile_3d(
            laplacian_pattern(), depth_taps(), machine.params
        )
        assert len(compiled.pattern.extra_terms) == 2

    def test_duplicate_depth_offsets_rejected(self, machine):
        with pytest.raises(ValueError, match="duplicate"):
            compile_3d(
                laplacian_pattern(),
                [
                    DepthTap(1, Coefficient.scalar(1.0)),
                    DepthTap(1, Coefficient.scalar(2.0)),
                ],
                machine.params,
            )


class TestApply3D:
    def test_seven_point_laplacian_circular(self, machine):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 12, 5)).astype(np.float32)
        compiled = compile_3d(
            laplacian_pattern(), depth_taps(), machine.params
        )
        X = CMArray3D.from_numpy("X", machine, x)
        run = apply_stencil_3d(
            compiled, X, {}, "R", depth_taps=depth_taps()
        )
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_laplacian_3d(x, depth_mode="wrap")
        )

    def test_seven_point_laplacian_fill(self, machine):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 12, 4)).astype(np.float32)
        compiled = compile_3d(
            laplacian_pattern(), depth_taps(), machine.params
        )
        X = CMArray3D.from_numpy("X", machine, x)
        run = apply_stencil_3d(
            compiled,
            X,
            {},
            "R",
            depth_taps=depth_taps(),
            depth_boundary=BoundaryMode.FILL,
        )
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_laplacian_3d(x, depth_mode="fill")
        )

    def test_plain_2d_pattern_per_slab(self, machine):
        """Without depth taps, each plane is an independent 2-D apply."""
        from repro.baseline.reference import reference_stencil

        pattern = pattern_from_offsets(
            [(-1, 0), (0, 0), (1, 0)], name="column3"
        )
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 8, 3)).astype(np.float32)
        coeffs = {
            name: rng.standard_normal((8, 8, 3)).astype(np.float32)
            for name in pattern.coefficient_names()
        }
        compiled = compile_3d(pattern, (), machine.params)
        X = CMArray3D.from_numpy("X", machine, x)
        C = {
            name: CMArray3D.from_numpy(name, machine, data)
            for name, data in coeffs.items()
        }
        run = apply_stencil_3d(compiled, X, C, "R")
        got = run.result.to_numpy()
        for k in range(3):
            expected = reference_stencil(
                pattern,
                x[:, :, k],
                {name: coeffs[name][:, :, k] for name in coeffs},
            )
            np.testing.assert_array_equal(got[:, :, k], expected)

    def test_depth_single_slab_circular_self_reference(self, machine):
        """Depth 1 with circular boundary: the slab is its own neighbor."""
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, 8, 1)).astype(np.float32)
        compiled = compile_3d(
            laplacian_pattern(), depth_taps(), machine.params
        )
        X = CMArray3D.from_numpy("X", machine, x)
        run = apply_stencil_3d(compiled, X, {}, "R", depth_taps=depth_taps())
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_laplacian_3d(x, depth_mode="wrap")
        )

    def test_cost_scales_with_depth(self, machine):
        compiled = compile_3d(
            laplacian_pattern(), depth_taps(), machine.params
        )
        shallow = apply_stencil_3d(
            compiled,
            CMArray3D("A", machine, (8, 8, 2)),
            {},
            "R1",
            depth_taps=depth_taps(),
        )
        deep = apply_stencil_3d(
            compiled,
            CMArray3D("B", machine, (8, 8, 6)),
            {},
            "R2",
            depth_taps=depth_taps(),
        )
        assert deep.compute_cycles == 3 * shallow.compute_cycles
        assert deep.useful_flops == 3 * shallow.useful_flops

    def test_iterations_scale(self, machine):
        compiled = compile_3d(laplacian_pattern(), (), machine.params)
        once = apply_stencil_3d(
            compiled, CMArray3D("A", machine, (8, 8, 2)), {}, "R1"
        )
        many = apply_stencil_3d(
            compiled,
            CMArray3D("B", machine, (8, 8, 2)),
            {},
            "R2",
            iterations=10,
        )
        assert many.compute_cycles == 10 * once.compute_cycles
        assert many.mflops == pytest.approx(once.mflops)


class TestExactMode3D:
    def test_exact_matches_fast_through_the_outer_loop(self, machine):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((8, 12, 3)).astype(np.float32)
        compiled = compile_3d(
            laplacian_pattern(), depth_taps(), machine.params
        )
        results = {}
        for exact in (False, True):
            m = CM2(MachineParams(num_nodes=4))
            compiled_m = compile_3d(
                laplacian_pattern(), depth_taps(), m.params
            )
            X = CMArray3D.from_numpy("X", m, x)
            run = apply_stencil_3d(
                compiled_m,
                X,
                {},
                "R",
                depth_taps=depth_taps(),
                exact=exact,
            )
            results[exact] = (run.result.to_numpy(), run.compute_cycles)
        np.testing.assert_array_equal(results[True][0], results[False][0])
        assert results[True][1] == results[False][1]
