"""Cross-feature integration scenarios.

Each test combines features that are individually covered elsewhere --
boundary modes, machine sizes, strip mixes, fusion, wrappers, the exact
datapath -- in the ways a real application would, and checks the result
against the pure-numpy oracle bit for bit.
"""

import numpy as np
import pytest

from repro.baseline.reference import reference_stencil
from repro.compiler.codegen import ExtraTerm
from repro.compiler.driver import compile_fortran, compile_stencil
from repro.compiler.fusion import fuse
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.stencil_op import apply_stencil
from repro.runtime.subroutine import make_subroutine
from repro.stencil.gallery import asymmetric5, border_demo, cross9
from repro.stencil.pattern import Coefficient


class TestSixteenNodeExact:
    """The paper's board size through the cycle-stepped datapath."""

    def test_asymmetric_pattern_awkward_shape(self):
        params = MachineParams(num_nodes=16)
        machine = CM2(params)
        pattern = asymmetric5()
        rng = np.random.default_rng(0)
        # 20x28 global on a 4x4 grid: 5x7 subgrids; strips 4+2+1.
        x = rng.standard_normal((20, 28)).astype(np.float32)
        coeffs = {
            name: rng.standard_normal((20, 28)).astype(np.float32)
            for name in pattern.coefficient_names()
        }
        compiled = compile_stencil(pattern, params)
        X = CMArray.from_numpy("X", machine, x)
        C = {
            name: CMArray.from_numpy(name, machine, data)
            for name, data in coeffs.items()
        }
        run = apply_stencil(compiled, X, C, exact=True)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
        )

    def test_wide_borders_on_sixteen_nodes(self):
        """border_demo pads 3 on all sides; subgrids must fit the halo."""
        params = MachineParams(num_nodes=16)
        machine = CM2(params)
        pattern = border_demo()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((16, 16)).astype(np.float32)
        coeffs = {
            name: rng.standard_normal((16, 16)).astype(np.float32)
            for name in pattern.coefficient_names()
        }
        compiled = compile_stencil(pattern, params)
        X = CMArray.from_numpy("X", machine, x)
        C = {
            name: CMArray.from_numpy(name, machine, data)
            for name, data in coeffs.items()
        }
        run = apply_stencil(compiled, X, C, exact=True)
        np.testing.assert_array_equal(
            run.result.to_numpy(), reference_stencil(pattern, x, coeffs)
        )


class TestIteratedWorkflow:
    def test_subroutine_wrapper_in_a_time_loop(self):
        """A diffusion loop through the version-2 calling convention,
        checked step by step against numpy."""
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        smooth = make_subroutine(
            "SUBROUTINE SMOOTH (OUT, F, W1, W2, W3, W4, W5)\n"
            "REAL, ARRAY(:, :) :: OUT, F, W1, W2, W3, W4, W5\n"
            "OUT = W1 * CSHIFT(F, 1, -1) + W2 * CSHIFT(F, 2, -1)"
            " + W3 * F + W4 * CSHIFT(F, 2, +1) + W5 * CSHIFT(F, 1, +1)\n"
            "END",
            params,
        )
        rng = np.random.default_rng(2)
        field_host = rng.standard_normal((8, 8)).astype(np.float32)
        weights_host = {
            f"W{i}": np.full((8, 8), 0.2, dtype=np.float32)
            for i in range(1, 6)
        }
        out = CMArray("OUTBUF", machine, (8, 8))
        field = CMArray.from_numpy("FIELD", machine, field_host)
        weights = [
            CMArray.from_numpy(name, machine, data)
            for name, data in weights_host.items()
        ]
        expected = field_host
        for _ in range(4):
            smooth(out, field, *weights)
            pattern = smooth.compiled.pattern
            renamed = {
                f"W{i}": weights_host[f"W{i}"] for i in range(1, 6)
            }
            expected = reference_stencil(pattern, expected, renamed)
            # Feed the result back as the next field.
            field.set(out.to_numpy())
        np.testing.assert_array_equal(out.to_numpy(), expected)

    def test_fused_and_plain_interleaved(self):
        """Alternate plain and fused applications over shared arrays."""
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        pattern = cross9()
        plain = compile_stencil(pattern, params)
        fused = fuse(
            pattern,
            [ExtraTerm(source="Y", coeff=Coefficient.array("CY"))],
            params,
        )
        rng = np.random.default_rng(3)
        x = rng.standard_normal((16, 16)).astype(np.float32)
        y = rng.standard_normal((16, 16)).astype(np.float32)
        coeffs_host = {
            name: rng.standard_normal((16, 16)).astype(np.float32)
            for name in list(pattern.coefficient_names()) + ["CY"]
        }
        X = CMArray.from_numpy("X", machine, x)
        CMArray.from_numpy("Y", machine, y)
        C = {
            name: CMArray.from_numpy(name, machine, data)
            for name, data in coeffs_host.items()
        }
        base_coeffs = {
            name: C[name] for name in pattern.coefficient_names()
        }
        plain_run = apply_stencil(plain, X, base_coeffs, "RPLAIN")
        fused_run = apply_stencil(fused, X, C, "RFUSED")
        base_expected = reference_stencil(
            pattern, x, {n: coeffs_host[n] for n in pattern.coefficient_names()}
        )
        np.testing.assert_array_equal(
            plain_run.result.to_numpy(), base_expected
        )
        fused_expected = (
            base_expected
            + (coeffs_host["CY"] * y).astype(np.float32)
        ).astype(np.float32)
        np.testing.assert_array_equal(
            fused_run.result.to_numpy(), fused_expected
        )
        # The fused run costs more cycles (one more chained MA per point
        # plus the extra loads) but fewer than a separate pass would add.
        assert fused_run.compute_cycles > plain_run.compute_cycles

    def test_result_feeding_back_as_source(self):
        """Ping-pong two arrays through a compiled statement (the usual
        relaxation structure) and match numpy at every step."""
        params = MachineParams(num_nodes=4)
        machine = CM2(params)
        compiled = compile_fortran(
            "B = 0.25 * CSHIFT(A, 1, -1) + 0.5 * A + 0.25 * CSHIFT(A, 1, +1)",
            params,
        )
        rng = np.random.default_rng(4)
        host = rng.standard_normal((8, 12)).astype(np.float32)
        a = CMArray.from_numpy("A", machine, host)
        b = CMArray("B", machine, (8, 12))
        expected = host
        for step in range(3):
            apply_stencil(compiled, a, {}, b)
            expected = reference_stencil(compiled.pattern, expected, {})
            np.testing.assert_array_equal(b.to_numpy(), expected)
            a.set(b.to_numpy())
