"""Fault injection, detection, and recovery: the chaos suite.

The contract under test is the acceptance property of the resilient
runtime: for every fault kind, boundary mode, and execution mode, a
seeded chaos run either produces output bit-identical (float32) to the
fault-free run or raises a typed :class:`FaultError` -- never silent
corruption.  With injection disabled, the guard's accounting reproduces
the closed-form fault-free totals exactly and ``FaultStats`` stays
all-zero.

``CHAOS_SEED`` parameterizes the whole suite from the environment so CI
can sweep distinct seeds (see the chaos job in ci.yml).
"""

import os

import numpy as np
import pytest

from repro.compiler.driver import (
    clear_compile_cache,
    compile_stencil,
    depth_cache_info,
    select_block_depth,
)
from repro.machine.machine import CM2
from repro.machine.params import MachineParams
from repro.runtime.cm_array import CMArray
from repro.runtime.faults import (
    ALL_FAULT_KINDS,
    TRANSIENT_FAULT_KINDS,
    FaultError,
    FaultInjector,
    FaultKind,
    FaultStats,
    NonFiniteInputError,
    ResiliencePolicy,
    RetryExhaustedError,
)
from repro.runtime.stencil_op import apply_stencil
from repro.analysis.timing import report
from repro.stencil.gallery import cross, square
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import pattern_from_offsets

#: CI sweeps this; locally it defaults to 0.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

SHAPE = (16, 24)  # 4 nodes -> 2x2 grid of 8x12 subgrids
ITERATIONS = 7  # not a multiple of the tested block depth: tail block
NO_CHECKPOINTS = ResiliencePolicy(checkpoint_interval=0)


def boundary_variant(pattern, mode, fill_value=0.0):
    modes = {
        "torus": {1: BoundaryMode.CIRCULAR, 2: BoundaryMode.CIRCULAR},
        "fill": {1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
    }[mode]
    return pattern_from_offsets(
        [tap.offset for tap in pattern.taps],
        name=f"{pattern.name}_{mode}",
        boundary=modes,
        fill_value=fill_value,
    )


def make_problem(pattern, *, num_nodes=4, seed=0, shape=SHAPE):
    params = MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }
    return machine, compiled, x, coeffs


def reference_result(pattern, **kwargs):
    """The fault-free answer every chaos run must reproduce bitwise."""
    _, compiled, x, coeffs = make_problem(pattern)
    run = apply_stencil(compiled, x, coeffs, "R_REF", iterations=ITERATIONS,
                        **kwargs)
    return run, run.result.to_numpy()


class TestBlockDepthValidation:
    @pytest.mark.parametrize("bad", [0, -1, -7, True, False])
    def test_non_positive_or_bool_rejected(self, bad):
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        with pytest.raises(ValueError, match="block_depth"):
            apply_stencil(compiled, x, coeffs, iterations=3, block_depth=bad)

    @pytest.mark.parametrize("bad", ["fast", "AUTO ", "", 2.5, None])
    def test_non_auto_strings_and_floats_rejected(self, bad):
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        with pytest.raises(ValueError, match="block_depth"):
            apply_stencil(compiled, x, coeffs, iterations=3, block_depth=bad)


class TestCheckFinite:
    def test_nan_source_rejected_by_name(self):
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        data = x.to_numpy()
        data[3, 5] = np.nan
        x.set(data)
        with pytest.raises(NonFiniteInputError, match="'X'"):
            apply_stencil(compiled, x, coeffs, check_finite=True)
        # The same call without the opt-in check runs (NaN propagates).
        apply_stencil(compiled, x, coeffs)

    def test_inf_coefficient_rejected_by_name(self):
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        name = pattern.coefficient_names()[0]
        data = coeffs[name].to_numpy()
        data[0, 0] = np.inf
        coeffs[name].set(data)
        with pytest.raises(NonFiniteInputError, match=repr(name)):
            apply_stencil(compiled, x, coeffs, check_finite=True)

    def test_clean_inputs_pass(self):
        pattern = boundary_variant(square(1), "fill")
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, iterations=2, check_finite=True
        )
        _, expected = reference_result(pattern)
        del expected  # different iteration count; just assert it ran
        assert np.isfinite(run.result.to_numpy()).all()


class TestInjectorDeterminism:
    def test_same_seed_same_faults_same_result(self):
        pattern = boundary_variant(cross(2), "torus")
        # Transient kinds only: hard faults on a spare-less machine
        # raise the typed NoSpareError by design (see test_hard_faults).
        rates = {kind: 0.3 for kind in TRANSIENT_FAULT_KINDS}
        outputs = []
        for _ in range(2):
            _, compiled, x, coeffs = make_problem(pattern)
            run = apply_stencil(
                compiled, x, coeffs, "R_CHAOS",
                iterations=ITERATIONS, block_depth=3,
                faults=FaultInjector(seed=CHAOS_SEED, rates=rates),
            )
            outputs.append(
                (run.result.to_numpy(), run.fault_stats.events,
                 run.comm_cycles_total, run.compute_cycles_total)
            )
        (out_a, events_a, comm_a, compute_a) = outputs[0]
        (out_b, events_b, comm_b, compute_b) = outputs[1]
        assert np.array_equal(out_a, out_b)
        assert events_a == events_b
        assert comm_a == comm_b
        assert compute_a == compute_b

    def test_rates_accept_enum_and_string_keys(self):
        by_enum = FaultInjector(rates={FaultKind.HALO_DROP: 0.5})
        by_str = FaultInjector(rates={"halo_drop": 0.5})
        assert by_enum.rates == by_str.rates


EXECUTION_MODES = [
    ("blocked", dict(block_depth=3)),
    ("unblocked", dict()),
    ("exact", dict(exact=True)),
]


class TestChaosProperty:
    """The acceptance matrix: every kind x boundary x execution mode is
    bit-identical to fault-free or a typed FaultError -- never silently
    wrong."""

    @pytest.mark.parametrize("kind", ALL_FAULT_KINDS)
    @pytest.mark.parametrize("mode", ["torus", "fill"])
    @pytest.mark.parametrize("exec_name,exec_kwargs", EXECUTION_MODES)
    def test_bit_identical_or_typed_error(
        self, kind, mode, exec_name, exec_kwargs
    ):
        pattern = boundary_variant(cross(1), mode, fill_value=1.5)
        _, expected = reference_result(pattern)
        _, compiled, x, coeffs = make_problem(pattern)
        injector = FaultInjector(seed=CHAOS_SEED, rates={kind: 0.25})
        # SDC is only injectable under ABFT (the guard rejects the
        # combination otherwise -- silent corruption with no detector
        # would void the property under test).
        resilience = (
            ResiliencePolicy(abft=True)
            if kind == FaultKind.SDC.value
            else None
        )
        try:
            run = apply_stencil(
                compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
                faults=injector, resilience=resilience, **exec_kwargs,
            )
        except FaultError:
            return  # surfaced, not silent: the property holds
        assert np.array_equal(run.result.to_numpy(), expected)
        assert run.faults is not None
        assert run.fault_stats.total_injected == injector.total_injected

    def test_source_array_survives_chaos(self):
        """Recovery replays from the source, so it must stay pristine."""
        pattern = boundary_variant(square(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        before = x.to_numpy()
        # Transient kinds only: NODE_DEAD genuinely destroys the dead
        # node's tile of the source, and without a spare the run ends in
        # a typed error with the tile still lost (see test_hard_faults
        # for the spare-backed bit-restoration property).
        rates = {kind: 0.4 for kind in TRANSIENT_FAULT_KINDS}
        try:
            apply_stencil(
                compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
                block_depth=2,
                faults=FaultInjector(seed=CHAOS_SEED, rates=rates),
            )
        except FaultError:
            pass
        assert np.array_equal(x.to_numpy(), before)


class TestTargetedRecovery:
    def test_single_halo_corruption_is_retried(self):
        pattern = boundary_variant(cross(1), "torus")
        clean_run, expected = reference_result(pattern)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
            faults=FaultInjector(
                seed=CHAOS_SEED, rates={"halo_corrupt": 1.0}, max_faults=1
            ),
            resilience=NO_CHECKPOINTS,
        )
        stats = run.fault_stats
        assert np.array_equal(run.result.to_numpy(), expected)
        assert stats.injected == {"halo_corrupt": 1}
        assert stats.detected.get("halo_checksum") == 1
        assert stats.retries == 1
        assert stats.retry_cycles > 0
        # The retry's traffic lands in the honest totals.
        assert run.comm_cycles_total > clean_run.comm_cycles_total

    def test_persistent_halo_corruption_exhausts_retries(self):
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        with pytest.raises(RetryExhaustedError):
            apply_stencil(
                compiled, x, coeffs, iterations=2,
                faults=FaultInjector(
                    seed=CHAOS_SEED, rates={"halo_corrupt": 1.0}
                ),
            )

    def test_dropped_deep_halo_is_retried(self):
        pattern = boundary_variant(cross(1), "fill", fill_value=2.0)
        _, expected = reference_result(pattern)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
            block_depth=3,
            faults=FaultInjector(
                seed=CHAOS_SEED, rates={"halo_drop": 1.0}, max_faults=1
            ),
        )
        assert np.array_equal(run.result.to_numpy(), expected)
        assert run.fault_stats.retries >= 1

    def test_persistent_poison_degrades_to_exact(self):
        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
            faults=FaultInjector(
                seed=CHAOS_SEED, rates={"node_poison": 1.0}
            ),
        )
        stats = run.fault_stats
        assert stats.degradations == ("fast->exact",)
        assert run.exact  # the run finished on the ECC-protected rung
        assert stats.recomputes > 0
        assert stats.rollbacks > 0
        assert np.array_equal(run.result.to_numpy(), expected)

    def test_scratch_parity_degrades_blocked_to_fast(self):
        class CenterFlip(FaultInjector):
            """Deterministically flip the just-sealed pong stack's
            center, which the next sub-iteration (or the post-loop
            verify) always reads."""

            def inject_scratch(self, buffers):
                label, buffer = buffers[1]  # pong: dst of sub-iteration 0
                center = tuple(extent // 2 for extent in buffer.shape)
                buffer.view(np.uint32)[center] ^= np.uint32(1)
                return [self._record(
                    FaultKind.SCRATCH_BITFLIP, label, "center bit 0"
                )]

        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
            block_depth=3,
            faults=CenterFlip(seed=CHAOS_SEED),
            resilience=ResiliencePolicy(max_replays=0),
        )
        stats = run.fault_stats
        assert "blocked->fast" in stats.degradations
        assert stats.detected.get("parity", 0) >= 1
        assert np.array_equal(run.result.to_numpy(), expected)

    def test_rollback_restores_periodic_checkpoint(self):
        class PoisonOnPass(FaultInjector):
            """Poison exactly one executor pass, chosen so it lands
            after the iteration-2 checkpoint."""

            def __init__(self, fire_on_pass):
                super().__init__(seed=0)
                self.passes = 0
                self.fire_on_pass = fire_on_pass

            def inject_poison(self, result_stack):
                self.passes += 1
                if self.passes != self.fire_on_pass:
                    return []
                result_stack[0, 0] = np.float32(np.nan)
                return [self._record(
                    FaultKind.NODE_POISON, "node(0,0)", "scripted"
                )]

        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
            faults=PoisonOnPass(fire_on_pass=4),  # iteration index 3
            resilience=ResiliencePolicy(max_retries=0, checkpoint_interval=2),
        )
        stats = run.fault_stats
        assert stats.checkpoints >= 1
        assert stats.checkpoint_cycles > 0
        assert stats.rollbacks == 1
        # Rolled back from iteration 3 to the k=2 checkpoint: iterations
        # 2 and 3 ran twice.
        assert stats.replayed_iterations == 2
        assert np.array_equal(run.result.to_numpy(), expected)

    def test_report_row_shows_chaos_accounting(self):
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=ITERATIONS,
            faults=FaultInjector(
                seed=CHAOS_SEED, rates={"halo_corrupt": 1.0}, max_faults=1
            ),
        )
        row = report(run).row()
        assert "[chaos: 1 injected, 1 detected, 1 retries" in row
        clean = apply_stencil(compiled, x, coeffs, iterations=1)
        assert "chaos" not in report(clean).row()


class TestGuardedIdentity:
    """Guarding without faults must change nothing: bitwise results and
    cycle totals equal to the unguarded closed-form accounting."""

    @pytest.mark.parametrize("exec_kwargs", [dict(), dict(block_depth=3)])
    def test_guarded_totals_match_unguarded(self, exec_kwargs):
        pattern = boundary_variant(square(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        plain = apply_stencil(
            compiled, x, coeffs, "R_PLAIN", iterations=ITERATIONS,
            **exec_kwargs,
        )
        _, compiled2, x2, coeffs2 = make_problem(pattern)
        guarded = apply_stencil(
            compiled2, x2, coeffs2, "R_GUARD", iterations=ITERATIONS,
            resilience=NO_CHECKPOINTS, **exec_kwargs,
        )
        assert np.array_equal(
            guarded.result.to_numpy(), plain.result.to_numpy()
        )
        assert guarded.exchanges == plain.exchanges
        assert guarded.comm_cycles_total == plain.comm_cycles_total
        assert guarded.compute_cycles_total == plain.compute_cycles_total
        assert guarded.fault_stats.all_zero()

    def test_checkpoints_cost_compute_but_not_results(self):
        pattern = boundary_variant(cross(1), "torus")
        _, expected = reference_result(pattern)
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(
            compiled, x, coeffs, "R_CKPT", iterations=ITERATIONS,
            resilience=ResiliencePolicy(checkpoint_interval=2),
        )
        stats = run.fault_stats
        assert np.array_equal(run.result.to_numpy(), expected)
        assert stats.checkpoints == 3  # after iterations 2, 4, 6
        assert stats.checkpoint_cycles > 0
        assert not stats.all_zero()
        assert stats.total_injected == 0

    def test_default_run_carries_no_fault_state(self):
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        run = apply_stencil(compiled, x, coeffs, iterations=2)
        assert run.faults is None
        assert isinstance(run.fault_stats, FaultStats)
        assert run.fault_stats.all_zero()


class TestDepthCache:
    def test_auto_depth_selection_is_memoized(self):
        clear_compile_cache()
        pattern = boundary_variant(cross(1), "torus")
        _, compiled, x, coeffs = make_problem(pattern)
        assert depth_cache_info() == (0, 0, 0)
        depth = select_block_depth(compiled, x.subgrid_shape, ITERATIONS)
        assert depth_cache_info() == (0, 1, 1)
        again = select_block_depth(compiled, x.subgrid_shape, ITERATIONS)
        assert again == depth
        assert depth_cache_info() == (1, 1, 1)
        clear_compile_cache()
        assert depth_cache_info() == (0, 0, 0)
