"""Tests for fixed-form (FORTRAN 77 card-image) source support.

CM Fortran accepted both layouts; the paper prints its examples in free
form, but 1991 production decks were card images -- column-1 comments,
column-6 continuations, code in columns 7-72.
"""

import pytest

from repro.fortran.lexer import fixed_to_free, looks_fixed_form
from repro.fortran.parser import parse_subroutine
from repro.fortran.recognizer import recognize_subroutine

FIXED_CROSS = """\
C     THE FIVE-POINT CROSS OF THE PAPER, AS A CARD DECK
      SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
      REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
      R = C1 * CSHIFT (X, 1, -1)
     &  + C2 * CSHIFT (X, 2, -1)
     &  + C3 * X
     &  + C4 * CSHIFT (X, 2, +1)
     &  + C5 * CSHIFT (X, 1, +1)
      END
"""

FREE_CROSS = """\
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""


class TestDetection:
    def test_card_deck_detected(self):
        assert looks_fixed_form(FIXED_CROSS)

    def test_free_form_not_detected(self):
        assert not looks_fixed_form(FREE_CROSS)

    def test_comment_card_alone_detected(self):
        assert looks_fixed_form("C     JUST A COMMENT\n      END\n")

    def test_statement_starting_with_c_name_is_free(self):
        """'C1 = ...' must not be mistaken for a comment card."""
        assert not looks_fixed_form("C1 = C2 * X\n")


class TestConversion:
    def test_comments_dropped(self):
        free = fixed_to_free(FIXED_CROSS)
        assert "CARD DECK" not in free

    def test_continuations_joined(self):
        free = fixed_to_free(FIXED_CROSS)
        statement_lines = [l for l in free.splitlines() if "=" in l and "::" not in l]
        assert len(statement_lines) == 1
        assert statement_lines[0].count("CSHIFT") == 4

    def test_numeric_labels_dropped(self):
        free = fixed_to_free("   10 R = X\n")
        assert free.strip() == "R = X"

    def test_directive_cards_survive(self):
        free = fixed_to_free(
            "CMF$ STENCIL\n      R = C1 * CSHIFT(X, 1, -1)\n"
        )
        assert free.splitlines()[0] == "!CMF$ STENCIL"

    def test_bang_directives_survive(self):
        free = fixed_to_free(
            "!REPRO$ STENCIL\n      R = C1 * CSHIFT(X, 1, -1)\n"
        )
        assert free.splitlines()[0] == "!REPRO$ STENCIL"

    def test_columns_beyond_72_ignored(self):
        line = "      R = X" + " " * 55 + "SEQUENCE0001"
        assert len(line) > 72
        free = fixed_to_free(line)
        assert "SEQUENCE" not in free


class TestEndToEnd:
    def test_fixed_form_parses_and_recognizes(self):
        sub = parse_subroutine(FIXED_CROSS)
        pattern = recognize_subroutine(sub)
        assert pattern.num_points == 5

    def test_fixed_and_free_agree(self):
        fixed = recognize_subroutine(parse_subroutine(FIXED_CROSS))
        free = recognize_subroutine(parse_subroutine(FREE_CROSS))
        assert fixed.offsets == free.offsets
        assert fixed.coefficient_names() == free.coefficient_names()

    def test_forced_fixed_form(self):
        sub = parse_subroutine(FIXED_CROSS, fixed_form=True)
        assert sub.name == "CROSS"

    def test_forced_free_form_rejects_cards(self):
        from repro.fortran.errors import FortranError

        with pytest.raises(FortranError):
            parse_subroutine(FIXED_CROSS, fixed_form=False)

    def test_compile_fortran_accepts_fixed_form(self):
        from repro.compiler.driver import compile_fortran

        compiled = compile_fortran(FIXED_CROSS)
        assert compiled.max_width == 8

    def test_directive_scan_through_fixed_form(self):
        from repro.compiler.integrated import compile_program

        source = (
            "      SUBROUTINE S (R, X, Y, C1)\n"
            "      REAL, ARRAY(:, :) :: R, X, Y, C1\n"
            "CMF$ STENCIL\n"
            "      R = C1 * CSHIFT(X, 1, -1)\n"
            "     &  + C1 * CSHIFT(Y, 1, +1)\n"
            "      END\n"
        )
        result = compile_program(source)
        assert len(result.diagnostics.warnings) == 1
