"""Tests for the WTL3164 pipeline model: timing, chaining, validation."""

import numpy as np
import pytest

from repro.machine.fpu import ScheduleError, Wtl3164
from repro.machine.isa import Instr, LoadOp, MAOp, MemRef, NopOp, StoreOp
from repro.machine.memory import NodeMemory
from repro.machine.params import MachineParams
from repro.stencil.pattern import Coefficient


@pytest.fixture
def memory():
    mem = NodeMemory()
    mem.install("data", np.arange(16, dtype=np.float32).reshape(4, 4))
    mem.install("coeff", np.full((4, 4), 2.0, dtype=np.float32))
    mem.allocate("out", (4, 4))
    return mem


@pytest.fixture
def params():
    return MachineParams(num_nodes=1)


def make_fpu(params, memory, unit_reg=None):
    return Wtl3164(params, memory, zero_reg=0, unit_reg=unit_reg)


def load(reg, row, col, buffer="data"):
    return Instr(LoadOp(reg=reg, row=row, col=col), MemRef(buffer, row, col))


def ma(data_reg, dest, *, thread=0, first=True, last=True, row=0, col=0):
    return Instr(
        MAOp(
            coeff=Coefficient.array("coeff"),
            data_reg=data_reg,
            dest_reg=dest,
            thread=thread,
            first=first,
            last=last,
            result_col=col,
        ),
        MemRef("coeff", row, col),
    )


def store(reg, row, col):
    return Instr(StoreOp(reg=reg, result_col=col), MemRef("out", row, col))


def nop(n=1):
    return [Instr(NopOp("test"), None)] * n


class TestBasicDataflow:
    def test_load_compute_store(self, params, memory):
        """coeff[0,1] * data[0,1] = 2 * 1 = 2."""
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        fpu.stall(2)  # load latency
        fpu.run([ma(2, 2, row=0, col=1)])
        fpu.stall(6)  # writeback + reversal gap
        fpu.run([store(2, 0, 1)])
        fpu.drain()
        assert memory.buffer("out")[0, 1] == np.float32(2.0)

    def test_load_latency_respected(self, params, memory):
        """A register read before its load lands sees the old value."""
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        # Value lands at cycle 0 + 2; a read at cycle 1 is uninitialized.
        with pytest.raises(ScheduleError, match="uninitialized"):
            fpu.run([ma(2, 2)])

    def test_chained_accumulation(self, params, memory):
        """Three chained multiply-adds accumulate 2*(d0 + d1 + d2)."""
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 1, 0), load(3, 1, 1), load(4, 1, 2)])
        fpu.stall(2)
        # One thread issues every other cycle: interleave with nops.
        fpu.step(ma(2, 4, first=True, last=False, row=1, col=0))
        fpu.step(Instr(NopOp("interleave"), None))
        fpu.step(ma(3, 4, first=False, last=False, row=1, col=1))
        fpu.step(Instr(NopOp("interleave"), None))
        fpu.step(ma(4, 4, first=False, last=True, row=1, col=2))
        fpu.stall(6)
        fpu.run([store(4, 1, 0)])
        fpu.drain()
        expected = np.float32(2.0 * (4 + 5 + 6))
        assert memory.buffer("out")[1, 0] == expected

    def test_two_interleaved_threads(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 0), load(3, 0, 1)])
        fpu.stall(2)
        fpu.step(ma(2, 2, thread=0, row=0, col=0))
        fpu.step(ma(3, 3, thread=1, row=0, col=1))
        fpu.stall(6)
        fpu.run([store(2, 0, 0), nop(1)[0], store(3, 0, 1)])
        fpu.drain()
        assert memory.buffer("out")[0, 0] == np.float32(0.0)  # 2 * 0
        assert memory.buffer("out")[0, 1] == np.float32(2.0)  # 2 * 1

    def test_writeback_at_issue_plus_four(self, params, memory):
        """The destination register still holds its old value until
        exactly issue + 4 -- the 'just barely' reuse window."""
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1), load(3, 0, 2)])
        fpu.stall(2)
        fpu.step(ma(2, 3, row=0, col=1))  # issued cycle 4, lands cycle 8
        # Cycles 5..7: register 3 still holds data[0,2] = 2.0.
        assert fpu.regs[3] == np.float32(2.0)
        fpu.stall(3)  # cycles 5, 6, 7
        assert fpu.regs[3] == np.float32(2.0)
        fpu.stall(1)  # cycle 8: writeback applied at start
        assert fpu.regs[3] == np.float32(2.0 * 1.0)


class TestValidation:
    def test_store_before_writeback_rejected(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        fpu.stall(2)
        fpu.step(ma(2, 2))
        fpu.stall(2)  # not enough: writeback lands at +4
        with pytest.raises(ScheduleError, match="writeback"):
            fpu.step(store(2, 0, 0))

    def test_pipe_reversal_needs_gap(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        fpu.stall(1)  # one intervening cycle < the 2-cycle penalty
        with pytest.raises(ScheduleError, match="reversed"):
            fpu.step(store(0, 0, 0))  # zero reg is valid; read-to-write flip

    def test_pipe_reversal_with_gap_allowed(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        fpu.stall(4)
        fpu.stall(params.pipe_reversal_penalty)
        fpu.step(store(0, 0, 0))  # stores 0.0; legal

    def test_write_to_zero_register_rejected(self, params, memory):
        fpu = make_fpu(params, memory)
        with pytest.raises(ScheduleError, match="reserved"):
            fpu.step(ma(0, 0))

    def test_write_to_unit_register_rejected(self, params, memory):
        fpu = make_fpu(params, memory, unit_reg=1)
        with pytest.raises(ScheduleError, match="reserved"):
            fpu.step(ma(1, 1))

    def test_load_into_reserved_register_rejected(self, params, memory):
        fpu = make_fpu(params, memory)
        with pytest.raises(ScheduleError, match="reserved"):
            fpu.step(load(0, 0, 0))

    def test_uninitialized_read_rejected(self, params, memory):
        fpu = make_fpu(params, memory)
        with pytest.raises(ScheduleError, match="uninitialized"):
            fpu.step(ma(5, 5))

    def test_register_out_of_range(self, params, memory):
        fpu = make_fpu(params, memory)
        with pytest.raises(ScheduleError, match="register file"):
            fpu.step(load(99, 0, 0))

    def test_chain_protocol_new_chain_while_open(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        fpu.stall(2)
        fpu.step(ma(2, 2, first=True, last=False))
        fpu.step(Instr(NopOp("x"), None))
        with pytest.raises(ScheduleError, match="open"):
            fpu.step(ma(2, 2, first=True, last=True))

    def test_unclosed_chain_detected_at_drain(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        fpu.stall(2)
        fpu.step(ma(2, 2, first=True, last=False))
        with pytest.raises(ScheduleError, match="unclosed"):
            fpu.drain()


class TestRounding:
    def test_chained_ma_rounds_after_multiply(self, params, memory):
        """The WTL3164 is chained, not fused: the product rounds to
        float32 before the add."""
        mem = NodeMemory()
        # Pick values where fused and chained differ.
        a = np.float32(1.0000001)
        mem.install("data", np.array([[a]], dtype=np.float32))
        mem.install("coeff", np.array([[a]], dtype=np.float32))
        mem.allocate("out", (1, 1))
        fpu = make_fpu(params, mem)
        fpu.run([load(2, 0, 0)])
        fpu.stall(2)
        fpu.step(ma(2, 2, row=0, col=0))
        fpu.stall(6)
        fpu.run([store(2, 0, 0)])
        fpu.drain()
        chained = np.float32(np.float32(a * a) + np.float32(0.0))
        assert mem.buffer("out")[0, 0] == chained


class TestStats:
    def test_cycle_accounting(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        fpu.stall(2, "fill")
        fpu.step(ma(2, 2))
        fpu.stall(6, "drain")
        fpu.step(store(2, 0, 0))
        assert fpu.stats.cycles == 11
        assert fpu.stats.loads == 1
        assert fpu.stats.ma_issues == 1
        assert fpu.stats.stores == 1
        assert fpu.stats.stalls == 8
        assert fpu.stats.stall_reasons["fill"] == 2

    def test_drain_counts_cycles(self, params, memory):
        fpu = make_fpu(params, memory)
        fpu.run([load(2, 0, 1)])
        drained = fpu.drain()
        assert drained == 2  # load latency outstanding


class TestSpecialValues:
    def test_infinity_propagates(self, params):
        mem = NodeMemory()
        mem.install("data", np.array([[np.inf]], dtype=np.float32))
        mem.install("coeff", np.array([[2.0]], dtype=np.float32))
        mem.allocate("out", (1, 1))
        fpu = make_fpu(params, mem)
        fpu.run([load(2, 0, 0)])
        fpu.stall(2)
        fpu.step(ma(2, 2, row=0, col=0))
        fpu.stall(6)
        fpu.run([store(2, 0, 0)])
        fpu.drain()
        assert np.isinf(mem.buffer("out")[0, 0])

    def test_nan_propagates(self, params):
        mem = NodeMemory()
        mem.install("data", np.array([[np.nan]], dtype=np.float32))
        mem.install("coeff", np.array([[1.0]], dtype=np.float32))
        mem.allocate("out", (1, 1))
        fpu = make_fpu(params, mem)
        fpu.run([load(2, 0, 0)])
        fpu.stall(2)
        fpu.step(ma(2, 2, row=0, col=0))
        fpu.stall(6)
        fpu.run([store(2, 0, 0)])
        fpu.drain()
        assert np.isnan(mem.buffer("out")[0, 0])

    def test_overflow_rounds_to_infinity(self, params):
        """float32 arithmetic throughout: 1e30 * 1e30 overflows."""
        mem = NodeMemory()
        mem.install("data", np.array([[1e30]], dtype=np.float32))
        mem.install("coeff", np.array([[1e30]], dtype=np.float32))
        mem.allocate("out", (1, 1))
        fpu = make_fpu(params, mem)
        with np.errstate(over="ignore"):
            fpu.run([load(2, 0, 0)])
            fpu.stall(2)
            fpu.step(ma(2, 2, row=0, col=0))
            fpu.stall(6)
            fpu.run([store(2, 0, 0)])
            fpu.drain()
        assert np.isinf(mem.buffer("out")[0, 0])
