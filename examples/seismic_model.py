"""The Gordon Bell seismic kernel: both main-loop formulations.

Reproduces the structure of the code that won the 1990 Gordon Bell
honorable mention: a fourth-order finite-difference wave propagation
through a synthetic layered medium, driven by a Ricker wavelet, with the
nine-point-cross-plus-tenth-term kernel run both ways --

* the straightforward loop (stencil, add term, two copies): the paper's
  11.62-Gflops version;
* the loop unrolled by three so the time levels exchange roles with no
  copying: the paper's 14.88-Gflops version.

The wavefields are bit-identical; only the rates differ.

Run:  python examples/seismic_model.py
"""

import numpy as np

from repro import CM2, MachineParams
from repro.analysis.timing import extrapolate_mflops
from repro.apps import SeismicModel, ricker_wavelet


def ascii_snapshot(field: np.ndarray, width: int = 64) -> str:
    """Coarse ASCII rendering of the wavefield."""
    rows, cols = field.shape
    step_r = max(1, rows // 24)
    step_c = max(1, cols // width)
    sample = field[::step_r, ::step_c]
    peak = np.abs(sample).max() or 1.0
    ramp = " .:-=+*#%@"
    lines = []
    for row in sample:
        indices = np.minimum(
            (np.abs(row) / peak * (len(ramp) - 1)).astype(int),
            len(ramp) - 1,
        )
        lines.append("".join(ramp[i] for i in indices))
    return "\n".join(lines)


def run_version(name, runner_name, machine, steps, wavelet):
    model = SeismicModel(
        machine,
        (256, 512),
        dt=0.001,
        dx=10.0,
        source=(32, 256),
    )
    model.set_initial_pulse(sigma=3.0)
    runner = getattr(model, runner_name)
    timing = runner(steps, wavelet)
    rate_16 = timing.mflops
    rate_full = extrapolate_mflops(rate_16, machine.num_nodes, 2048) / 1e3
    print(
        f"{name:<22} {timing.steps} steps  "
        f"{timing.elapsed_seconds:8.3f} s  {rate_16:7.1f} Mflops on "
        f"{machine.num_nodes} nodes  -> {rate_full:5.2f} Gflops on 2,048"
    )
    return model, timing


def main():
    params = MachineParams(num_nodes=16)
    steps = 60
    wavelet = ricker_wavelet(steps, 0.001)

    print("Gordon Bell seismic kernel: 9-point cross + tenth time term")
    print(f"medium: synthetic layered velocity model, Courant-limited dt")
    print()

    copy_model, copy_timing = run_version(
        "copy loop (1989 style)", "run_copy_loop", CM2(params), steps, wavelet
    )
    unrolled_model, unrolled_timing = run_version(
        "3x-unrolled loop", "run_unrolled_loop", CM2(params), steps, wavelet
    )
    fused_model, fused_timing = run_version(
        "fused 10-term loop", "run_fused_loop", CM2(params), steps, wavelet
    )
    print()
    identical = np.array_equal(
        copy_model.wavefield(), unrolled_model.wavefield()
    ) and np.array_equal(
        unrolled_model.wavefield(), fused_model.wavefield()
    )
    print(f"wavefields bit-identical across all three loops: {identical}")
    speedup = unrolled_timing.gflops / copy_timing.gflops
    print(
        f"unrolled / copy speedup: {speedup:.2f}x "
        f"(paper: 14.88 / 11.62 = 1.28x)"
    )
    fused_gain = fused_timing.gflops / unrolled_timing.gflops
    print(
        f"fused / unrolled gain:  {fused_gain:.2f}x "
        f"(the paper's 'future versions' fusion, implemented)"
    )
    print()
    print("wavefield snapshot (|amplitude|):")
    print(ascii_snapshot(unrolled_model.wavefield()))


if __name__ == "__main__":
    main()
