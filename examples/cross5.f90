! Five-point cross stencil (the paper's running example), written in
! the unambiguous keyword form the linter recommends: DIM names the
! axis and SHIFT the offset, so there is no (DIM, SHIFT) vs
! (SHIFT, DIM) argument-order trap.  `python -m repro lint` reports
! this file clean.
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) &
  + C2 * CSHIFT (X, DIM=2, SHIFT=-1) &
  + C3 * X &
  + C4 * CSHIFT (X, DIM=2, SHIFT=+1) &
  + C5 * CSHIFT (X, DIM=1, SHIFT=+1)
END
