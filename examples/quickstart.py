"""Quickstart: compile and run the paper's opening 5-point stencil.

Takes the exact Fortran subroutine printed in section 6 of the paper,
compiles it with the convolution compiler, runs it on a simulated
16-node CM-2 board (the configuration of the paper's preliminary
timings), checks the distributed result against plain numpy, and prints
the performance accounting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CM2, CMArray, MachineParams, apply_stencil, compile_fortran
from repro.analysis import report
from repro.baseline import reference_stencil

PAPER_SUBROUTINE = """
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
"""


def main():
    params = MachineParams(num_nodes=16)
    machine = CM2(params)
    print(machine.describe())
    print()

    compiled = compile_fortran(PAPER_SUBROUTINE, params)
    print("Recognized stencil:")
    print(compiled.pattern.pictogram())
    print()
    print(compiled.describe())
    print()

    # A 1024x1024 problem: 256x256 per node, the largest row of the
    # paper's results table.
    rng = np.random.default_rng(1991)
    shape = (1024, 1024)
    x_host = rng.standard_normal(shape).astype(np.float32)
    coeff_host = {
        name: rng.standard_normal(shape).astype(np.float32)
        for name in compiled.pattern.coefficient_names()
    }

    x = CMArray.from_numpy("X", machine, x_host)
    coeffs = {
        name: CMArray.from_numpy(name, machine, data)
        for name, data in coeff_host.items()
    }

    single = apply_stencil(compiled, x, coeffs, "RCHECK")
    expected = reference_stencil(compiled.pattern, x_host, coeff_host)
    matches = np.array_equal(single.result.to_numpy(), expected)
    print(f"result matches numpy reference bit-for-bit: {matches}")
    print()

    # The timed run: 100 true iterations, each feeding its result back
    # as the next iteration's source with freshly exchanged halos.
    run = apply_stencil(compiled, x, coeffs, iterations=100)
    print(run.describe())
    rep = report(run)
    print(
        f"extrapolated to a full 2,048-node CM-2: "
        f"{rep.extrapolated_gflops:.2f} Gflops "
        f"(paper's 256x256 cross row: 9.29 Gflops)"
    )


if __name__ == "__main__":
    main()
