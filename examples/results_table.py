"""Regenerate the paper's section 7 results table in one go.

Sweeps the four stencil groups over the paper's per-node subgrid sizes
on a simulated 16-node board, printing measured Mflops and the
extrapolation to the full 2,048-node machine, followed by the Gordon
Bell seismic rows in all three main-loop formulations.

Run:  python examples/results_table.py
"""

from repro import CM2, MachineParams
from repro.analysis.sweeps import table1_sweep
from repro.analysis.tables import format_table
from repro.analysis.timing import extrapolate_mflops
from repro.apps import SeismicModel, ricker_wavelet


def gordon_bell_rows(steps: int = 20) -> str:
    lines = ["Gordon Bell seismic kernel (9-point cross + tenth term):"]
    for label, runner in (
        ("copy loop        (paper 13.65 Gf)", "run_copy_loop"),
        ("3x-unrolled loop (paper 14.95 Gf)", "run_unrolled_loop"),
        ("fused 10-term    (future work)   ", "run_fused_loop"),
    ):
        machine = CM2(MachineParams(num_nodes=16))
        model = SeismicModel(
            machine, (512, 1024), dt=0.001, dx=10.0, source=(128, 512)
        )
        model.set_initial_pulse(sigma=3.0)
        timing = getattr(model, runner)(steps, ricker_wavelet(steps, 0.001))
        gflops = extrapolate_mflops(timing.mflops, 16, 2048) / 1e3
        lines.append(
            f"  {label}: {timing.mflops:6.1f} Mflops on 16 nodes "
            f"-> {gflops:5.2f} Gflops on 2,048"
        )
    return "\n".join(lines)


def main():
    print("Section 7 results table, regenerated (16 nodes, extrapolated")
    print("to the full 2,048-node CM-2 by the paper's linear scaling):")
    print()
    print(format_table(table1_sweep()))
    print()
    print(gordon_bell_rows())


if __name__ == "__main__":
    main()
