"""A tour of the convolution compiler's internals.

Walks the paper's worked examples through every stage: stencil
pictograms, multistencil geometry, ring-buffer register allocation, the
LCM unroll, width rejections, the Lisp ``defstencil`` front end, and the
directive diagnostics of the planned integrated compiler (section 6).

Run:  python examples/compiler_tour.py
"""

from repro import MachineParams, compile_defstencil, compile_stencil, gallery
from repro.compiler import allocate, AllocationError
from repro.fortran import DiagnosticSink, parse_subroutine, scan_subroutine
from repro.stencil import Multistencil


def show_pattern(pattern):
    print(f"=== {pattern.name} " + "=" * (50 - len(pattern.name or "")))
    print(pattern.pictogram())
    widths = pattern.border_widths()
    print(
        f"taps: {pattern.num_points}, useful flops/point: "
        f"{pattern.useful_flops_per_point()}, borders N/S/W/E: "
        f"{widths.as_tuple()}, corner exchange "
        f"{'needed' if pattern.needs_corner_exchange() else 'skippable'}"
    )
    print()
    for width in (8, 4):
        ms = Multistencil(pattern, width)
        heights = ",".join(str(c.height) for c in ms.columns)
        print(
            f"width-{width} multistencil: {ms.num_positions} positions "
            f"(naive schedule: {ms.naive_load_count()} loads); "
            f"column heights [{heights}]"
        )
        try:
            alloc = allocate(pattern, width)
        except AllocationError as exc:
            print(f"  REJECTED: {exc}")
            continue
        rings = ",".join(str(r.size) for r in alloc.rings)
        print(
            f"  rings [{rings}] -> {alloc.data_registers} data registers, "
            f"unroll x{alloc.unroll}"
        )
    compiled = compile_stencil(pattern)
    plan = compiled.plans[compiled.max_width]
    print(
        f"best plan: width {plan.width}, prologue {plan.prologue_cycles} "
        f"cycles, steady line {plan.steady_line_cycles} cycles, "
        f"{plan.scratch_words} scratch words"
    )
    print()


def show_disassembly():
    print("=== dynamic-part listing (sequencer scratch memory) " + "=" * 8)
    compiled = compile_stencil(gallery.cross5())
    plan = compiled.plans[8]
    listing = plan.disassemble(phase=0)
    lines = listing.splitlines()
    print("\n".join(lines[:4]))
    print(f"  ... ({len(lines) - 10} cycles elided) ...")
    print("\n".join(lines[-6:]))
    print()


def show_roofline():
    print("=== compute vs memory bounds (section 4.4) " + "=" * 16)
    from repro.analysis import roofline

    for pattern in (gallery.cross5(), gallery.diamond13()):
        compiled = compile_stencil(pattern)
        print(f"--- {pattern.name} ---")
        print(roofline.describe(compiled))
        print()


def show_defstencil():
    print("=== the Lisp prototype front end (version 1) " + "=" * 15)
    source = """
    (defstencil cross (r x c1 c2 c3 c4 c5)
      (single-float single-float)
      (:= r (+ (* c1 (cshift x 1 -1))
               (* c2 (cshift x 2 -1))
               (* c3 x)
               (* c4 (cshift x 2 +1))
               (* c5 (cshift x 1 +1)))))
    """
    print(source.strip())
    compiled = compile_defstencil(source)
    print()
    print(f"-> same pattern as the Fortran front end: {compiled.pattern.describe()}")
    print()


def show_diagnostics():
    print("=== directive feedback (the planned version 3) " + "=" * 13)
    source = """
SUBROUTINE MIXED (R, T, X, Y, C1)
REAL, ARRAY(:, :) :: R, T, X, Y, C1
R = C1 * CSHIFT(X, 1, -1) + C1 * X
!REPRO$ STENCIL
T = C1 * CSHIFT(X, 1, -1) + C1 * CSHIFT(Y, 1, +1)
END
"""
    print(source.strip())
    sink = DiagnosticSink()
    results = scan_subroutine(parse_subroutine(source), sink)
    print()
    compiled_count = sum(1 for _, p in results if p is not None)
    print(f"statements compiled by the convolution module: {compiled_count}")
    for diagnostic in sink.diagnostics:
        print(diagnostic.describe())
    print()


def main():
    for pattern in (
        gallery.cross5(),
        gallery.cross9(),
        gallery.square9(),
        gallery.diamond13(),
        gallery.asymmetric5(),
    ):
        show_pattern(pattern)
    show_disassembly()
    show_roofline()
    show_defstencil()
    show_diagnostics()
    params = MachineParams()
    print(
        f"machine: {params.clock_hz/1e6:g} MHz, {params.registers} FPU "
        f"registers (1 reserved for 0.0, sometimes 1 for 1.0), "
        f"{params.scratch_memory_words} scratch words"
    )


if __name__ == "__main__":
    main()
