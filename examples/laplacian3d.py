"""Rank-3 arrays: a 7-point 3-D Laplacian through the outer loop.

The paper's run-time library "provides the outer loop structure for
strip-mining and for handling multidimensional arrays"; this example
shows that outer structure on a 3-D diffusion problem.  The first two
dimensions are block-decomposed over the node grid (Figure 1 style),
the depth axis is node-local, and the two out-of-plane neighbors of the
7-point Laplacian ride as *fused* terms inside the microcode loop's
multiply-add chains -- the fusion extension and the multidimensional
outer loop composing.

Run:  python examples/laplacian3d.py
"""

import numpy as np

from repro import CM2, MachineParams
from repro.runtime.multidim import (
    CMArray3D,
    DepthTap,
    apply_stencil_3d,
    compile_3d,
)
from repro.stencil.offsets import BoundaryMode
from repro.stencil.pattern import Coefficient, StencilPattern, Tap


def laplacian_kernel(lam):
    """u' = u + lam * Laplacian(u): in-plane part and depth taps."""
    offsets = [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)]
    taps = [
        Tap(
            offset=o,
            coeff=Coefficient.scalar(lam if o != (0, 0) else 1.0 - 6.0 * lam),
        )
        for o in offsets
    ]
    pattern = StencilPattern(taps, name="lap7_inplane")
    depth = [
        DepthTap(-1, Coefficient.scalar(lam)),
        DepthTap(+1, Coefficient.scalar(lam)),
    ]
    return pattern, depth


def main():
    machine = CM2(MachineParams(num_nodes=16))
    lam = 0.1  # diffusion number; stable for explicit 3-D at <= 1/6
    pattern, depth_taps = laplacian_kernel(lam)
    compiled = compile_3d(pattern, depth_taps, machine.params)
    print(f"compiled 3-D Laplacian: widths {compiled.widths}")
    print(f"(in-plane pattern + {len(depth_taps)} fused depth taps)")
    print()

    shape = (64, 64, 16)
    rows, cols, depth = shape
    u = CMArray3D("U", machine, shape)
    # A hot ball in the middle of a cold block.
    yy, xx, zz = np.mgrid[0:rows, 0:cols, 0:depth]
    ball = (
        (yy - rows // 2) ** 2
        + (xx - cols // 2) ** 2
        + (4 * (zz - depth // 2)) ** 2
    ) <= 36
    field = np.where(ball, 100.0, 0.0).astype(np.float32)
    u.set(field)

    total = float(field.sum())
    print(f"initial total heat: {total:10.1f}, peak {field.max():.1f}")
    scratch = u.like("UNEXT")
    steps = 20
    run = None
    for step in range(steps):
        run = apply_stencil_3d(
            compiled,
            u,
            {},
            scratch,
            depth_taps=depth_taps,
            depth_boundary=BoundaryMode.FILL,
        )
        u, scratch = scratch, u
        # Re-point the statement's source name at the new current field:
        # the next apply reads whatever array we hand it, so a plain
        # Python swap is all the "time-step shuffle" this loop needs.
    final = u.to_numpy()
    print(
        f"after {steps} sweeps:   total heat {final.sum():10.1f}, "
        f"peak {final.max():.2f}"
    )
    center_profile = final[rows // 2, cols // 2, :]
    print("depth profile through the center:")
    print("  " + " ".join(f"{v:6.2f}" for v in center_profile))
    print()
    print(
        f"last sweep: {run.compute_cycles} node cycles over {depth} planes, "
        f"{run.mflops:.1f} Mflops sustained on {machine.num_nodes} nodes"
    )


if __name__ == "__main__":
    main()
