"""Heat diffusion with the 3x3 square stencil and Dirichlet boundaries.

The relaxation statement is written as Fortran source with *scalar
literal* coefficients and EOSHIFT boundaries, exercising the scalar
constant-page path and the FILL halo mode of the run-time library.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro import CM2, MachineParams
from repro.apps import HeatSolver, heat_source


def ascii_field(field: np.ndarray, width: int = 48) -> str:
    ramp = " .:-=+*#%@"
    rows, cols = field.shape
    step_r = max(1, rows // 20)
    step_c = max(1, cols // width)
    sample = field[::step_r, ::step_c]
    peak = sample.max() or 1.0
    lines = []
    for row in sample:
        indices = np.minimum(
            (row / peak * (len(ramp) - 1)).astype(int), len(ramp) - 1
        )
        lines.append("".join(ramp[i] for i in indices))
    return "\n".join(lines)


def main():
    machine = CM2(MachineParams(num_nodes=16))
    print("Relaxation statement handed to the convolution compiler:")
    print(heat_source(0.5))
    print()

    solver = HeatSolver(machine, (128, 128), blend=0.5)
    solver.set_hot_spot(radius=6, temperature=100.0)

    print(f"compiled widths: {solver.compiled.widths}")
    print()
    for sweeps_done in (0, 10, 50, 200):
        if sweeps_done:
            solver.step(sweeps_done - solver.timing.steps)
        field = solver.temperature()
        print(
            f"after {solver.timing.steps:>3} sweeps: "
            f"peak {field.max():7.2f}, total heat {solver.total_heat():10.1f}"
        )
    print()
    print(ascii_field(solver.temperature()))
    print()
    print(
        f"sustained {solver.timing.mflops:.1f} Mflops over "
        f"{solver.timing.steps} sweeps on {machine.num_nodes} nodes "
        f"({solver.timing.elapsed_seconds:.3f} modeled seconds)"
    )


if __name__ == "__main__":
    main()
