"""Shallow-water gravity waves: coupled fields, fused updates.

Drops a Gaussian mound of water into a periodic ocean basin and watches
the gravity-wave ring radiate.  Each of the four updates per step is a
*fused* stencil: shifted taps on one field plus the carried field as an
extra (0, 0) term -- the paper's future-work fusion driving a coupled
multi-field application, with mass conserved to float32 accuracy.

Run:  python examples/ocean_gravity_waves.py
"""

import numpy as np

from repro import CM2, MachineParams
from repro.apps import ShallowWaterModel


def render_height(h: np.ndarray, width: int = 64) -> str:
    """ASCII view: troughs dark dots, crests bright hashes."""
    ramp = " .:-=+*#%@"
    rows, cols = h.shape
    step_r = max(1, rows // 22)
    step_c = max(1, cols // width)
    sample = np.abs(h[::step_r, ::step_c])
    peak = sample.max() or 1.0
    lines = []
    for row in sample:
        indices = np.minimum(
            (row / peak * (len(ramp) - 1)).astype(int), len(ramp) - 1
        )
        lines.append("".join(ramp[i] for i in indices))
    return "\n".join(lines)


def main():
    machine = CM2(MachineParams(num_nodes=16))
    model = ShallowWaterModel(
        machine, (128, 128), depth=100.0, dt=15.0, dx=1000.0
    )
    model.set_gaussian_bump(amplitude=1.0, sigma=5.0)
    print(
        f"basin 128 km x 128 km, depth {model.depth:g} m, gravity-wave "
        f"speed {np.sqrt(9.81 * model.depth):.1f} m/s, Courant "
        f"{model.courant:.2f}"
    )
    print(
        "each step: 4 fused stencil applications "
        f"(widths {model._u_update.widths})"
    )
    print()
    mass0 = model.total_mass()
    for checkpoint in (0, 25, 60):
        if checkpoint:
            model.step(checkpoint - model.timing.steps)
        h = model.fields()["h"]
        print(
            f"t = {model.timing.steps * model.dt / 60:5.1f} min "
            f"(step {model.timing.steps:>3}): peak |h| = {np.abs(h).max():.3f} m, "
            f"mass drift = {abs(model.total_mass() - mass0):.2e}"
        )
        print(render_height(h))
        print()
    print(
        f"sustained {model.timing.mflops:.1f} Mflops over "
        f"{model.timing.steps} steps on {machine.num_nodes} nodes"
    )


if __name__ == "__main__":
    main()
