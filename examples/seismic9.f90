! Nine-point cross stencil in the paper's own positional spelling:
! CSHIFT(X, k, m) means DIM=k, SHIFT=m -- the reverse of standard
! Fortran 90.  `python -m repro lint` accepts the file but flags each
! positional call with an RS201 warning and a keyword-form fix-it.
SUBROUTINE SEISMIC (R, X, C1, C2, C3, C4, C5, C6, C7, C8, C9)
REAL, ARRAY(:, :) :: R, X, C1, C2, C3, C4, C5, C6, C7, C8, C9
R = C1 * CSHIFT (X, 1, -2) &
  + C2 * CSHIFT (X, 1, -1) &
  + C3 * CSHIFT (X, 2, -2) &
  + C4 * CSHIFT (X, 2, -1) &
  + C5 * X &
  + C6 * CSHIFT (X, 2, +1) &
  + C7 * CSHIFT (X, 2, +2) &
  + C8 * CSHIFT (X, 1, +1) &
  + C9 * CSHIFT (X, 1, +2)
END
