"""A small synthetic seismic survey: shot record over a layered medium.

The Gordon Bell code's purpose was seismic modeling for Mobil Oil; this
example runs the survey workflow around the kernel: a Ricker source at
the surface, a receiver line recording every time step, and the shot
record (seismogram) rendered as ASCII wiggle traces.  The direct wave
and the reflection from the first velocity interface are visible as the
two characteristic moveout curves.

Run:  python examples/seismic_survey.py
"""

import numpy as np

from repro import CM2, MachineParams
from repro.apps import SeismicModel, layered_velocity, ricker_wavelet


def render_shot_record(traces: np.ndarray, width: int = 70) -> str:
    """ASCII shot record: rows = time samples (downward), columns =
    receivers; darker glyphs = larger |amplitude|."""
    ramp = " .:-=+*#%@"
    receivers, samples = traces.shape
    step_t = max(1, samples // 40)
    sample = np.abs(traces[:, ::step_t].T)  # time down, receivers across
    peak = sample.max() or 1.0
    lines = []
    for time_row in sample:
        indices = np.minimum(
            (time_row / peak * (len(ramp) - 1)).astype(int), len(ramp) - 1
        )
        lines.append("".join(ramp[i] for i in indices))
    return "\n".join(lines)


def main():
    machine = CM2(MachineParams(num_nodes=16))
    shape = (256, 512)
    velocity = layered_velocity(shape, layers=(1800.0, 3500.0))
    dt, dx = 0.0015, 10.0
    steps = 420

    source = (8, 128)
    receiver_row = 8
    receivers = [(receiver_row, 136 + 4 * i) for i in range(24)]

    model = SeismicModel(
        machine, shape, velocity=velocity, dt=dt, dx=dx, source=source
    )
    model.place_receivers(receivers)
    print(
        f"shot at {source}, {len(receivers)} receivers along row "
        f"{receiver_row}, medium: 1800 m/s over 3500 m/s"
    )
    print(f"propagating {steps} steps of {dt * 1e3:g} ms ...")
    timing = model.run_fused_loop(steps, ricker_wavelet(steps, dt, peak_hz=8.0))

    traces = model.seismogram_array()
    print()
    print("shot record (time down, offset across):")
    print(render_shot_record(traces))
    print()
    near, far = np.abs(traces[0]), np.abs(traces[-1])
    threshold = 0.005 * np.abs(traces).max()
    first_near = int(np.argmax(near > threshold))
    first_far = int(np.argmax(far > threshold))
    print(
        f"first arrival: sample {first_near} at the near offset, "
        f"{first_far} at the far offset (moveout "
        f"{(first_far - first_near) * dt * 1e3:.1f} ms)"
    )
    print(
        f"kernel: {timing.mflops:.1f} Mflops sustained on "
        f"{machine.num_nodes} nodes over {timing.steps} steps "
        f"({timing.elapsed_seconds:.2f} modeled seconds)"
    )


if __name__ == "__main__":
    main()
