"""The ``defstencil`` front end: the paper's first (Lisp) interface.

Accepts forms like the paper's section 6 example::

    (defstencil cross (r x c1 c2 c3 c4 c5)
      (single-float single-float)
      (:= r (+ (* c1 (cshift x 1 -1))
               (* c2 (cshift x 2 -1))
               (* c3 x)
               (* c4 (cshift x 2 +1))
               (* c5 (cshift x 1 +1)))))

and produces the same :class:`~repro.stencil.pattern.StencilPattern` the
Fortran front end would.  Positional ``(cshift x k m)`` means ``DIM=k,
SHIFT=m``, matching the paper's examples in both syntaxes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..stencil.offsets import (
    BoundaryMode,
    MixedBoundaryError,
    Shift,
    ShiftKind,
    compose_boundary_modes,
    compose_offsets,
)
from ..stencil.pattern import Coefficient, StencilPattern, Tap
from .sexpr import Sexpr, SexprError, Symbol, read

_SHIFT_SYMBOLS = {"CSHIFT": ShiftKind.CSHIFT, "EOSHIFT": ShiftKind.EOSHIFT}


class DefstencilError(ValueError):
    """A defstencil form outside the supported shape."""


def _symbol_name(form: Sexpr, what: str) -> str:
    if not isinstance(form, Symbol):
        raise DefstencilError(f"{what} must be a symbol, found {form!r}")
    return form.name


def _as_int(form: Sexpr, what: str) -> int:
    if isinstance(form, int):
        return form
    raise DefstencilError(f"{what} must be an integer, found {form!r}")


def _parse_shift_chain(form: Sexpr) -> Tuple[str, Tuple[Shift, ...]]:
    """Unwrap nested (cshift ...) / (eoshift ...) down to the root symbol."""
    shifts: List[Shift] = []
    while isinstance(form, list) and form:
        head = form[0]
        if not (isinstance(head, Symbol) and head.name in _SHIFT_SYMBOLS):
            break
        kind = _SHIFT_SYMBOLS[head.name]
        if len(form) not in (4, 5) or (len(form) == 5 and kind is not ShiftKind.EOSHIFT):
            raise DefstencilError(
                f"({head.name.lower()} x dim shift) takes exactly those "
                f"arguments, found {form!r}"
            )
        dim = _as_int(form[2], "shift DIM")
        amount = _as_int(form[3], "shift SHIFT")
        boundary = 0.0
        if len(form) == 5:
            if not isinstance(form[4], (int, float)):
                raise DefstencilError("EOSHIFT boundary must be a number")
            boundary = float(form[4])
        shifts.append(Shift(kind=kind, dim=dim, amount=amount, boundary=boundary))
        form = form[1]
    if not isinstance(form, Symbol):
        raise DefstencilError(
            f"shift chain must bottom out in a symbol, found {form!r}"
        )
    shifts.reverse()  # innermost first
    return form.name, tuple(shifts)


def _flatten_sum(form: Sexpr) -> List[Sexpr]:
    if isinstance(form, list) and form and form[0] == Symbol("+"):
        terms: List[Sexpr] = []
        for item in form[1:]:
            terms.extend(_flatten_sum(item))
        return terms
    return [form]


def _parse_term(
    form: Sexpr, source_hint: Optional[str]
) -> Tuple[Optional[str], Optional[Tuple[str, Tuple[Shift, ...]]], Optional[float]]:
    """Classify one additive term.

    Returns ``(coeff_name, (root, shifts) or None, scalar or None)``.
    """
    if isinstance(form, Symbol):
        name = form.name
        if source_hint is not None and name == source_hint:
            return None, (name, ()), None
        return name, None, None
    if isinstance(form, (int, float)):
        return None, None, float(form)
    if isinstance(form, list) and form:
        head = form[0]
        if isinstance(head, Symbol) and head.name in _SHIFT_SYMBOLS:
            return None, _parse_shift_chain(form), None
        if head == Symbol("*"):
            factors = form[1:]
            if len(factors) != 2:
                raise DefstencilError(
                    f"(* ...) terms must have exactly two factors: {form!r}"
                )
            coeff_name: Optional[str] = None
            chain: Optional[Tuple[str, Tuple[Shift, ...]]] = None
            scalar: Optional[float] = None
            for factor in factors:
                if isinstance(factor, list):
                    if chain is not None:
                        raise DefstencilError(
                            "a term may contain only one shifted reference"
                        )
                    chain = _parse_shift_chain(factor)
                elif isinstance(factor, Symbol):
                    if source_hint is not None and factor.name == source_hint:
                        if chain is not None:
                            raise DefstencilError(
                                "a term may contain only one data reference"
                            )
                        chain = (factor.name, ())
                    elif coeff_name is None:
                        coeff_name = factor.name
                    else:
                        # Two non-source symbols: the second must be the
                        # (unshifted) data reference; resolved by caller.
                        chain = (factor.name, ())
                elif isinstance(factor, (int, float)):
                    scalar = float(factor)
                else:
                    raise DefstencilError(f"bad factor {factor!r}")
            return coeff_name, chain, scalar
    raise DefstencilError(f"term {form!r} fits no stencil form")


def parse_defstencil(source: Union[str, Sexpr]) -> StencilPattern:
    """Parse a ``defstencil`` form into a stencil pattern.

    Form shape: ``(defstencil name (args...) (types...) (:= result expr))``.
    The type list is validated for arity but otherwise ignored (the
    simulator computes in single precision throughout, like the paper).
    """
    form = read(source) if isinstance(source, str) else source
    if not (isinstance(form, list) and len(form) == 4):
        raise DefstencilError(
            "expected (defstencil name (args...) (types...) (:= r expr))"
        )
    head, name_form, args_form, *rest = form[0], form[1], form[2], form[3]
    body = rest[0] if rest else None
    if head != Symbol("DEFSTENCIL"):
        raise DefstencilError(f"not a defstencil form: {head!r}")
    name = _symbol_name(name_form, "stencil name").lower()
    if not isinstance(args_form, list):
        raise DefstencilError("defstencil argument list must be a list")
    args = [_symbol_name(a, "argument") for a in args_form]
    # form[3] may be the types list when the body follows; re-slice safely:
    types_or_body = form[3]
    if (
        isinstance(types_or_body, list)
        and types_or_body
        and types_or_body[0] == Symbol(":=")
    ):
        body = types_or_body
    else:
        raise DefstencilError("defstencil form is missing its (:= ...) body")
    if len(body) != 3:
        raise DefstencilError("body must be (:= result expression)")
    result = _symbol_name(body[1], "result")
    if result not in args:
        raise DefstencilError(f"result {result} is not an argument")
    return _pattern_from_body(name, args, result, body[2])


def parse_defstencil_with_types(source: Union[str, Sexpr]) -> StencilPattern:
    """Parse the 5-element variant that includes the type list.

    ``(defstencil name (args...) (single-float single-float) (:= r expr))``
    -- the exact shape printed in the paper.
    """
    form = read(source) if isinstance(source, str) else source
    if not (isinstance(form, list) and len(form) == 5):
        raise DefstencilError("expected the 5-element defstencil form")
    types = form[3]
    if not isinstance(types, list) or not all(
        isinstance(t, Symbol) for t in types
    ):
        raise DefstencilError("type list must be a list of type symbols")
    reduced = [form[0], form[1], form[2], form[4]]
    return parse_defstencil(reduced)


def _pattern_from_body(
    name: str, args: Sequence[str], result: str, expr: Sexpr
) -> StencilPattern:
    terms = _flatten_sum(expr)
    # First pass to find the source: the root of any shift chain.
    roots = set()
    for term in terms:
        if isinstance(term, list) and term:
            head = term[0]
            if isinstance(head, Symbol) and head.name in _SHIFT_SYMBOLS:
                roots.add(_parse_shift_chain(term)[0])
            elif head == Symbol("*"):
                for factor in term[1:]:
                    if isinstance(factor, list):
                        roots.add(_parse_shift_chain(factor)[0])
    if len(roots) > 1:
        raise DefstencilError(
            f"all shiftings must shift the same variable, found {sorted(roots)}"
        )
    source = roots.pop() if roots else None

    taps: List[Tap] = []
    boundary = {}
    all_dims: List[int] = []
    parsed = [_parse_term(term, source) for term in terms]
    if source is None:
        # No shifts anywhere: infer the data variable as in the Fortran
        # front end -- the symbol shared by every two-name product.
        raise DefstencilError(
            "cannot identify the shifted variable (no cshift/eoshift)"
        )
    for coeff_name, chain, scalar in parsed:
        if chain is not None:
            all_dims.extend(s.dim for s in chain[1])
    plane = _plane_dims_from(all_dims)

    for coeff_name, chain, scalar in parsed:
        if coeff_name is not None and scalar is not None:
            raise DefstencilError(
                "a term may not multiply an array coefficient by a scalar"
            )
        if chain is not None:
            root, shifts = chain
            if root != source:
                raise DefstencilError(
                    f"all shiftings must shift {source}, found {root}"
                )
            offsets = compose_offsets(shifts)
            dy = offsets.get(plane[0], 0)
            dx = offsets.get(plane[1], 0)
            if coeff_name is not None:
                coeff = Coefficient.array(coeff_name)
            elif scalar is not None:
                coeff = Coefficient.scalar(scalar)
            else:
                coeff = Coefficient.unit()
            taps.append(Tap(offset=(dy, dx), coeff=coeff, shifts=shifts))
            try:
                for dim, mode in compose_boundary_modes(shifts).items():
                    previous = boundary.get(dim)
                    if previous is not None and previous is not mode:
                        raise DefstencilError(
                            f"mixed boundary modes along dimension {dim}"
                        )
                    boundary[dim] = mode
            except MixedBoundaryError as exc:
                raise DefstencilError(str(exc)) from exc
        elif coeff_name is not None:
            taps.append(
                Tap(
                    offset=(0, 0),
                    coeff=Coefficient.array(coeff_name),
                    is_constant_term=True,
                )
            )
        elif scalar is not None:
            taps.append(
                Tap(
                    offset=(0, 0),
                    coeff=Coefficient.scalar(scalar),
                    is_constant_term=True,
                )
            )
        else:
            raise DefstencilError("term fits no stencil form")
    return StencilPattern(
        taps,
        result=result,
        source=source,
        plane_dims=plane,
        boundary=boundary,
        name=name,
    )


def _plane_dims_from(dims: Sequence[int]) -> Tuple[int, int]:
    unique = sorted(set(dims))
    if len(unique) > 2:
        raise DefstencilError("shifts along more than two distinct dimensions")
    if not unique:
        return (1, 2)
    if len(unique) == 1:
        dim = unique[0]
        other = 1 if dim != 1 else 2
        return tuple(sorted((dim, other)))  # type: ignore[return-value]
    return (unique[0], unique[1])
