"""Lisp prototype front end: s-expression reader and defstencil forms."""

from .defstencil import (
    DefstencilError,
    parse_defstencil,
    parse_defstencil_with_types,
)
from .sexpr import Sexpr, SexprError, Symbol, read, read_all, write

__all__ = [
    "DefstencilError",
    "Sexpr",
    "SexprError",
    "Symbol",
    "parse_defstencil",
    "parse_defstencil_with_types",
    "read",
    "read_all",
    "write",
]
