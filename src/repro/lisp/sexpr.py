"""A small s-expression reader for the Lisp prototype front end.

The paper's first implementation was prototyped in Lucid Common Lisp and
accepted ``defstencil`` forms.  This reader supports exactly what those
forms need: symbols, integers (with explicit signs), floats, nested lists,
and ``;`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union


class SexprError(ValueError):
    """Malformed s-expression input."""


@dataclass(frozen=True)
class Symbol:
    """A Lisp symbol, stored upper-cased (Common Lisp reader behaviour)."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


Atom = Union[Symbol, int, float]
Sexpr = Union[Atom, List["Sexpr"]]


def _atom(text: str) -> Atom:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return Symbol(text.upper())


def _tokenize(source: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
        elif ch == ";":
            while i < n and source[i] != "\n":
                i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        else:
            start = i
            while i < n and source[i] not in " \t\r\n();":
                i += 1
            tokens.append(source[start:i])
    return tokens


def read(source: str) -> Sexpr:
    """Read exactly one s-expression from the source string."""
    forms = read_all(source)
    if len(forms) != 1:
        raise SexprError(f"expected one form, found {len(forms)}")
    return forms[0]


def read_all(source: str) -> List[Sexpr]:
    """Read all top-level s-expressions from the source string."""
    tokens = _tokenize(source)
    forms: List[Sexpr] = []
    pos = 0
    while pos < len(tokens):
        form, pos = _read_form(tokens, pos)
        forms.append(form)
    return forms


def _read_form(tokens: List[str], pos: int) -> "tuple[Sexpr, int]":
    if pos >= len(tokens):
        raise SexprError("unexpected end of input")
    token = tokens[pos]
    if token == "(":
        pos += 1
        items: List[Sexpr] = []
        while True:
            if pos >= len(tokens):
                raise SexprError("unclosed parenthesis")
            if tokens[pos] == ")":
                return items, pos + 1
            item, pos = _read_form(tokens, pos)
            items.append(item)
    if token == ")":
        raise SexprError("unexpected ')'")
    return _atom(token), pos + 1


def write(form: Sexpr) -> str:
    """Render an s-expression back to text (round-trip aid for tests)."""
    if isinstance(form, list):
        return "(" + " ".join(write(item) for item in form) + ")"
    if isinstance(form, Symbol):
        return form.name
    return repr(form)
