"""Per-node memory: named buffers behind the interface chip.

Each CM-2 node owns a slice of the machine's memory holding its subgrid
of every array involved in the computation (source with halo,
coefficients, result) plus small constant pages for scalar and unit
coefficients.  All data is single-precision, matching the paper's
measurements ("All measurements are for single-precision (that is,
32-bit) floating-point operations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .isa import ONES_BUFFER, MemRef, const_buffer_name


class MemoryError_(Exception):
    """An out-of-bounds or unknown-buffer access (a compiler/runtime bug)."""


def parity_word(array: np.ndarray) -> int:
    """XOR of a float32 region's raw 32-bit words.

    The software analogue of the CM-2 memory system's parity: one word
    summarizing a buffer's exact bit content.  Any single bit flip (and
    any odd-multiplicity corruption) changes the word; comparing sealed
    and recomputed parity is how the resilient runtime detects scratch
    corruption.  Works on non-contiguous views -- a same-itemsize dtype
    view aliases the region without copying.
    """
    a = np.asarray(array)
    if a.dtype != np.float32:
        a = np.ascontiguousarray(a, dtype=np.float32)
    if a.size == 0:
        return 0
    return int(np.bitwise_xor.reduce(a.view(np.uint32), axis=None))


@dataclass
class AccessCounts:
    """Word-transfer counters for one node's memory system."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class NodeMemory:
    """Named 2-D float32 buffers with bounds-checked, counted access."""

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self.counts = AccessCounts()
        self._epoch_ref = None

    def track_epoch(self, epoch_ref) -> None:
        """Register a shared one-element counter bumped whenever the
        name-to-buffer mapping changes.  The machine uses it to cache the
        (otherwise every-node) stacked-view integrity check."""
        self._epoch_ref = epoch_ref

    def _touch(self) -> None:
        if self._epoch_ref is not None:
            self._epoch_ref[0] += 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, name: str, shape: Tuple[int, int]) -> np.ndarray:
        """Allocate (or replace) a zero-filled buffer."""
        buffer = np.zeros(shape, dtype=np.float32)
        self._buffers[name] = buffer
        self._touch()
        return buffer

    def install(self, name: str, data: np.ndarray) -> np.ndarray:
        """Install an existing array as a buffer (copied to float32)."""
        if data.ndim != 2:
            raise MemoryError_(f"buffer {name!r} must be 2-D, got {data.ndim}-D")
        buffer = np.array(data, dtype=np.float32)
        self._buffers[name] = buffer
        self._touch()
        return buffer

    def install_view(self, name: str, view: np.ndarray) -> np.ndarray:
        """Install an array as a buffer *without copying*.

        Used by the machine-wide stacked storage: each node's subgrid of
        a distributed array is a view into one (grid_rows, grid_cols,
        rows, cols) stack, so the batched executor can process every
        node with single whole-machine array operations while the
        per-node paths (exact mode, the sequencer) keep reading and
        writing through node memory unchanged.
        """
        if view.ndim != 2:
            raise MemoryError_(f"buffer {name!r} must be 2-D, got {view.ndim}-D")
        if view.dtype != np.float32:
            raise MemoryError_(f"buffer {name!r} must be float32, got {view.dtype}")
        self._buffers[name] = view
        self._touch()
        return view

    def view(self, name: str) -> Optional[np.ndarray]:
        """The buffer registered under ``name``, or None (no counting)."""
        return self._buffers.get(name)

    def ensure_constant_pages(self, values=()) -> None:
        """Allocate the 1.0 page and one page per scalar coefficient value.

        The floating-point unit requires one multiplicand to come from
        memory, so unit and scalar coefficients are streamed from these
        single-element pages at a fixed address.
        """
        if ONES_BUFFER not in self._buffers:
            self.install(ONES_BUFFER, np.array([[1.0]], dtype=np.float32))
        for value in values:
            name = const_buffer_name(value)
            if name not in self._buffers:
                self.install(name, np.array([[value]], dtype=np.float32))

    def alias(self, name: str, target: str) -> None:
        """Make ``name`` refer to the same storage as ``target``.

        Used by the multidimensional outer loop: compiled register access
        patterns bake buffer names, so the runtime re-points stable alias
        names (e.g. the slab-above/slab-below sources) at the right slab
        before each plane is processed -- the software analogue of the
        sequencer's run-time base-address parameters.
        """
        self._buffers[name] = self.buffer(target)
        self._touch()

    def free(self, name: str) -> None:
        self._buffers.pop(name, None)
        self._touch()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def buffer(self, name: str) -> np.ndarray:
        try:
            return self._buffers[name]
        except KeyError:
            raise MemoryError_(f"no buffer named {name!r}") from None

    def has_buffer(self, name: str) -> bool:
        return name in self._buffers

    def read(self, ref: MemRef) -> np.float32:
        buffer = self.buffer(ref.buffer)
        self._check(buffer, ref)
        self.counts.reads += 1
        return buffer[ref.row, ref.col]

    def write(self, ref: MemRef, value: float) -> None:
        buffer = self.buffer(ref.buffer)
        self._check(buffer, ref)
        self.counts.writes += 1
        buffer[ref.row, ref.col] = np.float32(value)

    def _check(self, buffer: np.ndarray, ref: MemRef) -> None:
        rows, cols = buffer.shape
        if not (0 <= ref.row < rows and 0 <= ref.col < cols):
            raise MemoryError_(
                f"access ({ref.row}, {ref.col}) outside buffer "
                f"{ref.buffer!r} of shape {buffer.shape}"
            )

    @property
    def buffer_names(self) -> Tuple[str, ...]:
        return tuple(self._buffers)

    def total_words(self) -> int:
        """Total words allocated (for temporary-storage accounting)."""
        return sum(buf.size for buf in self._buffers.values())


@dataclass(frozen=True)
class StorageCheckpoint:
    """A point-in-time deep copy of named machine-wide stacks.

    Produced by :meth:`MachineStorage.checkpoint`; applied back with
    :meth:`MachineStorage.restore`.  Restoring writes *into* the live
    stacks in place, so every node-memory view of them stays valid.
    """

    stacks: Dict[str, np.ndarray]

    @property
    def words(self) -> int:
        """Total words copied (for checkpoint cost accounting)."""
        return sum(stack.size for stack in self.stacks.values())


class MachineStorage:
    """Whole-machine stacked backing store for distributed buffers.

    One entry per distributed array name: a ``(grid_rows, grid_cols,
    rows, cols)`` float32 stack holding every node's subgrid
    contiguously.  Node memories hold views into the stack (see
    :meth:`NodeMemory.install_view`), so per-node access -- the
    cycle-stepped sequencer, the exact executor, host gather/scatter --
    is unchanged, while the batched fast executor and the batched halo
    exchange operate on the stack as one array.

    Aliases (:meth:`bind`) share the target's stack under a second name,
    the machine-wide analogue of :meth:`NodeMemory.alias`.

    Scratch stacks (:meth:`scratch`, :meth:`pingpong`) are machine-wide
    work buffers that no node memory views -- the temporal-blocking
    executor's deep-padded iterates and coefficient halos.  They are
    allocated once per (name, shape) and reused across calls;
    :attr:`scratch_allocations` counts actual allocations so tests can
    assert that warm steady-state runs allocate nothing.
    """

    def __init__(self, grid_shape: Tuple[int, int]) -> None:
        self.grid_shape = grid_shape
        self._stacks: Dict[str, np.ndarray] = {}
        self._scratch: Dict[str, np.ndarray] = {}
        #: Number of scratch stacks actually allocated (cache misses).
        self.scratch_allocations = 0
        #: Optional sealed parity words, by buffer name.
        self._parity: Dict[str, int] = {}
        #: Optional ABFT row/column checksum seals, by buffer name
        #: (opaque :class:`repro.runtime.abft.AbftSeal` objects -- the
        #: storage keeps them next to the stacks they cover, the ABFT
        #: layer derives and verifies them).
        self._abft: Dict[str, object] = {}

    def allocate(self, name: str, subgrid_shape: Tuple[int, int]) -> np.ndarray:
        """Allocate (or replace) a zero-filled stack for ``name``."""
        rows, cols = subgrid_shape
        stack = np.zeros(
            (self.grid_shape[0], self.grid_shape[1], rows, cols),
            dtype=np.float32,
        )
        self._stacks[name] = stack
        return stack

    def allocate_batched(
        self,
        name: str,
        lead_shape: Tuple[int, ...],
        subgrid_shape: Tuple[int, int],
    ) -> np.ndarray:
        """Allocate (or replace) a batched stack: ``lead_shape`` axes
        (batch, filter, ...) ahead of the node-grid pair.

        Batched stacks live in the distributed-array namespace -- they
        checkpoint, seal parity, and NaN out with their node tile on a
        node death like any 4-d stack -- but no node memory views them:
        :meth:`NodeMemory.install_view` requires 2-D views, so per-node
        paths (exact mode, the sequencer) stage one ``(batch, filter)``
        slice at a time instead.
        """
        rows, cols = subgrid_shape
        stack = np.zeros(
            tuple(int(n) for n in lead_shape)
            + (self.grid_shape[0], self.grid_shape[1], rows, cols),
            dtype=np.float32,
        )
        self._stacks[name] = stack
        return stack

    def get(self, name: str) -> Optional[np.ndarray]:
        return self._stacks.get(name)

    def bind(self, name: str, stack: np.ndarray) -> None:
        """Register an existing stack under (another) name."""
        self._stacks[name] = stack

    def free(self, name: str) -> None:
        self._stacks.pop(name, None)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._stacks)

    def tile_stacks(self):
        """Every distinct node-tiled stack, from both namespaces:
        ``(name, stack)`` pairs whose ``-4/-3`` dims are the node grid
        (4-d classic stacks and batched stacks with leading axes alike).
        Aliased names yield the underlying stack once (the view a dead
        node loses is the storage, not the name)."""
        seen = set()
        for name, stack in list(self._stacks.items()) + list(
            self._scratch.items()
        ):
            if (
                stack.ndim >= 4
                and stack.shape[-4:-2] == self.grid_shape
                and id(stack) not in seen
            ):
                seen.add(id(stack))
                yield name, stack

    # ------------------------------------------------------------------
    # Scratch stacks (temporal blocking)
    # ------------------------------------------------------------------

    def scratch(
        self,
        name: str,
        buffer_shape: Tuple[int, int],
        lead_shape: Tuple[int, ...] = (),
    ) -> np.ndarray:
        """A reusable machine-wide scratch stack of per-node shape
        ``buffer_shape`` (with optional batch/filter axes ahead of the
        node grid).

        Unlike :meth:`allocate`, the returned stack is kept in a
        separate namespace (it never shadows a distributed array) and is
        reused verbatim when the shape matches the previous request, so
        steady-state iterated runs perform no allocation.  Contents are
        *not* cleared between calls; callers overwrite what they read.
        """
        rows, cols = buffer_shape
        shape = tuple(int(n) for n in lead_shape) + (
            self.grid_shape[0],
            self.grid_shape[1],
            rows,
            cols,
        )
        stack = self._scratch.get(name)
        if stack is None or stack.shape != shape:
            stack = np.zeros(shape, dtype=np.float32)
            self._scratch[name] = stack
            self.scratch_allocations += 1
        return stack

    def pingpong(
        self, name: str, buffer_shape: Tuple[int, int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The two preallocated ping-pong stacks backing ``name``'s
        temporally blocked iterates (allocated once, reused)."""
        return (
            self.scratch(f"{name}__ping__", buffer_shape),
            self.scratch(f"{name}__pong__", buffer_shape),
        )

    # ------------------------------------------------------------------
    # Checkpoint/restore and parity (fault tolerance)
    # ------------------------------------------------------------------

    def lookup(self, name: str) -> Optional[np.ndarray]:
        """A named stack from either namespace: distributed arrays
        first, then scratch (ping-pong) stacks."""
        stack = self._stacks.get(name)
        if stack is not None:
            return stack
        return self._scratch.get(name)

    def checkpoint(self, names) -> StorageCheckpoint:
        """Snapshot the named stacks (distributed or scratch) so an
        iterated run can roll back to this exact state after detected
        corruption."""
        copies: Dict[str, np.ndarray] = {}
        for name in names:
            stack = self.lookup(name)
            if stack is None:
                raise MemoryError_(
                    f"cannot checkpoint unknown buffer {name!r}"
                )
            copies[name] = stack.copy()
        return StorageCheckpoint(stacks=copies)

    def restore(self, checkpoint: StorageCheckpoint) -> None:
        """Write a checkpoint back into the live stacks, in place."""
        for name, saved in checkpoint.stacks.items():
            stack = self.lookup(name)
            if stack is None or stack.shape != saved.shape:
                raise MemoryError_(
                    f"cannot restore {name!r}: live buffer missing or "
                    "reshaped since the checkpoint"
                )
            stack[...] = saved

    def seal_parity(self, name: str) -> int:
        """Record (and return) the current parity word of a stack, to
        be checked later with :meth:`check_parity`."""
        stack = self.lookup(name)
        if stack is None:
            raise MemoryError_(f"cannot seal parity of unknown buffer {name!r}")
        word = parity_word(stack)
        self._parity[name] = word
        return word

    def check_parity(self, name: str) -> bool:
        """Whether a sealed stack still matches its parity word.  True
        for never-sealed names (nothing to contradict)."""
        sealed = self._parity.get(name)
        if sealed is None:
            return True
        stack = self.lookup(name)
        if stack is None:
            return False
        return parity_word(stack) == sealed

    def clear_parity(self, name: str) -> None:
        self._parity.pop(name, None)

    def seal_abft(self, name: str, seal: object) -> None:
        """Attach an ABFT checksum seal to ``name``.  The storage holds
        the seal alongside the stack; the ABFT layer owns its algebra
        (:func:`repro.runtime.abft.seal_checksums`)."""
        self._abft[name] = seal

    def get_abft(self, name: str) -> Optional[object]:
        """The current ABFT seal of ``name`` (None when never sealed)."""
        return self._abft.get(name)

    def clear_abft(self, name: str) -> None:
        self._abft.pop(name, None)
