"""The fixed microcode routine set.

The paper's microcode provides the critical inner looping structure; the
compiler "is responsible for ... the choice of particular microcode
routines" while "a fixed set of microcode routines can support a wide
variety of stencil patterns" because the register access patterns live
in sequencer scratch memory, not in the microcode (section 4.3).

In the simulator a routine is a descriptor: which multistencil width it
drives, and the overhead cycles its loop structure costs.  The paper's
half-strip design trades doubled start-up count for a microcode loop
with a single boundary condition, conserving scarce microcode
instruction memory (section 5.2); the alternative full-strip routines
are modeled for the ablation benchmark with a larger dispatch cost (the
second boundary condition) and doubled instruction-memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .params import MachineParams


@dataclass(frozen=True)
class MicrocodeRoutine:
    """A hand-written sequencer routine the compiler can select.

    Attributes:
        name: routine identifier.
        width: multistencil width the routine's loop drives.
        half_strip: True for the production half-strip routines; False
            for the full-strip ablation variants.
        dispatch_cycles: per-invocation start-up cost.
        line_overhead_cycles: sequencer cost per processed line.
        instruction_words: microcode instruction memory consumed.
    """

    name: str
    width: int
    half_strip: bool
    dispatch_cycles: int
    line_overhead_cycles: int
    instruction_words: int


#: Microcode instruction memory on the sequencer (words); the half-strip
#: design exists because this resource is scarce.
MICROCODE_MEMORY_WORDS = 2048

#: Instruction-memory footprint of one half-strip routine.  The
#: full-strip variant handles boundary conditions at both ends of the
#: strip, which "avoids a great deal of complexity in the microcode"
#: when dropped -- the full-strip routines are several times larger, and
#: the set of four widths does not fit the instruction memory at all.
_HALF_STRIP_WORDS = 176
_FULL_STRIP_WORDS = 600


def half_strip_routine(width: int, params: MachineParams) -> MicrocodeRoutine:
    """The production routine for the given width."""
    return MicrocodeRoutine(
        name=f"convolve_halfstrip_w{width}",
        width=width,
        half_strip=True,
        dispatch_cycles=params.half_strip_dispatch_cycles,
        line_overhead_cycles=params.sequencer_line_overhead,
        instruction_words=_HALF_STRIP_WORDS,
    )


def full_strip_routine(width: int, params: MachineParams) -> MicrocodeRoutine:
    """The rejected design: one loop per whole strip.

    Halves the number of dispatches (the half-strip design's admitted
    overhead) at the price of a costlier dispatch -- two boundary
    conditions to set up -- and a microcode footprint so large the four
    width variants cannot coexist in instruction memory.
    """
    return MicrocodeRoutine(
        name=f"convolve_fullstrip_w{width}",
        width=width,
        half_strip=False,
        dispatch_cycles=(3 * params.half_strip_dispatch_cycles) // 2,
        line_overhead_cycles=params.sequencer_line_overhead,
        instruction_words=_FULL_STRIP_WORDS,
    )


def routine_set(
    params: MachineParams, widths: Tuple[int, ...] = (8, 4, 2, 1), *,
    half_strip: bool = True,
) -> Dict[int, MicrocodeRoutine]:
    """The routine per width, with a microcode-memory capacity check."""
    build = half_strip_routine if half_strip else full_strip_routine
    routines = {width: build(width, params) for width in widths}
    total = sum(routine.instruction_words for routine in routines.values())
    if total > MICROCODE_MEMORY_WORDS:
        raise ValueError(
            f"routine set needs {total} microcode words; only "
            f"{MICROCODE_MEMORY_WORDS} available (the half-strip design "
            "exists to avoid exactly this)"
        )
    return routines
