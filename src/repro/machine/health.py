"""Persistent hardware health state: dead nodes, dead links, slow nodes.

The CM-2's production reality included ECC memory, deconfigurable
boards, and spare chips: a machine of 64K processors keeps computing
when hardware dies, not only when a message flips a bit.  This module is
the simulator's ledger of *persistent* faults -- unlike the transient
faults of :mod:`repro.runtime.faults`, a condition recorded here stays
true until the hardware is repaired (a dead node is remapped onto a
spare, a dead link is routed around).

Health state is keyed by **physical** identity: node conditions by
physical node id (see
:class:`~repro.machine.geometry.CoordinateMap`), link conditions by the
unordered pair of physical endpoints.  Remapping a logical coordinate
onto a spare therefore heals, as a side effect, every link whose bad
endpoint was the retired node -- the spare brings fresh wires.

Detection and recovery live in the runtime
(:class:`~repro.runtime.faults.HealthMonitor`); this module only records
what is true of the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple


@dataclass(frozen=True)
class LinkState:
    """One grid link's identity: physical endpoints plus orientation.

    ``orientation`` is ``"h"`` for an East/West (column-axis) link and
    ``"v"`` for a North/South (row-axis) link -- the detour cost of a
    reroute depends on which way the band it carried runs.
    """

    endpoints: FrozenSet[int]
    orientation: str

    def describe(self) -> str:
        a, b = sorted(self.endpoints)
        axis = "E-W" if self.orientation == "h" else "N-S"
        return f"link {a}<->{b} ({axis})"


def link_key(phys_a: int, phys_b: int) -> FrozenSet[int]:
    return frozenset((phys_a, phys_b))


class MachineHealth:
    """The machine's current hardware condition.

    ``epoch`` increments on every recorded change, so caches keyed on
    machine topology (e.g. the block-depth selection memo) can observe
    "the hardware is not what it was when you last priced this".
    """

    def __init__(self) -> None:
        self.dead_nodes: set = set()
        self.slow_nodes: set = set()
        self.dead_links: Dict[FrozenSet[int], LinkState] = {}
        #: Dead links the runtime has confirmed and routed around:
        #: traffic arrives intact but pays the detour.
        self.rerouted_links: set = set()
        self.epoch = 0

    # ------------------------------------------------------------------
    # Recording (the injector and repair paths write here)
    # ------------------------------------------------------------------

    def _bump(self) -> None:
        self.epoch += 1

    def mark_node_dead(self, physical_id: int) -> None:
        self.dead_nodes.add(physical_id)
        self.slow_nodes.discard(physical_id)
        self._bump()

    def mark_node_slow(self, physical_id: int) -> None:
        if physical_id not in self.dead_nodes:
            self.slow_nodes.add(physical_id)
            self._bump()

    def mark_link_dead(self, phys_a: int, phys_b: int, orientation: str) -> None:
        key = link_key(phys_a, phys_b)
        if key not in self.dead_links:
            self.dead_links[key] = LinkState(
                endpoints=key, orientation=orientation
            )
            self._bump()

    def mark_link_rerouted(self, phys_a: int, phys_b: int) -> None:
        key = link_key(phys_a, phys_b)
        if key in self.dead_links and key not in self.rerouted_links:
            self.rerouted_links.add(key)
            self._bump()

    def retire_node(self, physical_id: int) -> None:
        """A remap replaced this physical node: its conditions (and its
        links' conditions -- the spare brings fresh wires) stop
        mattering for the logical grid."""
        self.dead_nodes.discard(physical_id)
        self.slow_nodes.discard(physical_id)
        for key in [k for k in self.dead_links if physical_id in k]:
            del self.dead_links[key]
            self.rerouted_links.discard(key)
        self._bump()

    # ------------------------------------------------------------------
    # Queries (the exchange and the monitor read here)
    # ------------------------------------------------------------------

    def node_dead(self, physical_id: int) -> bool:
        return physical_id in self.dead_nodes

    def node_slow(self, physical_id: int) -> bool:
        return physical_id in self.slow_nodes

    def link_dead(self, phys_a: int, phys_b: int) -> bool:
        return link_key(phys_a, phys_b) in self.dead_links

    def link_delivers(self, phys_a: int, phys_b: int) -> bool:
        """Whether traffic between these endpoints arrives intact:
        either the link is healthy or it has been routed around."""
        key = link_key(phys_a, phys_b)
        return key not in self.dead_links or key in self.rerouted_links

    @property
    def any_condition(self) -> bool:
        return bool(self.dead_nodes or self.slow_nodes or self.dead_links)

    def describe(self) -> str:
        if not self.any_condition:
            return "all hardware healthy"
        parts = []
        if self.dead_nodes:
            parts.append(f"{len(self.dead_nodes)} dead node(s)")
        if self.slow_nodes:
            parts.append(f"{len(self.slow_nodes)} slow node(s)")
        if self.dead_links:
            rerouted = len(self.rerouted_links)
            parts.append(
                f"{len(self.dead_links)} dead link(s) ({rerouted} rerouted)"
            )
        return ", ".join(parts)
