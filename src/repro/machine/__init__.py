"""The simulated CM-2: datapath, memory, sequencer, and node grid."""

from .fpu import FpuStats, ScheduleError, Wtl3164
from .geometry import (
    NodeCoord,
    all_coords,
    gray_code,
    grid_shape,
    hamming_distance,
    node_address,
)
from .isa import (
    ONES_BUFFER,
    AbstractOp,
    Instr,
    LoadOp,
    MAOp,
    MemDirection,
    MemRef,
    NopOp,
    StoreOp,
    const_buffer_name,
)
from .machine import CM2
from .memory import (
    MachineStorage,
    MemoryError_,
    NodeMemory,
    StorageCheckpoint,
    parity_word,
)
from .microcode import (
    MICROCODE_MEMORY_WORDS,
    MicrocodeRoutine,
    full_strip_routine,
    half_strip_routine,
    routine_set,
)
from .node import Node
from .params import FULL_CM2, SIXTEEN_NODE, MachineParams
from .router import (
    RoutedCost,
    Transfer,
    binary_embedding,
    corner_transfers,
    exchange_route_cost,
    four_neighbor_transfers,
    gray_embedding,
    route,
    schedule_transfers,
)
from .sequencer import HalfStripJob, Sequencer

__all__ = [
    "AbstractOp",
    "CM2",
    "FULL_CM2",
    "FpuStats",
    "HalfStripJob",
    "Instr",
    "LoadOp",
    "MAOp",
    "MemDirection",
    "MemRef",
    "MachineStorage",
    "MemoryError_",
    "MicrocodeRoutine",
    "StorageCheckpoint",
    "parity_word",
    "MICROCODE_MEMORY_WORDS",
    "Node",
    "NodeCoord",
    "RoutedCost",
    "Transfer",
    "binary_embedding",
    "corner_transfers",
    "exchange_route_cost",
    "four_neighbor_transfers",
    "gray_embedding",
    "route",
    "schedule_transfers",
    "NodeMemory",
    "NopOp",
    "ONES_BUFFER",
    "ScheduleError",
    "Sequencer",
    "SIXTEEN_NODE",
    "StoreOp",
    "MachineParams",
    "Wtl3164",
    "all_coords",
    "const_buffer_name",
    "full_strip_routine",
    "gray_code",
    "grid_shape",
    "half_strip_routine",
    "hamming_distance",
    "node_address",
    "routine_set",
]
