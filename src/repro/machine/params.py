"""Machine and calibration parameters for the simulated CM-2.

Architectural constants (clock rate, register count, pipeline latencies,
machine sizes) come straight from the paper and the CM-2 Technical
Summary it cites.  A handful of overhead constants are not specified
numerically in the paper; they are calibration parameters with documented
defaults, chosen so the simulated 16-node rates land in the neighbourhood
of the paper's results table (see EXPERIMENTS.md for the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineParams:
    """Everything the simulator needs to know about the machine.

    Architectural constants (from the paper):

    Attributes:
        clock_hz: CM-2 system clock.  "In all cases the clock rate of the
            Connection Machine system was 7 MHz" (section 7).
        num_nodes: nodes in the simulated configuration.  The paper's
            preliminary timings use 16-node single-board machines; a
            full-size CM-2 has 2,048 nodes.
        registers: WTL3164 internal registers available to the dynamic
            instruction parts (32; the compiler reserves one for 0.0 and
            sometimes one for 1.0, leaving 31 or 30 for data).
        mult_to_add_cycles: a multiplication started on cycle k becomes an
            operand of the addition started on cycle k+2 (section 4.2).
        add_to_writeback_cycles: the result of that addition is stored
            into the destination register on cycle k+4, i.e. two cycles
            after the add issues.
        load_latency: cycles from a load issue until the value is usable
            from the register (the interface chip introduces a cycle of
            latency; we charge two cycles issue-to-use, matching the
            pipeline-fill gap the code generator inserts).
        memory_access_cycles: cycles occupied by one explicit register
            load or store through the interface chip.  Coefficients
            stream one word per multiply-add cycle (the pipelined steady
            state), but a register load/store also occupies the single
            dynamic-part issue slot with its register address, so it
            costs two cycles.  This matches the per-point cycle counts
            implied by the paper's measured rates (see EXPERIMENTS.md).
        pipe_reversal_penalty: stall cycles charged when the
            memory/interface pipe reverses direction (section 5.3: "there
            is a penalty every time the direction of this pipe is
            reversed").
        flops_per_ma: floating-point operations retired by one chained
            multiply-add cycle (2: a multiply and an add).
        scratch_memory_words: capacity of the sequencer scratch data
            memory available for unrolled register access patterns.  The
            paper calls unrolling "a cost (in consumption of sequencer
            scratch data memory)"; 4,096 words is the era-appropriate
            default that makes LCM minimization matter.

    Calibration constants (not numeric in the paper):

    Attributes:
        sequencer_line_overhead: stall cycles between half-strip lines:
            the loop-closing branch cannot share a cycle with a dynamic
            issue (section 4.3), plus scratch-counter and address-base
            updates by the sequencer ALU.
        half_strip_dispatch_cycles: cycles to start one half-strip
            invocation of the microcode loop (argument unpacking, static
            instruction part issue, address setup).  The half-strip
            design doubles how often this is paid (section 5.2).
        strip_setup_cycles: run-time library cycles to set up each strip
            (selecting the plan, computing bases).
        comm_startup_cycles: fixed cost of one four-neighbor exchange.
        comm_cycles_per_element: per-element transfer cost of the grid
            communication primitive, per 32-bit word per node.
        corner_exchange_startup_cycles: fixed cost of the third
            (diagonal corner) communication step when it cannot be
            skipped.
        host_call_overhead_s: fixed front-end (host) time per stencil
            call; the paper notes the front end was "hard pressed to
            keep up" with the microcode loops.
        host_per_halfstrip_s: front-end time per half-strip invocation
            (the dominant host cost: issuing the macro-instruction and
            its run-time parameters down the FIFO).
        host_overhead_recoded: whether the "careful recoding of the
            run-time support routines, including strength reduction to
            avoid integer multiplications in the inner front-end loops"
            (section 7) is in effect; when False the pre-recoding
            overheads apply.
        host_call_overhead_slow_s: the pre-recoding fixed overhead.
        host_per_halfstrip_slow_s: the pre-recoding per-half-strip cost.
    """

    # Architectural constants.
    clock_hz: float = 7.0e6
    num_nodes: int = 16
    registers: int = 32
    mult_to_add_cycles: int = 2
    add_to_writeback_cycles: int = 2
    load_latency: int = 2
    memory_access_cycles: int = 2
    pipe_reversal_penalty: int = 2
    flops_per_ma: int = 2
    scratch_memory_words: int = 4096
    processors_per_node: int = 32

    # Calibration constants.
    sequencer_line_overhead: int = 40
    half_strip_dispatch_cycles: int = 60
    strip_setup_cycles: int = 60
    comm_startup_cycles: int = 350
    comm_cycles_per_element: float = 4.0
    corner_exchange_startup_cycles: int = 120
    host_call_overhead_s: float = 300e-6
    host_per_halfstrip_s: float = 150e-6
    host_overhead_recoded: bool = True
    host_call_overhead_slow_s: float = 900e-6
    host_per_halfstrip_slow_s: float = 450e-6

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a machine needs at least one node")
        if self.registers < 4:
            raise ValueError("the WTL3164 model needs a plausible register file")

    @property
    def writeback_latency(self) -> int:
        """Issue-to-writeback latency of a chain-closing multiply-add."""
        return self.mult_to_add_cycles + self.add_to_writeback_cycles

    @property
    def peak_mflops_per_node(self) -> float:
        """2 flops/cycle at the machine clock: 14 Mflops at 7 MHz."""
        return self.flops_per_ma * self.clock_hz / 1e6

    @property
    def host_fixed_s(self) -> float:
        """The fixed per-call host overhead currently in effect."""
        if self.host_overhead_recoded:
            return self.host_call_overhead_s
        return self.host_call_overhead_slow_s

    @property
    def host_halfstrip_s(self) -> float:
        """The per-half-strip host overhead currently in effect."""
        if self.host_overhead_recoded:
            return self.host_per_halfstrip_s
        return self.host_per_halfstrip_slow_s

    def host_overhead_s(self, half_strips: int) -> float:
        """Front-end time for one stencil call issuing ``half_strips``
        microcode invocations."""
        return self.host_fixed_s + half_strips * self.host_halfstrip_s

    def with_nodes(self, num_nodes: int) -> "MachineParams":
        """A copy configured for a different machine size."""
        return replace(self, num_nodes=num_nodes)

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.clock_hz


#: The 16-node single-board machine of the paper's preliminary timings.
SIXTEEN_NODE = MachineParams(num_nodes=16)

#: The full-size 65,536-processor CM-2 (2,048 nodes).
FULL_CM2 = MachineParams(num_nodes=2048)
