"""A CM-2 node: two processor chips, one WTL3164, and their memory.

The convolution compiler treats the node as the unit of computation (the
new grid primitive "organizes nodes, not processors, into a
two-dimensional grid").  Each node owns a subgrid of every array and an
FPU; the bit-serial processors themselves are below the level this
simulation needs, but their count fixes the memory-bandwidth story the
slicewise format exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .fpu import Wtl3164
from .geometry import NodeCoord
from .memory import NodeMemory
from .params import MachineParams


@dataclass
class Node:
    """One node of the simulated machine."""

    coord: NodeCoord
    address: int  # hypercube address
    params: MachineParams
    memory: NodeMemory = field(default_factory=NodeMemory)

    def make_fpu(self, *, zero_reg: int = 0, unit_reg: Optional[int] = None) -> Wtl3164:
        """A fresh FPU state for one kernel invocation.

        The real FPU's registers persist, but each half-strip run begins
        by loading everything it reads, so a fresh register file per
        invocation is equivalent and lets the simulator's validity
        checking catch uninitialized reads.
        """
        return Wtl3164(
            self.params, self.memory, zero_reg=zero_reg, unit_reg=unit_reg
        )

    def describe(self) -> str:
        return (
            f"node({self.coord.row},{self.coord.col}) "
            f"@cube {self.address:#05x}"
        )
