"""Node-grid geometry and its hypercube embedding.

The CM-2's nodes form an 11-dimensional hypercube (2,048 nodes; a 16-node
single board is a 4-cube).  Grid communication primitives embed a 2-D
grid in the hypercube "in such a way that grid neighbors are hypercube
neighbors, thereby making effective use of the network" (paper section
4.1) -- the classic binary-reflected Gray code embedding, reproduced
here and checked by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def grid_shape(num_nodes: int) -> Tuple[int, int]:
    """The 2-D node grid for a power-of-two machine size.

    The dimensions are as close to square as powers of two allow, with
    the larger extent horizontal: 16 nodes form a 4x4 grid (paper's
    example), 2,048 nodes a 32x64 grid.
    """
    if not is_power_of_two(num_nodes):
        raise ValueError(
            f"the CM-2 node count must be a power of two, got {num_nodes}"
        )
    log2 = num_nodes.bit_length() - 1
    rows = 1 << (log2 // 2)
    cols = 1 << (log2 - log2 // 2)
    return rows, cols


def gray_code(index: int) -> int:
    """The binary-reflected Gray code of ``index``."""
    return index ^ (index >> 1)


def node_address(row: int, col: int, shape: Tuple[int, int]) -> int:
    """Hypercube address of the node at grid position ``(row, col)``.

    Rows and columns are Gray-coded independently and the column bits are
    placed above the row bits, so stepping to any of the four grid
    neighbors flips exactly one address bit.
    """
    rows, cols = shape
    if not (0 <= row < rows and 0 <= col < cols):
        raise ValueError(f"({row}, {col}) outside node grid {shape}")
    row_bits = (rows - 1).bit_length()
    return (gray_code(col) << row_bits) | gray_code(row)


def hamming_distance(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


@dataclass(frozen=True)
class NodeCoord:
    """A node's position in the 2-D grid (torus)."""

    row: int
    col: int

    def neighbors(self, shape: Tuple[int, int]) -> "dict[str, NodeCoord]":
        """The four torus neighbors, keyed North/South/West/East.

        North is toward smaller rows, matching the stencil convention.
        """
        rows, cols = shape
        return {
            "N": NodeCoord((self.row - 1) % rows, self.col),
            "S": NodeCoord((self.row + 1) % rows, self.col),
            "W": NodeCoord(self.row, (self.col - 1) % cols),
            "E": NodeCoord(self.row, (self.col + 1) % cols),
        }

    def diagonal_neighbors(self, shape: Tuple[int, int]) -> "dict[str, NodeCoord]":
        rows, cols = shape
        return {
            "NW": NodeCoord((self.row - 1) % rows, (self.col - 1) % cols),
            "NE": NodeCoord((self.row - 1) % rows, (self.col + 1) % cols),
            "SW": NodeCoord((self.row + 1) % rows, (self.col - 1) % cols),
            "SE": NodeCoord((self.row + 1) % rows, (self.col + 1) % cols),
        }


def all_coords(shape: Tuple[int, int]) -> Iterator[NodeCoord]:
    rows, cols = shape
    for row in range(rows):
        for col in range(cols):
            yield NodeCoord(row, col)
