"""Node-grid geometry and its hypercube embedding.

The CM-2's nodes form an 11-dimensional hypercube (2,048 nodes; a 16-node
single board is a 4-cube).  Grid communication primitives embed a 2-D
grid in the hypercube "in such a way that grid neighbors are hypercube
neighbors, thereby making effective use of the network" (paper section
4.1) -- the classic binary-reflected Gray code embedding, reproduced
here and checked by tests.

The machine's boards were *deconfigurable*: a failed chip could be mapped
out and a spare mapped in without changing the program's view of the
grid.  :class:`CoordinateMap` models that indirection -- every logical
grid position resolves through it to a physical node id, and a confirmed
dead node is remapped onto a spare from a configured spare row/column
while the logical grid (and therefore every compiled plan, decomposition,
and exchange schedule) stays fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def grid_shape(num_nodes: int) -> Tuple[int, int]:
    """The 2-D node grid for a power-of-two machine size.

    The dimensions are as close to square as powers of two allow, with
    the larger extent horizontal: 16 nodes form a 4x4 grid (paper's
    example), 2,048 nodes a 32x64 grid.
    """
    if not is_power_of_two(num_nodes):
        raise ValueError(
            f"the CM-2 node count must be a power of two, got {num_nodes}"
        )
    log2 = num_nodes.bit_length() - 1
    rows = 1 << (log2 // 2)
    cols = 1 << (log2 - log2 // 2)
    return rows, cols


def gray_code(index: int) -> int:
    """The binary-reflected Gray code of ``index``."""
    return index ^ (index >> 1)


def node_address(row: int, col: int, shape: Tuple[int, int]) -> int:
    """Hypercube address of the node at grid position ``(row, col)``.

    Rows and columns are Gray-coded independently and the column bits are
    placed above the row bits, so stepping to any of the four grid
    neighbors flips exactly one address bit.
    """
    rows, cols = shape
    if not (0 <= row < rows and 0 <= col < cols):
        raise ValueError(f"({row}, {col}) outside node grid {shape}")
    row_bits = (rows - 1).bit_length()
    return (gray_code(col) << row_bits) | gray_code(row)


def hamming_distance(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


@dataclass(frozen=True)
class NodeCoord:
    """A node's position in the 2-D grid (torus)."""

    row: int
    col: int

    def neighbors(self, shape: Tuple[int, int]) -> "dict[str, NodeCoord]":
        """The four torus neighbors, keyed North/South/West/East.

        North is toward smaller rows, matching the stencil convention.
        """
        rows, cols = shape
        return {
            "N": NodeCoord((self.row - 1) % rows, self.col),
            "S": NodeCoord((self.row + 1) % rows, self.col),
            "W": NodeCoord(self.row, (self.col - 1) % cols),
            "E": NodeCoord(self.row, (self.col + 1) % cols),
        }

    def diagonal_neighbors(self, shape: Tuple[int, int]) -> "dict[str, NodeCoord]":
        rows, cols = shape
        return {
            "NW": NodeCoord((self.row - 1) % rows, (self.col - 1) % cols),
            "NE": NodeCoord((self.row - 1) % rows, (self.col + 1) % cols),
            "SW": NodeCoord((self.row + 1) % rows, (self.col - 1) % cols),
            "SE": NodeCoord((self.row + 1) % rows, (self.col + 1) % cols),
        }


def all_coords(shape: Tuple[int, int]) -> Iterator[NodeCoord]:
    rows, cols = shape
    for row in range(rows):
        for col in range(cols):
            yield NodeCoord(row, col)


def spare_count(shape: Tuple[int, int], spares) -> int:
    """Resolve a ``CM2(spares=...)`` specification to a node count.

    ``"row"`` configures one spare row (``grid_cols`` nodes), ``"col"``
    one spare column (``grid_rows`` nodes); an int is taken verbatim.
    """
    rows, cols = shape
    if isinstance(spares, bool):
        raise ValueError(
            "spares must be a non-negative int, 'row', or 'col', got "
            f"{spares!r}"
        )
    if spares in (None, 0):
        return 0
    if spares == "row":
        return cols
    if spares in ("col", "column"):
        return rows
    if isinstance(spares, int) and not isinstance(spares, bool):
        if spares < 0:
            raise ValueError(f"spare count must be non-negative, got {spares}")
        return spares
    raise ValueError(
        f"spares must be a non-negative int, 'row', or 'col', got {spares!r}"
    )


class SpareExhaustedError(RuntimeError):
    """A remap was requested but no spare physical node remains."""


class PartitionError(ValueError):
    """A partition does not legally carve the parent node grid.

    Raised at :class:`~repro.machine.machine.CM2` construction (and by
    :meth:`Partition.validate`), *before* any storage is allocated or
    halos move -- the alternative is an opaque shape error deep inside
    halo exchange.  ``overlap`` names the offending parent-grid
    coordinates when the failure is a collision with reserved (spare
    pool) nodes or another tenant's rectangle.
    """

    def __init__(
        self,
        message: str,
        overlap: Tuple[Tuple[int, int], ...] = (),
    ) -> None:
        super().__init__(message)
        self.overlap = tuple(overlap)


@dataclass(frozen=True)
class Partition:
    """One tenant's rectangle of the parent machine's node grid.

    A partition is the placement record behind a carved-out
    :class:`~repro.machine.machine.CM2`: the parent grid shape, the
    rectangle's origin and shape in parent coordinates, and the parent
    coordinates reserved for the service spare pool (which no tenant
    rectangle may touch).  The partition's own machine runs with logical
    coordinates ``(0..rows-1, 0..cols-1)``; :meth:`to_parent` resolves
    them back onto the parent grid for accounting and health reporting.
    """

    parent_shape: Tuple[int, int]
    origin: Tuple[int, int]
    shape: Tuple[int, int]
    reserved: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)

    @property
    def num_nodes(self) -> int:
        return self.shape[0] * self.shape[1]

    def coords(self) -> Iterator[Tuple[int, int]]:
        """The parent-grid coordinates the rectangle covers."""
        for dr in range(self.shape[0]):
            for dc in range(self.shape[1]):
                yield (self.origin[0] + dr, self.origin[1] + dc)

    def to_parent(self, row: int, col: int) -> Tuple[int, int]:
        """Map a partition-local logical coordinate to the parent grid."""
        rows, cols = self.shape
        return (self.origin[0] + row % rows, self.origin[1] + col % cols)

    def overlaps(self, other: "Partition") -> bool:
        (ar, ac), (ah, aw) = self.origin, self.shape
        (br, bc), (bh, bw) = other.origin, other.shape
        return ar < br + bh and br < ar + ah and ac < bc + bw and bc < ac + aw

    def validate(self) -> "Partition":
        """Check the rectangle legally tiles the parent grid.

        The rules, each raising a typed :class:`PartitionError`:

        * extents positive, powers of two (the hypercube embedding), and
          within the parent grid;
        * the rectangle is one tile of the regular tiling -- its extents
          divide the parent's and its origin is aligned to multiples of
          them -- so every admitted partition set packs without gaps or
          overlaps by construction;
        * no covered coordinate is reserved for the spare pool (the
          error names the overlapping coordinates).
        """
        prows, pcols = self.parent_shape
        rows, cols = self.shape
        orow, ocol = self.origin
        if rows < 1 or cols < 1:
            raise PartitionError(
                f"partition shape {self.shape} must be at least 1x1"
            )
        if not (is_power_of_two(rows) and is_power_of_two(cols)):
            raise PartitionError(
                f"partition extents must be powers of two for the "
                f"hypercube embedding, got {self.shape}"
            )
        if orow < 0 or ocol < 0 or orow + rows > prows or ocol + cols > pcols:
            raise PartitionError(
                f"partition {self.shape} at origin {self.origin} does not "
                f"fit inside the {prows}x{pcols} parent node grid"
            )
        if prows % rows or pcols % cols:
            raise PartitionError(
                f"partition shape {self.shape} does not tile the "
                f"{prows}x{pcols} parent node grid"
            )
        if orow % rows or ocol % cols:
            raise PartitionError(
                f"partition origin {self.origin} is not aligned to the "
                f"{rows}x{cols} tiling of the {prows}x{pcols} parent grid"
            )
        overlap = tuple(
            sorted(coord for coord in self.coords() if coord in self.reserved)
        )
        if overlap:
            raise PartitionError(
                f"partition {self.shape} at origin {self.origin} overlaps "
                f"the spare-pool reservation at parent coordinates "
                f"{list(overlap)}",
                overlap=overlap,
            )
        return self

    def describe(self) -> str:
        rows, cols = self.shape
        return (
            f"{rows}x{cols} partition at {self.origin} of "
            f"{self.parent_shape[0]}x{self.parent_shape[1]} grid"
        )


class CoordinateMap:
    """The logical grid -> physical node indirection.

    Physical nodes ``0 .. rows*cols - 1`` initially back the logical grid
    in row-major order; physical ids ``rows*cols ..`` are the spare pool
    (one extra hypercube dimension's worth of addresses).  Remapping a
    logical coordinate retires its physical node and binds the next
    spare; the logical grid never changes shape, so decompositions,
    compiled plans, and exchange schedules are untouched -- only the
    resolution of "which hardware executes node (r, c)" moves.
    """

    def __init__(self, shape: Tuple[int, int], num_spares: int = 0) -> None:
        rows, cols = shape
        self.shape = (rows, cols)
        self.num_spares = int(num_spares)
        self._map: Dict[Tuple[int, int], int] = {
            (r, c): r * cols + c for r in range(rows) for c in range(cols)
        }
        first_spare = rows * cols
        self._spare_pool: List[int] = list(
            range(first_spare, first_spare + self.num_spares)
        )
        #: Retired physical ids and the logical coordinate each last held.
        self.retired: Dict[int, Tuple[int, int]] = {}

    def physical(self, row: int, col: int) -> int:
        """The physical node id currently backing logical ``(row, col)``."""
        try:
            return self._map[(row, col)]
        except KeyError:
            raise ValueError(
                f"({row}, {col}) outside logical grid {self.shape}"
            ) from None

    def logical(self, physical_id: int) -> Optional[Tuple[int, int]]:
        """The logical coordinate a physical node currently backs, or
        None for spares and retired nodes."""
        for coord, phys in self._map.items():
            if phys == physical_id:
                return coord
        return None

    @property
    def spares_remaining(self) -> int:
        return len(self._spare_pool)

    @property
    def in_service(self) -> Tuple[int, ...]:
        """Physical ids currently backing logical coordinates."""
        return tuple(self._map.values())

    def remap(self, row: int, col: int) -> int:
        """Retire ``(row, col)``'s physical node and bind the next spare.

        Returns the new physical id.  Raises
        :class:`SpareExhaustedError` when the spare pool is empty.
        """
        old = self.physical(row, col)
        if not self._spare_pool:
            raise SpareExhaustedError(
                f"no spare left to replace physical node {old} "
                f"at logical ({row}, {col})"
            )
        new = self._spare_pool.pop(0)
        self._map[(row, col)] = new
        self.retired[old] = (row, col)
        return new

    def describe(self) -> str:
        rows, cols = self.shape
        return (
            f"{rows}x{cols} logical grid, {self.spares_remaining}/"
            f"{self.num_spares} spares free, {len(self.retired)} retired"
        )
