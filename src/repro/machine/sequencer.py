"""The sequencer: streams dynamic parts with run-time addresses.

One :class:`Sequencer` drives one node's FPU through a half-strip: it
walks the compiled line patterns (the contents of its scratch data
memory), generates the memory address for each cycle exactly as the real
sequencer ALU does from run-time base parameters, and charges its own
overhead cycles -- the per-invocation dispatch and the per-line cost of
the loop-closing branch that cannot share a cycle with a dynamic issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..stencil.pattern import CoeffKind, StencilPattern
from .fpu import Wtl3164
from .isa import (
    ONES_BUFFER,
    Instr,
    LoadOp,
    MAOp,
    MemRef,
    NopOp,
    StoreOp,
    const_buffer_name,
)
from .memory import NodeMemory
from .microcode import MicrocodeRoutine
from .params import MachineParams


@dataclass(frozen=True)
class HalfStripJob:
    """Run-time parameters of one half-strip invocation.

    Coordinates are in unpadded subgrid space.  The sweep moves North:
    line ``n`` computes results for subgrid row ``y_start - n``, columns
    ``[x0, x0 + width)``.

    Attributes:
        x0: leftmost result column of the strip.
        y_start: subgrid row of the first (southernmost) line.
        lines: number of lines to process.
    """

    x0: int
    y_start: int
    lines: int


class Sequencer:
    """Drives a node's FPU through half-strips of a compiled plan.

    Attributes:
        source_buffer: name of the padded source buffer in node memory.
        result_buffer: name of the (unpadded) result buffer.
        halo: padding width of the source buffer on every side.
    """

    def __init__(
        self,
        params: MachineParams,
        memory: NodeMemory,
        *,
        source_buffer: str,
        result_buffer: str,
        halo: int,
    ) -> None:
        self.params = params
        self.memory = memory
        self.source_buffer = source_buffer
        self.result_buffer = result_buffer
        self.halo = halo

    def resolve(self, op, y: int, x0: int) -> Optional[MemRef]:
        """Compute the memory address for one dynamic part, as the
        sequencer ALU does from the line base ``(y, x0)``."""
        if isinstance(op, LoadOp):
            if op.buffer is not None:
                # Fused extra-term load: the named array is unpadded.
                return MemRef(op.buffer, y + op.row, x0 + op.col)
            return MemRef(
                self.source_buffer,
                self.halo + y + op.row,
                self.halo + x0 + op.col,
            )
        if isinstance(op, MAOp):
            coeff = op.coeff
            if coeff.kind is CoeffKind.ARRAY:
                return MemRef(coeff.name, y, x0 + op.result_col)
            if coeff.kind is CoeffKind.SCALAR:
                return MemRef(const_buffer_name(coeff.value), 0, 0)
            return MemRef(ONES_BUFFER, 0, 0)
        if isinstance(op, StoreOp):
            return MemRef(self.result_buffer, y, x0 + op.result_col)
        if isinstance(op, NopOp):
            return None
        raise TypeError(f"unknown op {op!r}")  # pragma: no cover

    def run_half_strip(
        self,
        plan,
        job: HalfStripJob,
        fpu: Wtl3164,
        routine: Optional[MicrocodeRoutine] = None,
    ) -> None:
        """Execute one half-strip on the given FPU.

        ``plan`` is a :class:`repro.compiler.plan.WidthPlan`; ``routine``
        overrides the default half-strip microcode descriptor (used by
        the full-strip ablation).
        """
        dispatch = (
            routine.dispatch_cycles
            if routine is not None
            else self.params.half_strip_dispatch_cycles
        )
        line_overhead = (
            routine.line_overhead_cycles
            if routine is not None
            else self.params.sequencer_line_overhead
        )
        fpu.stall(dispatch, "dispatch")
        for line in range(job.lines):
            y = job.y_start - line
            line_pattern = plan.pattern_for_line(line)
            for op in line_pattern.ops:
                fpu.step(Instr(op=op, mem=self.resolve(op, y, job.x0)))
            fpu.stall(line_overhead, "line-overhead")
