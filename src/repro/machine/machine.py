"""The simulated Connection Machine: a synchronous grid of nodes.

The CM-2 is a completely synchronous SIMD machine: every node executes
the same instruction stream, so per-node time does not change with
machine size -- the property that makes the paper's extrapolation from
16 to 2,048 nodes reliable (section 7).  The simulator exploits the same
property: cycle counts are computed for the common instruction stream,
and all nodes advance together.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .geometry import (
    CoordinateMap,
    NodeCoord,
    Partition,
    PartitionError,
    all_coords,
    grid_shape,
    is_power_of_two,
    node_address,
    spare_count,
)
from .health import MachineHealth
from .memory import MachineStorage
from .node import Node
from .params import MachineParams


class CM2:
    """A machine instance: parameters plus the 2-D torus of nodes.

    Distributed arrays are backed by one stacked ``(grid_rows,
    grid_cols, rows, cols)`` float32 array per name (see
    :class:`~repro.machine.memory.MachineStorage`); each node's memory
    holds a view of its own ``[row, col]`` slice, so per-node and
    whole-machine access observe the same data.
    """

    def __init__(
        self,
        params: Optional[MachineParams] = None,
        shape: Optional[Tuple[int, int]] = None,
        spares=0,
        partition: Optional[Partition] = None,
    ) -> None:
        self.params = params or MachineParams()
        if partition is not None:
            # A carved-out tenant machine: validate the placement before
            # any storage exists, so an illegal rectangle is a typed
            # PartitionError here instead of an opaque failure deep
            # inside halo exchange.
            partition.validate()
            if shape is None:
                shape = partition.shape
            elif tuple(shape) != partition.shape:
                raise PartitionError(
                    f"machine shape {tuple(shape)} does not match its "
                    f"partition shape {partition.shape}"
                )
        self.partition = partition
        if shape is None:
            shape = grid_shape(self.params.num_nodes)
        else:
            rows, cols = shape
            if rows * cols != self.params.num_nodes:
                raise ValueError(
                    f"node grid {shape} does not hold "
                    f"{self.params.num_nodes} nodes"
                )
            if not (is_power_of_two(rows) and is_power_of_two(cols)):
                raise ValueError(
                    f"node grid extents must be powers of two for the "
                    f"hypercube embedding, got {shape}"
                )
            shape = (rows, cols)
        self.shape: Tuple[int, int] = shape
        self.storage = MachineStorage(self.shape)
        self._nodes: Dict[NodeCoord, Node] = {
            coord: Node(
                coord=coord,
                address=node_address(coord.row, coord.col, self.shape),
                params=self.params,
            )
            for coord in all_coords(self.shape)
        }
        # Deconfigurable-hardware state: the logical->physical map (with
        # its configured spare pool), the spare Node objects themselves
        # (addresses in the next hypercube dimension, as a physically
        # spare board would be), and the health ledger.
        self.coord_map = CoordinateMap(
            self.shape, spare_count(self.shape, spares)
        )
        first_spare = self.num_nodes
        self._spare_nodes: Dict[int, Node] = {
            first_spare + i: Node(
                coord=NodeCoord(-1, first_spare + i),
                address=first_spare + i,
                params=self.params,
            )
            for i in range(self.coord_map.num_spares)
        }
        self.health = MachineHealth()
        # Shared counter bumped whenever any node's buffer mapping
        # changes; lets stacked() cache its every-node integrity check.
        self._memory_epoch = [0]
        self._stack_checks: Dict[str, Tuple[np.ndarray, int]] = {}
        for node in self._nodes.values():
            node.memory.track_epoch(self._memory_epoch)
        for node in self._spare_nodes.values():
            node.memory.track_epoch(self._memory_epoch)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def grid_rows(self) -> int:
        return self.shape[0]

    @property
    def grid_cols(self) -> int:
        return self.shape[1]

    def node(self, row: int, col: int) -> Node:
        return self._nodes[NodeCoord(row % self.grid_rows, col % self.grid_cols)]

    def parent_coord(self, row: int, col: int) -> Tuple[int, int]:
        """This machine's logical ``(row, col)`` in parent-grid terms.

        Identity for a whole machine; partition machines resolve through
        their placement record, so accounting and health reports can
        name the physical rectangle a tenant actually occupies.
        """
        if self.partition is None:
            return (row % self.grid_rows, col % self.grid_cols)
        return self.partition.to_parent(row, col)

    def nodes(self) -> Iterator[Node]:
        for coord in all_coords(self.shape):
            yield self._nodes[coord]

    # ------------------------------------------------------------------
    # Deconfigurable hardware: spares and remapping
    # ------------------------------------------------------------------

    def physical_id(self, row: int, col: int) -> int:
        """The physical node id behind logical ``(row, col)``."""
        return self.coord_map.physical(
            row % self.grid_rows, col % self.grid_cols
        )

    @property
    def spares_remaining(self) -> int:
        return self.coord_map.spares_remaining

    @property
    def has_spares(self) -> bool:
        return self.coord_map.num_spares > 0

    def lost_coords(self) -> Tuple[NodeCoord, ...]:
        """Logical coordinates currently backed by a dead physical node
        (i.e. in need of a remap before any exchange can complete)."""
        return tuple(
            coord
            for coord in all_coords(self.shape)
            if self.health.node_dead(
                self.coord_map.physical(coord.row, coord.col)
            )
        )

    def slow_coords(self) -> Tuple[NodeCoord, ...]:
        """Logical coordinates backed by a degraded (slow) physical node."""
        return tuple(
            coord
            for coord in all_coords(self.shape)
            if self.health.node_slow(
                self.coord_map.physical(coord.row, coord.col)
            )
        )

    def remap_node(self, row: int, col: int) -> Node:
        """Migrate logical ``(row, col)`` onto the next spare node.

        Rewrites the logical->physical coordinate map, deploys the spare
        ``Node`` at the logical coordinate, and re-installs that
        coordinate's slice of every distributed stack as views in the
        spare's memory -- the state-migration step; the data itself is
        whatever the stacks currently hold (the caller restores the lost
        tile from a checkpoint before or after remapping).  The retired
        physical node's health conditions stop applying to the logical
        grid (its links are retired with it).

        Raises :class:`~repro.machine.geometry.SpareExhaustedError` when
        the spare pool is empty.
        """
        coord = NodeCoord(row % self.grid_rows, col % self.grid_cols)
        old_phys = self.coord_map.physical(coord.row, coord.col)
        new_phys = self.coord_map.remap(coord.row, coord.col)
        spare = self._spare_nodes.pop(new_phys)
        spare.coord = coord
        self._nodes[coord] = spare
        self.health.retire_node(old_phys)
        for name in self.storage.names:
            stack = self.storage.get(name)
            if (
                stack is not None
                and stack.ndim == 4
                and stack.shape[:2] == self.shape
            ):
                spare.memory.install_view(name, stack[coord.row, coord.col])
        return spare

    def migration_words(self) -> int:
        """Words one node's migration moves: its tile of every
        distributed stack (the state a spare must receive).  Batched
        stacks count every leading-axis copy of the tile -- the spare
        receives the whole batch's slice."""
        total = 0
        seen = set()
        grid_rows, grid_cols = self.shape
        for name in self.storage.names:
            stack = self.storage.get(name)
            if (
                stack is not None
                and stack.ndim >= 4
                and stack.shape[-4:-2] == self.shape
                and id(stack) not in seen
            ):
                seen.add(id(stack))
                total += int(stack.size // (grid_rows * grid_cols))
        return total

    # ------------------------------------------------------------------
    # Stacked distributed buffers
    # ------------------------------------------------------------------

    def alloc_stacked(self, name: str, subgrid_shape: Tuple[int, int]) -> np.ndarray:
        """Allocate a distributed buffer: one machine-wide stack, with
        each node's memory holding a view of its own slice."""
        stack = self.storage.allocate(name, subgrid_shape)
        for node in self.nodes():
            node.memory.install_view(name, stack[node.coord.row, node.coord.col])
        return stack

    def alias_stacked(self, name: str, target: str) -> None:
        """Point ``name`` at ``target``'s storage on every node and, when
        the target is stack-backed, in the machine storage as well."""
        stack = self.storage.get(target)
        if stack is not None:
            self.storage.bind(name, stack)
        else:
            self.storage.free(name)
        for node in self.nodes():
            node.memory.alias(name, target)

    def free_stacked(self, name: str) -> None:
        self.storage.free(name)
        for node in self.nodes():
            node.memory.free(name)

    def stacked(self, name: str) -> Optional[np.ndarray]:
        """The intact machine-wide stack backing buffer ``name``.

        Returns None when the name has no stack or any node's buffer has
        been detached from it (e.g. replaced through
        :meth:`~repro.machine.memory.NodeMemory.install`) -- callers
        then fall back to the per-node path, which is always correct.
        """
        stack = self.storage.get(name)
        if stack is None:
            return None
        cached = self._stack_checks.get(name)
        if (
            cached is not None
            and cached[0] is stack
            and cached[1] == self._memory_epoch[0]
        ):
            return stack
        for node in self.nodes():
            view = node.memory.view(name)
            if view is None or view.base is not stack:
                self._stack_checks.pop(name, None)
                return None
        self._stack_checks[name] = (stack, self._memory_epoch[0])
        return stack

    def alloc_batch_stacked(
        self,
        name: str,
        lead_shape: Tuple[int, ...],
        subgrid_shape: Tuple[int, int],
    ) -> np.ndarray:
        """Allocate a batched distributed buffer (leading batch/filter
        axes ahead of the node grid).  No node views -- see
        :meth:`~repro.machine.memory.MachineStorage.allocate_batched`."""
        return self.storage.allocate_batched(name, lead_shape, subgrid_shape)

    def scratch_stacked(
        self,
        name: str,
        buffer_shape: Tuple[int, int],
        lead_shape: Tuple[int, ...] = (),
    ) -> np.ndarray:
        """A reusable machine-wide scratch stack (no node views).

        Used by the temporal-blocking executor for deep-padded iterate
        and coefficient buffers, and (with ``lead_shape``) by the
        batched multi-convolution runtime; see
        :meth:`~repro.machine.memory.MachineStorage.scratch`.
        """
        return self.storage.scratch(name, buffer_shape, lead_shape)

    def pingpong_stacked(
        self, name: str, buffer_shape: Tuple[int, int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The preallocated ping-pong scratch pair for ``name``."""
        return self.storage.pingpong(name, buffer_shape)

    def peak_gflops(self) -> float:
        """Peak chained multiply-add rate of the whole machine."""
        return self.params.peak_mflops_per_node * self.num_nodes / 1e3

    def describe(self) -> str:
        rows, cols = self.shape
        spares = (
            f", {self.spares_remaining}/{self.coord_map.num_spares} spares"
            if self.has_spares
            else ""
        )
        carved = (
            f" ({self.partition.describe()})" if self.partition else ""
        )
        return (
            f"CM-2: {self.num_nodes} nodes as a {rows}x{cols} grid"
            f"{carved}{spares}, "
            f"{self.params.clock_hz / 1e6:g} MHz, "
            f"peak {self.peak_gflops():.2f} Gflops"
        )
