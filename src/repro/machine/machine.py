"""The simulated Connection Machine: a synchronous grid of nodes.

The CM-2 is a completely synchronous SIMD machine: every node executes
the same instruction stream, so per-node time does not change with
machine size -- the property that makes the paper's extrapolation from
16 to 2,048 nodes reliable (section 7).  The simulator exploits the same
property: cycle counts are computed for the common instruction stream,
and all nodes advance together.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .geometry import NodeCoord, all_coords, grid_shape, node_address
from .node import Node
from .params import MachineParams


class CM2:
    """A machine instance: parameters plus the 2-D torus of nodes."""

    def __init__(self, params: Optional[MachineParams] = None) -> None:
        self.params = params or MachineParams()
        self.shape: Tuple[int, int] = grid_shape(self.params.num_nodes)
        self._nodes: Dict[NodeCoord, Node] = {
            coord: Node(
                coord=coord,
                address=node_address(coord.row, coord.col, self.shape),
                params=self.params,
            )
            for coord in all_coords(self.shape)
        }

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def grid_rows(self) -> int:
        return self.shape[0]

    @property
    def grid_cols(self) -> int:
        return self.shape[1]

    def node(self, row: int, col: int) -> Node:
        return self._nodes[NodeCoord(row % self.grid_rows, col % self.grid_cols)]

    def nodes(self) -> Iterator[Node]:
        for coord in all_coords(self.shape):
            yield self._nodes[coord]

    def peak_gflops(self) -> float:
        """Peak chained multiply-add rate of the whole machine."""
        return self.params.peak_mflops_per_node * self.num_nodes / 1e3

    def describe(self) -> str:
        rows, cols = self.shape
        return (
            f"CM-2: {self.num_nodes} nodes as a {rows}x{cols} grid, "
            f"{self.params.clock_hz / 1e6:g} MHz, "
            f"peak {self.peak_gflops():.2f} Gflops"
        )
