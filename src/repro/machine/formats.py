"""Slicewise vs. processorwise data formats (paper section 3).

The CM-2's bit-serial processors each own their memory column; a 32-bit
float stored *processorwise* lives entirely within one processor's
memory, one bit per memory row, so "in a single memory cycle every
processor can fetch one bit of a floating-point datum; for every
processor to inspect its entire datum requires 32 cycles".  The
floating-point ALU, by contrast, wants each datum bit-parallel,
word-serial -- so processorwise data must pass through the node's
transposer (interface) chip in batches of 32.

The slicewise format stores "the 32 bits of a floating-point number ...
one bit per bit-serial processor, occupying a slice through memory that
can be accessed in a single memory cycle" -- data reads straight into
the FPU with no transposing, freeing the compiler "to process data in
batches of size 4" instead of 32.

This module models a node's 32-processor memory bank as a bit matrix
(rows = memory addresses, columns = processors) and implements both
layouts, the transposer, and their fetch-cost accounting.  The
convolution compiler's whole register strategy presumes the slicewise
format; these primitives make the presumption checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Bit-serial processors sharing one floating-point ALU (one node's
#: worth; chosen to match the 32-bit memory path).
PROCESSORS_PER_BANK = 32
BITS_PER_WORD = 32


def float_to_words(values: np.ndarray) -> np.ndarray:
    """View float32 data as uint32 bit patterns."""
    array = np.ascontiguousarray(values, dtype=np.float32)
    return array.view(np.uint32)


def words_to_float(words: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(words, dtype=np.uint32).view(np.float32)


def _bit_matrix(words: np.ndarray) -> np.ndarray:
    """Explode a batch of 32 words into a 32x32 boolean matrix:
    ``matrix[i, b]`` is bit ``b`` of word ``i``."""
    if words.shape != (PROCESSORS_PER_BANK,):
        raise ValueError(
            f"a batch is exactly {PROCESSORS_PER_BANK} words, got "
            f"{words.shape}"
        )
    bits = (words[:, None] >> np.arange(BITS_PER_WORD, dtype=np.uint32)) & 1
    return bits.astype(bool)


def _from_bit_matrix(matrix: np.ndarray) -> np.ndarray:
    weights = (np.uint64(1) << np.arange(BITS_PER_WORD, dtype=np.uint64))
    return (matrix.astype(np.uint64) * weights).sum(axis=1).astype(np.uint32)


@dataclass(frozen=True)
class MemoryBank:
    """One node's memory for a batch of 32 words.

    ``rows[address, processor]`` is the bit each processor reads from
    that memory address in one cycle; a *memory cycle* fetches one whole
    row.
    """

    rows: np.ndarray  # (BITS_PER_WORD, PROCESSORS_PER_BANK) bool

    def fetch_row(self, address: int) -> np.ndarray:
        return self.rows[address]


def store_processorwise(words: np.ndarray) -> MemoryBank:
    """Word ``j`` lives in processor ``j``'s column, bit ``b`` at row ``b``."""
    return MemoryBank(rows=_bit_matrix(words).T.copy())


def store_slicewise(words: np.ndarray) -> MemoryBank:
    """Word ``j`` occupies row ``j``: one of its bits in every processor."""
    return MemoryBank(rows=_bit_matrix(words).copy())


def transpose_bank(bank: MemoryBank) -> MemoryBank:
    """The interface chip's transposer: swaps the two layouts."""
    return MemoryBank(rows=bank.rows.T.copy())


def read_word_slicewise(bank: MemoryBank, index: int) -> np.uint32:
    """One memory cycle: row ``index`` is the whole word, bit-parallel."""
    row = bank.fetch_row(index)
    return _from_bit_matrix(row[None, :])[0]


def read_words_processorwise(bank: MemoryBank) -> np.ndarray:
    """Thirty-two memory cycles: every row contributes one bit of every
    word; the transposer reassembles the batch."""
    return _from_bit_matrix(bank.rows.T)


# ----------------------------------------------------------------------
# Fetch-cost accounting
# ----------------------------------------------------------------------


def slicewise_fetch_cycles(num_words: int) -> int:
    """Memory cycles to deliver ``num_words`` words to the FPU from
    slicewise storage: one row each, any batch size (the CM Fortran
    compiler uses batches of 4)."""
    if num_words < 0:
        raise ValueError("word count must be non-negative")
    return num_words


def processorwise_fetch_cycles(num_words: int) -> int:
    """Memory cycles to deliver ``num_words`` words from processorwise
    storage: whole batches of 32 rows, wanted or not."""
    if num_words < 0:
        raise ValueError("word count must be non-negative")
    batches = -(-num_words // PROCESSORS_PER_BANK)  # ceil division
    return batches * BITS_PER_WORD
