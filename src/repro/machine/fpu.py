"""A cycle-stepped model of the Weitek WTL3164 floating-point unit.

The pipeline rules come from paper section 4.2:

* only chained multiply-add operations are issued (two flops per cycle);
* a multiplication started on cycle *k* becomes an operand of the
  addition started on cycle *k+2*;
* the result of that addition is stored into the destination register on
  cycle *k+4*;
* one operand of each multiplication must come from memory (the streamed
  coefficient);
* two chained multiply-add threads are interleaved to fill the pipe, so
  each thread issues every other cycle;
* the interface chip between the FPU and memory introduces a cycle of
  latency, overcome by pipelining, with a penalty every time the
  direction of the pipe is reversed.

The model executes concrete :class:`~repro.machine.isa.Instr` streams
against a :class:`~repro.machine.memory.NodeMemory`, producing **both**
numerically exact results (float32 with per-operation rounding -- the
WTL3164 is a chained, not fused, multiply-add, so the product rounds
before the add) **and** exact cycle counts.  It also validates the
schedule: reversal spacing, chain protocol, register validity, and
store-before-writeback hazards all raise :class:`ScheduleError`, so a
register-allocation or code-generation bug fails loudly instead of
producing quietly wrong numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .isa import Instr, LoadOp, MAOp, MemDirection, NopOp, StoreOp
from .memory import NodeMemory
from .params import MachineParams


class ScheduleError(Exception):
    """The instruction stream violates a pipeline or protocol constraint."""


@dataclass
class FpuStats:
    """Cycle accounting for one FPU run."""

    cycles: int = 0
    ma_issues: int = 0
    loads: int = 0
    stores: int = 0
    stalls: int = 0
    stall_reasons: Dict[str, int] = field(default_factory=dict)

    def note_stall(self, reason: str) -> None:
        self.stalls += 1
        self.stall_reasons[reason] = self.stall_reasons.get(reason, 0) + 1


@dataclass
class _AddEvent:
    """A product entering the adder, scheduled at multiply-issue + 2."""

    thread: int
    product: np.float32
    first: bool
    last: bool
    addend_reg: int
    dest_reg: int


class Wtl3164:
    """One node's floating-point unit, stepped a cycle at a time.

    The object is stateful across calls so a sequencer can feed it one
    line of instructions at a time, interleaved with stall cycles for
    its own overhead; :meth:`drain` settles trailing pipeline events.
    """

    def __init__(
        self,
        params: MachineParams,
        memory: NodeMemory,
        *,
        zero_reg: int = 0,
        unit_reg: Optional[int] = None,
    ) -> None:
        self.params = params
        self.memory = memory
        self.zero_reg = zero_reg
        self.unit_reg = unit_reg
        self.regs = np.zeros(params.registers, dtype=np.float32)
        self.valid = np.zeros(params.registers, dtype=bool)
        self.valid[zero_reg] = True
        if unit_reg is not None:
            self.regs[unit_reg] = np.float32(1.0)
            self.valid[unit_reg] = True
        self.cycle = 0
        self.stats = FpuStats()
        self._pending_writes: Dict[int, List[Tuple[int, np.float32]]] = {}
        self._add_events: Dict[int, List[_AddEvent]] = {}
        self._chain_open: Dict[int, bool] = {}
        self._chain_sum: Dict[int, np.float32] = {}
        self._last_mem_direction: Optional[MemDirection] = None
        self._last_mem_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def run(self, instrs) -> None:
        """Execute a sequence of instructions, one per cycle."""
        for instr in instrs:
            self.step(instr)

    def step(self, instr: Instr) -> None:
        """Execute one instruction cycle."""
        self._begin_cycle()
        op = instr.op
        if isinstance(op, NopOp) or (isinstance(op, MAOp) and op.is_dummy):
            reason = op.reason if isinstance(op, NopOp) else "dummy-ma"
            self.stats.note_stall(reason)
        elif isinstance(op, LoadOp):
            self._do_load(instr)
        elif isinstance(op, MAOp):
            self._do_multiply_add(instr)
        elif isinstance(op, StoreOp):
            self._do_store(instr)
        else:  # pragma: no cover - exhaustiveness guard
            raise ScheduleError(f"unknown op {op!r}")
        self.cycle += 1
        self.stats.cycles += 1

    def stall(self, cycles: int, reason: str = "sequencer") -> None:
        """Advance time without issuing instructions (sequencer overhead).

        Pipeline events (writebacks, adds) continue to land.
        """
        for _ in range(cycles):
            self._begin_cycle()
            self.stats.note_stall(reason)
            self.cycle += 1
            self.stats.cycles += 1

    def drain(self) -> int:
        """Advance until all pending pipeline events have landed.

        Returns the number of drain cycles consumed.
        """
        drained = 0
        while self._pending_writes or self._add_events:
            self._begin_cycle()
            self.stats.note_stall("drain")
            self.cycle += 1
            self.stats.cycles += 1
            drained += 1
        for thread, open_ in self._chain_open.items():
            if open_:
                raise ScheduleError(
                    f"thread {thread} ends with an unclosed multiply-add chain"
                )
        return drained

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------

    def _begin_cycle(self) -> None:
        """Land writebacks and fire adds scheduled for this cycle.

        Writebacks apply at the start of their cycle, so a register read
        in the same cycle sees the *new* value; the "just barely" reuse
        the paper describes therefore requires reads to finish on the
        previous cycle, which the generated schedules do.
        """
        for reg, value in self._pending_writes.pop(self.cycle, ()):
            self.regs[reg] = value
            self.valid[reg] = True
        for event in self._add_events.pop(self.cycle, ()):
            self._fire_add(event)

    def _fire_add(self, event: _AddEvent) -> None:
        if event.first:
            base = self.regs[event.addend_reg]
        else:
            if not self._chain_open.get(event.thread):
                raise ScheduleError(
                    f"thread {event.thread}: chained add with no open chain"
                )
            base = self._chain_sum[event.thread]
        total = np.float32(base + event.product)
        if event.last:
            when = self.cycle + self.params.add_to_writeback_cycles
            self._pending_writes.setdefault(when, []).append(
                (event.dest_reg, total)
            )
            self._chain_open[event.thread] = False
        else:
            self._chain_sum[event.thread] = total
            self._chain_open[event.thread] = True

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------

    def _do_load(self, instr: Instr) -> None:
        op = instr.op
        self._check_reg(op.reg, "load destination")
        if op.reg == self.zero_reg or op.reg == self.unit_reg:
            raise ScheduleError(
                f"load into reserved register {op.reg} at cycle {self.cycle}"
            )
        self._touch_memory(MemDirection.READ)
        value = self.memory.read(instr.mem)
        when = self.cycle + self.params.load_latency
        self._pending_writes.setdefault(when, []).append((op.reg, value))
        self.stats.loads += 1

    def _do_multiply_add(self, instr: Instr) -> None:
        op = instr.op
        self._check_reg(op.data_reg, "multiply operand")
        self._check_reg(op.dest_reg, "multiply-add destination")
        if not self.valid[op.data_reg]:
            raise ScheduleError(
                f"multiply reads uninitialized register {op.data_reg} "
                f"at cycle {self.cycle}"
            )
        if op.dest_reg == self.zero_reg or op.dest_reg == self.unit_reg:
            raise ScheduleError(
                f"multiply-add writes reserved register {op.dest_reg} "
                f"at cycle {self.cycle}"
            )
        if op.first and self._chain_open.get(op.thread):
            raise ScheduleError(
                f"thread {op.thread}: new chain started while one is open "
                f"at cycle {self.cycle}"
            )
        self._touch_memory(MemDirection.READ)
        coeff_value = self.memory.read(instr.mem)
        product = np.float32(coeff_value * self.regs[op.data_reg])
        when = self.cycle + self.params.mult_to_add_cycles
        self._add_events.setdefault(when, []).append(
            _AddEvent(
                thread=op.thread,
                product=product,
                first=op.first,
                last=op.last,
                addend_reg=self.zero_reg,
                dest_reg=op.dest_reg,
            )
        )
        if op.first:
            # The chain officially opens when its first add fires, but we
            # mark it now so a same-thread protocol violation two cycles
            # later is still caught.
            self._chain_open[op.thread] = True
            self._chain_sum[op.thread] = np.float32(0.0)
        self.stats.ma_issues += 1

    def _do_store(self, instr: Instr) -> None:
        op = instr.op
        self._check_reg(op.reg, "store source")
        if not self.valid[op.reg]:
            raise ScheduleError(
                f"store reads uninitialized register {op.reg} "
                f"at cycle {self.cycle}"
            )
        if self._write_pending_for(op.reg):
            raise ScheduleError(
                f"store of register {op.reg} at cycle {self.cycle} precedes "
                "its pending writeback (result not yet drained)"
            )
        self._touch_memory(MemDirection.WRITE)
        self.memory.write(instr.mem, self.regs[op.reg])
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_reg(self, reg: int, what: str) -> None:
        if not 0 <= reg < self.params.registers:
            raise ScheduleError(
                f"{what} register {reg} outside the register file "
                f"at cycle {self.cycle}"
            )

    def _write_pending_for(self, reg: int) -> bool:
        return any(
            pending_reg == reg
            for writes in self._pending_writes.values()
            for pending_reg, _ in writes
        )

    def _touch_memory(self, direction: MemDirection) -> None:
        if (
            self._last_mem_direction is not None
            and direction is not self._last_mem_direction
        ):
            gap = self.cycle - self._last_mem_cycle - 1
            if gap < self.params.pipe_reversal_penalty:
                raise ScheduleError(
                    f"memory pipe reversed at cycle {self.cycle} with only "
                    f"{gap} intervening cycles "
                    f"(need {self.params.pipe_reversal_penalty})"
                )
        self._last_mem_direction = direction
        self._last_mem_cycle = self.cycle
