"""The dynamic-part instruction set shared by the compiler and the FPU.

The CM-2 splits floating-point instructions into a *static part* (the
operation code, latched once) and *dynamic parts* (register load/store
control and addresses, streamed cycle by cycle from sequencer scratch
memory).  The convolution compiler fixes the static part to "chained
multiply-add" for a whole half-strip and generates only dynamic parts
(section 4.3).

This module defines those dynamic parts in two flavours:

* **Abstract ops** (:class:`LoadOp`, :class:`MAOp`, :class:`StoreOp`,
  :class:`NopOp`) -- what the compiler emits.  Positions are relative to
  the current line (``row``/``col`` offsets from the line's base point);
  coefficients are symbolic.  One op corresponds to exactly one machine
  cycle.
* **Concrete instructions** (:class:`Instr` with a resolved
  :class:`MemRef`) -- what the sequencer produces by filling in run-time
  addresses, and what the FPU model executes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..stencil.pattern import Coefficient

#: Buffer name of the constant 1.0 page streamed for unit coefficients.
ONES_BUFFER = "__ones__"


def const_buffer_name(value: float) -> str:
    """Buffer name of the constant page holding a scalar coefficient."""
    return f"__const_{float(value)!r}__"


class MemDirection(enum.Enum):
    """Direction of a memory/interface-pipe transfer."""

    READ = "read"
    WRITE = "write"


# ----------------------------------------------------------------------
# Abstract ops (compiler output; positions relative to the line base)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoadOp:
    """Load the source element at line-relative ``(row, col)`` into ``reg``.

    ``row``/``col`` are offsets from the line's base point (the leftmost
    result position of the line); the sequencer adds the run-time base.

    ``buffer`` is None for the primary (padded) source; fused extra-term
    loads name their own source array, addressed without halo padding
    (extra terms read only offset (0, 0)).
    """

    reg: int
    row: int
    col: int
    buffer: Optional[str] = None


@dataclass(frozen=True)
class MAOp:
    """One chained multiply-add cycle.

    ``product = coeff_value * regs[data_reg]``; the add chains with the
    same thread's previous product, or with ``regs[addend_reg]`` when
    ``first`` is set; when ``last`` is set the chain's sum is written to
    ``dest_reg`` four cycles after this issue.

    ``result_col`` is the line-relative column of the result being
    accumulated (used to address the coefficient array); dummy ops (the
    zero-times-zero-plus-zero filler the hardware forces during
    non-compute cycles) have ``is_dummy`` set and target the zero
    register.
    """

    coeff: Coefficient
    data_reg: int
    dest_reg: int
    thread: int
    first: bool
    last: bool
    result_col: int
    is_dummy: bool = False


@dataclass(frozen=True)
class StoreOp:
    """Store the accumulated result for line-relative column ``result_col``
    from ``reg`` to the result array."""

    reg: int
    result_col: int


@dataclass(frozen=True)
class NopOp:
    """A cycle with no memory traffic: pipeline fill, drain, or reversal
    stall.  (On the real machine this is a dummy multiply-add into the
    zero register; numerically it is a no-op.)

    ``reason`` is kept for cycle-accounting introspection.
    """

    reason: str = "stall"


AbstractOp = Union[LoadOp, MAOp, StoreOp, NopOp]


# ----------------------------------------------------------------------
# Concrete instructions (sequencer output; FPU input)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MemRef:
    """A resolved node-memory address: a named buffer plus 2-D indices."""

    buffer: str
    row: int
    col: int


@dataclass(frozen=True)
class Instr:
    """One executed cycle: the abstract op plus its resolved address.

    ``mem`` is the address touched this cycle: the loaded element for
    loads, the streamed coefficient for multiply-adds, the stored result
    for stores; None for pure stalls.
    """

    op: AbstractOp
    mem: Optional[MemRef]

    @property
    def direction(self) -> Optional[MemDirection]:
        if isinstance(self.op, (LoadOp, MAOp)):
            return MemDirection.READ if self.mem is not None else None
        if isinstance(self.op, StoreOp):
            return MemDirection.WRITE
        return None
