"""The hypercube network and the node-grid communication primitive.

Paper section 3: the processors "communicate through a router mechanism
that forwards messages through a network that is logically structured
as a 16-dimensional boolean hypercube"; the 2,048 nodes form an
11-dimensional hypercube with doubled-bandwidth edges.  Section 4.1:
previous grid primitives moved one datum to one neighbor at a time; the
new primitive "organizes nodes, not processors, into a two-dimensional
grid, and allows each node to pass data to all four neighbors
simultaneously", with the grid "embedded within the hypercube topology
in such a way that grid neighbors are hypercube neighbors, thereby
making effective use of the network".

This module makes that story executable: dimension-ordered routing over
the node hypercube, transfer scheduling with per-edge serialization,
and the four-neighbor exchange built on top.  The halo layer's
closed-form cost model (`repro.runtime.halo.exchange_cost`) is the fast
path; :func:`exchange_route_cost` derives the same quantity from actual
routed transfers, and the tests pin the two to each other -- and show
what breaks when the embedding is *not* neighbor-preserving (each grid
hop becomes a multi-wire route and the exchange serializes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .geometry import NodeCoord, all_coords, grid_shape, node_address
from .params import MachineParams

#: An embedding maps a grid coordinate to a hypercube address.
Embedding = Callable[[int, int, Tuple[int, int]], int]


def gray_embedding(row: int, col: int, shape: Tuple[int, int]) -> int:
    """The production embedding: Gray-coded rows and columns, so every
    grid step flips exactly one address bit."""
    return node_address(row, col, shape)


def binary_embedding(row: int, col: int, shape: Tuple[int, int]) -> int:
    """The naive embedding (the ablation): plain binary concatenation.

    Stepping across a power-of-two boundary flips many bits, so grid
    neighbors can be several hypercube hops apart.
    """
    rows, _ = shape
    row_bits = (rows - 1).bit_length()
    return (col << row_bits) | row


def route(source: int, destination: int) -> List[Tuple[int, int]]:
    """Dimension-ordered (e-cube) route between two hypercube addresses.

    Returns the wire hops as (from, to) pairs, correcting address bits
    from the lowest dimension upward -- the classic deadlock-free order.
    """
    hops: List[Tuple[int, int]] = []
    current = source
    difference = source ^ destination
    dimension = 0
    while difference:
        if difference & 1:
            nxt = current ^ (1 << dimension)
            hops.append((current, nxt))
            current = nxt
        difference >>= 1
        dimension += 1
    return hops


@dataclass(frozen=True)
class Transfer:
    """One node-to-node message of ``words`` 32-bit words."""

    source: int
    destination: int
    words: int


@dataclass(frozen=True)
class RoutedCost:
    """The outcome of scheduling a set of transfers on the hypercube.

    Attributes:
        max_hops: longest route among the transfers.
        busiest_wire_words: words carried by the most-loaded directed
            wire -- with per-edge serialization this bounds the transfer
            time of the whole synchronous step.
        total_wire_words: aggregate word-hops (network energy/traffic).
    """

    max_hops: int
    busiest_wire_words: int
    total_wire_words: int

    def cycles(self, params: MachineParams) -> int:
        """Time for the synchronous exchange step.

        All wires run in parallel; the step completes when the busiest
        wire drains, plus the fixed startup.
        """
        return params.comm_startup_cycles + int(
            params.comm_cycles_per_element * self.busiest_wire_words
        )


def schedule_transfers(transfers: Iterable[Transfer]) -> RoutedCost:
    """Route every transfer and accumulate per-wire load."""
    wire_load: Dict[Tuple[int, int], int] = {}
    max_hops = 0
    total = 0
    for transfer in transfers:
        hops = route(transfer.source, transfer.destination)
        max_hops = max(max_hops, len(hops))
        for wire in hops:
            wire_load[wire] = wire_load.get(wire, 0) + transfer.words
            total += transfer.words
    busiest = max(wire_load.values(), default=0)
    return RoutedCost(
        max_hops=max_hops,
        busiest_wire_words=busiest,
        total_wire_words=total,
    )


def four_neighbor_transfers(
    shape: Tuple[int, int],
    subgrid_shape: Tuple[int, int],
    pad: int,
    embedding: Embedding = gray_embedding,
) -> List[Transfer]:
    """The edge-exchange traffic: every node sends ``pad`` rows/columns
    to each of its four torus neighbors simultaneously."""
    rows, cols = subgrid_shape
    transfers: List[Transfer] = []
    for coord in all_coords(shape):
        here = embedding(coord.row, coord.col, shape)
        for direction, neighbor in coord.neighbors(shape).items():
            words = pad * (cols if direction in ("N", "S") else rows)
            there = embedding(neighbor.row, neighbor.col, shape)
            if here == there:
                continue  # single-row/column torus: data stays put
            transfers.append(
                Transfer(source=here, destination=there, words=words)
            )
    return transfers


def corner_transfers(
    shape: Tuple[int, int],
    pad: int,
    embedding: Embedding = gray_embedding,
) -> List[Transfer]:
    """The third-step traffic: pad x pad corners to diagonal neighbors."""
    transfers: List[Transfer] = []
    for coord in all_coords(shape):
        here = embedding(coord.row, coord.col, shape)
        for neighbor in coord.diagonal_neighbors(shape).values():
            there = embedding(neighbor.row, neighbor.col, shape)
            if here == there:
                continue
            transfers.append(
                Transfer(source=here, destination=there, words=pad * pad)
            )
    return transfers


def exchange_route_cost(
    params: MachineParams,
    subgrid_shape: Tuple[int, int],
    pad: int,
    *,
    include_corners: bool = False,
    embedding: Embedding = gray_embedding,
) -> RoutedCost:
    """Cost of one whole halo exchange derived from routed transfers.

    With the Gray embedding every edge transfer is a single hop, the
    four directions use disjoint wires, and the busiest wire carries
    ``pad * max(subgrid dims)`` words -- reproducing the closed-form
    model of :func:`repro.runtime.halo.exchange_cost` from first
    principles.  Corner traffic (two hops) is scheduled as a separate
    step, as in the paper.
    """
    shape = grid_shape(params.num_nodes)
    edge = schedule_transfers(
        four_neighbor_transfers(shape, subgrid_shape, pad, embedding)
    )
    if not include_corners:
        return edge
    corners = schedule_transfers(corner_transfers(shape, pad, embedding))
    return RoutedCost(
        max_hops=max(edge.max_hops, corners.max_hops),
        busiest_wire_words=edge.busiest_wire_words
        + corners.busiest_wire_words,
        total_wire_words=edge.total_wire_words + corners.total_wire_words,
    )
