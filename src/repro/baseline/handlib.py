"""The 1989 hand-coded convolution library (the 5.6-Gflops lineage).

The Gordon Bell 1989 code used "library routines that were carefully
coded at a low level ... general enough to be used by many users, but
each library routine performs a fixed pattern of computation" (paper
section 1).  The convolution compiler generalizes and *improves* those
techniques; this module models the original library as the comparison
point:

* only a fixed menu of stencil patterns (the 5-point and 9-point crosses
  used by the seismic code);
* a fixed multistencil width of 4 (no per-pattern width search);
* no LCM unrolling of register access patterns, so each line pays
  register-shuffling moves (the compiler's unrolling exists precisely
  "to avoid register shuffling");
* the pre-recoding run-time library (no strength reduction in the
  front-end inner loops).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..compiler.driver import compile_stencil
from ..compiler.plan import CompiledStencil
from ..machine.params import MachineParams
from ..stencil import gallery
from ..stencil.pattern import StencilPattern

#: The fixed patterns the 1989 library shipped.
LIBRARY_PATTERNS: Dict[str, StencilPattern] = {}


def _library() -> Dict[str, StencilPattern]:
    if not LIBRARY_PATTERNS:
        for pattern in (gallery.cross5(), gallery.cross9()):
            LIBRARY_PATTERNS[pattern.name] = pattern
    return LIBRARY_PATTERNS


class UnsupportedPattern(KeyError):
    """The hand library has no routine for this pattern -- the paper's
    core motivation: 'the class of stencil patterns is so large that we
    believe it is more effective to allow users to express them as
    program fragments than to provide a large selection of library
    routines.'"""


def handlib_params(params: Optional[MachineParams] = None) -> MachineParams:
    """Machine parameters as the 1989 library experienced them.

    Register shuffling (no unrolled access patterns) adds per-line
    sequencer work, and the run-time library predates the strength-
    reduction recoding.
    """
    params = params or MachineParams()
    return replace(
        params,
        sequencer_line_overhead=params.sequencer_line_overhead + 24,
        host_overhead_recoded=False,
    )


def compile_library_routine(
    name: str, params: Optional[MachineParams] = None
) -> CompiledStencil:
    """'Select' a library routine: compile its fixed pattern with the
    1989 library's fixed width-4 strategy and overheads.

    Raises:
        UnsupportedPattern: the library has no routine of that name.
    """
    library = _library()
    if name not in library:
        raise UnsupportedPattern(
            f"the 1989 library has no {name!r} routine "
            f"(available: {sorted(library)})"
        )
    return compile_stencil(
        library[name], handlib_params(params), widths=(4, 2, 1)
    )
