"""Baselines and reference semantics."""

from .cmfortran import (
    FIELDWISE_COSTS,
    CmFortranCosts,
    CmFortranRun,
    count_operations,
    run_cmfortran,
)
from .handlib import (
    UnsupportedPattern,
    compile_library_routine,
    handlib_params,
)
from .reference import (
    evaluate_assignment,
    evaluate_expr,
    reference_stencil,
    shift_by_offset,
    tap_data,
)

__all__ = [
    "CmFortranCosts",
    "FIELDWISE_COSTS",
    "CmFortranRun",
    "UnsupportedPattern",
    "compile_library_routine",
    "count_operations",
    "evaluate_assignment",
    "evaluate_expr",
    "handlib_params",
    "reference_stencil",
    "run_cmfortran",
    "shift_by_offset",
    "tap_data",
]
