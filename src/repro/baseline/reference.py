"""Pure-numpy reference semantics: the correctness oracle.

Two independent evaluators:

* :func:`reference_stencil` evaluates a recognized
  :class:`~repro.stencil.pattern.StencilPattern` tap by tap, in
  statement order, with float32 rounding after every multiply and add --
  the same accumulation semantics as the simulated machine, so compiled
  results must match *bit for bit*.
* :func:`evaluate_assignment` interprets the parsed Fortran AST directly
  (true CSHIFT/EOSHIFT array semantics, no stencil recognition at all),
  cross-validating the recognizer: recognizing a statement and running
  its pattern must agree with simply executing the statement.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..fortran.ast_nodes import (
    Assignment,
    BinOp,
    Call,
    Expr,
    IntLit,
    Name,
    RealLit,
    UnaryOp,
)
from ..stencil.offsets import (
    BoundaryMode,
    Shift,
    ShiftKind,
    apply_shift_chain,
)
from ..stencil.pattern import CoeffKind, StencilPattern, Tap


def shift_by_offset(
    x: np.ndarray,
    offset,
    boundary: Mapping[int, BoundaryMode],
    fill_value: float,
    plane_dims=(1, 2),
) -> np.ndarray:
    """Shift an array so position (i, j) reads ``x[i+dy, j+dx]``.

    Used for taps built directly from offsets (no recorded intrinsic
    chain); equivalent to composing CSHIFTs (or EOSHIFTs for FILL
    dimensions).
    """
    dy, dx = offset
    shifts = []
    for dim, amount in ((plane_dims[0], dy), (plane_dims[1], dx)):
        if amount == 0:
            continue
        mode = boundary.get(dim, BoundaryMode.CIRCULAR)
        kind = ShiftKind.CSHIFT if mode is BoundaryMode.CIRCULAR else ShiftKind.EOSHIFT
        shifts.append(Shift(kind=kind, dim=dim, amount=amount, boundary=fill_value))
    return apply_shift_chain(x, shifts)


def tap_data(
    tap: Tap, pattern: StencilPattern, x: np.ndarray
) -> np.ndarray:
    """The shifted data array a tap reads."""
    if tap.shifts:
        return apply_shift_chain(x, tap.shifts)
    return shift_by_offset(
        x, tap.offset, pattern.boundary, pattern.fill_value, pattern.plane_dims
    )


def reference_stencil(
    pattern: StencilPattern,
    x: np.ndarray,
    coefficients: Optional[Dict[str, np.ndarray]] = None,
    dtype=np.float32,
) -> np.ndarray:
    """Evaluate a stencil pattern with exact global array semantics.

    Accumulation follows statement (tap) order with ``dtype`` rounding
    after each operation, matching the chained multiply-add.
    """
    coefficients = coefficients or {}
    x = np.asarray(x, dtype=dtype)
    acc = np.zeros_like(x)
    for tap in pattern.taps:
        coeff = _coefficient_array(tap, coefficients, x.shape, dtype)
        if tap.is_constant_term:
            product = coeff
        else:
            data = tap_data(tap, pattern, x)
            product = (coeff * data).astype(dtype) if coeff is not None else data
        acc = (acc + product).astype(dtype)
    return acc


def _coefficient_array(tap, coefficients, shape, dtype):
    coeff = tap.coeff
    if coeff.kind is CoeffKind.ARRAY:
        if coeff.name not in coefficients:
            raise KeyError(f"missing coefficient array {coeff.name!r}")
        array = np.asarray(coefficients[coeff.name], dtype=dtype)
        if tuple(array.shape) != tuple(shape):
            raise ValueError(
                f"coefficient {coeff.name!r} shape {array.shape} != {shape}"
            )
        return array
    if coeff.kind is CoeffKind.SCALAR:
        return np.full(shape, coeff.value, dtype=dtype)
    return None  # unit coefficient: multiply by 1.0 is the identity


# ----------------------------------------------------------------------
# Direct AST interpretation (the recognizer's oracle)
# ----------------------------------------------------------------------


def evaluate_expr(expr: Expr, env: Mapping[str, np.ndarray], dtype=np.float32):
    """Interpret a Fortran expression over whole arrays."""
    if isinstance(expr, Name):
        if expr.ident not in env:
            raise KeyError(f"unbound array {expr.ident!r}")
        return np.asarray(env[expr.ident], dtype=dtype)
    if isinstance(expr, IntLit):
        return dtype(expr.value)
    if isinstance(expr, RealLit):
        return dtype(expr.value)
    if isinstance(expr, UnaryOp):
        value = evaluate_expr(expr.operand, env, dtype)
        return -value if expr.op == "-" else value
    if isinstance(expr, BinOp):
        left = evaluate_expr(expr.left, env, dtype)
        right = evaluate_expr(expr.right, env, dtype)
        if expr.op == "+":
            return (left + right).astype(dtype)
        if expr.op == "-":
            return (left - right).astype(dtype)
        if expr.op == "*":
            return (left * right).astype(dtype)
        if expr.op == "/":
            return (left / right).astype(dtype)
        raise ValueError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Call):
        return _evaluate_call(expr, env, dtype)
    raise TypeError(f"cannot evaluate {expr!r}")


def _evaluate_call(call: Call, env, dtype):
    if call.func not in ("CSHIFT", "EOSHIFT"):
        raise ValueError(f"unsupported intrinsic {call.func}")
    array = evaluate_expr(call.args[0], env, dtype)
    positional = [evaluate_expr(a, env, dtype) for a in call.args[1:]]
    kwargs = {k: evaluate_expr(v, env, dtype) for k, v in call.kwargs}
    # Paper convention: positional extras are (dim, shift).
    dim = int(positional[0]) if positional else int(kwargs["DIM"])
    amount = (
        int(positional[1]) if len(positional) > 1 else int(kwargs["SHIFT"])
    )
    boundary = 0.0
    if call.func == "EOSHIFT":
        if len(positional) > 2:
            boundary = float(positional[2])
        elif "BOUNDARY" in kwargs:
            boundary = float(kwargs["BOUNDARY"])
    kind = ShiftKind.CSHIFT if call.func == "CSHIFT" else ShiftKind.EOSHIFT
    return apply_shift_chain(
        array, [Shift(kind=kind, dim=dim, amount=amount, boundary=boundary)]
    )


def evaluate_assignment(
    assignment: Assignment, env: Mapping[str, np.ndarray], dtype=np.float32
) -> np.ndarray:
    """Execute a parsed assignment statement; returns the new value of
    its target array (the environment is not mutated)."""
    return evaluate_expr(assignment.expr, env, dtype)
