"""The stock slicewise CM Fortran execution model (the ~4-Gflops baseline).

Without the convolution compiler, CM Fortran evaluates a stencil
statement operation by operation: each CSHIFT materializes a shifted
temporary (grid communication plus a full-array copy), and each
multiply/add is a separate elementwise pass over memory in vector
batches of 4.  "This new target machine model for the CM-2 routinely
allows Fortran users to achieve execution rates of around 4 gigaflops"
(paper section 3) -- the comparison point the convolution compiler beats
by 2.5-3.5x.

The model charges per-point costs per elementwise pass and per shift;
numerics are computed with the same reference semantics (the stock
compiler computes the same values, just slower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..machine.params import MachineParams
from ..stencil.pattern import CoeffKind, StencilPattern
from .reference import reference_stencil


@dataclass(frozen=True)
class CmFortranCosts:
    """Per-point cycle costs of the stock slicewise code generator.

    An elementwise pass streams operands and results through memory in
    vector batches of 4; with the two-cycle register load/store of the
    interface chip, a two-operand pass costs about 3 cycles per point
    (two loads and a store, overlapped with arithmetic).  A CSHIFT costs
    a pass plus the NEWS communication of the off-node edge.
    """

    cycles_per_elementwise_point: float = 3.0
    cycles_per_shift_point: float = 3.0
    shift_comm_startup: int = 250


#: The pre-slicewise ("fieldwise") execution model of paper section 3:
#: floating-point data stored one number per bit-serial processor, so
#: every FPU operand passes through the transposer chip and work is
#: forced into batches of 32.  Each elementwise pass pays roughly the
#: transpose on both operands and the result (about 3x the slicewise
#: per-point cost) -- which is why the slicewise compiler's ~4 Gflops
#: was itself news, and what the convolution compiler builds on.
FIELDWISE_COSTS = CmFortranCosts(
    cycles_per_elementwise_point=9.0,
    cycles_per_shift_point=5.0,
    shift_comm_startup=250,
)


@dataclass(frozen=True)
class CmFortranRun:
    """The stock compiler's modeled execution of one stencil statement."""

    pattern: StencilPattern
    subgrid_shape: Tuple[int, int]
    num_nodes: int
    iterations: int
    cycles_per_iteration: int
    host_seconds_per_iteration: float
    params: MachineParams
    result: Optional[np.ndarray] = None

    @property
    def seconds_per_iteration(self) -> float:
        return (
            self.params.seconds(self.cycles_per_iteration)
            + self.host_seconds_per_iteration
        )

    @property
    def elapsed_seconds(self) -> float:
        return self.iterations * self.seconds_per_iteration

    @property
    def useful_flops(self) -> int:
        rows, cols = self.subgrid_shape
        return (
            rows
            * cols
            * self.num_nodes
            * self.iterations
            * self.pattern.useful_flops_per_point()
        )

    @property
    def mflops(self) -> float:
        return self.useful_flops / self.elapsed_seconds / 1e6

    @property
    def gflops(self) -> float:
        return self.mflops / 1e3


def count_operations(pattern: StencilPattern) -> Tuple[int, int]:
    """(elementwise passes, shift calls) the stock compiler executes.

    Each term costs one multiply pass (unless it is a bare data or bare
    constant term) and one add pass (except the first term, which simply
    initializes the accumulation); each term's shift chain costs one
    CSHIFT call per intrinsic in the source (a composed corner reference
    like ``CSHIFT(CSHIFT(X,1,-1),2,-1)`` is two calls).
    """
    passes = 0
    shifts = 0
    for index, tap in enumerate(pattern.taps):
        has_multiply = (
            not tap.is_constant_term and tap.coeff.kind is not CoeffKind.UNIT
        )
        if has_multiply:
            passes += 1
        if index > 0:
            passes += 1
        if tap.shifts:
            shifts += len(tap.shifts)
        elif tap.reads_data:
            shifts += sum(1 for d in tap.offset if d != 0)
    return passes, shifts


def run_cmfortran(
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    params: Optional[MachineParams] = None,
    *,
    iterations: int = 1,
    x: Optional[np.ndarray] = None,
    coefficients: Optional[Dict[str, np.ndarray]] = None,
    costs: CmFortranCosts = CmFortranCosts(),
) -> CmFortranRun:
    """Model the stock compiler executing a stencil statement.

    If ``x`` (a global array) is given, the numeric result is attached.
    """
    params = params or MachineParams()
    rows, cols = subgrid_shape
    points = rows * cols
    passes, shifts = count_operations(pattern)
    cycles = int(
        points * passes * costs.cycles_per_elementwise_point
        + points * shifts * costs.cycles_per_shift_point
        + shifts * costs.shift_comm_startup
    )
    # The stock code generator issues one macro-instruction per pass and
    # per shift; host cost scales with the operation count, not with
    # half-strips.
    host = params.host_fixed_s + (passes + shifts) * params.host_halfstrip_s
    result = None
    if x is not None:
        result = reference_stencil(pattern, x, coefficients)
    return CmFortranRun(
        pattern=pattern,
        subgrid_shape=subgrid_shape,
        num_nodes=params.num_nodes,
        iterations=iterations,
        cycles_per_iteration=cycles,
        host_seconds_per_iteration=host,
        params=params,
        result=result,
    )
