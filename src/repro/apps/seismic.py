"""The Gordon Bell finite-difference seismic model (paper section 7).

"The computation in the code that won the Gordon Bell prize consisted of
a nine-point cross stencil plus an additional term from two time steps
before the current one.  This tenth term was added in separately."

Physics: the 2-D acoustic wave equation with a fourth-order spatial
discretization, time-stepped by leapfrog::

    P(t+1) = S(P(t)) + C10 * P(t-1)

where ``S`` is the 9-point (radius-2) cross whose coefficient arrays
encode ``2 - 5*lam(x)`` at the center and the classic fourth-order
Laplacian weights ``(4/3) lam`` and ``(-1/12) lam`` on the arms, with
``lam = (v * dt / dx)**2`` from the velocity model, and ``C10 = -1``.

Mobil Oil's production velocity models are not available, so the model
ships a synthetic layered medium (the standard test configuration for
such kernels); the code path exercised is identical.

Both of the paper's main-loop formulations are implemented:

* :meth:`SeismicModel.run_copy_loop` -- stencil, add the tenth term, then
  two whole-array copies to shift the time-step data (11.62 Gflops in
  the paper);
* :meth:`SeismicModel.run_unrolled_loop` -- the main loop unrolled by
  three so the three time-level arrays exchange roles with no copying
  (14.88 Gflops in the paper).

The two produce bit-identical wavefields; only the time accounting
differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.codegen import ExtraTerm
from ..compiler.driver import compile_stencil
from ..compiler.fusion import FusedStencil, fuse
from ..compiler.plan import CompiledStencil
from ..stencil.pattern import Coefficient
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..runtime.cm_array import CMArray
from ..runtime.elementwise import add_scaled, copy_array
from ..runtime.stencil_op import apply_stencil
from ..stencil import gallery

#: Fourth-order central-difference weights for the second derivative,
#: offsets -2..+2, already divided by dx**2 (dx is folded into lam).
FD4_WEIGHTS = (-1.0 / 12.0, 4.0 / 3.0, -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0)


def layered_velocity(
    shape: Tuple[int, int],
    *,
    layers: Tuple[float, ...] = (1500.0, 2200.0, 3000.0, 4000.0),
) -> np.ndarray:
    """A synthetic layered velocity model (m/s), flat horizontal layers."""
    rows, cols = shape
    model = np.empty(shape, dtype=np.float32)
    band = max(1, rows // len(layers))
    for i in range(rows):
        model[i, :] = layers[min(i // band, len(layers) - 1)]
    return model


def ricker_wavelet(num_steps: int, dt: float, peak_hz: float = 12.0) -> np.ndarray:
    """A Ricker source wavelet, the standard seismic source signature."""
    t = np.arange(num_steps, dtype=np.float64) * dt - 1.0 / peak_hz
    arg = (np.pi * peak_hz * t) ** 2
    return ((1.0 - 2.0 * arg) * np.exp(-arg)).astype(np.float32)


@dataclass
class SeismicTiming:
    """Accumulated time/flop accounting over a run."""

    steps: int = 0
    machine_seconds: float = 0.0
    host_seconds: float = 0.0
    useful_flops: int = 0

    @property
    def elapsed_seconds(self) -> float:
        return self.machine_seconds + self.host_seconds

    @property
    def gflops(self) -> float:
        return self.useful_flops / self.elapsed_seconds / 1e9

    @property
    def mflops(self) -> float:
        return self.gflops * 1e3


class SeismicModel:
    """The seismic kernel on the simulated machine.

    Args:
        machine: the CM-2 to run on.
        global_shape: wavefield dimensions (must divide over the node grid).
        velocity: velocity model (m/s); defaults to the layered medium.
        dt: time step (s).
        dx: grid spacing (m).
        source: (row, col) of the source injection point, or None.
    """

    def __init__(
        self,
        machine: CM2,
        global_shape: Tuple[int, int],
        *,
        velocity: Optional[np.ndarray] = None,
        dt: float = 0.001,
        dx: float = 10.0,
        source: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.machine = machine
        self.global_shape = global_shape
        self.dt = dt
        self.dx = dx
        if velocity is None:
            velocity = layered_velocity(global_shape)
        if tuple(velocity.shape) != tuple(global_shape):
            raise ValueError(
                f"velocity shape {velocity.shape} != wavefield {global_shape}"
            )
        lam = np.asarray(velocity, dtype=np.float64) * dt / dx
        self.courant = float(lam.max())
        if self.courant > 0.60:
            raise ValueError(
                f"unstable configuration: Courant number {self.courant:.3f} "
                "exceeds the fourth-order leapfrog limit (~0.6); reduce dt"
            )
        self.pattern = gallery.cross9()
        self.compiled: CompiledStencil = compile_stencil(
            self.pattern, machine.params
        )
        self.coefficients = self._build_coefficients(lam * lam)
        self.c10 = CMArray.from_numpy(
            "C10", machine, np.full(global_shape, -1.0, dtype=np.float32)
        )
        # Three time levels; roles rotate.
        self.fields: List[CMArray] = [
            CMArray(name, machine, global_shape) for name in ("P0", "P1", "P2")
        ]
        self._scratch = CMArray("PSCRATCH", machine, global_shape)
        self.source = source
        self.timing = SeismicTiming()
        #: index of the current time level within ``fields``
        self._current = 1
        self._previous = 0
        #: receiver positions (row, col) sampled after every step
        self.receivers: List[Tuple[int, int]] = []
        #: recorded traces, one list of samples per receiver
        self.seismogram: List[List[float]] = []

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_coefficients(self, lam2: np.ndarray) -> Dict[str, CMArray]:
        """Coefficient arrays in the cross9 tap order.

        Tap order (gallery.cross): (-2,0), (-1,0), (0,-2), (0,-1), (0,0),
        (0,+1), (0,+2), (+1,0), (+2,0) named C1..C9.
        """
        lam2 = lam2.astype(np.float64)
        w_m2, w_m1, w_0, w_p1, w_p2 = FD4_WEIGHTS
        arrays = {
            "C1": w_m2 * lam2,
            "C2": w_m1 * lam2,
            "C3": w_m2 * lam2,
            "C4": w_m1 * lam2,
            "C5": 2.0 + 2.0 * w_0 * lam2,  # 2 - 5*lam2: time + both axes
            "C6": w_p1 * lam2,
            "C7": w_p2 * lam2,
            "C8": w_p1 * lam2,
            "C9": w_p2 * lam2,
        }
        return {
            name: CMArray.from_numpy(
                name, self.machine, values.astype(np.float32)
            )
            for name, values in arrays.items()
        }

    def inject_source(self, amplitude: float) -> None:
        """Add a source sample at the injection point of the current field."""
        if self.source is None:
            return
        row, col = self.source
        field = self.fields[self._current]
        decomposition = field.decomposition
        sr, sc = decomposition.subgrid_shape
        node = self.machine.node(row // sr, col // sc)
        node.memory.buffer(field.name)[row % sr, col % sc] += np.float32(
            amplitude
        )

    def place_receivers(self, positions: Sequence[Tuple[int, int]]) -> None:
        """Install a receiver line: the wavefield is sampled at these
        points after every time step, building a seismogram."""
        rows, cols = self.global_shape
        for (r, c) in positions:
            if not (0 <= r < rows and 0 <= c < cols):
                raise ValueError(f"receiver ({r}, {c}) outside the grid")
        self.receivers = list(positions)
        self.seismogram = [[] for _ in self.receivers]

    def _sample_receivers(self, field_index: int) -> None:
        if not self.receivers:
            return
        field = self.fields[field_index]
        sr, sc = field.decomposition.subgrid_shape
        for trace, (r, c) in zip(self.seismogram, self.receivers):
            node = self.machine.node(r // sr, c // sc)
            trace.append(
                float(node.memory.buffer(field.name)[r % sr, c % sc])
            )

    def seismogram_array(self) -> np.ndarray:
        """The recorded traces as a (receivers, samples) array."""
        return np.array(self.seismogram, dtype=np.float32)

    def set_initial_pulse(self, *, sigma: float = 4.0, amplitude: float = 1.0) -> None:
        """A Gaussian initial condition (an alternative to a wavelet source)."""
        rows, cols = self.global_shape
        center = self.source or (rows // 2, cols // 2)
        yy, xx = np.mgrid[0:rows, 0:cols]
        pulse = amplitude * np.exp(
            -((yy - center[0]) ** 2 + (xx - center[1]) ** 2) / (2 * sigma**2)
        )
        self.fields[self._previous].set(pulse.astype(np.float32))
        self.fields[self._current].set(pulse.astype(np.float32))

    # ------------------------------------------------------------------
    # The two main-loop formulations
    # ------------------------------------------------------------------

    def _kernel(
        self, current: CMArray, previous: CMArray, out: CMArray
    ) -> None:
        """out = cross9(current) + C10 * previous, with accounting."""
        params = self.machine.params
        run = apply_stencil(
            self.compiled, current, self.coefficients, self._scratch
        )
        term = add_scaled(out, self._scratch, self.c10, previous, params)
        self.timing.steps += 1
        self.timing.machine_seconds += (
            run.machine_seconds_per_iteration + params.seconds(term.cycles)
        )
        self.timing.host_seconds += (
            run.host_seconds_per_iteration + term.host_seconds
        )
        points = self.global_shape[0] * self.global_shape[1]
        self.timing.useful_flops += points * (
            self.pattern.useful_flops_per_point() + 2
        )

    def run_copy_loop(self, steps: int, wavelet: Optional[np.ndarray] = None) -> SeismicTiming:
        """The straightforward main loop: kernel, then two copies to
        shift the time-step data (the paper's 11.62-Gflops version)."""
        params = self.machine.params
        p_prev, p_cur, p_new = self.fields
        for step in range(steps):
            if wavelet is not None and step < len(wavelet):
                self.inject_source(float(wavelet[step]))
            self._kernel(p_cur, p_prev, p_new)
            for move in (
                copy_array(p_prev, p_cur, params),
                copy_array(p_cur, p_new, params),
            ):
                self.timing.machine_seconds += params.seconds(move.cycles)
                self.timing.host_seconds += move.host_seconds
            self._sample_receivers(1)
        self._current, self._previous = 1, 0
        return self.timing

    def run_unrolled_loop(self, steps: int, wavelet: Optional[np.ndarray] = None) -> SeismicTiming:
        """The loop unrolled by three "so that the three variables could
        exchange roles without any need to copy data from place to
        place" (the paper's 14.88-Gflops version)."""
        roles = [0, 1, 2]  # previous, current, new indices into fields
        for step in range(steps):
            if wavelet is not None and step < len(wavelet):
                self._current = roles[1]
                self.inject_source(float(wavelet[step]))
            prev_i, cur_i, new_i = roles
            self._kernel(self.fields[cur_i], self.fields[prev_i], self.fields[new_i])
            self._sample_receivers(new_i)
            roles = [cur_i, new_i, prev_i]
        self._previous, self._current = roles[0], roles[1]
        return self.timing

    # ------------------------------------------------------------------
    # The paper's future work: all ten terms as one stencil pattern
    # ------------------------------------------------------------------

    def _fused_kernels(self) -> Dict[str, FusedStencil]:
        """One fused compilation per time-level role.

        The tenth term's source array name is part of the compiled
        register access patterns, so -- exactly like the paper's
        3x-unrolled loop -- the fused loop body exists in three copies,
        one per rotation of the time-level roles.
        """
        if not hasattr(self, "_fused_cache"):
            self._fused_cache = {
                field.name: fuse(
                    self.pattern,
                    [ExtraTerm(source=field.name, coeff=Coefficient.array("C10"))],
                    self.machine.params,
                )
                for field in self.fields
            }
        return self._fused_cache

    def run_fused_loop(
        self, steps: int, wavelet: Optional[np.ndarray] = None
    ) -> SeismicTiming:
        """All ten terms as one stencil pattern (paper section 7's
        "future versions of the compiler" -- implemented).

        The tenth term rides inside the microcode loop's multiply-add
        chains instead of a separate elementwise pass, removing that
        pass's memory traffic and host call entirely.  Bit-identical to
        the other two loops (same accumulation order: nine taps, then
        the fused term).
        """
        from ..runtime.stencil_op import apply_stencil

        kernels = self._fused_kernels()
        coefficients = dict(self.coefficients)
        coefficients["C10"] = self.c10
        roles = [0, 1, 2]
        points = self.global_shape[0] * self.global_shape[1]
        for step in range(steps):
            if wavelet is not None and step < len(wavelet):
                self._current = roles[1]
                self.inject_source(float(wavelet[step]))
            prev_i, cur_i, new_i = roles
            previous = self.fields[prev_i]
            run = apply_stencil(
                kernels[previous.name],
                self.fields[cur_i],
                coefficients,
                self.fields[new_i],
            )
            self.timing.steps += 1
            self.timing.machine_seconds += run.machine_seconds_per_iteration
            self.timing.host_seconds += run.host_seconds_per_iteration
            self.timing.useful_flops += points * (
                self.pattern.useful_flops_per_point() + 2
            )
            self._sample_receivers(new_i)
            roles = [cur_i, new_i, prev_i]
        self._previous, self._current = roles[0], roles[1]
        return self.timing

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def wavefield(self) -> np.ndarray:
        """The current wavefield, gathered to the host."""
        return self.fields[self._current].to_numpy()

    def reference_step(
        self, current: np.ndarray, previous: np.ndarray
    ) -> np.ndarray:
        """One kernel step with pure-numpy semantics (test oracle)."""
        from ..baseline.reference import reference_stencil

        coeffs = {
            name: array.to_numpy() for name, array in self.coefficients.items()
        }
        stencil = reference_stencil(self.pattern, current, coeffs)
        c10 = self.c10.to_numpy()
        return (stencil + (c10 * previous.astype(np.float32)).astype(np.float32)).astype(
            np.float32
        )
