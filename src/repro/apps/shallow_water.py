"""Linearized shallow-water equations: coupled fields, fused stencils.

A different usage pattern from the single-field kernels: three coupled
fields (surface height ``h``, velocities ``u`` and ``v``) advanced by
the forward-backward scheme,

    u' = u - (g dt / 2 dx) (h_E - h_W)
    v' = v - (g dt / 2 dx) (h_S - h_N)
    h' = h - (H dt / 2 dx) ((u'_E - u'_W) + (v'_S - v'_N)),

with each update compiled as a *fused* stencil: the shifted taps read
one field while the updated field itself rides as an extra (0, 0) term
with a streamed unit coefficient -- the paper's future-work fusion
carrying a real multi-field application.  The height update has shifted
taps on two different fields, so it splits into two fused applications
(``u`` contribution, then ``v`` contribution), exactly the kind of
statement the paper's section 9 says the stencil class should
generalize toward.

In-place updates are safe: the extra term reads offset (0, 0) only, and
within every half-strip a line's loads precede its stores while the
sweep never revisits a written row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..compiler.codegen import ExtraTerm
from ..compiler.fusion import FusedStencil, fuse
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..runtime.cm_array import CMArray
from ..runtime.stencil_op import apply_stencil
from ..stencil.pattern import Coefficient, StencilPattern, Tap

GRAVITY = 9.81


def _gradient_pattern(source: str, axis: int, factor: float, name: str) -> StencilPattern:
    """``-factor * (x_plus - x_minus)`` as two scalar taps over ``source``."""
    plus = (0, 1) if axis == 2 else (1, 0)
    minus = (0, -1) if axis == 2 else (-1, 0)
    taps = [
        Tap(offset=plus, coeff=Coefficient.scalar(-factor)),
        Tap(offset=minus, coeff=Coefficient.scalar(factor)),
    ]
    return StencilPattern(taps, source=source, name=name)


@dataclass
class ShallowWaterTiming:
    steps: int = 0
    elapsed_seconds: float = 0.0
    useful_flops: int = 0

    @property
    def mflops(self) -> float:
        return self.useful_flops / self.elapsed_seconds / 1e6


class ShallowWaterModel:
    """Forward-backward shallow-water dynamics on the simulated machine.

    Args:
        machine: the CM-2 to run on.
        global_shape: grid dimensions.
        depth: resting water depth H (m).
        dt: time step (s).
        dx: grid spacing (m).
    """

    def __init__(
        self,
        machine: CM2,
        global_shape: Tuple[int, int],
        *,
        depth: float = 100.0,
        dt: float = 1.0,
        dx: float = 1000.0,
    ) -> None:
        self.machine = machine
        self.global_shape = global_shape
        self.depth = depth
        self.dt = dt
        self.dx = dx
        wave_speed = float(np.sqrt(GRAVITY * depth))
        self.courant = wave_speed * dt / dx
        if self.courant > 0.7:
            raise ValueError(
                f"unstable: gravity-wave Courant number {self.courant:.3f} "
                "exceeds the forward-backward limit (~0.7); reduce dt"
            )
        params = machine.params
        g_factor = GRAVITY * dt / (2.0 * dx)
        h_factor = depth * dt / (2.0 * dx)

        def fused_update(base: StencilPattern, carried: str) -> FusedStencil:
            return fuse(
                base,
                [ExtraTerm(source=carried, coeff=Coefficient.scalar(1.0))],
                params,
            )

        self._u_update = fused_update(
            _gradient_pattern("H", 2, g_factor, "du"), "U"
        )
        self._v_update = fused_update(
            _gradient_pattern("H", 1, g_factor, "dv"), "V"
        )
        self._h_from_u = fused_update(
            _gradient_pattern("U", 2, h_factor, "dhu"), "H"
        )
        self._h_from_v = fused_update(
            _gradient_pattern("V", 1, h_factor, "dhv"), "H"
        )

        self.h = CMArray("H", machine, global_shape)
        self.u = CMArray("U", machine, global_shape)
        self.v = CMArray("V", machine, global_shape)
        self.timing = ShallowWaterTiming()

    # ------------------------------------------------------------------
    # Setup and inspection
    # ------------------------------------------------------------------

    def set_gaussian_bump(
        self, *, amplitude: float = 1.0, sigma: float = 6.0
    ) -> None:
        rows, cols = self.global_shape
        yy, xx = np.mgrid[0:rows, 0:cols]
        bump = amplitude * np.exp(
            -((yy - rows / 2) ** 2 + (xx - cols / 2) ** 2) / (2 * sigma**2)
        )
        self.h.set(bump.astype(np.float32))
        self.u.fill(0.0)
        self.v.fill(0.0)

    def fields(self) -> Dict[str, np.ndarray]:
        return {
            "h": self.h.to_numpy(),
            "u": self.u.to_numpy(),
            "v": self.v.to_numpy(),
        }

    def total_mass(self) -> float:
        """Domain sum of h: conserved by the periodic centered scheme."""
        return float(self.h.to_numpy().astype(np.float64).sum())

    def energy(self) -> float:
        """g h^2 + H (u^2 + v^2), summed: bounded for a stable scheme."""
        f = self.fields()
        return float(
            (
                GRAVITY * f["h"].astype(np.float64) ** 2
                + self.depth
                * (f["u"].astype(np.float64) ** 2 + f["v"].astype(np.float64) ** 2)
            ).sum()
        )

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _apply(self, compiled: FusedStencil, source: CMArray, out: CMArray) -> None:
        run = apply_stencil(compiled, source, {}, out)
        self.timing.elapsed_seconds += run.seconds_per_iteration
        self.timing.useful_flops += run.useful_flops

    def step(self, steps: int = 1) -> ShallowWaterTiming:
        """Advance the dynamics: velocities first, then the height from
        the *updated* velocities (the forward-backward ordering that
        buys the scheme its stability)."""
        for _ in range(steps):
            self._apply(self._u_update, self.h, self.u)
            self._apply(self._v_update, self.h, self.v)
            self._apply(self._h_from_u, self.u, self.h)
            self._apply(self._h_from_v, self.v, self.h)
            self.timing.steps += 1
        return self.timing

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------

    def reference_step(
        self, h: np.ndarray, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One step with plain numpy in the same float32 tap order."""
        f32 = np.float32
        g_factor = f32(GRAVITY * self.dt / (2.0 * self.dx))
        h_factor = f32(self.depth * self.dt / (2.0 * self.dx))

        def east(a):
            return np.roll(a, -1, 1)

        def west(a):
            return np.roll(a, 1, 1)

        def south(a):
            return np.roll(a, -1, 0)

        def north(a):
            return np.roll(a, 1, 0)

        u2 = (
            ((-g_factor) * east(h)).astype(f32)
            + (g_factor * west(h)).astype(f32)
        ).astype(f32)
        u2 = (u2 + (f32(1.0) * u).astype(f32)).astype(f32)
        v2 = (
            ((-g_factor) * south(h)).astype(f32)
            + (g_factor * north(h)).astype(f32)
        ).astype(f32)
        v2 = (v2 + (f32(1.0) * v).astype(f32)).astype(f32)
        h2 = (
            ((-h_factor) * east(u2)).astype(f32)
            + (h_factor * west(u2)).astype(f32)
        ).astype(f32)
        h2 = (h2 + (f32(1.0) * h).astype(f32)).astype(f32)
        h3 = (
            ((-h_factor) * south(v2)).astype(f32)
            + (h_factor * north(v2)).astype(f32)
        ).astype(f32)
        h3 = (h3 + (f32(1.0) * h2).astype(f32)).astype(f32)
        return h3, u2, v2
