"""Application kernels built on the public API."""

from .heat import HeatSolver, HeatTiming, heat_source
from .shallow_water import GRAVITY, ShallowWaterModel, ShallowWaterTiming
from .seismic import (
    FD4_WEIGHTS,
    SeismicModel,
    SeismicTiming,
    layered_velocity,
    ricker_wavelet,
)
from .wave import WaveSolver, WaveTiming, wave_defstencil

__all__ = [
    "FD4_WEIGHTS",
    "GRAVITY",
    "ShallowWaterModel",
    "ShallowWaterTiming",
    "HeatSolver",
    "HeatTiming",
    "SeismicModel",
    "SeismicTiming",
    "WaveSolver",
    "WaveTiming",
    "heat_source",
    "layered_velocity",
    "ricker_wavelet",
    "wave_defstencil",
]
