"""Second-order acoustic wave equation on the 5-point cross.

The simplest wave kernel: a uniform medium, the paper's opening 5-point
stencil with *scalar* coefficients, and the same two-time-level leapfrog
structure as the seismic model --

    P(t+1) = lam2 * (N + S + E + W) + (2 - 4*lam2) * P(t) - P(t-1)

expressed through the defstencil (Lisp) front end, so the example suite
exercises all three of the paper's interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..compiler.driver import compile_defstencil
from ..machine.machine import CM2
from ..runtime.cm_array import CMArray
from ..runtime.elementwise import add_scaled
from ..runtime.stencil_op import apply_stencil


def wave_defstencil(lam2: float) -> str:
    """The kernel as the paper's first-version Lisp interface."""
    center = 2.0 - 4.0 * lam2
    return (
        f"(defstencil wave5 (r p)\n"
        f"  (single-float single-float)\n"
        f"  (:= r (+ (* {lam2!r} (cshift p 1 -1))\n"
        f"           (* {lam2!r} (cshift p 2 -1))\n"
        f"           (* {center!r} p)\n"
        f"           (* {lam2!r} (cshift p 2 +1))\n"
        f"           (* {lam2!r} (cshift p 1 +1)))))"
    )


@dataclass
class WaveTiming:
    steps: int = 0
    elapsed_seconds: float = 0.0
    useful_flops: int = 0

    @property
    def mflops(self) -> float:
        return self.useful_flops / self.elapsed_seconds / 1e6


class WaveSolver:
    """Leapfrog acoustic waves in a periodic uniform medium."""

    def __init__(
        self,
        machine: CM2,
        global_shape: Tuple[int, int],
        *,
        courant: float = 0.5,
    ) -> None:
        if not 0.0 < courant <= 1.0 / np.sqrt(2.0):
            raise ValueError(
                f"courant {courant} outside the 2-D leapfrog stability "
                "limit 1/sqrt(2)"
            )
        self.machine = machine
        self.global_shape = global_shape
        self.lam2 = courant * courant
        self.compiled = compile_defstencil(
            wave_defstencil(self.lam2), machine.params
        )
        self.p_prev = CMArray("P", machine, global_shape)  # also the source name
        self.p_cur = CMArray("PCUR", machine, global_shape)
        self.scratch = CMArray("PNEW", machine, global_shape)
        self.minus_one = CMArray.from_numpy(
            "MINUSONE",
            machine,
            np.full(global_shape, -1.0, dtype=np.float32),
        )
        self.timing = WaveTiming()

    def set_standing_wave(self, kx: int = 1, ky: int = 1) -> None:
        """Initialize an exact standing-wave mode (analytic solution)."""
        rows, cols = self.global_shape
        yy, xx = np.mgrid[0:rows, 0:cols]
        mode = np.sin(2 * np.pi * ky * yy / rows) * np.sin(
            2 * np.pi * kx * xx / cols
        )
        mode = mode.astype(np.float32)
        self.p_prev.set(mode)
        self.p_cur.set(mode)

    def set_pulse(self, *, sigma: float = 3.0) -> None:
        rows, cols = self.global_shape
        yy, xx = np.mgrid[0:rows, 0:cols]
        pulse = np.exp(
            -((yy - rows // 2) ** 2 + (xx - cols // 2) ** 2) / (2 * sigma**2)
        ).astype(np.float32)
        self.p_prev.set(pulse)
        self.p_cur.set(pulse)

    def step(self, steps: int = 1) -> None:
        params = self.machine.params
        for _ in range(steps):
            # The stencil statement names its source P, so the current
            # field must live in the P buffer: rotate data through it.
            for node in self.machine.nodes():
                cur = node.memory.buffer(self.p_cur.name).copy()
                prev = node.memory.buffer(self.p_prev.name).copy()
                node.memory.buffer(self.p_prev.name)[:] = cur
                node.memory.buffer(self.p_cur.name)[:] = prev
            # Now p_prev holds current, p_cur holds previous.
            run = apply_stencil(self.compiled, self.p_prev, {}, self.scratch)
            term = add_scaled(
                self.p_cur, self.scratch, self.minus_one, self.p_cur, params
            )
            # p_cur now holds the new field; p_prev holds the old current.
            self.timing.steps += 1
            self.timing.elapsed_seconds += (
                run.seconds_per_iteration + term.seconds(params)
            )
            self.timing.useful_flops += run.useful_flops + (
                term.useful_flops_per_node * self.machine.num_nodes
            )

    def wavefield(self) -> np.ndarray:
        return self.p_cur.to_numpy()

    def energy(self) -> float:
        """Sum of squares of the field (a conserved-ish diagnostic for
        the lossless periodic medium)."""
        field = self.wavefield().astype(np.float64)
        return float((field * field).sum())
