"""Nine-point heat relaxation: the 3x3 square stencil as an application.

Jacobi relaxation of the 2-D heat equation with the classic 9-point
weights (4/20 on the edges, 1/20 on the corners, 0 at the center being
replaced, here blended with the current value by a relaxation factor).
The stencil statement is written as *Fortran source with scalar literal
coefficients*, exercising the front end's scalar-coefficient path and
the constant-page streaming of the simulated machine end to end.

Boundaries are Dirichlet (held at zero) via EOSHIFT, exercising the FILL
boundary mode of the halo exchange at the global array edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..compiler.driver import compile_fortran
from ..machine.machine import CM2
from ..runtime.cm_array import CMArray
from ..runtime.stencil_op import StencilRun, apply_stencil


def heat_source(statement_blend: float = 0.5, wall: float = 0.0) -> str:
    """The Fortran statement for one blended 9-point relaxation sweep.

    ``u' = (1-b) * u + b * (4*(N+S+E+W) + (NW+NE+SW+SE)) / 20``
    with the division folded into the literals.  ``wall`` is the Dirichlet
    boundary temperature, threaded through as the EOSHIFT BOUNDARY value.
    """
    blend = statement_blend
    edge = blend * 4.0 / 20.0
    corner = blend * 1.0 / 20.0
    center = 1.0 - blend
    w = f", {wall:.10f}"
    return (
        f"R = {corner:.10f} * EOSHIFT(EOSHIFT(U, 1, -1{w}), 2, -1{w}) &\n"
        f"  + {edge:.10f} * EOSHIFT(U, 1, -1{w}) &\n"
        f"  + {corner:.10f} * EOSHIFT(EOSHIFT(U, 1, -1{w}), 2, +1{w}) &\n"
        f"  + {edge:.10f} * EOSHIFT(U, 2, -1{w}) &\n"
        f"  + {center:.10f} * U &\n"
        f"  + {edge:.10f} * EOSHIFT(U, 2, +1{w}) &\n"
        f"  + {corner:.10f} * EOSHIFT(EOSHIFT(U, 1, +1{w}), 2, -1{w}) &\n"
        f"  + {edge:.10f} * EOSHIFT(U, 1, +1{w}) &\n"
        f"  + {corner:.10f} * EOSHIFT(EOSHIFT(U, 1, +1{w}), 2, +1{w})"
    )


@dataclass
class HeatTiming:
    steps: int = 0
    elapsed_seconds: float = 0.0
    useful_flops: int = 0

    @property
    def mflops(self) -> float:
        return self.useful_flops / self.elapsed_seconds / 1e6


class HeatSolver:
    """Jacobi relaxation on the simulated machine."""

    def __init__(
        self,
        machine: CM2,
        global_shape: Tuple[int, int],
        *,
        blend: float = 0.5,
        wall_temperature: float = 0.0,
        initial: Optional[np.ndarray] = None,
    ) -> None:
        if not 0.0 < blend <= 1.0:
            raise ValueError(f"blend must be in (0, 1], got {blend}")
        self.machine = machine
        self.global_shape = global_shape
        self.blend = blend
        self.wall_temperature = wall_temperature
        self.compiled = compile_fortran(
            heat_source(blend, wall_temperature), machine.params
        )
        self.u = CMArray("U", machine, global_shape)
        self.scratch = CMArray("UNEXT", machine, global_shape)
        if initial is not None:
            self.u.set(initial)
        self.timing = HeatTiming()

    def set_hot_spot(
        self, center: Optional[Tuple[int, int]] = None, *, radius: int = 3,
        temperature: float = 100.0,
    ) -> None:
        """Initialize a hot disc in a cold domain."""
        rows, cols = self.global_shape
        if center is None:
            center = (rows // 2, cols // 2)
        yy, xx = np.mgrid[0:rows, 0:cols]
        disc = (yy - center[0]) ** 2 + (xx - center[1]) ** 2 <= radius**2
        field = np.where(disc, temperature, 0.0).astype(np.float32)
        self.u.set(field)

    def step(self, sweeps: int = 1) -> StencilRun:
        """Run ``sweeps`` Jacobi sweeps; returns the last sweep's run."""
        run: Optional[StencilRun] = None
        for _ in range(sweeps):
            run = apply_stencil(self.compiled, self.u, {}, self.scratch)
            # Swap the role of the two buffers by copying back; a real
            # application would ping-pong names, but the stencil source
            # names the arrays, so we keep U canonical.
            for node in self.machine.nodes():
                node.memory.buffer(self.u.name)[:] = node.memory.buffer(
                    self.scratch.name
                )
            self.timing.steps += 1
            self.timing.elapsed_seconds += run.seconds_per_iteration
            self.timing.useful_flops += run.useful_flops
        assert run is not None
        return run

    def temperature(self) -> np.ndarray:
        return self.u.to_numpy()

    def total_heat(self) -> float:
        """Domain integral of temperature (decreases: heat leaks through
        the cold Dirichlet boundary)."""
        return float(self.temperature().sum())
