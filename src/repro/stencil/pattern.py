"""The stencil intermediate representation.

A *stencil* is the pattern of neighboring array elements that contribute to
each output position of an array assignment of the paper's form::

    R = T + T + ... + T
    T ::= c * s(x)  |  s(x) * c  |  s(x)  |  c

Each term becomes a :class:`Tap`: a grid offset (reduced from the term's
CSHIFT/EOSHIFT chain), a coefficient (an array name, a scalar literal, or
the implicit unit for a bare ``s(x)``), and a flag for constant-only terms
(the bare ``c`` form, which contributes a coefficient value that is never
multiplied by a data element).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .offsets import BoundaryMode, Shift

Offset = Tuple[int, int]


class CoeffKind(enum.Enum):
    """What multiplies the data element of a term."""

    ARRAY = "array"  # a whole-array coefficient, e.g. C1 * CSHIFT(X, ...)
    SCALAR = "scalar"  # a literal constant coefficient
    UNIT = "unit"  # a bare s(x) term: implicit coefficient 1.0


@dataclass(frozen=True)
class Coefficient:
    """The coefficient of one stencil term."""

    kind: CoeffKind
    name: Optional[str] = None  # array name when kind is ARRAY
    value: Optional[float] = None  # literal when kind is SCALAR

    def __post_init__(self) -> None:
        if self.kind is CoeffKind.ARRAY and not self.name:
            raise ValueError("array coefficient requires a name")
        if self.kind is CoeffKind.SCALAR and self.value is None:
            raise ValueError("scalar coefficient requires a value")

    @staticmethod
    def array(name: str) -> "Coefficient":
        return Coefficient(CoeffKind.ARRAY, name=name)

    @staticmethod
    def scalar(value: float) -> "Coefficient":
        return Coefficient(CoeffKind.SCALAR, value=value)

    @staticmethod
    def unit() -> "Coefficient":
        return Coefficient(CoeffKind.UNIT)

    def describe(self) -> str:
        if self.kind is CoeffKind.ARRAY:
            return str(self.name)
        if self.kind is CoeffKind.SCALAR:
            return repr(self.value)
        return "1.0"


@dataclass(frozen=True)
class Tap:
    """One term of a stencil: ``coeff * x[i + dy, j + dx]``.

    ``shifts`` preserves the original intrinsic chain (innermost first) so
    the exact-semantics reference can replay it; ``offset`` is its
    reduction onto the stencil plane.

    A tap with ``is_constant_term`` set represents the bare ``c`` form: the
    coefficient value is added in without touching the data array (the
    compiler implements it as ``c * 1.0`` using the reserved 1.0 register).
    """

    offset: Offset
    coeff: Coefficient
    shifts: Tuple[Shift, ...] = ()
    is_constant_term: bool = False

    def __post_init__(self) -> None:
        if self.is_constant_term and self.offset != (0, 0):
            raise ValueError("constant terms carry no data offset")
        if self.is_constant_term and self.coeff.kind is CoeffKind.UNIT:
            raise ValueError("a constant term must name its coefficient")

    @property
    def dy(self) -> int:
        return self.offset[0]

    @property
    def dx(self) -> int:
        return self.offset[1]

    @property
    def reads_data(self) -> bool:
        """Whether this tap reads the shifted data array at all."""
        return not self.is_constant_term

    def useful_flops(self, *, first: bool) -> int:
        """Useful floating-point operations this tap contributes per point.

        The paper counts only useful operations: a coefficient tap is a
        multiply plus an add, except that the very first accumulation adds
        a product to zero and that add is not useful.  A unit-coefficient
        tap contributes only its add (multiplying by 1.0 is not useful
        work), and a constant term likewise contributes only its add.
        """
        has_multiply = self.coeff.kind is not CoeffKind.UNIT and not (
            self.is_constant_term
        )
        # Constant terms execute c * 1.0 + acc: the multiply by 1.0 is not
        # useful; bare s(x) terms execute x * 1.0 + acc, same story.
        flops = 1 if has_multiply else 0  # the multiply
        flops += 0 if first else 1  # the add (first add is to zero)
        return flops

    def describe(self) -> str:
        base = "1" if self.is_constant_term else f"x[{self.dy:+d},{self.dx:+d}]"
        if self.coeff.kind is CoeffKind.UNIT:
            return base
        return f"{self.coeff.describe()} * {base}"


@dataclass(frozen=True)
class BorderWidths:
    """How far a stencil extends from its center in each direction.

    The convention follows the paper's diagrams: dimension 1 is drawn
    vertically with North toward smaller indices, dimension 2 horizontally
    with West toward smaller indices.  A tap at offset ``(dy, dx)`` reading
    ``x[i+dy, j+dx]`` with ``dy < 0`` therefore reaches North.
    """

    north: int
    south: int
    west: int
    east: int

    @property
    def max_width(self) -> int:
        """The padding used on all four sides by the halo exchange.

        The run-time library pads the subgrid on all four sides by the
        largest of the four border widths because the four-neighbor
        exchange primitive makes the extra data free (paper section 5.1).
        """
        return max(self.north, self.south, self.west, self.east)

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.north, self.south, self.west, self.east)


class StencilPattern:
    """An ordered collection of taps plus statement-level metadata.

    Tap order is semantically meaningful: the compiled multiply-add chain
    accumulates terms in this order, which fixes the floating-point
    rounding behaviour that the correctness tests check bit-for-bit.

    Attributes:
        taps: the stencil terms, in source order.
        result: name of the assigned array (``R`` in the paper).
        source: name of the shifted data array (``X``); the paper's
            compiler requires all shiftings in one statement to shift the
            same variable.
        plane_dims: the two 1-based array dimensions the stencil lives in.
        boundary: boundary mode per plane dimension (statement-level; the
            recognizer enforces uniformity).
        fill_value: fill used when a plane dimension has FILL boundary.
        name: optional human-readable label.
    """

    def __init__(
        self,
        taps: Sequence[Tap],
        *,
        result: str = "R",
        source: str = "X",
        plane_dims: Tuple[int, int] = (1, 2),
        boundary: Optional[Dict[int, BoundaryMode]] = None,
        fill_value: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        taps = list(taps)
        if not taps:
            raise ValueError("a stencil needs at least one tap")
        if plane_dims[0] == plane_dims[1]:
            raise ValueError("stencil plane dimensions must differ")
        seen: Dict[Tuple[Offset, bool], Tap] = {}
        for tap in taps:
            key = (tap.offset, tap.is_constant_term)
            if key in seen and tap.reads_data:
                # Duplicate data offsets are legal Fortran but the register
                # allocator assumes one register per multistencil position;
                # the recognizer folds duplicates before we get here.
                raise ValueError(
                    f"duplicate tap at offset {tap.offset}; fold "
                    f"coefficients before building the pattern"
                )
            seen[key] = tap
        self.taps: Tuple[Tap, ...] = tuple(taps)
        self.result = result
        self.source = source
        self.plane_dims = plane_dims
        self.boundary = dict(boundary or {})
        for dim in plane_dims:
            self.boundary.setdefault(dim, BoundaryMode.CIRCULAR)
        self.fill_value = fill_value
        self.name = name

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def data_taps(self) -> Tuple[Tap, ...]:
        """Taps that read the data array (everything but constant terms)."""
        return tuple(tap for tap in self.taps if tap.reads_data)

    @property
    def constant_taps(self) -> Tuple[Tap, ...]:
        return tuple(tap for tap in self.taps if tap.is_constant_term)

    @property
    def offsets(self) -> Tuple[Offset, ...]:
        """Offsets of the data taps, in tap order."""
        return tuple(tap.offset for tap in self.data_taps)

    @property
    def num_points(self) -> int:
        """Number of distinct data positions the stencil touches."""
        return len(set(self.offsets))

    def border_widths(self) -> BorderWidths:
        """Extent of the pattern in each direction from its center."""
        dys = [tap.dy for tap in self.data_taps] or [0]
        dxs = [tap.dx for tap in self.data_taps] or [0]
        return BorderWidths(
            north=max(0, -min(dys)),
            south=max(0, max(dys)),
            west=max(0, -min(dxs)),
            east=max(0, max(dxs)),
        )

    def needs_corner_exchange(self) -> bool:
        """Whether any tap reaches a diagonal neighbor's data.

        Patterns like the 5-point cross touch no corner of the halo, so the
        third communication step (the diagonal corner exchange) may be
        skipped -- the quick test the paper says "does save a noticeable
        amount of time for smaller arrays" (section 5.1).
        """
        return any(tap.dy != 0 and tap.dx != 0 for tap in self.data_taps)

    def is_fourfold_symmetric(self) -> bool:
        """Whether the set of data offsets has fourfold (90-degree) symmetry."""
        points = set(self.offsets)
        return all((-dx, dy) in points for (dy, dx) in points)

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------

    def useful_flops_per_point(self) -> int:
        """Useful flops per output position, per the paper's counting rule.

        For a k-tap all-coefficient stencil this is ``2k - 1``: k multiplies
        and k-1 adds (the first add merely adds a product to zero).
        """
        return sum(
            tap.useful_flops(first=(index == 0))
            for index, tap in enumerate(self.taps)
        )

    def issued_multiply_adds_per_point(self) -> int:
        """Multiply-add cycles the machine issues per output position.

        Every term costs exactly one chained multiply-add, useful or not.
        """
        return len(self.taps)

    def needs_unit_register(self) -> bool:
        """Whether the reserved 1.0 register is required.

        True when the expression contains a constant term (bare ``c``) or a
        bare ``s(x)`` term; both are executed as a multiplication by 1.0.
        """
        return any(
            tap.is_constant_term or tap.coeff.kind is CoeffKind.UNIT
            for tap in self.taps
        )

    def coefficient_names(self) -> Tuple[str, ...]:
        """Names of the coefficient arrays, in tap order, without repeats."""
        names: List[str] = []
        for tap in self.taps:
            if tap.coeff.kind is CoeffKind.ARRAY and tap.coeff.name not in names:
                names.append(tap.coeff.name)
        return tuple(names)

    def array_names(self) -> Tuple[str, ...]:
        """All array names the statement references (result, source, coeffs)."""
        return (self.result, self.source) + self.coefficient_names()

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def pictogram(self, *, bullet: str = "@", mark: str = "#", empty: str = ".") -> str:
        """Render the stencil as the paper's grid-of-squares diagram.

        The bullet marks the center (result position); marks show data
        positions.  If the center itself is a data position it is drawn as
        the bullet (the paper draws it the same way).
        """
        borders = self.border_widths()
        rows = []
        for dy in range(-borders.north, borders.south + 1):
            cells = []
            for dx in range(-borders.west, borders.east + 1):
                if (dy, dx) == (0, 0):
                    cells.append(bullet)
                elif (dy, dx) in set(self.offsets):
                    cells.append(mark)
                else:
                    cells.append(empty)
            rows.append(" ".join(cells))
        return "\n".join(rows)

    def describe(self) -> str:
        label = self.name or "stencil"
        terms = " + ".join(tap.describe() for tap in self.taps)
        return f"{label}: {self.result} = {terms}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StencilPattern(name={self.name!r}, taps={len(self.taps)}, "
            f"borders={self.border_widths().as_tuple()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StencilPattern):
            return NotImplemented
        return (
            self.taps == other.taps
            and self.result == other.result
            and self.source == other.source
            and self.plane_dims == other.plane_dims
            and self.boundary == other.boundary
            and self.fill_value == other.fill_value
        )

    def __hash__(self) -> int:
        return hash((self.taps, self.result, self.source, self.plane_dims))


def pattern_from_offsets(
    offsets: Iterable[Offset],
    *,
    coeff_prefix: str = "C",
    name: Optional[str] = None,
    **kwargs,
) -> StencilPattern:
    """Convenience constructor: one array coefficient per offset.

    Coefficient arrays are named ``C1, C2, ...`` in offset order, matching
    the paper's examples.
    """
    taps = [
        Tap(offset=tuple(offset), coeff=Coefficient.array(f"{coeff_prefix}{i}"))
        for i, offset in enumerate(offsets, start=1)
    ]
    return StencilPattern(taps, name=name, **kwargs)
