"""Shift composition: CSHIFT/EOSHIFT chains reduced to grid offsets.

The paper's term grammar allows a data reference ``s(x)`` to be an arbitrary
nesting of the Fortran 90 array-shifting intrinsics::

    s(x) ::= x
           | CSHIFT (s(x), DIM=k, SHIFT=m)
           | EOSHIFT(s(x), DIM=k, SHIFT=m)

Fortran semantics: ``CSHIFT(A, DIM=k, SHIFT=m)`` produces an array whose
element at index ``i`` (along dimension ``k``) is ``A`` at index ``i + m``,
wrapping circularly; ``EOSHIFT`` is the same but shifts values off the end
and fills the vacated positions with a boundary value (0.0 by default for
reals).

A chain of shifts therefore reduces to a single integer *offset* per
dimension: the element of the original array read when producing position
``(i, j)`` of the shifted result is ``x[i + d1, j + d2]`` where ``dk`` is
the sum of the shift amounts applied along dimension ``k``.  The only
subtlety is the boundary treatment, which this module tracks per dimension.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


class ShiftKind(enum.Enum):
    """Which Fortran 90 shifting intrinsic a :class:`Shift` represents."""

    CSHIFT = "CSHIFT"
    EOSHIFT = "EOSHIFT"


class BoundaryMode(enum.Enum):
    """How out-of-subgrid reads along a dimension are satisfied.

    ``CIRCULAR``  -- wraparound (torus); produced by CSHIFT chains.
    ``FILL``      -- vacated positions take a fill value; produced by EOSHIFT.
    """

    CIRCULAR = "circular"
    FILL = "fill"


@dataclass(frozen=True)
class Shift:
    """One application of CSHIFT or EOSHIFT.

    Attributes:
        kind: which intrinsic.
        dim: the Fortran ``DIM=`` argument, 1-based.
        amount: the Fortran ``SHIFT=`` argument (may be negative).
        boundary: the EOSHIFT ``BOUNDARY=`` fill value (ignored for CSHIFT).
    """

    kind: ShiftKind
    dim: int
    amount: int
    boundary: float = 0.0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"shift dimension must be 1-based, got {self.dim}")

    def describe(self) -> str:
        """Render the shift in Fortran source syntax."""
        return f"{self.kind.value}(_, DIM={self.dim}, SHIFT={self.amount:+d})"


class MixedBoundaryError(ValueError):
    """A shift chain mixes CSHIFT and EOSHIFT along the same dimension.

    Such chains do not reduce to a single offset-plus-boundary-mode (an
    EOSHIFT of a CSHIFT wraps some positions and zero-fills others), so the
    convolution compiler declines them; the pure-numpy reference path in
    :func:`apply_shift_chain` still evaluates them exactly.
    """


def compose_offsets(shifts: Sequence[Shift]) -> Dict[int, int]:
    """Sum shift amounts per dimension.

    Returns a mapping ``dim -> total offset`` containing only dimensions
    with a non-zero net offset, plus any dimension that was shifted at all
    (a net-zero EOSHIFT chain still destroys boundary data, so its
    dimension must be kept visible to callers).
    """
    totals: Dict[int, int] = {}
    for shift in shifts:
        totals[shift.dim] = totals.get(shift.dim, 0) + shift.amount
    return totals


def compose_boundary_modes(shifts: Sequence[Shift]) -> Dict[int, BoundaryMode]:
    """Determine the boundary mode per shifted dimension.

    Raises:
        MixedBoundaryError: if CSHIFT and EOSHIFT both appear along one
            dimension (the compiled path cannot express that as one tap).
    """
    modes: Dict[int, BoundaryMode] = {}
    for shift in shifts:
        mode = (
            BoundaryMode.CIRCULAR
            if shift.kind is ShiftKind.CSHIFT
            else BoundaryMode.FILL
        )
        previous = modes.get(shift.dim)
        if previous is not None and previous is not mode:
            raise MixedBoundaryError(
                f"dimension {shift.dim} is shifted by both CSHIFT and "
                f"EOSHIFT; the chain does not reduce to a stencil tap"
            )
        modes[shift.dim] = mode
    return modes


def apply_one_shift(array: np.ndarray, shift: Shift) -> np.ndarray:
    """Exact Fortran semantics of a single CSHIFT/EOSHIFT on a numpy array."""
    axis = shift.dim - 1
    if axis >= array.ndim:
        raise ValueError(
            f"DIM={shift.dim} exceeds array rank {array.ndim}"
        )
    if shift.kind is ShiftKind.CSHIFT:
        # CSHIFT(A, SHIFT=m)(i) = A(i + m): roll backwards by m.
        return np.roll(array, -shift.amount, axis=axis)
    return _eoshift(array, axis, shift.amount, shift.boundary)


def _eoshift(
    array: np.ndarray, axis: int, amount: int, boundary: float
) -> np.ndarray:
    """End-off shift: EOSHIFT(A, SHIFT=m)(i) = A(i+m) or the fill value."""
    result = np.full_like(array, boundary)
    n = array.shape[axis]
    if abs(amount) >= n:
        return result
    src = [slice(None)] * array.ndim
    dst = [slice(None)] * array.ndim
    if amount >= 0:
        src[axis] = slice(amount, n)
        dst[axis] = slice(0, n - amount)
    else:
        src[axis] = slice(0, n + amount)
        dst[axis] = slice(-amount, n)
    result[tuple(dst)] = array[tuple(src)]
    return result


def apply_shift_chain(array: np.ndarray, shifts: Sequence[Shift]) -> np.ndarray:
    """Apply a chain of shifts, innermost first.

    ``shifts`` is ordered innermost-first: ``CSHIFT(CSHIFT(X, 1, -1), 2, +1)``
    is represented as ``[Shift(CSHIFT, 1, -1), Shift(CSHIFT, 2, +1)]``.
    This is the exact-semantics reference used by the correctness oracle;
    it handles mixed CSHIFT/EOSHIFT chains that the compiler rejects.
    """
    result = array
    for shift in shifts:
        result = apply_one_shift(result, shift)
    return result


def plane_offset(
    shifts: Sequence[Shift], plane_dims: Tuple[int, int]
) -> Tuple[int, int]:
    """Project a shift chain's composed offset onto a 2-D stencil plane.

    Args:
        shifts: the chain, innermost first.
        plane_dims: the two (1-based) array dimensions forming the stencil
            plane; the first is drawn vertically (rows), the second
            horizontally (columns).

    Returns:
        ``(dy, dx)``: the offsets along ``plane_dims[0]`` and
        ``plane_dims[1]``.

    Raises:
        ValueError: if the chain shifts a dimension outside the plane.
    """
    totals = compose_offsets(shifts)
    for dim in totals:
        if dim not in plane_dims:
            raise ValueError(
                f"shift along dimension {dim} lies outside the stencil "
                f"plane {plane_dims}"
            )
    return totals.get(plane_dims[0], 0), totals.get(plane_dims[1], 0)


def shifted_dims(shifts: Sequence[Shift]) -> Tuple[int, ...]:
    """The sorted tuple of dimensions touched by a shift chain."""
    return tuple(sorted({shift.dim for shift in shifts}))
