"""Stencil intermediate representation: taps, patterns, multistencils."""

from .offsets import (
    BoundaryMode,
    MixedBoundaryError,
    Shift,
    ShiftKind,
    apply_one_shift,
    apply_shift_chain,
    compose_boundary_modes,
    compose_offsets,
    plane_offset,
    shifted_dims,
)
from .pattern import (
    BorderWidths,
    Coefficient,
    CoeffKind,
    StencilPattern,
    Tap,
    pattern_from_offsets,
)
from .multistencil import ColumnProfile, Multistencil, multistencil_widths
from . import gallery

__all__ = [
    "BorderWidths",
    "BoundaryMode",
    "Coefficient",
    "CoeffKind",
    "ColumnProfile",
    "MixedBoundaryError",
    "Multistencil",
    "Shift",
    "ShiftKind",
    "StencilPattern",
    "Tap",
    "apply_one_shift",
    "apply_shift_chain",
    "compose_boundary_modes",
    "compose_offsets",
    "gallery",
    "multistencil_widths",
    "pattern_from_offsets",
    "plane_offset",
    "shifted_dims",
]
