"""Multistencils: the union of ``w`` side-by-side copies of a stencil.

Placing ``w`` copies of a stencil pattern with their centers side by side
yields the *multistencil*: the total set of data array elements needed to
compute ``w`` results at once (paper section 5.3).  A width-8 multistencil
of the 5-point cross spans only 26 positions where a naive schedule would
perform 40 loads -- the key memory-bandwidth saving.

This module computes multistencil geometry: its positions, its per-column
row profiles (which drive the ring-buffer register allocation), the tagged
accumulator positions, and the leading edge loaded per line during an
upward sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .pattern import Offset, StencilPattern


@dataclass(frozen=True)
class ColumnProfile:
    """The occupied rows of one multistencil column.

    Attributes:
        x: the column's horizontal offset within the multistencil (relative
            to the leftmost result position's center).
        rows: the occupied row offsets, sorted ascending (North first).
    """

    x: int
    rows: Tuple[int, ...]

    @property
    def height(self) -> int:
        """Number of occupied rows: the column's natural ring-buffer size."""
        return len(self.rows)

    @property
    def top(self) -> int:
        """The northernmost (smallest) occupied row offset."""
        return self.rows[0]

    @property
    def bottom(self) -> int:
        """The southernmost (largest) occupied row offset."""
        return self.rows[-1]


class Multistencil:
    """Geometry of ``width`` overlapped copies of a stencil pattern.

    Position convention: copy ``r`` (0-based, left to right) of the stencil
    is centered at horizontal offset ``r``; a tap at ``(dy, dx)`` of copy
    ``r`` occupies multistencil position ``(dy, dx + r)``.
    """

    def __init__(self, pattern: StencilPattern, width: int) -> None:
        if width < 1:
            raise ValueError(f"multistencil width must be positive, got {width}")
        self.pattern = pattern
        self.width = width
        columns: Dict[int, set] = {}
        for r in range(width):
            for tap in pattern.data_taps:
                columns.setdefault(tap.dx + r, set()).add(tap.dy)
        self._columns: Tuple[ColumnProfile, ...] = tuple(
            ColumnProfile(x=x, rows=tuple(sorted(rows)))
            for x, rows in sorted(columns.items())
        )
        self._positions = frozenset(
            (row, col.x) for col in self._columns for row in col.rows
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def columns(self) -> Tuple[ColumnProfile, ...]:
        """Column profiles, left to right (only occupied columns)."""
        return self._columns

    @property
    def positions(self) -> frozenset:
        """All occupied ``(row, column)`` positions."""
        return self._positions

    @property
    def num_positions(self) -> int:
        """Data elements needed to compute ``width`` results at once."""
        return len(self._positions)

    @property
    def max_column_height(self) -> int:
        return max(col.height for col in self._columns)

    @property
    def span(self) -> Tuple[int, int]:
        """``(leftmost column offset, rightmost column offset)``."""
        return self._columns[0].x, self._columns[-1].x

    def naive_load_count(self) -> int:
        """Loads a schedule without inter-result reuse would perform.

        The naive computation reloads every stencil position for every
        result: ``width * num_points`` (40 for the width-8 5-point cross).
        """
        return self.width * self.pattern.num_points

    def load_savings(self) -> float:
        """Fraction of loads eliminated versus the naive schedule."""
        naive = self.naive_load_count()
        return (naive - self.num_positions) / naive

    # ------------------------------------------------------------------
    # Tagging and accumulators (paper section 5.3)
    # ------------------------------------------------------------------

    def tag_offset(self) -> Offset:
        """The tagged stencil position: leftmost element of the bottom row.

        The accumulator for each stencil occurrence is the register holding
        that occurrence's tagged element.  Because the tag is the leftmost
        element of its row, no result to the right can need it once its own
        occurrence begins accumulating; because the row is the bottommost,
        its elements also retire first when the sweep moves North.
        """
        offsets = self.pattern.offsets
        bottom = max(dy for dy, _ in offsets)
        left = min(dx for dy, dx in offsets if dy == bottom)
        return (bottom, left)

    def accumulator_position(self, occurrence: int) -> Offset:
        """Multistencil position whose register accumulates result ``occurrence``."""
        if not 0 <= occurrence < self.width:
            raise ValueError(
                f"occurrence {occurrence} out of range for width {self.width}"
            )
        tag_row, tag_col = self.tag_offset()
        return (tag_row, tag_col + occurrence)

    def occurrence_positions(self, occurrence: int) -> Tuple[Offset, ...]:
        """Multistencil positions read when computing result ``occurrence``,
        in tap order (the accumulation order)."""
        if not 0 <= occurrence < self.width:
            raise ValueError(
                f"occurrence {occurrence} out of range for width {self.width}"
            )
        return tuple(
            (tap.dy, tap.dx + occurrence) for tap in self.pattern.data_taps
        )

    # ------------------------------------------------------------------
    # Sweep structure (paper section 5.4)
    # ------------------------------------------------------------------

    def leading_edge(self) -> Tuple[Offset, ...]:
        """Positions loaded per line while the sweep moves North.

        One element per column: the column's topmost position.  When the
        whole footprint moves up one line these are exactly the positions
        not covered by the previous line's footprint.
        """
        return tuple((col.top, col.x) for col in self._columns)

    def retiring_edge(self) -> Tuple[Offset, ...]:
        """Positions whose registers become free after each line.

        One element per column: the column's bottommost position, no longer
        needed once the sweep moves North.  The accumulator positions
        (bottom row of each occurrence) are a subset of these.
        """
        return tuple((col.bottom, col.x) for col in self._columns)

    def describe(self) -> str:
        heights = ",".join(str(col.height) for col in self._columns)
        return (
            f"multistencil(width={self.width}, positions={self.num_positions}, "
            f"column heights=[{heights}])"
        )

    def pictogram(self, *, mark: str = "#", empty: str = ".") -> str:
        """Render the multistencil footprint as a grid diagram."""
        left, right = self.span
        top = min(col.top for col in self._columns)
        bottom = max(col.bottom for col in self._columns)
        rows = []
        for dy in range(top, bottom + 1):
            cells = [
                mark if (dy, dx) in self._positions else empty
                for dx in range(left, right + 1)
            ]
            rows.append(" ".join(cells))
        return "\n".join(rows)


def multistencil_widths() -> Tuple[int, ...]:
    """The widths the compiler attempts, widest first (paper section 5.3)."""
    return (8, 4, 2, 1)
