"""The stencil patterns the paper displays, plus parametric generators.

Offsets follow the paper's first example: ``CSHIFT(X, DIM=1, SHIFT=-1)``
is the North neighbor ``x[i-1, j]``, so an offset ``(dy, dx)`` reads
``x[i+dy, j+dx]``.
"""

from __future__ import annotations

from typing import List, Tuple

from .pattern import (
    Coefficient,
    Offset,
    StencilPattern,
    Tap,
    pattern_from_offsets,
)


def cross(radius: int, *, name: str = None) -> StencilPattern:
    """A cross (plus-shaped) stencil of the given radius.

    ``cross(1)`` is the paper's opening 5-point example; ``cross(2)`` is
    its second example and the 9-point cross of the Gordon Bell seismic
    kernel.  Tap order matches the paper's statements: North arm top-down,
    then West arm, center, East arm, South arm.
    """
    offsets: List[Offset] = []
    for dy in range(-radius, 0):
        offsets.append((dy, 0))
    for dx in range(-radius, 0):
        offsets.append((0, dx))
    offsets.append((0, 0))
    for dx in range(1, radius + 1):
        offsets.append((0, dx))
    for dy in range(1, radius + 1):
        offsets.append((dy, 0))
    return pattern_from_offsets(
        offsets, name=name or f"cross{len(offsets)}"
    )


def square(radius: int, *, name: str = None) -> StencilPattern:
    """A full ``(2r+1) x (2r+1)`` square stencil.

    ``square(1)`` is the paper's third example, expressed there with
    composed CSHIFTs; tap order is row-major, matching that statement.
    """
    offsets = [
        (dy, dx)
        for dy in range(-radius, radius + 1)
        for dx in range(-radius, radius + 1)
    ]
    return pattern_from_offsets(
        offsets, name=name or f"square{len(offsets)}"
    )


def diamond(radius: int, *, name: str = None) -> StencilPattern:
    """A diamond stencil: all offsets with ``|dy| + |dx| <= radius``.

    ``diamond(2)`` is the paper's 13-point diamond, the example whose
    width-8 multistencil needs 48 registers (too many) while the width-4
    multistencil needs only 28.  Tap order is row-major.
    """
    offsets = [
        (dy, dx)
        for dy in range(-radius, radius + 1)
        for dx in range(-radius, radius + 1)
        if abs(dy) + abs(dx) <= radius
    ]
    return pattern_from_offsets(
        offsets, name=name or f"diamond{len(offsets)}"
    )


def cross5() -> StencilPattern:
    """The paper's opening example: the 5-point cross."""
    return cross(1, name="cross5")


def cross9() -> StencilPattern:
    """The radius-2 cross: the paper's second example and the 9-point
    cross of the Gordon Bell seismic kernel."""
    return cross(2, name="cross9")


def square9() -> StencilPattern:
    """The full 3x3 square, the paper's composed-CSHIFT example."""
    return square(1, name="square9")


def diamond13() -> StencilPattern:
    """The 13-point diamond of the register-allocation discussion."""
    return diamond(2, name="diamond13")


def asymmetric5() -> StencilPattern:
    """The paper's deliberately lopsided 5-point example.

    ``R = C1*X + C2*CSHIFT(X,2,+1) + C3*CSHIFT(CSHIFT(X,1,+1),2,-1)
    + C4*CSHIFT(X,1,+1) + C5*CSHIFT(X,1,+2)`` -- showing that a stencil
    need not be symmetrical or centered.  In the paper's positional
    convention the last term is DIM=1, SHIFT=+2: two rows South.
    """
    offsets = [(0, 0), (0, 1), (1, -1), (1, 0), (2, 0)]
    return pattern_from_offsets(offsets, name="asymmetric5")


def border_demo() -> StencilPattern:
    """A pattern with the section 5.1 border widths: N=2, S=0, W=3, E=1.

    The paper shows this one only as a pictogram (the OCR garbles it); any
    pattern with those extents exercises the same communication geometry,
    so we use a small L-shape reaching 2 North, 3 West, 1 East, 0 South.
    """
    offsets = [(-2, 0), (-1, -1), (0, -3), (0, -2), (0, -1), (0, 0), (0, 1)]
    return pattern_from_offsets(offsets, name="border_demo")


def box(height: int, width: int, *, name: str = None) -> StencilPattern:
    """A full rectangular stencil of ``height x width`` taps, centered as
    symmetrically as the extents allow (extra reach goes South/East).

    The paper's point that stencils "need not be symmetrical or
    particularly centered" extends to whole families like these.
    """
    if height < 1 or width < 1:
        raise ValueError("box extents must be positive")
    north = (height - 1) // 2
    west = (width - 1) // 2
    offsets = [
        (dy, dx)
        for dy in range(-north, height - north)
        for dx in range(-west, width - west)
    ]
    return pattern_from_offsets(
        offsets, name=name or f"box{height}x{width}"
    )


def row(length: int, *, name: str = None) -> StencilPattern:
    """A horizontal line stencil: 1-D convolution along dimension 2."""
    return box(1, length, name=name or f"row{length}")


def column(length: int, *, name: str = None) -> StencilPattern:
    """A vertical line stencil: 1-D convolution along dimension 1."""
    return box(length, 1, name=name or f"column{length}")


def _laplacian27_plane(dz: int, *, name: str) -> StencilPattern:
    """One z-plane of the 27-point 3-D Laplacian as a 3x3 scalar-weight
    square.

    The classic compact 27-point discretization weights neighbors by
    their distance from the center: with ``h = 1`` and the conventional
    ``1/26`` normalization, faces get 6/26, edges 3/26, corners 2/26,
    and the center -88/26 (the weights sum to zero).  An in-plane tap at
    ``(dy, dx)`` in plane ``dz`` is a face, edge, or corner according to
    how many of ``(dy, dx, dz)`` are nonzero.  Taps run row-major, the
    same statement order as :func:`square9`, which fixes the
    accumulation rounding the bit-identity tests check.
    """
    taps = []
    for dy in range(-1, 2):
        for dx in range(-1, 2):
            nonzero = (dy != 0) + (dx != 0) + (dz != 0)
            weight = (-88.0, 6.0, 3.0, 2.0)[nonzero] / 26.0
            taps.append(Tap((dy, dx), Coefficient.scalar(weight)))
    return StencilPattern(taps, name=name)


def laplacian27_below() -> StencilPattern:
    """The ``z-1`` plane of the 27-point 3-D Laplacian (see
    :func:`_laplacian27_plane`); the three planes compose into the full
    operator via :func:`repro.runtime.multidim.apply_laplacian27`."""
    return _laplacian27_plane(-1, name="lap27_below")


def laplacian27_mid() -> StencilPattern:
    """The center plane of the 27-point 3-D Laplacian."""
    return _laplacian27_plane(0, name="lap27_mid")


def laplacian27_above() -> StencilPattern:
    """The ``z+1`` plane of the 27-point 3-D Laplacian."""
    return _laplacian27_plane(1, name="lap27_above")


def table1_patterns() -> Tuple[StencilPattern, ...]:
    """The four stencil groups of the paper's results table.

    The table's pictograms are garbled in the source text; DESIGN.md
    records the attribution: the four groups are taken to be the four
    patterns the paper develops in the text, in order of presentation.
    """
    return (cross5(), cross9(), square9(), diamond13())
