"""Bound analysis: is a compiled stencil compute- or memory-limited?

Paper section 4.4: "To make best use of memory bandwidth, the compiler
endeavors to exploit the registers of the floating-point unit; the idea
is to use a quantity as many times as possible once it has been loaded
into a register."  This module quantifies that: for each width plan it
computes the steady-state cycles the multiply-adds *must* take, the
cycles the memory traffic *must* take (every coefficient streams once
per multiply-add; data loads and result stores pay the interface cost),
and which of the two binds -- a roofline in cycle space.

The multistencil is exactly the lever that moves patterns from the
memory-bound to the compute-bound side: at width 1 the 5-point cross
moves 3 words of data per result; at width 8, 1.25.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..compiler.plan import CompiledStencil, WidthPlan
from ..machine.params import MachineParams


@dataclass(frozen=True)
class RooflinePoint:
    """Steady-state lower bounds for one width plan, per line of results.

    Attributes:
        width: results per line.
        compute_cycles: multiply-add issue slots (one per tap per result,
            plus the idle slots a solo trailing chain forces).
        memory_cycles: interface-chip occupancy: one streamed coefficient
            word per multiply-add plus ``memory_access_cycles`` per
            explicit load and store.
        actual_cycles: what the generated line pattern really takes
            (compute + memory serialized, plus fill/drain).
    """

    width: int
    compute_cycles: int
    memory_cycles: int
    actual_cycles: int

    @property
    def bound(self) -> str:
        """Which resource dominates the steady-state line."""
        return "memory" if self.memory_cycles > self.compute_cycles else "compute"

    @property
    def balance(self) -> float:
        """memory cycles / compute cycles: > 1 means memory-bound."""
        return self.memory_cycles / self.compute_cycles

    @property
    def efficiency(self) -> float:
        """max(compute, memory) lower bound over the actual line cycles.

        How close the generated schedule comes to the binding resource's
        floor; the gap is fill/drain/serialization the architecture
        forces (loads cannot overlap compute because coefficients own
        the memory port -- paper section 5.3).
        """
        floor = max(self.compute_cycles, self.memory_cycles)
        return floor / self.actual_cycles


def analyze_plan(plan: WidthPlan, params: MachineParams) -> RooflinePoint:
    """The steady-state roofline point of one width plan."""
    line = plan.steady[0]
    taps = len(plan.allocation.multistencil.pattern.taps)
    issues = plan.width * taps  # real multiply-add issues per line
    # line.num_ma counts the whole block including the idle slots a
    # trailing solo chain forces; both are compute-side occupancy.
    compute = line.num_ma
    memory = (
        issues  # one streamed coefficient word per multiply-add
        + (line.num_loads + line.num_stores) * params.memory_access_cycles
    )
    return RooflinePoint(
        width=plan.width,
        compute_cycles=compute,
        memory_cycles=memory,
        actual_cycles=line.cycles,
    )


def analyze(
    compiled: CompiledStencil, params: Optional[MachineParams] = None
) -> Dict[int, RooflinePoint]:
    """Roofline points for every available width, widest first."""
    params = params or compiled.params
    return {
        width: analyze_plan(plan, params)
        for width, plan in compiled.plans.items()
    }


def describe(compiled: CompiledStencil) -> str:
    """A small table of the bound analysis."""
    lines = [
        f"{'width':>5} {'compute':>8} {'memory':>7} {'actual':>7} "
        f"{'bound':>8} {'efficiency':>11}"
    ]
    for width, point in analyze(compiled).items():
        lines.append(
            f"{width:>5} {point.compute_cycles:>8} {point.memory_cycles:>7} "
            f"{point.actual_cycles:>7} {point.bound:>8} "
            f"{point.efficiency:>10.1%}"
        )
    return "\n".join(lines)
