"""Seeded hard-fault survival campaigns: the ``repro chaos`` engine.

A *campaign* sweeps the stencil gallery across boundary modes and
execution modes, running every combination under a seeded
:class:`~repro.runtime.faults.FaultInjector` on a machine configured
with spare nodes, and scores each trial against three properties:

``survived``
    The run completed and its result is bit-identical (float32) to the
    fault-free reference -- hard faults included, because a dead node is
    remapped onto a spare and its state migrated back.  A run that ends
    in a *typed* ``FaultError`` did not survive but also did not lie;
    only a silent mismatch is a property violation, and
    :func:`run_campaign` treats one as fatal.

``reconciled``
    The run's charged totals decompose exactly as
    ``fault-free closed form + recovery buckets``
    (:meth:`~repro.runtime.faults.FaultStats.recovery_comm_cycles` /
    :meth:`~repro.runtime.faults.FaultStats.recovery_compute_cycles`).
    Skipped (None) when the run degraded to a different execution rung
    mid-flight, because the closed form of the original rung no longer
    describes the canonical work performed.

``typed_error``
    When the run raised, the error was a typed ``FaultError`` subclass
    (never a bare crash, never silent corruption).

The report serializes to JSON (``repro chaos --json``), events and
stats streams included, and round-trips through
:meth:`ChaosReport.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.driver import compile_stencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..runtime.cm_array import CMArray
from ..runtime.faults import (
    FaultError,
    FaultInjector,
    FaultStats,
    HardFaultSpec,
    ResiliencePolicy,
)
from ..runtime.batch import apply_stencil_batch
from ..runtime.stencil_op import apply_stencil
from ..stencil import gallery
from ..stencil.offsets import BoundaryMode
from ..stencil.pattern import pattern_from_offsets

#: Execution modes a campaign sweeps: (name, apply_stencil kwargs).
EXECUTION_MODES: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("blocked", {"block_depth": 3}),
    ("fast", {}),
    ("exact", {"exact": True}),
)

#: Gallery patterns a default campaign covers.
DEFAULT_PATTERNS: Tuple[str, ...] = (
    "cross5",
    "cross9",
    "square9",
    "diamond13",
    "asymmetric5",
)

#: Default per-exchange hard-fault rates: low enough that a seeded run
#: sees zero or a few hardware deaths, high enough that a five-seed
#: campaign exercises every kind.  A pinch of transient corruption keeps
#: the retry path honest alongside the remap path.
DEFAULT_RATES: Dict[str, float] = {
    "node_dead": 0.03,
    "link_down": 0.03,
    "node_slow": 0.03,
    "halo_corrupt": 0.05,
}


def boundary_variant(pattern, mode: str, fill_value: float = 1.5):
    """The gallery pattern rebuilt under a boundary mode (same taps)."""
    modes = {
        "torus": {1: BoundaryMode.CIRCULAR, 2: BoundaryMode.CIRCULAR},
        "fill": {1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
    }[mode]
    return pattern_from_offsets(
        [tap.offset for tap in pattern.taps],
        name=f"{pattern.name}_{mode}",
        boundary=modes,
        fill_value=fill_value,
    )


@dataclass
class ChaosTrial:
    """One campaign cell: a (stencil, boundary, mode, seed) run."""

    stencil: str
    boundary: str
    mode: str
    seed: int
    survived: bool
    outcome: str  # "identical", "typed_error:<Name>", or "MISMATCH"
    reconciled: Optional[bool]
    injected: int
    detected: int
    stats: FaultStats = field(default_factory=FaultStats)

    @property
    def silent_corruption(self) -> bool:
        return self.outcome == "MISMATCH"

    def to_dict(self) -> Dict[str, object]:
        return {
            "stencil": self.stencil,
            "boundary": self.boundary,
            "mode": self.mode,
            "seed": self.seed,
            "survived": self.survived,
            "outcome": self.outcome,
            "reconciled": self.reconciled,
            "injected": self.injected,
            "detected": self.detected,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosTrial":
        return cls(
            stencil=str(data["stencil"]),
            boundary=str(data["boundary"]),
            mode=str(data["mode"]),
            seed=int(data["seed"]),
            survived=bool(data["survived"]),
            outcome=str(data["outcome"]),
            reconciled=(
                None
                if data.get("reconciled") is None
                else bool(data["reconciled"])
            ),
            injected=int(data["injected"]),
            detected=int(data["detected"]),
            stats=FaultStats.from_dict(dict(data["stats"])),
        )


@dataclass
class ChaosReport:
    """A whole campaign's trials plus the headline properties."""

    trials: List[ChaosTrial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def num_survived(self) -> int:
        return sum(1 for t in self.trials if t.survived)

    @property
    def survival_rate(self) -> float:
        return self.num_survived / self.num_trials if self.trials else 1.0

    @property
    def silent_corruptions(self) -> int:
        return sum(1 for t in self.trials if t.silent_corruption)

    @property
    def unreconciled(self) -> int:
        return sum(1 for t in self.trials if t.reconciled is False)

    @property
    def total_remaps(self) -> int:
        return sum(t.stats.remaps + t.stats.live_migrations for t in self.trials)

    @property
    def ok(self) -> bool:
        """The acceptance predicate: every trial survived bit-identically,
        every non-degraded trial reconciled, nothing silently corrupted."""
        return (
            self.num_survived == self.num_trials
            and self.silent_corruptions == 0
            and self.unreconciled == 0
        )

    def describe(self) -> str:
        lines = [
            f"chaos campaign: {self.num_survived}/{self.num_trials} trials "
            f"survived bit-identically "
            f"({100.0 * self.survival_rate:.1f}%), "
            f"{self.silent_corruptions} silent corruptions, "
            f"{self.unreconciled} accounting mismatches, "
            f"{self.total_remaps} node remaps/migrations"
        ]
        for trial in self.trials:
            if not trial.survived or trial.reconciled is False:
                lines.append(
                    f"  {trial.stencil}/{trial.boundary}/{trial.mode} "
                    f"seed {trial.seed}: {trial.outcome}"
                    + ("" if trial.reconciled is not False else ", UNRECONCILED")
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_trials": self.num_trials,
            "num_survived": self.num_survived,
            "survival_rate": self.survival_rate,
            "silent_corruptions": self.silent_corruptions,
            "unreconciled": self.unreconciled,
            "total_remaps": self.total_remaps,
            "ok": self.ok,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosReport":
        return cls(
            trials=[ChaosTrial.from_dict(dict(t)) for t in data["trials"]]
        )


def _build_problem(pattern, *, nodes: int, shape, spares: int, seed: int):
    """A deterministic problem instance: same seed, same bits."""
    params = MachineParams(num_nodes=nodes)
    machine = CM2(params, spares=spares)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }
    return machine, compiled, x, coeffs


def run_trial(
    stencil: str,
    boundary: str,
    mode: str,
    mode_kwargs: Dict[str, object],
    seed: int,
    *,
    nodes: int = 4,
    shape: Tuple[int, int] = (16, 24),
    iterations: int = 6,
    spares: int = 4,
    rates: Optional[Dict[str, float]] = None,
    schedule: Sequence[HardFaultSpec] = (),
    policy: Optional[ResiliencePolicy] = None,
) -> ChaosTrial:
    """One campaign cell: chaos run vs fault-free reference.

    The reference runs unguarded on its own pristine machine (its totals
    are the closed form the chaos run must reconcile against); the chaos
    run gets ``spares`` spare nodes and a remap budget to match.
    """
    pattern = boundary_variant(getattr(gallery, stencil)(), boundary)
    _, ref_compiled, ref_x, ref_coeffs = _build_problem(
        pattern, nodes=nodes, shape=shape, spares=0, seed=seed
    )
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF",
        iterations=iterations, **mode_kwargs,
    )
    expected = reference.result.to_numpy()

    _, compiled, x, coeffs = _build_problem(
        pattern, nodes=nodes, shape=shape, spares=spares, seed=seed
    )
    injector = FaultInjector(
        seed=seed,
        rates=dict(DEFAULT_RATES if rates is None else rates),
        schedule=schedule,
    )
    if policy is None:
        policy = ResiliencePolicy(max_remaps=max(1, spares))
    try:
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=iterations,
            faults=injector, resilience=policy, **mode_kwargs,
        )
    except FaultError as error:
        stats = FaultStats()
        return ChaosTrial(
            stencil=stencil,
            boundary=boundary,
            mode=mode,
            seed=seed,
            survived=False,
            outcome=f"typed_error:{type(error).__name__}",
            reconciled=None,
            injected=injector.total_injected,
            detected=0,
            stats=stats,
        )
    stats = run.fault_stats
    identical = bool(np.array_equal(run.result.to_numpy(), expected))
    degraded_rung = any("->" in step for step in stats.degradations)
    if degraded_rung:
        reconciled: Optional[bool] = None
    else:
        reconciled = (
            run.comm_cycles_total
            == reference.comm_cycles_total + stats.recovery_comm_cycles()
        ) and (
            run.compute_cycles_total
            == reference.compute_cycles_total
            + stats.recovery_compute_cycles()
        )
    return ChaosTrial(
        stencil=stencil,
        boundary=boundary,
        mode=mode,
        seed=seed,
        survived=identical,
        outcome="identical" if identical else "MISMATCH",
        reconciled=reconciled,
        injected=stats.total_injected,
        detected=stats.total_detected,
        stats=stats,
    )


def run_campaign(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    boundaries: Sequence[str] = ("torus", "fill"),
    modes: Sequence[Tuple[str, Dict[str, object]]] = EXECUTION_MODES,
    nodes: int = 4,
    shape: Tuple[int, int] = (16, 24),
    iterations: int = 6,
    spares: int = 4,
    rates: Optional[Dict[str, float]] = None,
) -> ChaosReport:
    """Sweep ``patterns x boundaries x modes x seeds``."""
    report = ChaosReport()
    for seed in seeds:
        for stencil in patterns:
            for boundary in boundaries:
                for mode, mode_kwargs in modes:
                    report.trials.append(
                        run_trial(
                            stencil, boundary, mode, dict(mode_kwargs),
                            seed, nodes=nodes, shape=shape,
                            iterations=iterations, spares=spares,
                            rates=rates,
                        )
                    )
    return report


# ----------------------------------------------------------------------
# Service chaos: the ``repro chaos --service`` engine
# ----------------------------------------------------------------------

#: Default service-plane fault rates for a chaos trial: crashes and
#: hangs frequent enough that every five-seed campaign exercises the
#: supervisor's reclaim/re-enqueue/respawn path and the deadline abort,
#: storms certain so the overload phase always has a burst to shed.
SERVICE_RATES: Dict[str, float] = {
    "worker_crash": 0.12,
    "job_hang": 0.08,
    "tenant_storm": 1.0,
}


@dataclass
class ServiceChaosTrial:
    """One seeded pass of the three-phase service chaos scenario.

    Phase A runs a two-wave multi-tenant workload (healthy tenants plus
    a tenant whose every job dies with a hard data-path fault) to
    completion under seeded worker crashes and hangs.  Phase B runs the
    *same* workload against a journal, SIGKILLs the scheduler mid-wave,
    resumes from the journal, and finishes.  Phase C floods a
    watermarked single-worker scheduler with a seeded tenant storm and
    a pair of high-priority jobs.  ``survived`` is the conjunction of
    the chaos invariants: zero lost jobs, zero double runs, healthy
    tenants bit-identical to solo, exact ledger reconciliation, the
    resumed fingerprint equal to the uninterrupted one, quarantine
    observed, every shed typed.
    """

    seed: int
    jobs: int
    completed: int
    failed: int
    timeouts: int
    quarantined: int
    retries: int
    crashes_injected: int
    hangs_injected: int
    storm_jobs: int
    shed: int
    lost_jobs: int
    double_runs: int
    fingerprint_match: bool
    healthy_identical: bool
    reconciled: bool
    quarantine_observed: bool
    sheds_typed: bool
    outcome: str = "ok"

    @property
    def survived(self) -> bool:
        return (
            self.lost_jobs == 0
            and self.double_runs == 0
            and self.fingerprint_match
            and self.healthy_identical
            and self.reconciled
            and self.quarantine_observed
            and self.sheds_typed
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "crashes_injected": self.crashes_injected,
            "hangs_injected": self.hangs_injected,
            "storm_jobs": self.storm_jobs,
            "shed": self.shed,
            "lost_jobs": self.lost_jobs,
            "double_runs": self.double_runs,
            "fingerprint_match": self.fingerprint_match,
            "healthy_identical": self.healthy_identical,
            "reconciled": self.reconciled,
            "quarantine_observed": self.quarantine_observed,
            "sheds_typed": self.sheds_typed,
            "survived": self.survived,
            "outcome": self.outcome,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServiceChaosTrial":
        known = {
            f: data[f]
            for f in (
                "seed", "jobs", "completed", "failed", "timeouts",
                "quarantined", "retries", "crashes_injected",
                "hangs_injected", "storm_jobs", "shed", "lost_jobs",
                "double_runs", "fingerprint_match", "healthy_identical",
                "reconciled", "quarantine_observed", "sheds_typed",
                "outcome",
            )
        }
        return cls(**known)


@dataclass
class ServiceChaosReport:
    """A whole service chaos campaign's trials plus the verdict."""

    trials: List[ServiceChaosTrial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def num_survived(self) -> int:
        return sum(1 for t in self.trials if t.survived)

    @property
    def total_retries(self) -> int:
        return sum(t.retries for t in self.trials)

    @property
    def total_sheds(self) -> int:
        return sum(t.shed for t in self.trials)

    @property
    def ok(self) -> bool:
        """Every trial upheld every invariant."""
        return self.num_survived == self.num_trials

    def describe(self) -> str:
        lines = [
            f"service chaos campaign: {self.num_survived}/{self.num_trials} "
            f"trials upheld every invariant "
            f"({sum(t.crashes_injected for t in self.trials)} crashes, "
            f"{sum(t.hangs_injected for t in self.trials)} hangs, "
            f"{self.total_retries} retries, {self.total_sheds} sheds, "
            f"{sum(t.quarantined for t in self.trials)} quarantines)"
        ]
        for trial in self.trials:
            if not trial.survived:
                lines.append(f"  seed {trial.seed}: {trial.outcome}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_trials": self.num_trials,
            "num_survived": self.num_survived,
            "total_retries": self.total_retries,
            "total_sheds": self.total_sheds,
            "ok": self.ok,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServiceChaosReport":
        return cls(
            trials=[
                ServiceChaosTrial.from_dict(dict(t)) for t in data["trials"]
            ]
        )


def _service_workload(seed: int):
    """The trial's two-wave workload, identical across phases A and B.

    Two healthy tenants run real stencils; the ``flaky`` tenant's jobs
    all carry a certain hard data-path fault with no spares, so each
    one terminates in a typed ``JobFaultError`` -- wave 1 trips the
    tenant's breaker (three failures at the default threshold), so its
    wave-2 jobs must be quarantined at admission.
    """
    from ..service import StencilJob

    def healthy(index: int, wave: int) -> StencilJob:
        return StencilJob(
            tenant=f"tenant{index % 2}",
            pattern="cross5" if index % 2 else "square9",
            grid_shape=(32, 32),
            iterations=2,
            seed=seed * 1000 + wave * 100 + index,
            partition_shape=(2, 2),
            label=f"healthy{wave}-{index}",
        )

    def flaky(index: int, wave: int) -> StencilJob:
        return StencilJob(
            tenant="flaky",
            grid_shape=(16, 16),
            seed=seed * 1000 + wave * 100 + 50 + index,
            partition_shape=(2, 2),
            fault_rates={"node_dead": 1.0},
            fault_seed=seed + index,
            label=f"flaky{wave}-{index}",
        )

    wave1 = [healthy(i, 1) for i in range(6)] + [flaky(i, 1) for i in range(3)]
    wave2 = [healthy(i, 2) for i in range(3)] + [flaky(i, 2) for i in range(2)]
    return wave1, wave2


def run_service_trial(
    seed: int,
    *,
    journal_path: Optional[str] = None,
    rates: Optional[Dict[str, float]] = None,
    deadline_seconds: float = 0.3,
) -> ServiceChaosTrial:
    """One seeded pass of the three-phase service chaos scenario."""
    import os
    import random
    import tempfile
    import time

    from ..machine.params import MachineParams
    from ..runtime.faults import ServiceFaultInjector
    from ..service import (
        JournalState,
        MachinePool,
        OverloadError,
        Scheduler,
        ServicePolicy,
        StencilJob,
        solo_run,
    )

    def make_pool() -> MachinePool:
        return MachinePool(
            MachineParams().with_nodes(16),
            shape=(4, 4),
            default_partition=(2, 2),
        )

    def make_injector() -> ServiceFaultInjector:
        return ServiceFaultInjector(
            seed=seed, rates=dict(SERVICE_RATES if rates is None else rates)
        )

    policy = ServicePolicy(
        deadline_seconds=deadline_seconds,
        max_attempts=3,
        backoff_base_seconds=0.001,
        backoff_cap_seconds=0.004,
        breaker_threshold=3,
        breaker_cooldown_seconds=60.0,
        supervision_interval_seconds=0.002,
    )

    def wait_all(handles, timeout: float = 120.0) -> None:
        deadline = time.perf_counter() + timeout
        for handle in handles:
            remaining = max(deadline - time.perf_counter(), 0.01)
            try:
                handle.result(remaining)
            except Exception:
                pass  # typed outcomes are inspected via the handle

    wave1, wave2 = _service_workload(seed)

    def run_program(scheduler: Scheduler):
        first = scheduler.submit_all(wave1)
        wait_all(first)
        second = scheduler.submit_all(wave2)
        wait_all(second)
        return first + second

    violations: List[str] = []

    # ---- Phase A: uninterrupted run under crashes and hangs ----------
    injector_a = make_injector()
    sched_a = Scheduler(
        make_pool(), service_policy=policy, faults=injector_a
    )
    handles_a = run_program(sched_a)
    sched_a.close(timeout=60.0)
    fingerprint_a = sched_a.accounts.ledger_fingerprint()
    accounts_a = sched_a.accounts

    lost = sum(1 for h in handles_a if not h.done)
    if lost:
        violations.append(f"phase A lost {lost} job(s)")

    healthy_identical = True
    for handle in handles_a:
        if handle.job.tenant == "flaky" or handle.outcome != "completed":
            continue
        reference = solo_run(handle.job)
        if not handle.result().identical_to(reference):
            healthy_identical = False
            violations.append(
                f"phase A: {handle.job.label} diverged from its solo run"
            )
            break
    quarantine_observed = any(
        h.outcome == "quarantined" for h in handles_a
    )
    if not quarantine_observed:
        violations.append("phase A: breaker never quarantined the flaky tenant")
    reconciled = accounts_a.reconcile()
    if not reconciled:
        violations.append("phase A: ledger failed exact reconciliation")

    # ---- Phase B: journal, SIGKILL mid-wave, resume ------------------
    path = journal_path
    cleanup = False
    if path is None:
        fd, path = tempfile.mkstemp(
            prefix=f"service-chaos-{seed}-", suffix=".jsonl"
        )
        os.close(fd)
        cleanup = True
    try:
        victim = Scheduler(
            make_pool(),
            service_policy=policy,
            faults=make_injector(),
            journal_path=path,
        )
        victim.submit_all(wave1)
        time.sleep(0.003 + 0.04 * random.Random(seed).random())
        victim.kill()

        resumed = Scheduler(
            make_pool(),
            service_policy=policy,
            faults=make_injector(),
            journal_path=path,
        )
        handles_b = run_program(resumed)
        resumed.close(timeout=60.0)
        fingerprint_b = resumed.accounts.ledger_fingerprint()

        lost_b = sum(1 for h in handles_b if not h.done)
        if lost_b:
            violations.append(f"phase B lost {lost_b} job(s)")
        lost += lost_b
        state = JournalState.load(path)
        unsettled = sum(
            1 for key in state.submitted if not state.is_settled(key)
        )
        if unsettled:
            violations.append(
                f"phase B: {unsettled} journaled job(s) never settled"
            )
        lost += unsettled
        double_runs = state.duplicate_completions
        if double_runs:
            violations.append(f"phase B: {double_runs} double-run(s)")
        fingerprint_match = fingerprint_b == fingerprint_a
        if not fingerprint_match:
            violations.append(
                "phase B: resumed ledger fingerprint differs from the "
                "uninterrupted run's"
            )
        if not resumed.accounts.reconcile():
            reconciled = False
            violations.append("phase B: resumed ledger failed reconciliation")
    finally:
        if cleanup and os.path.exists(path):
            os.remove(path)

    # ---- Phase C: tenant storm against the watermark -----------------
    storm_injector = make_injector()
    burst = storm_injector.storm_size("storm", low=6, high=10)
    storm_policy = ServicePolicy(
        deadline_seconds=deadline_seconds,
        max_attempts=3,
        backoff_base_seconds=0.001,
        backoff_cap_seconds=0.004,
        breaker_threshold=3,
        breaker_cooldown_seconds=60.0,
        supervision_interval_seconds=0.002,
        max_queue_depth=2,
    )
    storm_sched = Scheduler(
        make_pool(), service_policy=storm_policy, max_workers=1
    )
    storm_jobs = [
        StencilJob(
            tenant="storm",
            grid_shape=(64, 64),
            iterations=6,
            seed=seed * 1000 + 500 + i,
            partition_shape=(2, 2),
            priority=0,
            label=f"storm-{i}",
        )
        for i in range(burst)
    ]
    vip_jobs = [
        StencilJob(
            tenant="vip",
            pattern="square9",
            grid_shape=(32, 32),
            iterations=2,
            seed=seed * 1000 + 600 + i,
            partition_shape=(2, 2),
            priority=10,
            label=f"vip-{i}",
        )
        for i in range(2)
    ]
    shed_raised = 0
    storm_handles = []
    sheds_typed = True
    for job in storm_jobs:
        try:
            storm_handles.append(storm_sched.submit(job))
        except OverloadError:
            shed_raised += 1
        except Exception as error:  # pragma: no cover - invariant breach
            sheds_typed = False
            violations.append(
                f"phase C: shed raised untyped {type(error).__name__}"
            )
    vip_handles = storm_sched.submit_all(vip_jobs)
    wait_all(storm_handles + vip_handles)
    storm_sched.close(timeout=60.0)
    shed_recorded = [h for h in storm_handles if h.outcome == "shed"]
    for handle in shed_recorded:
        if not isinstance(handle.error, OverloadError):
            sheds_typed = False
            violations.append(
                f"phase C: {handle.job.label} shed with untyped "
                f"{type(handle.error).__name__}"
            )
    shed_total = shed_raised + len(shed_recorded)
    if shed_total == 0:
        violations.append("phase C: the storm never hit the watermark")
        sheds_typed = False
    for handle in vip_handles:
        if handle.outcome != "completed":
            healthy_identical = False
            violations.append(
                f"phase C: vip job ended {handle.outcome}, not completed"
            )
        elif not handle.result().identical_to(solo_run(handle.job)):
            healthy_identical = False
            violations.append(
                f"phase C: {handle.job.label} diverged from its solo run"
            )
    if not storm_sched.accounts.reconcile():
        reconciled = False
        violations.append("phase C: storm ledger failed reconciliation")

    # ---- Lockdep cross-check (RS_LOCKDEP=1 runs only) ----------------
    # The whole trial ran on instrumented locks: the observed
    # acquisition DAG must be acyclic and every observed edge must be
    # explained by the racecheck analyzer's predicted lock graph --
    # the chaos campaign is what validates the static analysis.
    from ..verify import lockdep

    if lockdep.enabled():
        from ..verify.concurrency import predicted_lock_graph

        cycle = lockdep.REGISTRY.find_cycle()
        if cycle is not None:
            violations.append(
                "lockdep: observed lock-order cycle "
                + " -> ".join(cycle + cycle[:1])
            )
        unexplained = lockdep.REGISTRY.cross_check(predicted_lock_graph())
        if unexplained:
            violations.append(
                "lockdep: observed edge(s) the static lock graph does "
                "not predict: "
                + ", ".join(f"{u} -> {v}" for u, v in unexplained)
            )

    flaky_account = accounts_a.tenants.get("flaky")
    return ServiceChaosTrial(
        seed=seed,
        jobs=len(handles_a) + len(storm_jobs) + len(vip_jobs),
        completed=sum(1 for h in handles_a if h.outcome == "completed"),
        failed=0 if flaky_account is None else flaky_account.failures,
        timeouts=sum(
            a.timeouts for a in accounts_a.tenants.values()
        ),
        quarantined=sum(
            a.quarantined for a in accounts_a.tenants.values()
        ),
        retries=sum(a.retries for a in accounts_a.tenants.values()),
        crashes_injected=injector_a.injected.get("worker_crash", 0),
        hangs_injected=injector_a.injected.get("job_hang", 0),
        storm_jobs=burst,
        shed=shed_total,
        lost_jobs=lost,
        double_runs=double_runs,
        fingerprint_match=fingerprint_match,
        healthy_identical=healthy_identical,
        reconciled=reconciled,
        quarantine_observed=quarantine_observed,
        sheds_typed=sheds_typed,
        outcome="ok" if not violations else "; ".join(violations),
    )


def run_service_campaign(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    rates: Optional[Dict[str, float]] = None,
    deadline_seconds: float = 0.3,
) -> ServiceChaosReport:
    """Run the three-phase service chaos scenario once per seed."""
    report = ServiceChaosReport()
    for seed in seeds:
        report.trials.append(
            run_service_trial(
                seed, rates=rates, deadline_seconds=deadline_seconds
            )
        )
    return report


# ----------------------------------------------------------------------
# SDC chaos: the ``repro chaos --sdc`` engine
# ----------------------------------------------------------------------

#: Execution modes the SDC campaign sweeps.  The exact oracle is
#: excluded by design: its rung is modeled as ECC-protected end to end,
#: so ABFT neither seals nor injects there (it is the ladder's last
#: resort *after* ABFT gives up on multi-cell damage).
SDC_MODES: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("fast", {}),
    ("blocked", {"block_depth": 3}),
)


@dataclass
class SdcTrial:
    """One seeded silent-data-corruption trial.

    ``kind`` names the scenario: ``solo`` (single-cell strikes on the
    solo executor, forward correction expected), ``batched`` (the same
    on the batched multi-filter executor), or ``multicell`` (several
    words flipped per strike on a one-node machine, beyond forward
    correction by construction -- the rollback ladder or a typed error
    must take over).  ``forward`` records that the run healed with zero
    rollbacks, zero replayed iterations, and zero rung degradations:
    the headline ABFT property for single-cell damage.
    """

    stencil: str
    mode: str
    seed: int
    cells: int
    kind: str  # "solo", "batched", or "multicell"
    injected: int
    corrections: int
    detected: int
    rollbacks: int
    replays: int
    survived: bool
    outcome: str  # "identical", "typed_error:<Name>", or "MISMATCH"
    reconciled: Optional[bool]
    forward: bool
    stats: FaultStats = field(default_factory=FaultStats)

    @property
    def silent_corruption(self) -> bool:
        return self.outcome == "MISMATCH"

    def to_dict(self) -> Dict[str, object]:
        return {
            "stencil": self.stencil,
            "mode": self.mode,
            "seed": self.seed,
            "cells": self.cells,
            "kind": self.kind,
            "injected": self.injected,
            "corrections": self.corrections,
            "detected": self.detected,
            "rollbacks": self.rollbacks,
            "replays": self.replays,
            "survived": self.survived,
            "outcome": self.outcome,
            "reconciled": self.reconciled,
            "forward": self.forward,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SdcTrial":
        return cls(
            stencil=str(data["stencil"]),
            mode=str(data["mode"]),
            seed=int(data["seed"]),
            cells=int(data["cells"]),
            kind=str(data["kind"]),
            injected=int(data["injected"]),
            corrections=int(data["corrections"]),
            detected=int(data["detected"]),
            rollbacks=int(data["rollbacks"]),
            replays=int(data["replays"]),
            survived=bool(data["survived"]),
            outcome=str(data["outcome"]),
            reconciled=(
                None
                if data.get("reconciled") is None
                else bool(data["reconciled"])
            ),
            forward=bool(data["forward"]),
            stats=FaultStats.from_dict(dict(data["stats"])),
        )


def _sdc_trial_from_run(
    *,
    stencil: str,
    mode: str,
    seed: int,
    cells: int,
    kind: str,
    identical: bool,
    stats: FaultStats,
    run_comm: int,
    run_compute: int,
    ref_comm: int,
    ref_compute: int,
) -> SdcTrial:
    """Score a completed (non-raising) SDC run against its reference.

    Reconciliation adds the dedicated ``abft_cycles`` bucket on the
    compute side: seal/verify overhead is canonical ABFT work, not
    recovery, so the decomposition is
    ``run = reference + recovery + abft``.
    """
    degraded = any("->" in step for step in stats.degradations)
    if degraded:
        reconciled: Optional[bool] = None
    else:
        reconciled = (
            run_comm == ref_comm + stats.recovery_comm_cycles()
        ) and (
            run_compute
            == ref_compute
            + stats.recovery_compute_cycles()
            + stats.abft_cycles
        )
    forward = (
        stats.rollbacks == 0
        and stats.replayed_iterations == 0
        and not degraded
    )
    return SdcTrial(
        stencil=stencil,
        mode=mode,
        seed=seed,
        cells=cells,
        kind=kind,
        injected=stats.total_injected,
        corrections=stats.sdc_corrections,
        detected=stats.total_detected,
        rollbacks=stats.rollbacks,
        replays=stats.replayed_iterations,
        survived=identical,
        outcome="identical" if identical else "MISMATCH",
        reconciled=reconciled,
        forward=forward,
        stats=stats,
    )


def _sdc_trial_from_error(
    error: FaultError,
    injector: FaultInjector,
    *,
    stencil: str,
    mode: str,
    seed: int,
    cells: int,
    kind: str,
) -> SdcTrial:
    return SdcTrial(
        stencil=stencil,
        mode=mode,
        seed=seed,
        cells=cells,
        kind=kind,
        injected=injector.total_injected,
        corrections=0,
        detected=0,
        rollbacks=0,
        replays=0,
        survived=False,
        outcome=f"typed_error:{type(error).__name__}",
        reconciled=None,
        forward=False,
        stats=FaultStats(),
    )


def run_sdc_trial(
    stencil: str,
    mode: str,
    mode_kwargs: Dict[str, object],
    seed: int,
    *,
    cells: int = 1,
    nodes: int = 4,
    shape: Tuple[int, int] = (16, 24),
    iterations: int = 6,
    rate: float = 1.0,
) -> SdcTrial:
    """One solo SDC trial: seeded bit-flips vs an unguarded reference.

    The injector strikes the resident result stack between ABFT seal
    and verify every iteration (``rate`` defaults to certainty), each
    strike flipping ``cells`` mantissa/exponent bits.  With
    ``cells=1`` every strike is forward-correctable; larger values
    force the rollback ladder.
    """
    pattern = getattr(gallery, stencil)()
    _, ref_compiled, ref_x, ref_coeffs = _build_problem(
        pattern, nodes=nodes, shape=shape, spares=0, seed=seed
    )
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF",
        iterations=iterations, **mode_kwargs,
    )
    expected = reference.result.to_numpy()

    _, compiled, x, coeffs = _build_problem(
        pattern, nodes=nodes, shape=shape, spares=0, seed=seed
    )
    injector = FaultInjector(
        seed=seed, rates={"sdc": rate}, sdc_cells=cells
    )
    kind = "solo" if cells == 1 else "multicell"
    try:
        run = apply_stencil(
            compiled, x, coeffs, "R_SDC", iterations=iterations,
            faults=injector, resilience=ResiliencePolicy(abft=True),
            **mode_kwargs,
        )
    except FaultError as error:
        return _sdc_trial_from_error(
            error, injector, stencil=stencil, mode=mode, seed=seed,
            cells=cells, kind=kind,
        )
    stats = run.fault_stats
    identical = bool(np.array_equal(run.result.to_numpy(), expected))
    return _sdc_trial_from_run(
        stencil=stencil, mode=mode, seed=seed, cells=cells, kind=kind,
        identical=identical, stats=stats,
        run_comm=run.comm_cycles_total,
        run_compute=run.compute_cycles_total,
        ref_comm=reference.comm_cycles_total,
        ref_compute=reference.compute_cycles_total,
    )


def run_sdc_batched_trial(
    seed: int,
    *,
    nodes: int = 4,
    shape: Tuple[int, int] = (16, 24),
    batch: int = 2,
    iterations: int = 4,
    rate: float = 1.0,
) -> SdcTrial:
    """One batched SDC trial: mixed-pad filters, per-filter seals.

    Strikes land on per-filter result slabs of the shared 6-D stack;
    the executor verifies each filter's slab before gathering it into
    the next pass and sweeps all slabs at run end.  Uncorrectable
    damage surfaces as a typed error (the batched path has no rollback
    ladder, matching its hard-fault contract).
    """

    def build(spares: int):
        params = MachineParams(num_nodes=nodes)
        machine = CM2(params, spares=spares)
        filters = tuple(
            compile_stencil(p, params)
            for p in (gallery.cross5(), gallery.cross9())
        )
        rng = np.random.default_rng(seed)
        sources = [
            CMArray.from_numpy(
                f"X{b}", machine,
                rng.standard_normal(shape).astype(np.float32),
            )
            for b in range(batch)
        ]
        coeffs = {
            name: CMArray.from_numpy(
                name, machine,
                rng.standard_normal(shape).astype(np.float32),
            )
            for p in (gallery.cross5(), gallery.cross9())
            for name in p.coefficient_names()
        }
        return machine, filters, sources, coeffs

    _, ref_filters, ref_sources, ref_coeffs = build(0)
    reference = apply_stencil_batch(
        ref_filters, ref_sources, ref_coeffs, "R_REF",
        iterations=iterations,
    )
    expected = reference.result.to_numpy()

    _, filters, sources, coeffs = build(0)
    injector = FaultInjector(seed=seed, rates={"sdc": rate})
    try:
        run = apply_stencil_batch(
            filters, sources, coeffs, "R_SDC", iterations=iterations,
            faults=injector, resilience=ResiliencePolicy(abft=True),
        )
    except FaultError as error:
        return _sdc_trial_from_error(
            error, injector, stencil="cross5+cross9", mode="batched",
            seed=seed, cells=1, kind="batched",
        )
    stats = run.fault_stats
    identical = bool(np.array_equal(run.result.to_numpy(), expected))
    return _sdc_trial_from_run(
        stencil="cross5+cross9", mode="batched", seed=seed, cells=1,
        kind="batched", identical=identical, stats=stats,
        run_comm=run.total_comm_cycles,
        run_compute=run.total_compute_cycles,
        ref_comm=reference.total_comm_cycles,
        ref_compute=reference.total_compute_cycles,
    )


@dataclass
class SdcReport:
    """A whole SDC campaign's trials plus the headline properties."""

    trials: List[SdcTrial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def single_cell_trials(self) -> List[SdcTrial]:
        return [t for t in self.trials if t.kind != "multicell"]

    @property
    def multicell_trials(self) -> List[SdcTrial]:
        return [t for t in self.trials if t.kind == "multicell"]

    @property
    def silent_corruptions(self) -> int:
        return sum(1 for t in self.trials if t.silent_corruption)

    @property
    def unreconciled(self) -> int:
        return sum(1 for t in self.trials if t.reconciled is False)

    @property
    def total_injected(self) -> int:
        return sum(t.injected for t in self.trials)

    @property
    def total_corrections(self) -> int:
        return sum(t.corrections for t in self.trials)

    @property
    def forward_corrected(self) -> int:
        """Single-cell trials healed with zero rollback/replay."""
        return sum(
            1
            for t in self.single_cell_trials
            if t.survived and t.forward
        )

    @property
    def ok(self) -> bool:
        """The acceptance predicate.

        Every single-cell trial must be bit-identical via pure forward
        correction (no rollbacks, no replays, no rung degradation) with
        every injected strike detected; every multi-cell trial must be
        bit-identical via the ladder *or* end in a typed error; nothing
        may silently corrupt and no reconcilable trial may fail to
        reconcile exactly.
        """
        single_ok = all(
            t.survived
            and t.forward
            and t.injected > 0
            and t.detected >= t.injected
            and t.corrections >= t.injected
            for t in self.single_cell_trials
        )
        multi_ok = all(
            t.survived or t.outcome.startswith("typed_error:")
            for t in self.multicell_trials
        )
        return (
            single_ok
            and multi_ok
            and self.silent_corruptions == 0
            and self.unreconciled == 0
        )

    def describe(self) -> str:
        singles = self.single_cell_trials
        lines = [
            f"sdc campaign: {self.forward_corrected}/{len(singles)} "
            f"single-cell trials forward-corrected bit-identically, "
            f"{self.total_corrections}/{self.total_injected} strikes "
            f"corrected, "
            f"{sum(1 for t in self.multicell_trials if t.survived)}"
            f"/{len(self.multicell_trials)} multi-cell trials healed "
            f"by the ladder, "
            f"{self.silent_corruptions} silent corruptions, "
            f"{self.unreconciled} accounting mismatches"
        ]
        for trial in self.trials:
            if trial.silent_corruption or trial.reconciled is False or (
                trial.kind != "multicell" and not trial.forward
            ):
                lines.append(
                    f"  {trial.kind}/{trial.stencil}/{trial.mode} "
                    f"seed {trial.seed}: {trial.outcome}, "
                    f"{trial.rollbacks} rollbacks, "
                    f"{trial.replays} replayed iterations"
                    + ("" if trial.reconciled is not False
                       else ", UNRECONCILED")
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_trials": self.num_trials,
            "forward_corrected": self.forward_corrected,
            "total_injected": self.total_injected,
            "total_corrections": self.total_corrections,
            "silent_corruptions": self.silent_corruptions,
            "unreconciled": self.unreconciled,
            "ok": self.ok,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SdcReport":
        return cls(
            trials=[SdcTrial.from_dict(dict(t)) for t in data["trials"]]
        )


def run_sdc_campaign(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    patterns: Sequence[str] = ("cross5", "square9"),
    nodes: int = 4,
    shape: Tuple[int, int] = (16, 24),
    iterations: int = 6,
) -> SdcReport:
    """Per seed: ``patterns x SDC_MODES`` single-cell solo trials, one
    batched mixed-pad trial, and one multi-cell ladder trial (three
    flips per strike on a one-node machine, where forward correction
    provably cannot localize)."""
    report = SdcReport()
    for seed in seeds:
        for stencil in patterns:
            for mode, mode_kwargs in SDC_MODES:
                report.trials.append(
                    run_sdc_trial(
                        stencil, mode, dict(mode_kwargs), seed,
                        nodes=nodes, shape=shape,
                        iterations=iterations,
                    )
                )
        report.trials.append(
            run_sdc_batched_trial(seed, nodes=nodes, shape=shape)
        )
        report.trials.append(
            run_sdc_trial(
                "cross5", "fast", {}, seed, cells=3, nodes=1,
                shape=(8, 12), iterations=iterations,
            )
        )
    return report
