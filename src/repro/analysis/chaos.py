"""Seeded hard-fault survival campaigns: the ``repro chaos`` engine.

A *campaign* sweeps the stencil gallery across boundary modes and
execution modes, running every combination under a seeded
:class:`~repro.runtime.faults.FaultInjector` on a machine configured
with spare nodes, and scores each trial against three properties:

``survived``
    The run completed and its result is bit-identical (float32) to the
    fault-free reference -- hard faults included, because a dead node is
    remapped onto a spare and its state migrated back.  A run that ends
    in a *typed* ``FaultError`` did not survive but also did not lie;
    only a silent mismatch is a property violation, and
    :func:`run_campaign` treats one as fatal.

``reconciled``
    The run's charged totals decompose exactly as
    ``fault-free closed form + recovery buckets``
    (:meth:`~repro.runtime.faults.FaultStats.recovery_comm_cycles` /
    :meth:`~repro.runtime.faults.FaultStats.recovery_compute_cycles`).
    Skipped (None) when the run degraded to a different execution rung
    mid-flight, because the closed form of the original rung no longer
    describes the canonical work performed.

``typed_error``
    When the run raised, the error was a typed ``FaultError`` subclass
    (never a bare crash, never silent corruption).

The report serializes to JSON (``repro chaos --json``), events and
stats streams included, and round-trips through
:meth:`ChaosReport.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.driver import compile_stencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..runtime.cm_array import CMArray
from ..runtime.faults import (
    FaultError,
    FaultInjector,
    FaultStats,
    HardFaultSpec,
    ResiliencePolicy,
)
from ..runtime.stencil_op import apply_stencil
from ..stencil import gallery
from ..stencil.offsets import BoundaryMode
from ..stencil.pattern import pattern_from_offsets

#: Execution modes a campaign sweeps: (name, apply_stencil kwargs).
EXECUTION_MODES: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("blocked", {"block_depth": 3}),
    ("fast", {}),
    ("exact", {"exact": True}),
)

#: Gallery patterns a default campaign covers.
DEFAULT_PATTERNS: Tuple[str, ...] = (
    "cross5",
    "cross9",
    "square9",
    "diamond13",
    "asymmetric5",
)

#: Default per-exchange hard-fault rates: low enough that a seeded run
#: sees zero or a few hardware deaths, high enough that a five-seed
#: campaign exercises every kind.  A pinch of transient corruption keeps
#: the retry path honest alongside the remap path.
DEFAULT_RATES: Dict[str, float] = {
    "node_dead": 0.03,
    "link_down": 0.03,
    "node_slow": 0.03,
    "halo_corrupt": 0.05,
}


def boundary_variant(pattern, mode: str, fill_value: float = 1.5):
    """The gallery pattern rebuilt under a boundary mode (same taps)."""
    modes = {
        "torus": {1: BoundaryMode.CIRCULAR, 2: BoundaryMode.CIRCULAR},
        "fill": {1: BoundaryMode.FILL, 2: BoundaryMode.FILL},
    }[mode]
    return pattern_from_offsets(
        [tap.offset for tap in pattern.taps],
        name=f"{pattern.name}_{mode}",
        boundary=modes,
        fill_value=fill_value,
    )


@dataclass
class ChaosTrial:
    """One campaign cell: a (stencil, boundary, mode, seed) run."""

    stencil: str
    boundary: str
    mode: str
    seed: int
    survived: bool
    outcome: str  # "identical", "typed_error:<Name>", or "MISMATCH"
    reconciled: Optional[bool]
    injected: int
    detected: int
    stats: FaultStats = field(default_factory=FaultStats)

    @property
    def silent_corruption(self) -> bool:
        return self.outcome == "MISMATCH"

    def to_dict(self) -> Dict[str, object]:
        return {
            "stencil": self.stencil,
            "boundary": self.boundary,
            "mode": self.mode,
            "seed": self.seed,
            "survived": self.survived,
            "outcome": self.outcome,
            "reconciled": self.reconciled,
            "injected": self.injected,
            "detected": self.detected,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosTrial":
        return cls(
            stencil=str(data["stencil"]),
            boundary=str(data["boundary"]),
            mode=str(data["mode"]),
            seed=int(data["seed"]),
            survived=bool(data["survived"]),
            outcome=str(data["outcome"]),
            reconciled=(
                None
                if data.get("reconciled") is None
                else bool(data["reconciled"])
            ),
            injected=int(data["injected"]),
            detected=int(data["detected"]),
            stats=FaultStats.from_dict(dict(data["stats"])),
        )


@dataclass
class ChaosReport:
    """A whole campaign's trials plus the headline properties."""

    trials: List[ChaosTrial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def num_survived(self) -> int:
        return sum(1 for t in self.trials if t.survived)

    @property
    def survival_rate(self) -> float:
        return self.num_survived / self.num_trials if self.trials else 1.0

    @property
    def silent_corruptions(self) -> int:
        return sum(1 for t in self.trials if t.silent_corruption)

    @property
    def unreconciled(self) -> int:
        return sum(1 for t in self.trials if t.reconciled is False)

    @property
    def total_remaps(self) -> int:
        return sum(t.stats.remaps + t.stats.live_migrations for t in self.trials)

    @property
    def ok(self) -> bool:
        """The acceptance predicate: every trial survived bit-identically,
        every non-degraded trial reconciled, nothing silently corrupted."""
        return (
            self.num_survived == self.num_trials
            and self.silent_corruptions == 0
            and self.unreconciled == 0
        )

    def describe(self) -> str:
        lines = [
            f"chaos campaign: {self.num_survived}/{self.num_trials} trials "
            f"survived bit-identically "
            f"({100.0 * self.survival_rate:.1f}%), "
            f"{self.silent_corruptions} silent corruptions, "
            f"{self.unreconciled} accounting mismatches, "
            f"{self.total_remaps} node remaps/migrations"
        ]
        for trial in self.trials:
            if not trial.survived or trial.reconciled is False:
                lines.append(
                    f"  {trial.stencil}/{trial.boundary}/{trial.mode} "
                    f"seed {trial.seed}: {trial.outcome}"
                    + ("" if trial.reconciled is not False else ", UNRECONCILED")
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_trials": self.num_trials,
            "num_survived": self.num_survived,
            "survival_rate": self.survival_rate,
            "silent_corruptions": self.silent_corruptions,
            "unreconciled": self.unreconciled,
            "total_remaps": self.total_remaps,
            "ok": self.ok,
            "trials": [t.to_dict() for t in self.trials],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosReport":
        return cls(
            trials=[ChaosTrial.from_dict(dict(t)) for t in data["trials"]]
        )


def _build_problem(pattern, *, nodes: int, shape, spares: int, seed: int):
    """A deterministic problem instance: same seed, same bits."""
    params = MachineParams(num_nodes=nodes)
    machine = CM2(params, spares=spares)
    compiled = compile_stencil(pattern, params)
    rng = np.random.default_rng(seed)
    x = CMArray.from_numpy(
        "X", machine, rng.standard_normal(shape).astype(np.float32)
    )
    coeffs = {
        name: CMArray.from_numpy(
            name, machine, rng.standard_normal(shape).astype(np.float32)
        )
        for name in pattern.coefficient_names()
    }
    return machine, compiled, x, coeffs


def run_trial(
    stencil: str,
    boundary: str,
    mode: str,
    mode_kwargs: Dict[str, object],
    seed: int,
    *,
    nodes: int = 4,
    shape: Tuple[int, int] = (16, 24),
    iterations: int = 6,
    spares: int = 4,
    rates: Optional[Dict[str, float]] = None,
    schedule: Sequence[HardFaultSpec] = (),
    policy: Optional[ResiliencePolicy] = None,
) -> ChaosTrial:
    """One campaign cell: chaos run vs fault-free reference.

    The reference runs unguarded on its own pristine machine (its totals
    are the closed form the chaos run must reconcile against); the chaos
    run gets ``spares`` spare nodes and a remap budget to match.
    """
    pattern = boundary_variant(getattr(gallery, stencil)(), boundary)
    _, ref_compiled, ref_x, ref_coeffs = _build_problem(
        pattern, nodes=nodes, shape=shape, spares=0, seed=seed
    )
    reference = apply_stencil(
        ref_compiled, ref_x, ref_coeffs, "R_REF",
        iterations=iterations, **mode_kwargs,
    )
    expected = reference.result.to_numpy()

    _, compiled, x, coeffs = _build_problem(
        pattern, nodes=nodes, shape=shape, spares=spares, seed=seed
    )
    injector = FaultInjector(
        seed=seed,
        rates=dict(DEFAULT_RATES if rates is None else rates),
        schedule=schedule,
    )
    if policy is None:
        policy = ResiliencePolicy(max_remaps=max(1, spares))
    try:
        run = apply_stencil(
            compiled, x, coeffs, "R_CHAOS", iterations=iterations,
            faults=injector, resilience=policy, **mode_kwargs,
        )
    except FaultError as error:
        stats = FaultStats()
        return ChaosTrial(
            stencil=stencil,
            boundary=boundary,
            mode=mode,
            seed=seed,
            survived=False,
            outcome=f"typed_error:{type(error).__name__}",
            reconciled=None,
            injected=injector.total_injected,
            detected=0,
            stats=stats,
        )
    stats = run.fault_stats
    identical = bool(np.array_equal(run.result.to_numpy(), expected))
    degraded_rung = any("->" in step for step in stats.degradations)
    if degraded_rung:
        reconciled: Optional[bool] = None
    else:
        reconciled = (
            run.comm_cycles_total
            == reference.comm_cycles_total + stats.recovery_comm_cycles()
        ) and (
            run.compute_cycles_total
            == reference.compute_cycles_total
            + stats.recovery_compute_cycles()
        )
    return ChaosTrial(
        stencil=stencil,
        boundary=boundary,
        mode=mode,
        seed=seed,
        survived=identical,
        outcome="identical" if identical else "MISMATCH",
        reconciled=reconciled,
        injected=stats.total_injected,
        detected=stats.total_detected,
        stats=stats,
    )


def run_campaign(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    boundaries: Sequence[str] = ("torus", "fill"),
    modes: Sequence[Tuple[str, Dict[str, object]]] = EXECUTION_MODES,
    nodes: int = 4,
    shape: Tuple[int, int] = (16, 24),
    iterations: int = 6,
    spares: int = 4,
    rates: Optional[Dict[str, float]] = None,
) -> ChaosReport:
    """Sweep ``patterns x boundaries x modes x seeds``."""
    report = ChaosReport()
    for seed in seeds:
        for stencil in patterns:
            for boundary in boundaries:
                for mode, mode_kwargs in modes:
                    report.trials.append(
                        run_trial(
                            stencil, boundary, mode, dict(mode_kwargs),
                            seed, nodes=nodes, shape=shape,
                            iterations=iterations, spares=spares,
                            rates=rates,
                        )
                    )
    return report
