"""Fairness and throughput analysis for the multi-tenant service.

The machine is synchronous SIMD and the simulator's costs are modeled in
cycles, so service-level fairness is measured the same way everything
else in this repository is: in cycle terms, not wall-clock.  A tenant's
*allocation* is the modeled machine cycles (comm + compute) its jobs
consumed; Jain's fairness index over those allocations summarizes how
evenly the service carved the machine:

    J(x_1..x_n) = (sum x_i)^2 / (n * sum x_i^2)

J is 1 when every tenant consumed the same cycles, and falls toward
``1/n`` as one tenant monopolizes the machine.  Aggregate throughput is
useful flops over the service *makespan* -- the busiest partition's
modeled seconds -- which is what concurrency actually buys: the same
jobs run one after another cost the sum, run side by side they cost the
max.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def jain_index(allocations: Iterable[float]) -> float:
    """Jain's fairness index in [1/n, 1]; 1.0 for no or equal tenants."""
    values = [float(v) for v in allocations]
    if not values or all(v == 0 for v in values):
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    total = sum(values)
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def speedup(serial_seconds: float, makespan_seconds: float) -> float:
    """How much faster side-by-side execution was than back-to-back."""
    if makespan_seconds <= 0:
        return 1.0
    return serial_seconds / makespan_seconds


def format_tenant_table(rows: Sequence[dict]) -> str:
    """A fixed-width per-tenant accounting table.

    Each row is a mapping with ``tenant``, ``jobs``, ``cycles``,
    ``comm_cycles``, ``compute_cycles``, ``useful_flops``, ``mflops``,
    and ``share`` (fraction of all tenants' cycles) keys -- the shape
    :meth:`repro.service.accounting.ServiceAccounts.tenant_rows`
    produces.
    """
    header = (
        f"{'tenant':<12} {'jobs':>5} {'cycles':>14} {'comm':>12} "
        f"{'compute':>12} {'share':>7} {'Mflops':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row['tenant']):<12} {row['jobs']:>5} "
            f"{row['cycles']:>14} {row['comm_cycles']:>12} "
            f"{row['compute_cycles']:>12} {row['share']:>6.1%} "
            f"{row['mflops']:>9.1f}"
        )
    return "\n".join(lines)
