"""Useful-flop accounting, per the paper's counting rules.

"Only useful floating-point operations are counted; for example,
computation of one result for the [5-point] pattern is counted as 9
floating-point operations (5 multiplies and 4 adds), despite the fact
that it is executed on the CM-2 as 5 multiply-add steps, because one of
the adds is not really useful (it merely adds a product to zero)."
(paper section 7)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..stencil.pattern import StencilPattern


@dataclass(frozen=True)
class FlopAccounting:
    """Work accounting for one stencil applied to one point set.

    ``redundant_points`` covers temporal blocking: the halo ring's
    locally recomputed neighbor points.  They are issued and executed
    but never useful -- each one duplicates a point some neighbor also
    computes -- so they dilute usefulness without adding useful flops.
    """

    pattern_name: str
    points: int
    iterations: int
    useful_per_point: int
    issued_ma_per_point: int
    redundant_points: int = 0

    @property
    def useful_flops(self) -> int:
        return self.useful_per_point * self.points * self.iterations

    @property
    def redundant_flops(self) -> int:
        """Flops spent recomputing neighbors' points in the shrinking
        deep-halo ring (zero when unblocked)."""
        return self.useful_per_point * self.redundant_points

    @property
    def issued_flops(self) -> int:
        """Flops the hardware executes: 2 per multiply-add cycle."""
        return 2 * self.issued_ma_per_point * (
            self.points * self.iterations + self.redundant_points
        )

    @property
    def usefulness(self) -> float:
        """Fraction of issued flops that are useful: (2k-1)/2k for a
        k-coefficient stencil, further diluted by any redundant
        halo-ring points."""
        return self.useful_flops / self.issued_flops


def account(
    pattern: StencilPattern, points: int, iterations: int = 1
) -> FlopAccounting:
    """Build the flop accounting for ``points`` outputs of a pattern."""
    return FlopAccounting(
        pattern_name=pattern.name or "stencil",
        points=points,
        iterations=iterations,
        useful_per_point=pattern.useful_flops_per_point(),
        issued_ma_per_point=pattern.issued_multiply_adds_per_point(),
    )


def blocked_redundant_points(
    subgrid_shape: Tuple[int, int],
    pad: int,
    iterations: int,
    depth: int,
    nodes: int = 1,
) -> int:
    """Extra points computed per temporally blocked run, machine-wide.

    Sub-iteration ``t`` of a ``steps``-deep block writes the subgrid
    plus a ``(steps - 1 - t) * pad``-deep ghost ring; every ghost point
    duplicates a neighbor's interior point.  Depth 1 (or pad 0) is
    exactly zero.
    """
    # Imported here: analysis sits above runtime, but flops stays
    # import-light for the table/doc generators that only need account().
    from ..runtime.blocking import block_steps, sub_iteration_shapes

    rows, cols = subgrid_shape
    extra = 0
    for steps in block_steps(iterations, depth):
        for shape in sub_iteration_shapes(subgrid_shape, pad, steps):
            extra += shape[0] * shape[1] - rows * cols
    return extra * nodes


def account_blocked(
    pattern: StencilPattern,
    subgrid_shape: Tuple[int, int],
    iterations: int,
    depth: int,
    nodes: int = 1,
) -> FlopAccounting:
    """Flop accounting for a temporally blocked iterated run: useful
    work is unchanged, the halo ring's recomputation shows up as
    ``redundant_points``."""
    rows, cols = subgrid_shape
    pad = pattern.border_widths().max_width
    return FlopAccounting(
        pattern_name=pattern.name or "stencil",
        points=rows * cols * nodes,
        iterations=iterations,
        useful_per_point=pattern.useful_flops_per_point(),
        issued_ma_per_point=pattern.issued_multiply_adds_per_point(),
        redundant_points=blocked_redundant_points(
            subgrid_shape, pad, iterations, depth, nodes
        ),
    )


def account_batch(
    patterns,
    subgrid_shape: Tuple[int, int],
    batch: int,
    iterations: int = 1,
    nodes: int = 1,
    depths=None,
) -> Tuple[FlopAccounting, ...]:
    """Flop accounting for a batched multi-convolution, one entry per
    filter.

    Useful work scales with the batch -- every entry's every point is a
    distinct output -- and so does the temporal-blocking halo ring's
    redundant recomputation (each entry runs its own blocks).  The
    amortized costs of batching (shared halo exchanges, once-per-batch
    coefficient exchanges) are communication, not flops, so they do not
    appear here; see
    :class:`~repro.runtime.batch.BatchStencilRun` for those.
    """
    rows, cols = subgrid_shape
    if depths is None:
        depths = tuple(1 for _ in patterns)
    accounts = []
    for pattern, depth in zip(patterns, depths):
        pad = pattern.border_widths().max_width
        redundant = (
            blocked_redundant_points(
                subgrid_shape, pad, iterations, depth, nodes
            )
            * batch
            if depth > 1
            else 0
        )
        accounts.append(
            FlopAccounting(
                pattern_name=pattern.name or "stencil",
                points=rows * cols * nodes * batch,
                iterations=iterations,
                useful_per_point=pattern.useful_flops_per_point(),
                issued_ma_per_point=pattern.issued_multiply_adds_per_point(),
                redundant_points=redundant,
            )
        )
    return tuple(accounts)
