"""Useful-flop accounting, per the paper's counting rules.

"Only useful floating-point operations are counted; for example,
computation of one result for the [5-point] pattern is counted as 9
floating-point operations (5 multiplies and 4 adds), despite the fact
that it is executed on the CM-2 as 5 multiply-add steps, because one of
the adds is not really useful (it merely adds a product to zero)."
(paper section 7)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..stencil.pattern import StencilPattern


@dataclass(frozen=True)
class FlopAccounting:
    """Work accounting for one stencil applied to one point set."""

    pattern_name: str
    points: int
    iterations: int
    useful_per_point: int
    issued_ma_per_point: int

    @property
    def useful_flops(self) -> int:
        return self.useful_per_point * self.points * self.iterations

    @property
    def issued_flops(self) -> int:
        """Flops the hardware executes: 2 per multiply-add cycle."""
        return 2 * self.issued_ma_per_point * self.points * self.iterations

    @property
    def usefulness(self) -> float:
        """Fraction of issued flops that are useful: (2k-1)/2k for a
        k-coefficient stencil."""
        return self.useful_flops / self.issued_flops


def account(
    pattern: StencilPattern, points: int, iterations: int = 1
) -> FlopAccounting:
    """Build the flop accounting for ``points`` outputs of a pattern."""
    return FlopAccounting(
        pattern_name=pattern.name or "stencil",
        points=points,
        iterations=iterations,
        useful_per_point=pattern.useful_flops_per_point(),
        issued_ma_per_point=pattern.issued_multiply_adds_per_point(),
    )
