"""High-level sweep drivers: regenerate the paper's results table.

These are the programmatic equivalents of the benchmark harness,
packaged for downstream use (the ``results_table.py`` example prints
the full table with one call).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compiler.driver import compile_stencil
from ..machine.machine import CM2
from ..machine.params import MachineParams
from ..runtime.cm_array import CMArray
from ..runtime.stencil_op import StencilRun, apply_stencil
from ..stencil import gallery
from ..stencil.pattern import StencilPattern
from .timing import RateReport, report

#: The per-node subgrid sizes of the paper's results table.
PAPER_SUBGRIDS: Tuple[Tuple[int, int], ...] = (
    (64, 64),
    (64, 128),
    (128, 128),
    (128, 256),
    (256, 256),
)

#: Iteration counts roughly matching the paper's (more iterations for
#: smaller problems).
def paper_iterations(subgrid: Tuple[int, int]) -> int:
    points = subgrid[0] * subgrid[1]
    if points <= 64 * 64:
        return 500
    if points <= 128 * 128:
        return 250
    return 100


def run_cell(
    pattern: StencilPattern,
    subgrid: Tuple[int, int],
    *,
    num_nodes: int = 16,
    iterations: Optional[int] = None,
    params: Optional[MachineParams] = None,
) -> StencilRun:
    """Run one results-table cell (zero data; rates are data-independent)."""
    params = params or MachineParams(num_nodes=num_nodes)
    machine = CM2(params)
    gshape = (
        subgrid[0] * machine.grid_rows,
        subgrid[1] * machine.grid_cols,
    )
    compiled = compile_stencil(pattern, params)
    x = CMArray("X", machine, gshape)
    coefficients = {
        name: CMArray(name, machine, gshape)
        for name in pattern.coefficient_names()
    }
    return apply_stencil(
        compiled,
        x,
        coefficients,
        iterations=iterations or paper_iterations(subgrid),
    )


def table1_sweep(
    patterns: Optional[Sequence[StencilPattern]] = None,
    subgrids: Sequence[Tuple[int, int]] = PAPER_SUBGRIDS,
    *,
    num_nodes: int = 16,
    extrapolate_to: int = 2048,
) -> List[RateReport]:
    """The full 16-node stencil-group sweep of the results table."""
    if patterns is None:
        patterns = [
            gallery.cross5(),
            gallery.square9(),
            gallery.cross9(),
            gallery.diamond13(),
        ]
    reports: List[RateReport] = []
    for pattern in patterns:
        for subgrid in subgrids:
            run = run_cell(pattern, subgrid, num_nodes=num_nodes)
            reports.append(report(run, extrapolate_to=extrapolate_to))
    return reports
