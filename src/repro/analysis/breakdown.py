"""Cycle breakdown: where one stencil iteration's time goes.

Paper section 4 names the four bottlenecks that might obstruct the flop
rate: interprocessor communication, the floating-point unit, the
instruction sequencer, and the memory interface.  This module
decomposes a :class:`~repro.runtime.stencil_op.StencilRun` into exactly
those buckets (plus the front end, which section 7 adds in practice),
so the design choices can be read straight off the numbers: dummy
multiply-adds from odd widths, load/store cycles the multistencil is
minimizing, the per-line sequencer overhead the LCM unrolling keeps off
the critical path, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..machine.isa import LoadOp, MAOp, NopOp, StoreOp
from ..machine.params import MachineParams
from ..runtime.stencil_op import StencilRun
from ..runtime.strips import StripSchedule


@dataclass
class CycleBreakdown:
    """Per-iteration node cycles by activity, plus host time.

    The compute buckets sum exactly to the run's compute cycle count
    (tests assert it); communication and host time are reported in the
    same units for an end-to-end share picture.
    """

    useful_ma: int = 0
    dummy_ma: int = 0
    loads: int = 0
    stores: int = 0
    pipeline_gaps: int = 0  # fill + drain + solo interleave
    sequencer: int = 0  # line overhead + dispatch + strip setup
    communication: int = 0
    host_cycles: float = 0.0  # front-end time, expressed in node cycles

    @property
    def compute_total(self) -> int:
        return (
            self.useful_ma
            + self.dummy_ma
            + self.loads
            + self.stores
            + self.pipeline_gaps
            + self.sequencer
        )

    @property
    def grand_total(self) -> float:
        return self.compute_total + self.communication + self.host_cycles

    def shares(self) -> Dict[str, float]:
        total = self.grand_total
        return {
            "useful multiply-adds": self.useful_ma / total,
            "dummy multiply-adds": self.dummy_ma / total,
            "loads": self.loads / total,
            "stores": self.stores / total,
            "pipeline gaps": self.pipeline_gaps / total,
            "sequencer overhead": self.sequencer / total,
            "communication": self.communication / total,
            "front end": self.host_cycles / total,
        }

    def describe(self) -> str:
        lines = ["cycle breakdown (per iteration, per node):"]
        for label, share in self.shares().items():
            lines.append(f"  {label:<22} {share:7.2%}")
        return "\n".join(lines)


def breakdown_run(run: StencilRun) -> CycleBreakdown:
    """Decompose one run's per-iteration time into the section 4 buckets."""
    params = run.params
    schedule = StripSchedule(run.compiled, run.result.subgrid_shape)
    breakdown = CycleBreakdown()

    for strip in schedule.strips:
        breakdown.sequencer += params.strip_setup_cycles
        for job in strip.half_strips:
            if job.lines <= 0:
                continue
            breakdown.sequencer += params.half_strip_dispatch_cycles
            breakdown.sequencer += job.lines * params.sequencer_line_overhead
            for line_index in range(job.lines):
                pattern = strip.plan.pattern_for_line(line_index)
                _count_line(pattern.ops, breakdown, params)

    breakdown.communication = run.comm.cycles
    breakdown.host_cycles = (
        run.host_seconds_per_iteration * params.clock_hz
    )
    return breakdown


def _count_line(ops, breakdown: CycleBreakdown, params: MachineParams) -> None:
    previous = None
    for op in ops:
        if isinstance(op, MAOp):
            breakdown.useful_ma += 1
        elif isinstance(op, LoadOp):
            breakdown.loads += 1
        elif isinstance(op, StoreOp):
            breakdown.stores += 1
        elif isinstance(op, NopOp):
            if op.reason == "mem-transfer":
                # The transfer cycle belongs to the load/store it extends.
                if isinstance(previous, LoadOp):
                    breakdown.loads += 1
                else:
                    breakdown.stores += 1
            elif op.reason == "solo-interleave":
                breakdown.dummy_ma += 1
            else:
                breakdown.pipeline_gaps += 1
        if not (isinstance(op, NopOp) and op.reason == "mem-transfer"):
            previous = op
