"""Rates, extrapolation, and the paper's timing methodology.

The paper reports sustained rates over >= 100 iterations of elapsed wall
clock, and extrapolates 16-node measurements to the full 2,048-node
machine by scaling linearly: "the CM-2 is a completely synchronous SIMD
machine; the time required for computation and grid communication does
not change as the number of nodes is increased.  Experience ... has
shown that such extrapolations are quite reliable."

We provide both that linear extrapolation and an honest re-simulation at
the target size.  The two differ slightly: the front-end overhead is a
single host regardless of machine size, so a real 2,048-node run with
small subgrids falls short of the linear extrapolation -- exactly the gap
visible in the paper between the 13.65-Gflops extrapolated row and the
11.62-Gflops measured 2,048-node run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.params import MachineParams
from ..runtime.stencil_op import StencilRun


@dataclass(frozen=True)
class RateReport:
    """A results-table row in the paper's units."""

    stencil: str
    subgrid_rows: int
    subgrid_cols: int
    nodes: int
    iterations: int
    elapsed_seconds: float
    measured_mflops: float
    extrapolated_gflops: float
    block_depth: int = 1
    exchanges: int = 0
    #: Chaos-run accounting (all zero/empty on ordinary runs).  The
    #: measured rate above already includes the retry, checkpoint, and
    #: replay cycles, so a degraded run reports honest (lower) Gflops.
    faults_injected: int = 0
    faults_detected: int = 0
    retries: int = 0
    rollbacks: int = 0
    degradations: tuple = ()
    #: Hard-fault recovery accounting (all zero on ordinary runs).
    probes: int = 0
    timeouts: int = 0
    reroutes: int = 0
    remaps: int = 0
    live_migrations: int = 0

    def row(self) -> str:
        blocked = f" T={self.block_depth}" if self.block_depth > 1 else ""
        chaos = ""
        if self.faults_injected or self.faults_detected or self.retries:
            chaos = (
                f" [chaos: {self.faults_injected} injected, "
                f"{self.faults_detected} detected, {self.retries} retries, "
                f"{self.rollbacks} rollbacks"
            )
            hard = []
            if self.timeouts:
                hard.append(f"{self.timeouts} timeouts")
            if self.probes:
                hard.append(f"{self.probes} probes")
            if self.reroutes:
                hard.append(f"{self.reroutes} reroutes")
            if self.remaps:
                hard.append(f"{self.remaps} remaps")
            if self.live_migrations:
                hard.append(f"{self.live_migrations} live migrations")
            if hard:
                chaos += ", " + ", ".join(hard)
            if self.degradations:
                chaos += ", degraded " + ", ".join(self.degradations)
            chaos += "]"
        return (
            f"{self.stencil:<12} {self.subgrid_rows:>4}x{self.subgrid_cols:<5} "
            f"{self.nodes:>5} {self.iterations:>6} "
            f"{self.elapsed_seconds:>9.2f} s "
            f"{self.measured_mflops:>8.1f} Mflops "
            f"{self.extrapolated_gflops:>7.2f} Gflops{blocked}{chaos}"
        )


def extrapolate_mflops(
    measured_mflops: float, from_nodes: int, to_nodes: int
) -> float:
    """The paper's linear extrapolation between machine sizes."""
    return measured_mflops * to_nodes / from_nodes


def report(run: StencilRun, *, extrapolate_to: int = 2048) -> RateReport:
    """Summarize a stencil run as a results-table row."""
    rows, cols = run.result.subgrid_shape
    measured = run.mflops
    fault_stats = run.fault_stats
    return RateReport(
        stencil=run.compiled.pattern.name or "stencil",
        subgrid_rows=rows,
        subgrid_cols=cols,
        nodes=run.machine.num_nodes,
        iterations=run.iterations,
        elapsed_seconds=run.elapsed_seconds,
        measured_mflops=measured,
        extrapolated_gflops=extrapolate_mflops(
            measured, run.machine.num_nodes, extrapolate_to
        )
        / 1e3,
        block_depth=run.block_depth,
        exchanges=run.exchanges,
        faults_injected=fault_stats.total_injected,
        faults_detected=fault_stats.total_detected,
        retries=fault_stats.retries,
        rollbacks=fault_stats.rollbacks,
        degradations=fault_stats.degradations,
        probes=fault_stats.probes,
        timeouts=fault_stats.timeouts,
        reroutes=fault_stats.reroutes,
        remaps=fault_stats.remaps,
        live_migrations=fault_stats.live_migrations,
    )


def resimulated_gflops(run: StencilRun, to_nodes: int) -> float:
    """The honest alternative to linear extrapolation: the rate a
    ``to_nodes`` machine would actually sustain, with per-node time
    unchanged (SIMD) but the single front end's overhead *not* scaling
    away.
    """
    seconds = run.seconds_per_iteration  # unchanged per-node + host time
    flops = run.useful_flops_per_node_per_iteration * to_nodes
    return flops / seconds / 1e9
