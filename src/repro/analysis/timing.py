"""Rates, extrapolation, and the paper's timing methodology.

The paper reports sustained rates over >= 100 iterations of elapsed wall
clock, and extrapolates 16-node measurements to the full 2,048-node
machine by scaling linearly: "the CM-2 is a completely synchronous SIMD
machine; the time required for computation and grid communication does
not change as the number of nodes is increased.  Experience ... has
shown that such extrapolations are quite reliable."

We provide both that linear extrapolation and an honest re-simulation at
the target size.  The two differ slightly: the front-end overhead is a
single host regardless of machine size, so a real 2,048-node run with
small subgrids falls short of the linear extrapolation -- exactly the gap
visible in the paper between the 13.65-Gflops extrapolated row and the
11.62-Gflops measured 2,048-node run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.params import MachineParams
from ..runtime.stencil_op import StencilRun


@dataclass(frozen=True)
class RateReport:
    """A results-table row in the paper's units."""

    stencil: str
    subgrid_rows: int
    subgrid_cols: int
    nodes: int
    iterations: int
    elapsed_seconds: float
    measured_mflops: float
    extrapolated_gflops: float
    block_depth: int = 1
    exchanges: int = 0
    #: Chaos-run accounting (all zero/empty on ordinary runs).  The
    #: measured rate above already includes the retry, checkpoint, and
    #: replay cycles, so a degraded run reports honest (lower) Gflops.
    faults_injected: int = 0
    faults_detected: int = 0
    retries: int = 0
    rollbacks: int = 0
    degradations: tuple = ()
    #: Hard-fault recovery accounting (all zero on ordinary runs).
    probes: int = 0
    timeouts: int = 0
    reroutes: int = 0
    remaps: int = 0
    live_migrations: int = 0

    def row(self) -> str:
        blocked = f" T={self.block_depth}" if self.block_depth > 1 else ""
        chaos = ""
        if self.faults_injected or self.faults_detected or self.retries:
            chaos = (
                f" [chaos: {self.faults_injected} injected, "
                f"{self.faults_detected} detected, {self.retries} retries, "
                f"{self.rollbacks} rollbacks"
            )
            hard = []
            if self.timeouts:
                hard.append(f"{self.timeouts} timeouts")
            if self.probes:
                hard.append(f"{self.probes} probes")
            if self.reroutes:
                hard.append(f"{self.reroutes} reroutes")
            if self.remaps:
                hard.append(f"{self.remaps} remaps")
            if self.live_migrations:
                hard.append(f"{self.live_migrations} live migrations")
            if hard:
                chaos += ", " + ", ".join(hard)
            if self.degradations:
                chaos += ", degraded " + ", ".join(self.degradations)
            chaos += "]"
        return (
            f"{self.stencil:<12} {self.subgrid_rows:>4}x{self.subgrid_cols:<5} "
            f"{self.nodes:>5} {self.iterations:>6} "
            f"{self.elapsed_seconds:>9.2f} s "
            f"{self.measured_mflops:>8.1f} Mflops "
            f"{self.extrapolated_gflops:>7.2f} Gflops{blocked}{chaos}"
        )


def extrapolate_mflops(
    measured_mflops: float, from_nodes: int, to_nodes: int
) -> float:
    """The paper's linear extrapolation between machine sizes."""
    return measured_mflops * to_nodes / from_nodes


def report(run: StencilRun, *, extrapolate_to: int = 2048) -> RateReport:
    """Summarize a stencil run as a results-table row."""
    rows, cols = run.result.subgrid_shape
    measured = run.mflops
    fault_stats = run.fault_stats
    return RateReport(
        stencil=run.compiled.pattern.name or "stencil",
        subgrid_rows=rows,
        subgrid_cols=cols,
        nodes=run.machine.num_nodes,
        iterations=run.iterations,
        elapsed_seconds=run.elapsed_seconds,
        measured_mflops=measured,
        extrapolated_gflops=extrapolate_mflops(
            measured, run.machine.num_nodes, extrapolate_to
        )
        / 1e3,
        block_depth=run.block_depth,
        exchanges=run.exchanges,
        faults_injected=fault_stats.total_injected,
        faults_detected=fault_stats.total_detected,
        retries=fault_stats.retries,
        rollbacks=fault_stats.rollbacks,
        degradations=fault_stats.degradations,
        probes=fault_stats.probes,
        timeouts=fault_stats.timeouts,
        reroutes=fault_stats.reroutes,
        remaps=fault_stats.remaps,
        live_migrations=fault_stats.live_migrations,
    )


def resimulated_gflops(run: StencilRun, to_nodes: int) -> float:
    """The honest alternative to linear extrapolation: the rate a
    ``to_nodes`` machine would actually sustain, with per-node time
    unchanged (SIMD) but the single front end's overhead *not* scaling
    away.
    """
    seconds = run.seconds_per_iteration  # unchanged per-node + host time
    flops = run.useful_flops_per_node_per_iteration * to_nodes
    return flops / seconds / 1e9


@dataclass(frozen=True)
class BatchFilterRow:
    """One filter's line of a batched-run results table."""

    stencil: str
    block_depth: int
    shared_exchanges: int
    own_exchanges: int
    coeff_exchanges: int
    comm_share: float
    mflops: float

    def row(self) -> str:
        blocked = f" T={self.block_depth}" if self.block_depth > 1 else ""
        return (
            f"  {self.stencil:<12} {self.shared_exchanges:>4} shared "
            f"{self.own_exchanges:>5} own {self.coeff_exchanges:>3} coeff "
            f"{self.comm_share:>5.1%} comm {self.mflops:>8.1f} Mflops"
            f"{blocked}"
        )


@dataclass(frozen=True)
class BatchRateReport:
    """A batched multi-convolution's results-table block: the aggregate
    line (the number the amortization argument is about) plus one
    attribution row per filter.

    Per-filter Mflops divide the run's elapsed time by each filter's
    share of total machine cycles -- host overhead is shared pro rata,
    since the front end issues group passes, not per-filter calls.
    """

    batch: int
    filters: int
    nodes: int
    subgrid_rows: int
    subgrid_cols: int
    iterations: int
    elapsed_seconds: float
    measured_mflops: float
    extrapolated_gflops: float
    num_exchanges: int
    host_calls: int
    per_filter: tuple

    def rows(self) -> str:
        head = (
            f"batch {self.batch:>3} x {self.filters} filters "
            f"{self.subgrid_rows:>4}x{self.subgrid_cols:<5} "
            f"{self.nodes:>5} {self.iterations:>6} "
            f"{self.elapsed_seconds:>9.4f} s "
            f"{self.measured_mflops:>8.1f} Mflops "
            f"{self.extrapolated_gflops:>7.2f} Gflops "
            f"[{self.num_exchanges} msgs, {self.host_calls} host calls]"
        )
        return "\n".join([head] + [row.row() for row in self.per_filter])


def batch_report(run, *, extrapolate_to: int = 2048) -> BatchRateReport:
    """Summarize a :class:`~repro.runtime.batch.BatchStencilRun`.

    The aggregate rate is useful flops over elapsed wall clock for the
    whole batch -- the number to compare against a loop of solo runs.
    """
    rows, cols = run.result.subgrid_shape
    measured = run.mflops
    total_cycles = max(
        run.total_comm_cycles + run.total_compute_cycles, 1
    )
    per_filter = []
    for cost in run.per_filter:
        cycles = cost.comm_cycles + cost.compute_cycles
        share = cycles / total_cycles
        seconds = run.elapsed_seconds * share
        per_filter.append(
            BatchFilterRow(
                stencil=cost.name,
                block_depth=cost.block_depth,
                shared_exchanges=cost.shared_exchanges,
                own_exchanges=cost.own_exchanges,
                coeff_exchanges=cost.coeff_exchanges,
                comm_share=share,
                mflops=(
                    cost.useful_flops / seconds / 1e6 if seconds > 0 else 0.0
                ),
            )
        )
    return BatchRateReport(
        batch=run.batch,
        filters=len(run.filters),
        nodes=run.machine.num_nodes,
        subgrid_rows=rows,
        subgrid_cols=cols,
        iterations=run.iterations,
        elapsed_seconds=run.elapsed_seconds,
        measured_mflops=measured,
        extrapolated_gflops=extrapolate_mflops(
            measured, run.machine.num_nodes, extrapolate_to
        )
        / 1e3,
        num_exchanges=run.num_exchanges,
        host_calls=run.host_calls,
        per_filter=tuple(per_filter),
    )
