"""Measurement, reporting, and extrapolation."""

from .breakdown import CycleBreakdown, breakdown_run
from .chaos import ChaosReport, ChaosTrial, run_campaign, run_trial
from .flops import (
    FlopAccounting,
    account,
    account_blocked,
    blocked_redundant_points,
)
from . import roofline
from .stability import (
    gravity_wave_courant,
    is_von_neumann_stable,
    leapfrog_stability_limit,
    leapfrog_theta,
    max_amplification,
    standing_wave_amplitude,
    symbol,
)
from .sweeps import PAPER_SUBGRIDS, paper_iterations, run_cell, table1_sweep
from .tables import format_comparison, format_table
from .timing import RateReport, extrapolate_mflops, report, resimulated_gflops

__all__ = [
    "CycleBreakdown",
    "FlopAccounting",
    "breakdown_run",
    "PAPER_SUBGRIDS",
    "paper_iterations",
    "run_cell",
    "gravity_wave_courant",
    "is_von_neumann_stable",
    "leapfrog_stability_limit",
    "leapfrog_theta",
    "max_amplification",
    "standing_wave_amplitude",
    "symbol",
    "roofline",
    "table1_sweep",
    "ChaosReport",
    "ChaosTrial",
    "run_campaign",
    "run_trial",
    "RateReport",
    "account",
    "account_blocked",
    "blocked_redundant_points",
    "extrapolate_mflops",
    "format_comparison",
    "format_table",
    "report",
    "resimulated_gflops",
]
