"""Discrete stability and dispersion analysis for stencil time-steppers.

The application kernels all ride on explicit schemes whose stability
and wave speeds follow from the stencil weights.  This module computes
the von Neumann amplification factor of an arbitrary stencil pattern
(interpreting its scalar taps as update weights) and the exact discrete
dispersion relations of the leapfrog wave kernels, giving the apps and
tests one analytic authority instead of scattered formulas.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, Optional, Tuple

import numpy as np

from ..stencil.pattern import CoeffKind, StencilPattern


def symbol(
    pattern: StencilPattern, ky: float, kx: float
) -> complex:
    """The stencil's Fourier symbol at wavenumbers ``(ky, kx)``.

    For an update ``u' = sum_j c_j u(x + d_j)`` with scalar weights, the
    mode ``exp(i(ky y + kx x))`` is an eigenfunction with eigenvalue
    ``sum_j c_j exp(i(ky dy_j + kx dx_j))``.

    Raises:
        ValueError: if the pattern carries non-scalar coefficients (the
            symbol would vary over the grid).
    """
    total = 0.0 + 0.0j
    for tap in pattern.taps:
        if tap.coeff.kind is not CoeffKind.SCALAR:
            raise ValueError(
                "von Neumann analysis needs scalar stencil weights; "
                f"tap {tap.describe()} is not scalar"
            )
        if tap.is_constant_term:
            continue  # affine part does not affect amplification
        total += tap.coeff.value * cmath.exp(
            1j * (ky * tap.dy + kx * tap.dx)
        )
    return total


def max_amplification(
    pattern: StencilPattern, *, samples: int = 64
) -> float:
    """The largest |symbol| over a wavenumber grid.

    A single-step update is von Neumann stable iff this is <= 1 (up to
    sampling resolution).
    """
    worst = 0.0
    for i in range(samples):
        ky = 2.0 * math.pi * i / samples
        for j in range(samples):
            kx = 2.0 * math.pi * j / samples
            worst = max(worst, abs(symbol(pattern, ky, kx)))
    return worst


def is_von_neumann_stable(
    pattern: StencilPattern, *, samples: int = 64, tolerance: float = 1e-9
) -> bool:
    """Whether the single-step update never amplifies any Fourier mode."""
    return max_amplification(pattern, samples=samples) <= 1.0 + tolerance


# ----------------------------------------------------------------------
# Leapfrog dispersion (the wave kernels)
# ----------------------------------------------------------------------


def leapfrog_theta(lam2: float, mu: float) -> float:
    """Phase advance per step of ``p'' = (2 - lam2*mu) p' - p``.

    ``mu`` is the (positive) symbol of the discrete Laplacian on the
    mode; stability requires ``lam2 * mu <= 4``.
    """
    cos_theta = 1.0 - lam2 * mu / 2.0
    if cos_theta < -1.0:
        raise ValueError(
            f"unstable mode: lam2*mu = {lam2 * mu:.3f} exceeds 4"
        )
    return math.acos(max(-1.0, min(1.0, cos_theta)))


def mode_mu_2d(ky_index: int, kx_index: int, shape: Tuple[int, int]) -> float:
    """Discrete 5-point Laplacian symbol of the standing-wave mode
    ``sin(2 pi ky y / R) sin(2 pi kx x / C)``."""
    rows, cols = shape
    return 4.0 * (
        math.sin(math.pi * ky_index / rows) ** 2
        + math.sin(math.pi * kx_index / cols) ** 2
    )


def standing_wave_amplitude(
    steps: int, lam2: float, ky_index: int, kx_index: int,
    shape: Tuple[int, int],
) -> float:
    """Exact amplitude after ``steps`` leapfrog updates from the
    equal-start initialization ``p^0 = p^(-1)`` (the WaveSolver's)."""
    theta = leapfrog_theta(lam2, mode_mu_2d(ky_index, kx_index, shape))
    if theta == 0.0:
        return 1.0
    return math.cos(steps * theta + theta / 2.0) / math.cos(theta / 2.0)


def leapfrog_stability_limit(dimensions: int = 2) -> float:
    """The Courant limit of the second-order leapfrog scheme: the mode
    with ``mu = 4 * dimensions`` must satisfy ``lam2 * mu <= 4``."""
    return 1.0 / math.sqrt(dimensions)


def gravity_wave_courant(depth: float, dt: float, dx: float, g: float = 9.81) -> float:
    """Courant number of shallow-water gravity waves."""
    return math.sqrt(g * depth) * dt / dx
