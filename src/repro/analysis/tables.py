"""Formatting for the paper's results table."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .timing import RateReport

_HEADER = (
    f"{'Stencil':<12} {'Subgrid':<10} {'Nodes':>5} {'Iters':>6} "
    f"{'Elapsed':>11} {'Measured':>15} {'Extrapolated':>14}"
)


def format_table(reports: Sequence[RateReport]) -> str:
    """Render rows in the layout of the paper's section 7 table."""
    lines: List[str] = [_HEADER, "-" * len(_HEADER)]
    last_stencil: Optional[str] = None
    for item in reports:
        if last_stencil is not None and item.stencil != last_stencil:
            lines.append("")
        last_stencil = item.stencil
        lines.append(item.row())
    return "\n".join(lines)


def format_comparison(
    rows: Iterable[
        "tuple[str, float, float]"
    ],  # (label, paper value, measured value)
    *,
    unit: str = "Gflops",
) -> str:
    """Paper-vs-measured comparison table for EXPERIMENTS.md."""
    lines = [
        f"{'Case':<34} {'Paper':>10} {'Ours':>10} {'Ratio':>7}",
        "-" * 64,
    ]
    for label, paper, ours in rows:
        ratio = ours / paper if paper else float("nan")
        lines.append(
            f"{label:<34} {paper:>7.2f} {unit[:3]} {ours:>7.2f} {unit[:3]} "
            f"{ratio:>6.2f}x"
        )
    return "\n".join(lines)
