"""Static verification of compiled stencil plans and stencil Fortran.

Three cooperating analyzers, all purely static (no plan is ever
executed):

* :mod:`repro.verify.dataflow` -- symbolic execution of the abstract op
  streams (use-before-def, clobbered live slots, writeback/reversal
  timing, store sets, cost-model divergence);
* :mod:`repro.verify.lifetimes` -- ring-buffer live ranges over a full
  LCM period (overlaps, double-booked or unused registers, undersized
  rings, bad unroll factors);
* :mod:`repro.verify.lint` -- source-span diagnostics for the Fortran
  front end (``repro lint``), plus :mod:`repro.verify.aliasing` for the
  run-time call boundary;
* :mod:`repro.verify.concurrency` -- the ``repro racecheck`` analyzer:
  lock/guard discipline of repro's own threaded control plane
  (RS701-RS706), validated at run time by the opt-in
  :mod:`repro.verify.lockdep` instrumented locks (``RS_LOCKDEP=1``).

``verify_plan`` is wired into the compile driver behind ``RS_VERIFY=1``
so every freshly compiled plan is proven before it is cached; the
``repro verify`` subcommand (and the CI ``verify`` job) sweep the whole
stencil gallery across every width and both ring-sizing strategies.

The ``RS###`` error-code catalogue lives in ``docs/INTERNALS.md``
section 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.params import MachineParams
from ..stencil.multistencil import multistencil_widths
from .aliasing import AliasingError, check_aliasing, ensure_no_aliasing
from .concurrency import (
    RaceCheckResult,
    analyze_sources,
    predicted_lock_graph,
    racecheck_paths,
)
from .dataflow import analyze_dataflow, check_register_usage
from .diagnostics import (
    Diagnostic,
    has_errors,
    plan_error,
    render_diagnostics,
    with_context,
)
from .lifetimes import analyze_lifetimes
from .lint import DEFAULT_MAX_HALO, lint_path, lint_source

__all__ = [
    "AliasingError",
    "DEFAULT_MAX_HALO",
    "RaceCheckResult",
    "VerificationError",
    "analyze_dataflow",
    "analyze_lifetimes",
    "analyze_sources",
    "assert_verified",
    "check_aliasing",
    "check_register_usage",
    "ensure_no_aliasing",
    "has_errors",
    "lint_path",
    "lint_source",
    "predicted_lock_graph",
    "racecheck_paths",
    "render_diagnostics",
    "verify_compiled",
    "verify_gallery",
    "verify_plan",
]


class VerificationError(Exception):
    """A compiled plan failed static verification (``RS_VERIFY=1``)."""

    def __init__(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics = diagnostics
        lines = [f"{len(diagnostics)} static verification failure(s):"]
        lines += [f"  {d.describe()}" for d in diagnostics[:10]]
        if len(diagnostics) > 10:
            lines.append(f"  ... and {len(diagnostics) - 10} more")
        super().__init__("\n".join(lines))


def verify_plan(
    plan,
    params: Optional[MachineParams] = None,
    *,
    pattern=None,
    label: Optional[str] = None,
) -> List[Diagnostic]:
    """Run every static analyzer over one width plan.

    Returns the combined diagnostics (empty for a provably well-formed
    plan).  A plan too mangled to walk at all yields a single ``RS405``
    diagnostic rather than an exception, so mutation tests and the CI
    gate always get a diagnosis.
    """
    params = params or MachineParams()
    try:
        diagnostics = analyze_dataflow(plan, params, pattern=pattern)
        diagnostics += analyze_lifetimes(plan.allocation, params)
        diagnostics += check_register_usage(plan)
    except Exception as exc:  # noqa: BLE001 -- diagnose, don't crash
        diagnostics = [
            plan_error(
                "RS405",
                f"plan structure unanalyzable ({type(exc).__name__}: {exc})",
            )
        ]
    return with_context(diagnostics, label)


def verify_compiled(compiled) -> List[Diagnostic]:
    """Verify every width plan of a compiled stencil."""
    label = compiled.pattern.name or "stencil"
    diagnostics: List[Diagnostic] = []
    for width, plan in compiled.plans.items():
        diagnostics += verify_plan(
            plan,
            compiled.params,
            pattern=compiled.pattern,
            label=f"{label} width {width}",
        )
    return diagnostics


def assert_verified(compiled) -> None:
    """Raise :class:`VerificationError` if any plan fails verification."""
    diagnostics = verify_compiled(compiled)
    if has_errors(diagnostics):
        raise VerificationError(diagnostics)


def verify_gallery(
    params: Optional[MachineParams] = None,
    *,
    strategies: Sequence[str] = ("paper", "optimal"),
    widths: Sequence[int] = multistencil_widths(),
) -> Dict[Tuple[str, str], List[Diagnostic]]:
    """Sweep the stencil gallery through the verifier.

    Every gallery pattern x every feasible width in ``widths`` x every
    ring-sizing strategy; returns diagnostics keyed by
    ``(pattern name, strategy)`` (empty lists for clean compilations).
    """
    from ..compiler.plan import compile_pattern
    from ..stencil import gallery

    params = params or MachineParams()
    patterns = gallery.table1_patterns() + (
        gallery.asymmetric5(),
        gallery.border_demo(),
    )
    results: Dict[Tuple[str, str], List[Diagnostic]] = {}
    for pattern in patterns:
        for strategy in strategies:
            compiled = compile_pattern(
                pattern, params, widths, strategy=strategy
            )
            results[(pattern.name, strategy)] = verify_compiled(compiled)
    return results
