"""``repro lint``: source-level diagnostics for stencil Fortran.

Runs the real front end (lexer, parser, recognizer) over a source file
and renders everything it learns as caret-underlined diagnostics with
``RS###`` codes and fix-its, in the spirit of the feedback loop the
paper's section 6 plans for its stencil directive:

* ``RS001``/``RS002`` lex/parse errors (spans from the token stream);
* ``RS101`` the stencil's halo exceeds what the run-time exchange is
  configured to provide (``--max-halo``);
* ``RS102`` mixed CSHIFT/EOSHIFT boundary treatment on one axis;
* ``RS201`` (warning) positional ``CSHIFT(X, k, m)``: the paper reads
  positional extras as ``(DIM, SHIFT)`` -- the *reverse* of standard
  Fortran 90's ``CSHIFT(ARRAY, SHIFT, DIM)`` -- so the linter suggests
  the unambiguous keyword form as a fix-it;
* ``RS301`` a statement (or sub-expression) outside the sum-of-products
  stencil form, with the offending region underlined.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..fortran.ast_nodes import (
    Assignment,
    BinOp,
    Call,
    Expr,
    IntLit,
    Subroutine,
    UnaryOp,
)
from ..fortran.errors import Diagnostic, FortranError, NotAStencilError
from ..fortran.parser import parse_assignment, parse_program
from ..fortran.recognizer import recognize_assignment
from .diagnostics import has_errors  # noqa: F401  (re-exported for callers)

#: Default ceiling on a stencil's halo reach (``RS101``).  The run-time
#: exchange pads by the stencil's own maximum border width, so any halo
#: is *expressible*; but a reach this deep means more halo traffic than
#: interior compute on era-appropriate subgrids, so it is almost always
#: a sign of a mistyped shift amount.  Override with ``--max-halo``.
DEFAULT_MAX_HALO = 16

_SHIFT_FUNCS = ("CSHIFT", "EOSHIFT")


def _walk_calls(expr: Optional[Expr]) -> Iterator[Call]:
    """Yield every Call in ``expr``, innermost first."""
    if expr is None:
        return
    if isinstance(expr, Call):
        for arg in expr.args:
            yield from _walk_calls(arg)
        for _, value in expr.kwargs:
            yield from _walk_calls(value)
        yield expr
    elif isinstance(expr, BinOp):
        yield from _walk_calls(expr.left)
        yield from _walk_calls(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from _walk_calls(expr.operand)


def _literal_int(expr: Expr) -> Optional[int]:
    """A compile-time integer (with unary signs), or None."""
    sign = 1
    while isinstance(expr, UnaryOp) and expr.op in ("+", "-"):
        if expr.op == "-":
            sign = -sign
        expr = expr.operand
    if isinstance(expr, IntLit):
        return sign * expr.value
    return None


def _positional_shift_fixit(call: Call) -> Optional[str]:
    """The keyword spelling of a positional CSHIFT/EOSHIFT call."""
    if len(call.args) < 3:
        return None
    dim = _literal_int(call.args[1])
    shift = _literal_int(call.args[2])
    if dim is None or shift is None:
        return None
    fixed = f"{call.func}({call.args[0].describe()}, DIM={dim}, SHIFT={shift:+d}"
    if len(call.args) >= 4:
        fixed += f", BOUNDARY={call.args[3].describe()}"
    return fixed + ")"


def _lint_statement(
    statement: Assignment,
    diagnostics: List[Diagnostic],
    *,
    name: Optional[str],
    ranks,
    max_halo: int,
) -> None:
    # RS201: positional shift arguments follow the paper's (DIM, SHIFT)
    # convention -- the reverse of standard Fortran 90.  Warn wherever a
    # reader could be misled, i.e. whenever both extras are positional.
    for call in _walk_calls(statement.expr):
        if call.func in _SHIFT_FUNCS and len(call.args) >= 3:
            diagnostics.append(
                Diagnostic(
                    "warning",
                    f"positional {call.func} arguments are read as "
                    "(ARRAY, DIM, SHIFT) -- the paper's convention, "
                    "reversed from standard Fortran 90; spell out the "
                    "keywords to remove the ambiguity",
                    call.location,
                    code="RS201",
                    span=call.span,
                    fixit=_positional_shift_fixit(call),
                )
            )

    # RS102/RS301: run the real recognizer; its exceptions carry spans
    # and codes (RS102 for mixed boundary treatment, RS301 otherwise).
    try:
        pattern = recognize_assignment(statement, name=name, ranks=ranks)
    except NotAStencilError as exc:
        diagnostics.append(exc.to_diagnostic())
        return

    # RS101: the recognized stencil's reach versus the halo ceiling.
    borders = pattern.border_widths()
    if borders.max_width > max_halo:
        diagnostics.append(
            Diagnostic(
                "error",
                f"stencil reaches {borders.max_width} cells from its "
                f"center (N={borders.north} S={borders.south} "
                f"W={borders.west} E={borders.east}); the halo exchange "
                f"is capped at {max_halo} (raise with --max-halo if "
                "intended)",
                statement.location,
                code="RS101",
                span=statement.span,
            )
        )


def _lint_subroutine(
    sub: Subroutine, diagnostics: List[Diagnostic], *, max_halo: int
) -> None:
    ranks = {
        array: decl.rank for decl in sub.declarations for array in decl.names
    }
    for index, statement in enumerate(sub.statements):
        _lint_statement(
            statement,
            diagnostics,
            name=f"{sub.name.lower()}_{index}",
            ranks=ranks,
            max_halo=max_halo,
        )


def lint_source(
    source: str,
    filename: str = "<fortran>",
    *,
    max_halo: int = DEFAULT_MAX_HALO,
) -> List[Diagnostic]:
    """Lint Fortran source text; returns the diagnostics, worst first
    within source order.

    The source may be a file of subroutines or a bare assignment
    statement (same auto-detection as the compile driver).
    """
    diagnostics: List[Diagnostic] = []
    try:
        if "SUBROUTINE" in source.upper():
            program = parse_program(source, filename)
            for sub in program.subroutines:
                _lint_subroutine(sub, diagnostics, max_halo=max_halo)
        else:
            statement = parse_assignment(source, filename)
            _lint_statement(
                statement, diagnostics, name=None, ranks=None,
                max_halo=max_halo,
            )
    except FortranError as exc:
        # Lex/parse errors end the analysis: there is no tree to walk.
        diagnostics.append(exc.to_diagnostic())
    return diagnostics


def lint_path(path, *, max_halo: int = DEFAULT_MAX_HALO) -> List[Diagnostic]:
    """Lint a Fortran source file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, str(path), max_halo=max_halo)
