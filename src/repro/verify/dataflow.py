"""Microcode dataflow checking: an abstract interpreter over line patterns.

The compiler's correctness argument is hand-waved in the paper ("the
relevant state of the ring buffers cycles with period LCM(sizes)") and
spot-checked here only by executing plans on the cycle-stepped FPU.  This
module *proves* the schedule properties statically, for an arbitrary
:class:`~repro.compiler.plan.WidthPlan`, by symbolic execution of the
abstract op streams (one op = one machine cycle):

* every multiply-add reads exactly the source element its tap demands
  (tracked by *element identity*, independent of the register
  allocation), with the value already landed (loads take
  ``load_latency`` cycles issue-to-use) -- ``RS401``/``RS406``;
* no load clobbers a register whose element is still needed -- ``RS402``;
* stores never precede their chain's writeback, the memory pipe gets its
  reversal gap, and register transfers occupy their full
  ``memory_access_cycles`` issue slots -- ``RS403``;
* each line stores every result column exactly once, from the completed
  accumulation of that column -- ``RS404``;
* the pattern metadata (op counts, drain gap, uniform steady-line cycle
  counts) agrees with the op streams, so the closed-form cost model in
  :mod:`repro.compiler.plan` cannot diverge from what the FPU would
  execute -- ``RS405``.

Coordinate model: during line ``n`` of an upward sweep, the line-relative
position ``(row, col)`` addresses the absolute source element
``(row - n, col)``.  A value is one of::

    ("const", 0.0 | 1.0)        reserved zero/unit registers
    ("src", abs_row, col)       primary-source element
    ("ext", buffer, line, col)  fused extra-term element (fresh per line)
    ("acc", line, col)          a completed accumulation
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..compiler.plan import WidthPlan
from ..compiler.ringbuf import column_span
from ..machine.isa import AbstractOp, LoadOp, MAOp, NopOp, StoreOp
from ..machine.params import MachineParams
from .diagnostics import Diagnostic, plan_error

#: Stop piling up diagnostics on a thoroughly broken plan.
MAX_DIAGNOSTICS = 40

Value = Tuple
_ZERO: Value = ("const", 0.0)
_UNIT: Value = ("const", 1.0)


def _describe_value(value: Optional[Value]) -> str:
    if value is None:
        return "undefined"
    kind = value[0]
    if kind == "const":
        return f"constant {value[1]}"
    if kind == "src":
        return f"source element (row {value[1]}, col {value[2]})"
    if kind == "ext":
        return f"{value[1]} element of line {value[2]}, col {value[3]}"
    if kind == "acc":
        return f"accumulation of line {value[1]}, result col {value[2]}"
    return repr(value)


class _Simulator:
    """Symbolic register file plus per-thread chain state."""

    def __init__(
        self,
        plan: WidthPlan,
        params: MachineParams,
        taps: Sequence,
        extra_terms: Sequence,
    ) -> None:
        self.plan = plan
        self.params = params
        self.taps = tuple(taps)
        self.extra_terms = tuple(extra_terms)
        self.chain_length = len(self.taps) + len(self.extra_terms)
        alloc = plan.allocation
        self.reserved: Set[int] = {alloc.zero_reg}
        self.regs: Dict[int, Tuple[Value, int]] = {alloc.zero_reg: (_ZERO, 0)}
        if alloc.unit_reg is not None:
            self.reserved.add(alloc.unit_reg)
            self.regs[alloc.unit_reg] = (_UNIT, 0)
        #: occupied rows per multistencil column, for clobber-death checks
        self.column_rows: Dict[int, Tuple[int, ...]] = {
            ring.column.x: ring.column.rows for ring in alloc.rings
        }
        self.diagnostics: List[Diagnostic] = []
        self.cycle = 0

    # ------------------------------------------------------------------

    def report(self, code: str, message: str) -> None:
        if len(self.diagnostics) < MAX_DIAGNOSTICS:
            self.diagnostics.append(plan_error(code, message))

    def _expected_operand(
        self, index: int, occurrence: int, line: int
    ) -> Tuple[object, Optional[Value]]:
        """``(expected coefficient, expected data value)`` for chain slot
        ``index`` of ``occurrence`` on ``line``."""
        if index < len(self.taps):
            tap = self.taps[index]
            if tap.is_constant_term:
                return tap.coeff, _UNIT
            return tap.coeff, ("src", tap.dy - line, tap.dx + occurrence)
        term = self.extra_terms[index - len(self.taps)]
        return term.coeff, ("ext", term.source, line, occurrence)

    def _still_needed(self, value: Value, line: int) -> bool:
        """Whether ``value`` would still be read on ``line`` or later."""
        if value[0] == "src":
            _, abs_row, col = value
            rows = self.column_rows.get(col, ())
            return any(row - abs_row >= line for row in rows)
        if value[0] == "ext":
            return value[2] == line  # extra elements die with their line
        return False  # accumulations are consumed by their line's store

    # ------------------------------------------------------------------

    def run_line(self, line: int, ops: Sequence[AbstractOp], where: str) -> None:
        width = self.plan.width
        params = self.params
        chains: Dict[int, Optional[dict]] = {}
        stored: Dict[int, int] = {}
        transfer_left = 0
        last_ma_index: Optional[int] = None
        first_store_index: Optional[int] = None
        counts = {"loads": 0, "ma": 0, "stores": 0}

        for index, op in enumerate(ops):
            cycle = self.cycle + index
            if transfer_left > 0:
                if not isinstance(op, NopOp):
                    self.report(
                        "RS403",
                        f"{where}, cycle {index}: {type(op).__name__} issued "
                        "inside a register transfer; loads and stores occupy "
                        f"{params.memory_access_cycles} issue slots",
                    )
                transfer_left -= 1

            if isinstance(op, LoadOp):
                counts["loads"] += 1
                self._run_load(op, line, cycle, index, where)
                transfer_left = params.memory_access_cycles - 1
            elif isinstance(op, MAOp):
                counts["ma"] += 1
                last_ma_index = index
                self._run_ma(op, line, cycle, index, where, chains, width)
            elif isinstance(op, StoreOp):
                counts["stores"] += 1
                if first_store_index is None:
                    first_store_index = index
                self._run_store(op, line, cycle, index, where, stored)
                transfer_left = params.memory_access_cycles - 1

        self.cycle += len(ops)
        self._check_line_shape(
            line, ops, where, chains, stored, counts,
            last_ma_index, first_store_index,
        )

    # ------------------------------------------------------------------

    def _run_load(
        self, op: LoadOp, line: int, cycle: int, index: int, where: str
    ) -> None:
        if op.buffer is None:
            value: Value = ("src", op.row - line, op.col)
        else:
            value = ("ext", op.buffer, line, op.col)
        if op.reg in self.reserved:
            self.report(
                "RS402",
                f"{where}, cycle {index}: load clobbers reserved register "
                f"r{op.reg}",
            )
            return
        old = self.regs.get(op.reg)
        if old is not None and self._still_needed(old[0], line):
            self.report(
                "RS402",
                f"{where}, cycle {index}: load into r{op.reg} clobbers "
                f"live {_describe_value(old[0])}",
            )
        self.regs[op.reg] = (value, cycle + self.params.load_latency)

    def _run_ma(
        self,
        op: MAOp,
        line: int,
        cycle: int,
        index: int,
        where: str,
        chains: Dict[int, Optional[dict]],
        width: int,
    ) -> None:
        if op.is_dummy:
            return
        occurrence = op.result_col
        if not 0 <= occurrence < width:
            self.report(
                "RS406",
                f"{where}, cycle {index}: multiply-add targets result "
                f"column {occurrence}, outside width {width}",
            )
            return
        state = chains.get(op.thread)
        if op.first:
            if state is not None:
                self.report(
                    "RS406",
                    f"{where}, cycle {index}: thread {op.thread} opens a new "
                    f"chain while column {state['occ']}'s chain is "
                    f"unfinished at slot {state['index']}",
                )
            state = {"occ": occurrence, "index": 0, "dest": op.dest_reg}
            chains[op.thread] = state
        else:
            if state is None:
                self.report(
                    "RS406",
                    f"{where}, cycle {index}: chain continuation on thread "
                    f"{op.thread} with no open chain",
                )
                state = {"occ": occurrence, "index": 0, "dest": op.dest_reg}
                chains[op.thread] = state
            else:
                state["index"] += 1
        if state["occ"] != occurrence or state["dest"] != op.dest_reg:
            self.report(
                "RS406",
                f"{where}, cycle {index}: chain on thread {op.thread} "
                f"switches from column {state['occ']} (acc r{state['dest']}) "
                f"to column {occurrence} (acc r{op.dest_reg}) mid-chain",
            )
            state["occ"] = occurrence
            state["dest"] = op.dest_reg
        slot = state["index"]
        if slot >= self.chain_length:
            self.report(
                "RS406",
                f"{where}, cycle {index}: chain for column {occurrence} has "
                f"more than {self.chain_length} terms",
            )
            return
        coeff, expected = self._expected_operand(slot, occurrence, line)
        if op.coeff != coeff:
            self.report(
                "RS406",
                f"{where}, cycle {index}: term {slot} of column {occurrence} "
                f"streams coefficient {op.coeff.describe()}, expected "
                f"{coeff.describe()}",
            )
        entry = self.regs.get(op.data_reg)
        if entry is None:
            self.report(
                "RS401",
                f"{where}, cycle {index}: multiply-add reads r{op.data_reg} "
                "before any load defines it",
            )
        else:
            value, ready = entry
            if ready > cycle:
                self.report(
                    "RS401",
                    f"{where}, cycle {index}: multiply-add reads "
                    f"r{op.data_reg} {ready - cycle} cycle(s) before its "
                    "load lands",
                )
            elif value != expected:
                self.report(
                    "RS406",
                    f"{where}, cycle {index}: term {slot} of column "
                    f"{occurrence} reads {_describe_value(value)} from "
                    f"r{op.data_reg}, expected {_describe_value(expected)}",
                )
        closing = slot == self.chain_length - 1
        if op.last != closing:
            self.report(
                "RS406",
                f"{where}, cycle {index}: term {slot} of column {occurrence} "
                + ("carries a premature last-flag" if op.last
                   else "is the final term but lacks the last-flag"),
            )
        if op.last:
            chains[op.thread] = None
            if op.dest_reg in self.reserved:
                self.report(
                    "RS402",
                    f"{where}, cycle {index}: writeback targets reserved "
                    f"register r{op.dest_reg}",
                )
                return
            self.regs[op.dest_reg] = (
                ("acc", line, occurrence),
                cycle + self.params.writeback_latency,
            )

    def _run_store(
        self,
        op: StoreOp,
        line: int,
        cycle: int,
        index: int,
        where: str,
        stored: Dict[int, int],
    ) -> None:
        stored[op.result_col] = stored.get(op.result_col, 0) + 1
        entry = self.regs.get(op.reg)
        if entry is None:
            self.report(
                "RS401",
                f"{where}, cycle {index}: store reads undefined r{op.reg}",
            )
            return
        value, ready = entry
        if ready > cycle:
            self.report(
                "RS403",
                f"{where}, cycle {index}: store of result column "
                f"{op.result_col} issues {ready - cycle} cycle(s) before "
                "its chain's writeback lands",
            )
        elif value != ("acc", line, op.result_col):
            self.report(
                "RS404",
                f"{where}, cycle {index}: store of result column "
                f"{op.result_col} reads {_describe_value(value)} from "
                f"r{op.reg}, not that column's accumulation",
            )

    # ------------------------------------------------------------------

    def _check_line_shape(
        self,
        line: int,
        ops: Sequence[AbstractOp],
        where: str,
        chains: Dict[int, Optional[dict]],
        stored: Dict[int, int],
        counts: Dict[str, int],
        last_ma_index: Optional[int],
        first_store_index: Optional[int],
    ) -> None:
        width = self.plan.width
        for state in chains.values():
            if state is not None:
                self.report(
                    "RS406",
                    f"{where}: chain for result column {state['occ']} is "
                    "never closed",
                )
        missing = [col for col in range(width) if stored.get(col, 0) == 0]
        doubled = [col for col, n in stored.items() if n > 1]
        bogus = [col for col in stored if not 0 <= col < width]
        if missing:
            self.report(
                "RS404",
                f"{where}: result columns {missing} are never stored "
                f"({len(stored)} of {width} stores present)",
            )
        if doubled or bogus:
            self.report(
                "RS404",
                f"{where}: store set malformed (doubled {doubled}, "
                f"out-of-range {bogus})",
            )
        if last_ma_index is not None and first_store_index is not None:
            gap = first_store_index - last_ma_index - 1
            if gap < self.params.pipe_reversal_penalty:
                self.report(
                    "RS403",
                    f"{where}: only {gap} cycle(s) between the multiply-add "
                    "block and the first store; the memory pipe needs "
                    f"{self.params.pipe_reversal_penalty} to reverse",
                )

    def check_metadata(self, pattern, where: str) -> None:
        """Compare a line pattern's metadata fields against its op stream."""
        loads = sum(1 for op in pattern.ops if isinstance(op, LoadOp))
        stores = sum(1 for op in pattern.ops if isinstance(op, StoreOp))
        ma_indices = [
            i for i, op in enumerate(pattern.ops) if isinstance(op, MAOp)
        ]
        # num_ma is the MA *block* length: for odd widths the solo chain
        # interleaves dummy cycles, so the block spans first..last MAOp.
        ma_block = ma_indices[-1] - ma_indices[0] + 1 if ma_indices else 0
        if (loads, ma_block, stores) != (
            pattern.num_loads, pattern.num_ma, pattern.num_stores
        ):
            self.report(
                "RS405",
                f"{where}: op stream has {loads} loads / a multiply-add "
                f"block of {ma_block} cycles / {stores} stores but the "
                f"metadata claims {pattern.num_loads} / {pattern.num_ma} / "
                f"{pattern.num_stores}",
            )
        if stores != self.plan.width:
            self.report(
                "RS404",
                f"{where}: {stores} stores for width {self.plan.width}",
            )
        last_ma = ma_indices[-1] if ma_indices else None
        first_store = next(
            (i for i, op in enumerate(pattern.ops) if isinstance(op, StoreOp)),
            None,
        )
        if last_ma is not None and first_store is not None:
            gap = first_store - last_ma - 1
            if gap != pattern.drain_gap:
                self.report(
                    "RS405",
                    f"{where}: {gap} drain cycle(s) in the op stream but "
                    f"the metadata claims {pattern.drain_gap}",
                )


def analyze_dataflow(
    plan: WidthPlan,
    params: Optional[MachineParams] = None,
    *,
    pattern=None,
) -> List[Diagnostic]:
    """Statically verify one width plan's op streams.

    ``pattern`` defaults to the plan's own multistencil pattern; pass the
    compiled (possibly fused) pattern to verify fused extra terms too.
    """
    params = params or MachineParams()
    source = pattern if pattern is not None else (
        plan.allocation.multistencil.pattern
    )
    extra_terms = tuple(getattr(source, "extra_terms", ()))
    taps = tuple(getattr(source, "base", source).taps)
    sim = _Simulator(plan, params, taps, extra_terms)
    prefix = f"width {plan.width}"

    # Structural/metadata invariants the closed-form cost model rests on.
    period = len(plan.steady)
    if period < 1 or plan.unroll < 1 or period != plan.unroll:
        sim.report(
            "RS405",
            f"{prefix}: {period} steady phases for unroll factor "
            f"{plan.unroll}",
        )
    if not plan.prologue.full_load:
        sim.report("RS405", f"{prefix}: prologue is not a full load")
    steady_cycles = plan.steady[0].cycles if period else 0
    for phase, line_pattern in enumerate(plan.steady):
        where = f"{prefix} steady phase {phase}"
        if line_pattern.full_load:
            sim.report("RS405", f"{where}: marked as a full load")
        if line_pattern.phase != phase:
            sim.report(
                "RS405",
                f"{where}: pattern records phase {line_pattern.phase}",
            )
        if line_pattern.cycles != steady_cycles:
            sim.report(
                "RS405",
                f"{where}: {line_pattern.cycles} cycles; phase 0 has "
                f"{steady_cycles} -- the closed-form model assumes uniform "
                "steady lines",
            )
    sim.check_metadata(plan.prologue, f"{prefix} prologue")
    for phase, line_pattern in enumerate(plan.steady):
        sim.check_metadata(line_pattern, f"{prefix} steady phase {phase}")

    # Closed-form cycle model vs. the actual op streams.
    if period:
        max_span = max(
            column_span(ring.column) for ring in plan.allocation.rings
        )
        lines = max(plan.unroll, period) + max_span + 1
        actual = (
            params.half_strip_dispatch_cycles
            + plan.prologue.cycles
            + sum(plan.steady[n % period].cycles for n in range(1, lines))
            + lines * params.sequencer_line_overhead
        )
        claimed = plan.half_strip_cycles(lines, params)
        if claimed != actual:
            sim.report(
                "RS405",
                f"{prefix}: closed-form model prices {lines} lines at "
                f"{claimed} cycles; the op streams sum to {actual}",
            )

        # Symbolic execution of prologue + full LCM period (plus enough
        # extra lines that every prologue-loaded element retires).
        sim.run_line(0, plan.prologue.ops, f"{prefix} prologue")
        for line in range(1, lines):
            sim.run_line(
                line,
                plan.steady[line % period].ops,
                f"{prefix} line {line} (phase {line % period})",
            )

    return sim.diagnostics


def check_register_usage(plan: WidthPlan) -> List[Diagnostic]:
    """``RS502``: ring registers never referenced by any op stream.

    Over one full LCM period every ring slot is loaded and read; a ring
    register absent from prologue *and* every steady phase is allocated
    but dead -- a symptom of a ring sized or rotated wrongly.
    """
    referenced: Set[int] = set()
    patterns = (plan.prologue,) + tuple(plan.steady)
    for line_pattern in patterns:
        for op in line_pattern.ops:
            if isinstance(op, LoadOp):
                referenced.add(op.reg)
            elif isinstance(op, MAOp):
                referenced.add(op.data_reg)
                referenced.add(op.dest_reg)
            elif isinstance(op, StoreOp):
                referenced.add(op.reg)
    diagnostics: List[Diagnostic] = []
    for ring in plan.allocation.rings:
        unused = [reg for reg in ring.registers if reg not in referenced]
        if unused:
            diagnostics.append(
                plan_error(
                    "RS502",
                    f"width {plan.width}: ring for column {ring.column.x} "
                    f"holds register(s) {unused} never touched by any "
                    "line pattern",
                )
            )
    return diagnostics
