"""Static aliasing checks for ``apply_stencil`` calls.

The batched executor computes the result strip by strip from the padded
halo buffer and the coefficient/extra-term buffers; if the destination
array aliases any of them the answer becomes order-dependent (whichever
strip writes first changes what a later strip reads).  The Fortran
recognizer already rejects ``R = ... CSHIFT(R, ...)`` at the source
level; these checks close the same hole at the run-time API, where
callers hand over arrays directly:

* ``RS601`` the destination is (or is named as) the shifted source;
* ``RS602`` the destination aliases an ARRAY coefficient -- the passed
  array, its statement name, or a statement name the coefficient
  bindings would re-point mid-call;
* ``RS603`` (warning) the destination aliases a fused extra-term source
  array.  Extra terms are read only at offset (0, 0) and every read of
  a point precedes that point's store, so the in-place carried-field
  update ``U = stencil(...) + c * U`` is well-defined in all three
  execution modes; the warning flags the intent without rejecting it.

Sources and coefficients aliasing *each other* are read-only and remain
legal (``R = C * X`` with ``C is X`` is well-defined).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..stencil.pattern import CoeffKind
from .diagnostics import Diagnostic, has_errors, plan_error, plan_warning


class AliasingError(Exception):
    """The destination of an ``apply_stencil`` call aliases an input."""

    def __init__(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics = diagnostics
        super().__init__("; ".join(d.describe() for d in diagnostics))


def check_aliasing(
    pattern,
    *,
    result_name: str,
    source_name: str,
    coefficient_arrays: Optional[Dict[str, str]] = None,
    same_object: bool = False,
) -> List[Diagnostic]:
    """Statically check one call shape, by name.

    Args:
        pattern: the compiled (possibly fused) stencil pattern.
        result_name: name of the destination array.
        source_name: name of the shifted source array.
        coefficient_arrays: statement name -> passed array name, for
            coefficients bound at call time.
        same_object: the caller passed the very same array object as
            both source and destination (caught even under different
            names, which the name checks alone would miss).
    """
    diagnostics: List[Diagnostic] = []
    coefficient_arrays = coefficient_arrays or {}
    statement = pattern.name or "stencil"

    if same_object or result_name == source_name:
        diagnostics.append(
            plan_error(
                "RS601",
                f"{statement}: destination {result_name!r} aliases the "
                f"shifted source {source_name!r}; strips read neighbors "
                "the earlier strips would already have overwritten",
            )
        )

    coefficient_names = set(pattern.coefficient_names())
    bound_names = {name for name in coefficient_arrays.values()}
    if result_name in coefficient_names or result_name in bound_names:
        diagnostics.append(
            plan_error(
                "RS602",
                f"{statement}: destination {result_name!r} aliases an "
                "ARRAY coefficient; the coefficient streams from memory "
                "while the destination is being written",
            )
        )

    for term in getattr(pattern, "extra_terms", ()):
        if term.source == result_name:
            diagnostics.append(
                plan_warning(
                    "RS603",
                    f"{statement}: destination {result_name!r} aliases the "
                    f"fused extra-term source {term.source!r} (in-place "
                    "carried-field update; well-defined, but bit-for-bit "
                    "comparisons against a two-buffer reference will see "
                    "the updated field)",
                )
            )
        coeff = term.coeff
        if coeff.kind is CoeffKind.ARRAY and coeff.name == result_name:
            diagnostics.append(
                plan_error(
                    "RS602",
                    f"{statement}: destination {result_name!r} aliases the "
                    f"fused extra-term coefficient {coeff.name!r}",
                )
            )
    return diagnostics


def ensure_no_aliasing(compiled, source, coefficients, result) -> None:
    """Reject an aliased ``apply_stencil`` call before any work happens.

    ``source``/``result`` are :class:`~repro.runtime.cm_array.CMArray`
    instances; ``coefficients`` maps statement names to arrays.  Raises
    :class:`AliasingError` on any error-severity aliasing (warnings --
    the in-place extra-term idiom -- pass through).
    """
    coefficients = coefficients or {}
    diagnostics = check_aliasing(
        compiled.pattern,
        result_name=result.name,
        source_name=source.name,
        coefficient_arrays={
            statement: array.name for statement, array in coefficients.items()
        },
        same_object=result is source,
    )
    if has_errors(diagnostics):
        raise AliasingError(diagnostics)
