"""Validating lock-order runtime: the dynamic half of ``repro racecheck``.

The static analyzer (:mod:`repro.verify.concurrency`) predicts a lock
graph from the source alone; this module *observes* the real one.  When
``RS_LOCKDEP=1`` is set, every lock the threaded control plane creates
through the factories below is wrapped so that each acquisition records
an edge ``held -> acquired`` into a process-global registry:

* the registry keeps the acquisition DAG (class-level lock identity:
  every ``Scheduler._cond`` is one node, like the static side);
* adding an edge that closes a cycle raises :class:`LockOrderViolation`
  immediately, at the acquisition that completed the inversion -- the
  classic lockdep discipline, so the *first* run that interleaves two
  inconsistent orderings fails loudly even if it did not deadlock;
* :meth:`LockdepRegistry.cross_check` compares the observed edges
  against the statically predicted graph: an observed edge the analyzer
  did not predict (directly or transitively) means the annotations have
  drifted from reality, and the chaos campaign treats it as a trial
  violation.

With ``RS_LOCKDEP`` unset the factories return plain
:mod:`threading` primitives -- zero overhead, byte-identical behaviour.

The condition wrapper is a real :class:`threading.Condition` built on an
instrumented RLock: ``wait`` internally releases and reacquires through
the *inner* lock's ``_release_save``/``_acquire_restore`` (delegated
untouched), so a waiting thread keeps its logical hold in the
per-thread stack -- lock-order edges describe the discipline, not the
scheduler's interleaving.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Environment flag that turns the instrumented factories on.
ENV_FLAG = "RS_LOCKDEP"


def enabled() -> bool:
    """Whether lock instrumentation is on (``RS_LOCKDEP=1``)."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class LockOrderViolation(RuntimeError):
    """An acquisition closed a cycle in the lock-order graph.

    Carries the offending ``cycle`` as a list of lock names in
    acquisition order (first element repeated at the end).
    """

    def __init__(self, cycle: List[str]) -> None:
        self.cycle = list(cycle)
        chain = " -> ".join(self.cycle)
        super().__init__(
            f"lock acquisition order cycle: {chain} (a thread holding "
            f"{self.cycle[-2]!r} tried to take {self.cycle[0]!r}, which "
            f"other acquisitions order before it)"
        )


class LockdepRegistry:
    """The observed acquisition DAG, shared by every instrumented lock."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: edge u -> v: some thread acquired v while holding u.
        self._edges: Dict[str, Set[str]] = {}
        #: total acquisitions per lock name.
        self._acquisitions: Dict[str, int] = {}
        #: first witness of each edge: (thread name) -- for reports.
        self._witness: Dict[Tuple[str, str], str] = {}

    # -- bookkeeping ---------------------------------------------------

    def note_acquire(self, name: str, held: List[str]) -> None:
        """Record one acquisition of ``name`` while ``held`` are held.

        Raises :class:`LockOrderViolation` when a newly recorded edge
        closes a cycle; the registry keeps the edge either way, so the
        final report shows the full observed graph.
        """
        with self._mutex:
            self._acquisitions[name] = self._acquisitions.get(name, 0) + 1
            self._edges.setdefault(name, set())
            cycle: Optional[List[str]] = None
            for holder in held:
                if holder == name:
                    continue  # reentrant hold, not an ordering edge
                outgoing = self._edges.setdefault(holder, set())
                if name in outgoing:
                    continue
                outgoing.add(name)
                self._witness[(holder, name)] = (
                    threading.current_thread().name
                )
                if cycle is None:
                    path = self._path(name, holder)
                    if path is not None:
                        cycle = path + [name]
        if cycle is not None:
            raise LockOrderViolation(cycle)

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """A directed path ``start -> ... -> goal``, or None (DFS)."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    # -- queries -------------------------------------------------------

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        """A snapshot of the observed graph (name -> sorted successors)."""
        with self._mutex:
            return {
                u: tuple(sorted(vs)) for u, vs in self._edges.items() if vs
            }

    def acquisitions(self, name: Optional[str] = None) -> int:
        """Total acquisitions of one lock (or of every lock)."""
        with self._mutex:
            if name is not None:
                return self._acquisitions.get(name, 0)
            return sum(self._acquisitions.values())

    def locks(self) -> Tuple[str, ...]:
        """Every lock name that recorded at least one acquisition."""
        with self._mutex:
            return tuple(sorted(self._acquisitions))

    def find_cycle(self) -> Optional[List[str]]:
        """A cycle in the observed graph, or None when it is a DAG."""
        with self._mutex:
            edges = {u: set(vs) for u, vs in self._edges.items()}
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in edges}
        parent: Dict[str, str] = {}

        for root in sorted(edges):
            if color[root] != WHITE:
                continue
            stack = [(root, iter(sorted(edges[root])))]
            color[root] = GREY
            while stack:
                node, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ not in edges:
                        continue
                    if color[succ] == GREY:
                        cycle = [succ, node]
                        walk = node
                        while walk != succ:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle
                    if color[succ] == WHITE:
                        color[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(sorted(edges[succ]))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderViolation` if the observed graph cycles."""
        cycle = self.find_cycle()
        if cycle is not None:
            raise LockOrderViolation(cycle + cycle[:1])

    def cross_check(
        self, predicted: Dict[str, Iterable[str]]
    ) -> List[Tuple[str, str]]:
        """Observed edges the static analyzer did not predict.

        An observed edge ``u -> v`` is *explained* when ``v`` is
        reachable from ``u`` in the predicted graph (the runtime records
        adjacent stack edges, so a statically modelled chain
        ``u -> w -> v`` explains an observed ``u -> v``).  Observed
        locks absent from the predicted graph entirely are reported
        too: they mean the analyzer never saw the lock's declaration.
        """
        closure: Dict[str, Set[str]] = {}

        def reach(node: str) -> Set[str]:
            cached = closure.get(node)
            if cached is not None:
                return cached
            closure[node] = set()  # cycle guard; predicted should be a DAG
            out: Set[str] = set()
            for succ in predicted.get(node, ()):
                out.add(succ)
                out |= reach(succ)
            closure[node] = out
            return out

        unexplained = []
        for u, vs in self.edges().items():
            for v in vs:
                if v not in reach(u):
                    unexplained.append((u, v))
        return sorted(unexplained)

    def reset(self) -> None:
        """Drop every recorded edge and counter (test isolation)."""
        with self._mutex:
            self._edges.clear()
            self._acquisitions.clear()
            self._witness.clear()

    def describe(self) -> str:
        edges = self.edges()
        lines = [
            f"lockdep: {len(self.locks())} locks, "
            f"{sum(len(v) for v in edges.values())} ordered edges, "
            f"{self.acquisitions()} acquisitions"
        ]
        for u in sorted(edges):
            for v in edges[u]:
                lines.append(f"  {u} -> {v}")
        return "\n".join(lines)


#: The process-global registry every instrumented lock reports into.
REGISTRY = LockdepRegistry()

_tls = threading.local()


def _held_stack() -> List[str]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _DepLockBase:
    """Shared instrumentation for wrapped Lock/RLock objects."""

    def __init__(self, name: str, inner) -> None:
        self.name = name
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _held_stack()
        # Record the would-be edge *before* blocking: a true inversion
        # deadlocks inside the inner acquire, so checking afterwards
        # would only ever report the interleavings that got lucky.
        REGISTRY.note_acquire(self.name, list(stack))
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack.append(self.name)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        # Locks are almost always released LIFO; tolerate out-of-order
        # releases by removing the most recent matching hold.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == self.name:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()


class _DepLock(_DepLockBase):
    """An instrumented non-reentrant lock."""


class _DepRLock(_DepLockBase):
    """An instrumented reentrant lock, Condition-compatible.

    The three underscore hooks delegate straight to the inner RLock so
    :class:`threading.Condition` built on top of this wrapper juggles
    the *real* lock during ``wait`` without touching the per-thread
    hold stack -- a waiting thread logically keeps its hold.
    """

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        return self._inner._release_save()

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)


def lock(name: str):
    """A mutex: instrumented under ``RS_LOCKDEP=1``, plain otherwise."""
    if enabled():
        return _DepLock(name, threading.Lock())
    return threading.Lock()


def rlock(name: str):
    """A reentrant mutex, instrumented under ``RS_LOCKDEP=1``."""
    if enabled():
        return _DepRLock(name, threading.RLock())
    return threading.RLock()


def condition(name: str):
    """A condition variable whose lock is instrumented under lockdep."""
    if enabled():
        return threading.Condition(_DepRLock(name, threading.RLock()))
    return threading.Condition()
