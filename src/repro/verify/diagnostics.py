"""Shared diagnostic plumbing for the static verification layer.

Plan-level analyzers (dataflow, lifetimes, aliasing) and the source-level
linter all speak :class:`~repro.fortran.errors.Diagnostic`: the linter
attaches source spans, the plan analyzers attach none (a compiled plan
has no source position) but always carry an ``RS###`` code from the
catalogue in ``docs/INTERNALS.md`` section 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..fortran.errors import (  # noqa: F401  (re-exported)
    Diagnostic,
    SEVERITY_ORDER,
    SourceLocation,
    Span,
    has_errors,
    render_diagnostic,
    render_diagnostics,
)


def plan_error(code: str, message: str) -> Diagnostic:
    """An error diagnostic about a compiled plan (no source location)."""
    return Diagnostic("error", message, code=code)


def plan_warning(code: str, message: str) -> Diagnostic:
    """A warning diagnostic about a compiled plan."""
    return Diagnostic("warning", message, code=code)


def diagnostic_to_dict(diagnostic: Diagnostic) -> Dict[str, object]:
    """One diagnostic as a JSON-ready dict (the ``--json`` CLI schema).

    Every field round-trips through :func:`diagnostic_from_dict`;
    locations are ``path``/``line``/``column`` (1-based), the span is
    ``[start_line, start_column, end_line, end_column]`` or ``None``.
    """
    location = diagnostic.location
    span = diagnostic.span
    return {
        "severity": diagnostic.severity,
        "code": diagnostic.code,
        "message": diagnostic.message,
        "path": location.filename if location is not None else None,
        "line": location.line if location is not None else None,
        "column": location.column if location is not None else None,
        "span": (
            [
                span.start.line,
                span.start.column,
                span.end.line,
                span.end.column,
            ]
            if span is not None
            else None
        ),
        "fixit": diagnostic.fixit,
    }


def diagnostic_from_dict(payload: Dict[str, object]) -> Diagnostic:
    """Rebuild a :class:`Diagnostic` from its ``--json`` dict."""
    path = payload.get("path")
    line = payload.get("line")
    location = (
        SourceLocation(int(line), int(payload.get("column") or 1), str(path))
        if path is not None and line is not None
        else None
    )
    raw_span = payload.get("span")
    span = None
    if isinstance(raw_span, (list, tuple)) and len(raw_span) == 4:
        filename = str(path) if path is not None else "<fortran>"
        span = Span(
            SourceLocation(int(raw_span[0]), int(raw_span[1]), filename),
            SourceLocation(int(raw_span[2]), int(raw_span[3]), filename),
        )
    return Diagnostic(
        severity=str(payload.get("severity", "error")),
        message=str(payload.get("message", "")),
        location=location,
        code=payload.get("code"),  # type: ignore[arg-type]
        span=span,
        fixit=payload.get("fixit"),  # type: ignore[arg-type]
    )


def with_context(
    diagnostics: Sequence[Diagnostic], context: Optional[str]
) -> List[Diagnostic]:
    """Prefix each diagnostic's message with a plan/stencil context label."""
    if not context:
        return list(diagnostics)
    return [
        Diagnostic(
            severity=d.severity,
            message=f"{context}: {d.message}",
            location=d.location,
            code=d.code,
            span=d.span,
            fixit=d.fixit,
        )
        for d in diagnostics
    ]
