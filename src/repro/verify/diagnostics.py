"""Shared diagnostic plumbing for the static verification layer.

Plan-level analyzers (dataflow, lifetimes, aliasing) and the source-level
linter all speak :class:`~repro.fortran.errors.Diagnostic`: the linter
attaches source spans, the plan analyzers attach none (a compiled plan
has no source position) but always carry an ``RS###`` code from the
catalogue in ``docs/INTERNALS.md`` section 10.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..fortran.errors import (  # noqa: F401  (re-exported)
    Diagnostic,
    SEVERITY_ORDER,
    has_errors,
    render_diagnostic,
    render_diagnostics,
)


def plan_error(code: str, message: str) -> Diagnostic:
    """An error diagnostic about a compiled plan (no source location)."""
    return Diagnostic("error", message, code=code)


def plan_warning(code: str, message: str) -> Diagnostic:
    """A warning diagnostic about a compiled plan."""
    return Diagnostic("warning", message, code=code)


def with_context(
    diagnostics: Sequence[Diagnostic], context: Optional[str]
) -> List[Diagnostic]:
    """Prefix each diagnostic's message with a plan/stencil context label."""
    if not context:
        return list(diagnostics)
    return [
        Diagnostic(
            severity=d.severity,
            message=f"{context}: {d.message}",
            location=d.location,
            code=d.code,
            span=d.span,
            fixit=d.fixit,
        )
        for d in diagnostics
    ]
