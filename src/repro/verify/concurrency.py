"""Static concurrency verification: ``repro racecheck``.

PR 4 gave the microcode datapath a static verifier; this module gives
the *threaded control plane* (scheduler, supervisor, caches, journal,
accounting) the same treatment.  It parses repro's own Python source
with :mod:`ast`, discovers every lock the code declares (``threading``
constructors or the :mod:`repro.verify.lockdep` factories), reads the
``# guarded-by:`` annotation convention, and checks the discipline:

======  ==============================================================
code    meaning
======  ==============================================================
RS701   shared state mutated (or guard-requiring helper called)
        outside its declared lock scope
RS702   lock-acquisition-order cycle in the inter-procedural lock
        graph -- deadlock potential
RS703   ``Condition.wait`` not re-testing a predicate (no enclosing
        non-constant ``while``)
RS704   ``wait``/``notify``/``notify_all`` on a condition whose lock
        is not held
RS705   blocking call (fsync, sleep, join, subprocess, event wait,
        ``compile_*``) while holding a lock
RS706   annotation drift -- ``guarded-by`` names a lock that does not
        exist
======  ==============================================================

Annotation convention
---------------------

* ``self.attr = ...  # guarded-by: _lock`` on the declaring assignment
  (usually in ``__init__``, or on a dataclass field) declares that
  every later mutation of ``self.attr`` must hold ``self._lock``.
* ``def helper(self):  # guarded-by: _lock`` on a ``def`` line declares
  a precondition: callers must already hold the lock (the body is then
  analyzed as if the lock were held).
* ``# lock-blocking-ok: <reason>`` on a line suppresses RS705 there --
  for the rare blocking call that is *deliberately* under a lock (the
  journal's durability fsync).

Lock identity is class-qualified (``Scheduler._cond``), matching the
names the lockdep runtime uses, so the statically predicted graph from
:func:`predicted_lock_graph` and the observed acquisition DAG are
directly comparable via :meth:`LockdepRegistry.cross_check`.

The analysis is deliberately lexical and conservative-but-quiet: only
declared locks form graph nodes, only annotated state is guard-checked,
and RS705 is intraprocedural -- so unannotated modules produce zero
noise and every diagnostic on the annotated tree is actionable.
"""

from __future__ import annotations

import ast
import difflib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..fortran.errors import Diagnostic, SourceLocation, Span

#: ``# guarded-by: <lock>`` trailing/preceding-line annotation.
GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")
#: ``# lock-blocking-ok[: reason]`` RS705 suppression.
BLOCKING_OK_RE = re.compile(r"#\s*lock-blocking-ok\b")

#: Constructor / factory callables that create a lock.
_LOCK_CTORS = {"Lock", "RLock", "Condition", "lock", "rlock", "condition"}
#: The subset that creates a condition variable.
_COND_CTORS = {"Condition", "condition"}
#: Receivers a lock factory may hang off (``threading.Lock()``,
#: ``lockdep.rlock("...")``).
_FACTORY_MODULES = {"threading", "lockdep"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "popitem", "clear", "update", "setdefault", "add",
    "discard", "sort",
}

#: ``module.name`` calls that block the calling thread.
_BLOCKING_MODULE_CALLS = {
    ("os", "fsync"),
    ("os", "fdatasync"),
    ("time", "sleep"),
}
_BLOCKING_MODULES = {"subprocess"}
#: Function-name prefixes treated as blocking (whole-program compiles).
_BLOCKING_NAME_PREFIXES = ("compile_",)


# ---------------------------------------------------------------------------
# results


@dataclass
class FileReport:
    """Diagnostics for one analyzed source file."""

    path: str
    source: str
    diagnostics: List[Diagnostic] = field(default_factory=list)


@dataclass
class RaceCheckResult:
    """Everything one racecheck run learned."""

    files: List[FileReport]
    #: statically predicted lock-order graph: lock -> sorted successors.
    lock_graph: Dict[str, Tuple[str, ...]]
    #: every declared lock id (``Class.attr`` or module-global name).
    locks: Tuple[str, ...]

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for report in self.files:
            out.extend(report.diagnostics)
        return out

    @property
    def clean(self) -> bool:
        return not self.diagnostics


# ---------------------------------------------------------------------------
# per-module harvest


@dataclass
class _ClassInfo:
    name: str
    module: str
    locks: Set[str] = field(default_factory=set)
    conditions: Set[str] = field(default_factory=set)
    #: attr -> (raw guard name, decl line) from ``# guarded-by:``.
    guards: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: attr -> class name (inferred types, for receiver resolution).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class _FuncInfo:
    key: Tuple[Optional[str], str]  # (class name or None, func name)
    path: str
    #: resolved lock ids the ``def``-line guard annotation requires.
    preconditions: List[str] = field(default_factory=list)
    #: (lock id, held snapshot, line) of each direct acquisition.
    acquires: List[Tuple[str, Tuple[str, ...], int]] = field(default_factory=list)
    #: (callee key, held snapshot, line) of each resolvable call.
    calls: List[Tuple[Tuple[Optional[str], str], Tuple[str, ...], int]] = field(
        default_factory=list
    )


@dataclass
class _ModuleInfo:
    path: str
    source: str
    tree: ast.Module
    #: line -> raw guard name for ``# guarded-by:`` comments.
    guard_comments: Dict[int, str] = field(default_factory=dict)
    #: lines whose content is only a comment (annotation may precede
    #: the statement it describes).
    comment_only_lines: Set[int] = field(default_factory=set)
    #: lines carrying ``# lock-blocking-ok``.
    blocking_ok_lines: Set[int] = field(default_factory=set)
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)
    #: module-global lock names declared at module level.
    module_locks: Set[str] = field(default_factory=set)
    module_conditions: Set[str] = field(default_factory=set)
    #: global name -> (raw guard name, decl line).
    module_guards: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: global name -> class name (``_PLAN_CACHE = SyncCache(...)``).
    global_types: Dict[str, str] = field(default_factory=dict)
    #: (class name or None, FunctionDef) of every analyzable function.
    functions: List[Tuple[Optional[str], ast.FunctionDef]] = field(
        default_factory=list
    )


def _scan_comments(info: _ModuleInfo) -> None:
    reader = io.StringIO(info.source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return
    lines = info.source.split("\n")
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line_no = tok.start[0]
        match = GUARD_RE.search(tok.string)
        if match:
            name = match.group(1)
            if name.startswith("self."):
                name = name[len("self."):]
            info.guard_comments[line_no] = name
        if BLOCKING_OK_RE.search(tok.string):
            info.blocking_ok_lines.add(line_no)
        text = lines[line_no - 1] if line_no <= len(lines) else ""
        if text.strip().startswith("#"):
            info.comment_only_lines.add(line_no)


def _guard_for_line(info: _ModuleInfo, line: int) -> Optional[Tuple[str, int]]:
    """The guard annotation attached to the statement at ``line``.

    Trailing comments win; a comment-only line directly above also
    counts, so long annotations can sit on their own line.
    """
    if line in info.guard_comments:
        return info.guard_comments[line], line
    prev = line - 1
    if prev in info.guard_comments and prev in info.comment_only_lines:
        return info.guard_comments[prev], prev
    return None


def _is_lock_factory_call(node: ast.AST) -> Optional[str]:
    """The ctor name when ``node`` creates a lock; else None.

    Recognizes direct calls (``threading.Lock()``,
    ``lockdep.rlock("n")``), calls nested inside wrappers
    (``field(default_factory=lambda: lockdep.condition("n"))``) and
    *uncalled* constructor references
    (``field(default_factory=threading.RLock)``).
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            if (
                isinstance(sub.value, ast.Name)
                and sub.value.id in _FACTORY_MODULES
                and sub.attr in _LOCK_CTORS
            ):
                return sub.attr
        elif isinstance(sub, ast.Call):
            func = sub.func
            # bare names only count for the lowercase lockdep factories;
            # a local class named ``Lock`` is someone else's problem.
            if isinstance(func, ast.Name) and func.id in (
                "lock", "rlock", "condition"
            ):
                return func.id
    return None


def _annotation_class_names(node: Optional[ast.AST]) -> List[str]:
    """Class names mentioned in a type annotation (``Optional[X]`` -> X)."""
    if node is None:
        return []
    names = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id not in (
            "Optional", "Union", "None", "List", "Dict", "Tuple", "Set",
            "Sequence", "Mapping", "Iterable", "Callable", "int", "str",
            "float", "bool", "bytes", "object",
        ):
            names.append(sub.id)
    return names


def _harvest_class(info: _ModuleInfo, node: ast.ClassDef) -> None:
    cls = _ClassInfo(name=node.name, module=info.path)
    info.classes[node.name] = cls

    def note_attr(attr: str, value: Optional[ast.AST], line: int,
                  annotation: Optional[ast.AST] = None) -> None:
        ctor = _is_lock_factory_call(value) if value is not None else None
        if ctor is not None:
            cls.locks.add(attr)
            if ctor in _COND_CTORS:
                cls.conditions.add(attr)
        guard = _guard_for_line(info, line)
        if guard is not None and attr not in cls.guards:
            cls.guards[attr] = guard
        if value is not None and isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                cls.attr_types.setdefault(attr, func.id)
        for name in _annotation_class_names(annotation):
            cls.attr_types.setdefault(attr, name)
            break

    # class-body fields (dataclass style)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            note_attr(stmt.target.id, stmt.value, stmt.lineno, stmt.annotation)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    note_attr(target.id, stmt.value, stmt.lineno)

    # ``self.X = ...`` in any method
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        info.functions.append((node.name, method))
        params: Dict[str, Optional[ast.AST]] = {}
        for arg in list(method.args.args) + list(method.args.kwonlyargs):
            params[arg.arg] = arg.annotation
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        note_attr(target.attr, stmt.value, stmt.lineno)
                        # ``self.X = param`` with an annotated param
                        if (
                            isinstance(stmt.value, ast.Name)
                            and stmt.value.id in params
                        ):
                            for name in _annotation_class_names(
                                params[stmt.value.id]
                            ):
                                cls.attr_types.setdefault(target.attr, name)
                                break
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    note_attr(
                        target.attr, stmt.value, stmt.lineno, stmt.annotation
                    )


def _harvest_module(path: str, source: str) -> Optional[_ModuleInfo]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return None
    info = _ModuleInfo(path=path, source=source, tree=tree)
    _scan_comments(info)
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            _harvest_class(info, stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions.append((None, stmt))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                ctor = _is_lock_factory_call(stmt.value)
                if ctor is not None:
                    info.module_locks.add(target.id)
                    if ctor in _COND_CTORS:
                        info.module_conditions.add(target.id)
                guard = _guard_for_line(info, stmt.lineno)
                if guard is not None:
                    info.module_guards.setdefault(target.id, guard)
                if isinstance(stmt.value, ast.Call) and isinstance(
                    stmt.value.func, ast.Name
                ):
                    info.global_types.setdefault(target.id, stmt.value.func.id)
    return info


# ---------------------------------------------------------------------------
# the analyzer


class _Analyzer:
    def __init__(self, modules: List[_ModuleInfo]) -> None:
        self.modules = modules
        self.reports: Dict[str, FileReport] = {
            m.path: FileReport(path=m.path, source=m.source) for m in modules
        }
        #: class name -> _ClassInfo (corpus-wide).
        self.class_registry: Dict[str, _ClassInfo] = {}
        #: plain function name -> unique key, for cross-module calls.
        self.global_functions: Dict[str, Optional[Tuple[Optional[str], str]]] = {}
        self.functions: Dict[Tuple[Optional[str], str], _FuncInfo] = {}
        #: lock-order edges (u, v) -> (path, line) first witness.
        self.edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    # -- registry construction ----------------------------------------

    def build_registries(self) -> None:
        for module in self.modules:
            for cls in module.classes.values():
                self.class_registry.setdefault(cls.name, cls)
            for kind, func in module.functions:
                if kind is None:
                    if func.name in self.global_functions:
                        self.global_functions[func.name] = None  # ambiguous
                    else:
                        self.global_functions[func.name] = (None, func.name)

    def all_lock_ids(self) -> Set[str]:
        out: Set[str] = set()
        for cls in self.class_registry.values():
            out.update(f"{cls.name}.{attr}" for attr in cls.locks)
        for module in self.modules:
            out.update(module.module_locks)
        return out

    # -- diagnostics helpers ------------------------------------------

    def diag(
        self,
        module: _ModuleInfo,
        node: ast.AST,
        code: str,
        message: str,
        fixit: Optional[str] = None,
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        end_line = getattr(node, "end_lineno", line) or line
        end_col = (getattr(node, "end_col_offset", col) or col) + 1
        self.reports[module.path].diagnostics.append(
            Diagnostic(
                severity="error",
                message=message,
                location=SourceLocation(line, col, module.path),
                code=code,
                span=Span(
                    SourceLocation(line, col, module.path),
                    SourceLocation(end_line, end_col, module.path),
                ),
                fixit=fixit,
            )
        )

    # -- guard resolution ---------------------------------------------

    def resolve_guard_quiet(
        self,
        module: _ModuleInfo,
        cls: Optional[_ClassInfo],
        raw: str,
    ) -> Optional[str]:
        """Resolve a raw guard name without diagnosing drift (drift is
        reported exactly once, at the declaration, by
        :meth:`check_annotation_drift`)."""
        name = raw.split(".")[-1] if raw.startswith("self.") else raw
        if cls is not None and name in cls.locks:
            return f"{cls.name}.{name}"
        if "." in raw:
            owner, attr = raw.rsplit(".", 1)
            owner_cls = self.class_registry.get(owner)
            if owner_cls is not None and attr in owner_cls.locks:
                return f"{owner}.{attr}"
        if name in module.module_locks:
            return name
        return None

    def resolve_guard(
        self,
        module: _ModuleInfo,
        cls: Optional[_ClassInfo],
        raw: str,
        line: int,
        what: str,
    ) -> Optional[str]:
        """Resolve a raw ``guarded-by`` name to a lock id; RS706 if bogus."""
        resolved = self.resolve_guard_quiet(module, cls, raw)
        if resolved is not None:
            return resolved
        name = raw.split(".")[-1] if raw.startswith("self.") else raw
        candidates: List[str] = sorted(
            (cls.locks if cls is not None else set()) | module.module_locks
        )
        hint = difflib.get_close_matches(name, candidates, n=1)
        fixit = f"did you mean `# guarded-by: {hint[0]}`?" if hint else (
            "declare the lock with threading.Lock()/lockdep.lock() or drop "
            "the annotation"
        )
        anchor = ast.Pass()
        anchor.lineno = line
        anchor.col_offset = 0
        anchor.end_lineno = line
        anchor.end_col_offset = 0
        self.diag(
            module,
            anchor,
            "RS706",
            f"guarded-by names unknown lock {raw!r} for {what} -- "
            f"annotation has drifted from the code",
            fixit,
        )
        return None

    # -- expression classification ------------------------------------

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def lock_id_of_expr(
        self, module: _ModuleInfo, cls: Optional[_ClassInfo], node: ast.AST
    ) -> Optional[str]:
        """The declared lock id an expression denotes, if any."""
        attr = self._self_attr(node)
        if attr is not None and cls is not None and attr in cls.locks:
            return f"{cls.name}.{attr}"
        if isinstance(node, ast.Name) and node.id in module.module_locks:
            return node.id
        return None

    def condition_id_of_expr(
        self, module: _ModuleInfo, cls: Optional[_ClassInfo], node: ast.AST
    ) -> Optional[str]:
        attr = self._self_attr(node)
        if attr is not None and cls is not None and attr in cls.conditions:
            return f"{cls.name}.{attr}"
        if isinstance(node, ast.Name) and node.id in module.module_conditions:
            return node.id
        return None

    def resolve_callee(
        self, module: _ModuleInfo, cls: Optional[_ClassInfo], call: ast.Call
    ) -> Optional[Tuple[Optional[str], str]]:
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = func.value
            # self.method(...)
            if isinstance(recv, ast.Name) and recv.id == "self" and cls is not None:
                if (cls.name, func.attr) in self.functions or any(
                    name == cls.name and f.name == func.attr
                    for m in self.modules
                    for name, f in m.functions
                ):
                    return (cls.name, func.attr)
                return None
            # self.attr.method(...) through an inferred attr type
            attr = self._self_attr(recv)
            if attr is not None and cls is not None:
                type_name = cls.attr_types.get(attr)
                if type_name in self.class_registry:
                    return (type_name, func.attr)
                return None
            if isinstance(recv, ast.Name):
                # ClassName.method(...) (classmethods)
                if recv.id in self.class_registry:
                    return (recv.id, func.attr)
                # GLOBAL.method(...) through a module-global's type
                type_name = module.global_types.get(recv.id)
                if type_name in self.class_registry:
                    return (type_name, func.attr)
            return None
        if isinstance(func, ast.Name):
            if func.id in self.class_registry:
                return (func.id, "__init__")
            local = (None, func.id)
            if any(
                kind is None and f.name == func.id
                for kind, f in module.functions
            ):
                return local
            return self.global_functions.get(func.id)
        return None

    @staticmethod
    def is_blocking_call(call: ast.Call) -> Optional[str]:
        """A short description when the call blocks, else None."""
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = func.value
            if isinstance(recv, ast.Name):
                if (recv.id, func.attr) in _BLOCKING_MODULE_CALLS:
                    return f"{recv.id}.{func.attr}()"
                if recv.id in _BLOCKING_MODULES:
                    return f"{recv.id}.{func.attr}()"
            if func.attr == "join" and not isinstance(recv, ast.Constant):
                # str.join takes an iterable; thread/process join takes
                # nothing or a numeric timeout.  Only flag the latter.
                plausible = all(
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, (int, float))
                    for arg in call.args
                ) and all(kw.arg == "timeout" for kw in call.keywords)
                if plausible and len(call.args) <= 1:
                    return ".join()"
        elif isinstance(func, ast.Name):
            if func.id.startswith(_BLOCKING_NAME_PREFIXES):
                return f"{func.id}()"
        return None

    # -- the per-function walk ----------------------------------------

    def walk_function(
        self,
        module: _ModuleInfo,
        cls_name: Optional[str],
        func: ast.FunctionDef,
        register: bool = True,
    ) -> None:
        cls = module.classes.get(cls_name) if cls_name else None
        key = (cls_name, func.name)
        finfo = _FuncInfo(key=key, path=module.path)

        guard = _guard_for_line(module, func.lineno)
        if guard is not None:
            resolved = self.resolve_guard(
                module, cls, guard[0], guard[1], f"def {func.name}()"
            )
            if resolved is not None:
                finfo.preconditions.append(resolved)

        exempt = cls is not None and func.name in (
            "__init__", "__post_init__", "__new__"
        )

        held: List[str] = list(finfo.preconditions)

        def required_lock(root_attr: Optional[str], root_global: Optional[str]
                          ) -> Optional[Tuple[str, str]]:
            """(lock id, what) a mutation of this root must hold."""
            if root_attr is not None and cls is not None and not exempt:
                guard = cls.guards.get(root_attr)
                if guard is not None:
                    lid = self.resolve_guard_quiet(module, cls, guard[0])
                    if lid is not None:
                        return lid, f"self.{root_attr}"
            if root_global is not None:
                guard = module.module_guards.get(root_global)
                if guard is not None:
                    lid = self.resolve_guard_quiet(module, cls, guard[0])
                    if lid is not None:
                        return lid, root_global
            return None

        def mutation_root(target: ast.AST) -> Tuple[Optional[str], Optional[str]]:
            """(self attr, module global) at the base of a store target."""
            node = target
            # unwrap subscript chains down to the base container
            while isinstance(node, ast.Subscript):
                node = node.value
            attr = self._self_attr(node)
            if attr is not None:
                return attr, None
            if isinstance(node, ast.Name):
                return None, node.id
            return None, None

        def check_mutation(target: ast.AST, where: ast.AST) -> None:
            attr, glob = mutation_root(target)
            req = required_lock(attr, glob)
            if req is None:
                return
            lid, what = req
            if lid in held:
                return
            lock_expr = lid.split(".")[-1]
            self.diag(
                module,
                where,
                "RS701",
                f"{what} is declared `guarded-by: {lock_expr}` but is "
                f"mutated without holding {lid}",
                f"wrap the mutation in `with self.{lock_expr}:` (or move it "
                f"into a `# guarded-by: {lock_expr}` helper)",
            )

        def handle_call(call: ast.Call) -> None:
            func_expr = call.func
            # condition discipline (RS703 / RS704) -------------------
            if isinstance(func_expr, ast.Attribute) and func_expr.attr in (
                "wait", "wait_for", "notify", "notify_all"
            ):
                cond_id = self.condition_id_of_expr(
                    module, cls, func_expr.value
                )
                if cond_id is not None:
                    if cond_id not in held:
                        verb = (
                            "waited on" if func_expr.attr.startswith("wait")
                            else "notified"
                        )
                        recv = ast.unparse(func_expr.value)
                        self.diag(
                            module,
                            call,
                            "RS704",
                            f"condition {cond_id} {verb} without holding its "
                            f"lock -- {func_expr.attr}() outside `with {recv}:`"
                            " is a lost-wakeup race",
                            f"move the {func_expr.attr}() call inside "
                            f"`with {recv}:`",
                        )
                    elif func_expr.attr == "wait" and not while_stack:
                        recv = ast.unparse(func_expr.value)
                        self.diag(
                            module,
                            call,
                            "RS703",
                            f"{recv}.wait() is not re-testing a predicate: "
                            "no enclosing `while <predicate>:` loop -- a "
                            "spurious or stolen wakeup proceeds on a false "
                            "condition",
                            f"wrap the wait: `while not <predicate>: "
                            f"{recv}.wait()`",
                        )
                    # a condition wait/notify is not itself a blocking
                    # call for RS705 purposes -- wait releases the lock.
                    return
            # blocking under a lock (RS705) --------------------------
            if held:
                desc = self.is_blocking_call(call)
                if desc is None and isinstance(func_expr, ast.Attribute):
                    if func_expr.attr == "wait" and self.condition_id_of_expr(
                        module, cls, func_expr.value
                    ) is None:
                        # Event.wait / future.wait style blocking wait
                        desc = f"{ast.unparse(func_expr)}()"
                suppressed = call.lineno in module.blocking_ok_lines or (
                    call.lineno - 1 in module.blocking_ok_lines
                    and call.lineno - 1 in module.comment_only_lines
                )
                if desc is not None and not suppressed:
                    self.diag(
                        module,
                        call,
                        "RS705",
                        f"blocking call {desc} while holding "
                        f"{', '.join(held)} -- stalls every thread queued "
                        "on the lock",
                        "move the call outside the `with` block, or annotate "
                        "the line `# lock-blocking-ok: <reason>` if the "
                        "ordering is load-bearing",
                    )
            # mutator methods on guarded state (RS701) ---------------
            if isinstance(func_expr, ast.Attribute) and func_expr.attr in _MUTATORS:
                check_mutation(func_expr.value, call)
            # resolvable calls: record for the lock graph, and check
            # callee preconditions (RS701).
            callee = self.resolve_callee(module, cls, call)
            if callee is not None:
                finfo.calls.append((callee, tuple(held), call.lineno))
                callee_info = self.functions.get(callee)
                if callee_info is not None:
                    for pre in callee_info.preconditions:
                        if pre not in held:
                            cname = ".".join(x for x in callee if x)
                            self.diag(
                                module,
                                call,
                                "RS701",
                                f"call to {cname}() requires {pre} held "
                                "(declared `guarded-by` on its definition) "
                                "but the lock is not held here",
                                f"call {cname}() inside `with "
                                f"self.{pre.split('.')[-1]}:`",
                            )

        def scan_exprs(*nodes: Optional[ast.AST]) -> None:
            for node in nodes:
                if node is None:
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        handle_call(sub)

        while_stack: List[bool] = []

        def walk_stmts(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # nested defs execute later with their own holds
                    saved_held, saved_while = list(held), list(while_stack)
                    held.clear()
                    while_stack.clear()
                    walk_stmts(stmt.body)
                    held.extend(saved_held)
                    while_stack.extend(saved_while)
                    continue
                if isinstance(stmt, ast.ClassDef):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    acquired: List[str] = []
                    for item in stmt.items:
                        scan_exprs(item.context_expr)
                        lid = self.lock_id_of_expr(
                            module, cls, item.context_expr
                        )
                        if lid is not None:
                            for holder in held:
                                if holder != lid:
                                    self.edges.setdefault(
                                        (holder, lid),
                                        (module.path, stmt.lineno),
                                    )
                            finfo.acquires.append(
                                (lid, tuple(held), stmt.lineno)
                            )
                            held.append(lid)
                            acquired.append(lid)
                    walk_stmts(stmt.body)
                    for lid in reversed(acquired):
                        held.remove(lid)
                    continue
                if isinstance(stmt, ast.While):
                    scan_exprs(stmt.test)
                    # ``while True:`` is a dispatch loop, not a predicate
                    # re-test -- it does not satisfy RS703.
                    is_predicate = not (
                        isinstance(stmt.test, ast.Constant)
                        and bool(stmt.test.value)
                    )
                    if is_predicate:
                        while_stack.append(True)
                    walk_stmts(stmt.body)
                    if is_predicate:
                        while_stack.pop()
                    walk_stmts(stmt.orelse)
                    continue
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    scan_exprs(stmt.iter, stmt.target)
                    walk_stmts(stmt.body)
                    walk_stmts(stmt.orelse)
                    continue
                if isinstance(stmt, ast.If):
                    scan_exprs(stmt.test)
                    walk_stmts(stmt.body)
                    walk_stmts(stmt.orelse)
                    continue
                if isinstance(stmt, ast.Try):
                    walk_stmts(stmt.body)
                    for handler in stmt.handlers:
                        walk_stmts(handler.body)
                    walk_stmts(stmt.orelse)
                    walk_stmts(stmt.finalbody)
                    continue
                # leaf statements: find mutations + calls
                if isinstance(stmt, ast.Assign):
                    scan_exprs(stmt.value)
                    for target in stmt.targets:
                        for sub in (
                            target.elts
                            if isinstance(target, (ast.Tuple, ast.List))
                            else [target]
                        ):
                            check_mutation(sub, stmt)
                elif isinstance(stmt, ast.AugAssign):
                    scan_exprs(stmt.value)
                    check_mutation(stmt.target, stmt)
                elif isinstance(stmt, ast.AnnAssign):
                    scan_exprs(stmt.value)
                    if stmt.value is not None:
                        check_mutation(stmt.target, stmt)
                elif isinstance(stmt, ast.Delete):
                    for target in stmt.targets:
                        check_mutation(target, stmt)
                        scan_exprs(target)
                elif isinstance(stmt, ast.Return):
                    scan_exprs(stmt.value)
                elif isinstance(stmt, ast.Expr):
                    scan_exprs(stmt.value)
                elif isinstance(stmt, (ast.Assert, ast.Raise)):
                    scan_exprs(*[v for v in ast.iter_child_nodes(stmt)])

        walk_stmts(func.body)
        if register:
            self.functions[key] = finfo

    # -- passes --------------------------------------------------------

    def run(self) -> None:
        self.build_registries()
        # pass 1: register preconditions so pass 2 can check call sites.
        for module in self.modules:
            for cls_name, func in module.functions:
                cls = module.classes.get(cls_name) if cls_name else None
                guard = _guard_for_line(module, func.lineno)
                finfo = _FuncInfo(key=(cls_name, func.name), path=module.path)
                if guard is not None:
                    name = guard[0]
                    if name.startswith("self."):
                        name = name[len("self."):]
                    if cls is not None and name in cls.locks:
                        finfo.preconditions.append(f"{cls.name}.{name}")
                    elif name in module.module_locks:
                        finfo.preconditions.append(name)
                    # unknown names diagnosed in pass 2 (RS706)
                self.functions[(cls_name, func.name)] = finfo
        # pass 2: the real walk (overwrites the stub _FuncInfo entries).
        for module in self.modules:
            for cls_name, func in module.functions:
                self.walk_function(module, cls_name, func)
        self.check_annotation_drift()
        self.build_lock_graph()

    def check_annotation_drift(self) -> None:
        """RS706 for declaration-site guards naming unknown locks."""
        for module in self.modules:
            for cls in module.classes.values():
                for attr, (raw, line) in sorted(cls.guards.items()):
                    if self.resolve_guard_quiet(module, cls, raw) is None:
                        self.resolve_guard(
                            module, cls, raw, line, f"self.{attr}"
                        )
            for name, (raw, line) in sorted(module.module_guards.items()):
                if self.resolve_guard_quiet(module, None, raw) is None:
                    self.resolve_guard(module, None, raw, line, name)

    def build_lock_graph(self) -> None:
        """Interprocedural edges + RS702 cycle detection."""
        # fixpoint: may_acquire(f) = direct acquires + callees'.
        may_acquire: Dict[Tuple[Optional[str], str], Set[str]] = {
            key: {lid for lid, _, _ in finfo.acquires}
            for key, finfo in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, finfo in self.functions.items():
                acc = may_acquire[key]
                before = len(acc)
                for callee, _, _ in finfo.calls:
                    # preconditions are *held by the caller*, not
                    # acquired by the callee -- only real acquisitions
                    # propagate up.
                    acc |= may_acquire.get(callee, set())
                if len(acc) != before:
                    changed = True
        # call-through edges: held at the call site -> whatever the
        # callee may acquire.
        for key, finfo in self.functions.items():
            for callee, held, line in finfo.calls:
                if not held:
                    continue
                for lid in may_acquire.get(callee, set()):
                    for holder in held:
                        if holder != lid:
                            self.edges.setdefault(
                                (holder, lid), (finfo.path, line)
                            )
        self.report_cycles()

    def report_cycles(self) -> None:
        adjacency: Dict[str, Set[str]] = {}
        for (u, v) in self.edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set())
        # iterative 3-color DFS for one witness cycle per SCC-ish region
        WHITE, GREY, BLACK = 0, 1, 2
        color = {n: WHITE for n in adjacency}
        parent: Dict[str, str] = {}
        cycles: List[List[str]] = []
        for root in sorted(adjacency):
            if color[root] != WHITE:
                continue
            stack = [(root, iter(sorted(adjacency[root])))]
            color[root] = GREY
            while stack:
                node, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if color[succ] == GREY:
                        cycle = [node]
                        walk = node
                        while walk != succ:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        cycles.append(cycle)
                        continue
                    if color[succ] == WHITE:
                        color[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(sorted(adjacency[succ]))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        seen: Set[Tuple[str, ...]] = set()
        for cycle in cycles:
            canon = min(
                tuple(cycle[i:] + cycle[:i]) for i in range(len(cycle))
            )
            if canon in seen:
                continue
            seen.add(canon)
            chain = " -> ".join(list(canon) + [canon[0]])
            witnesses = []
            ring = list(canon) + [canon[0]]
            first_witness: Optional[Tuple[str, int]] = None
            for u, v in zip(ring, ring[1:]):
                witness = self.edges.get((u, v))
                if witness is not None:
                    if first_witness is None:
                        first_witness = witness
                    witnesses.append(f"{v} after {u} at {witness[0]}:{witness[1]}")
            path, line = first_witness if first_witness else ("<unknown>", 1)
            module = next(
                (m for m in self.modules if m.path == path), self.modules[0]
            )
            anchor = ast.Pass()
            anchor.lineno = line
            anchor.col_offset = 0
            anchor.end_lineno = line
            anchor.end_col_offset = 0
            self.diag(
                module,
                anchor,
                "RS702",
                f"lock acquisition order cycle: {chain} -- two threads "
                "taking these locks in opposite orders deadlock "
                f"({'; '.join(witnesses)})",
                "pick one global order for these locks and re-order the "
                "inner acquisition",
            )

    def lock_graph(self) -> Dict[str, Tuple[str, ...]]:
        adjacency: Dict[str, Set[str]] = {}
        for (u, v) in self.edges:
            adjacency.setdefault(u, set()).add(v)
        return {u: tuple(sorted(vs)) for u, vs in sorted(adjacency.items())}


# ---------------------------------------------------------------------------
# public API


def analyze_sources(sources: Sequence[Tuple[str, str]]) -> RaceCheckResult:
    """Run the full analysis over ``(path, source)`` pairs."""
    modules = []
    for path, source in sources:
        info = _harvest_module(path, source)
        if info is not None:
            modules.append(info)
    if not modules:
        return RaceCheckResult(files=[], lock_graph={}, locks=())
    analyzer = _Analyzer(modules)
    analyzer.run()
    files = [analyzer.reports[m.path] for m in modules]
    for report in files:
        report.diagnostics.sort(
            key=lambda d: (d.location.line, d.location.column, d.code or "")
        )
    return RaceCheckResult(
        files=files,
        lock_graph=analyzer.lock_graph(),
        locks=tuple(sorted(analyzer.all_lock_ids())),
    )


def collect_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                str(p) for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.append(str(path))
    return sorted(dict.fromkeys(out))


def racecheck_paths(paths: Sequence[str]) -> RaceCheckResult:
    """Analyze every ``.py`` file under the given files/directories."""
    sources = []
    for file_path in collect_python_files(paths):
        try:
            text = Path(file_path).read_text(encoding="utf-8")
        except OSError:
            continue
        sources.append((file_path, text))
    return analyze_sources(sources)


#: Root of repro's own source tree, the default racecheck target.
DEFAULT_ROOT = Path(__file__).resolve().parents[1]

_PREDICTED_CACHE: Dict[str, Dict[str, Tuple[str, ...]]] = {}


def predicted_lock_graph(
    root: Optional[str] = None,
) -> Dict[str, Tuple[str, ...]]:
    """The statically predicted lock graph of a source tree.

    Memoized per root: the chaos campaign cross-checks every trial
    against this graph and the source does not change mid-process.
    """
    target = str(root) if root is not None else str(DEFAULT_ROOT)
    cached = _PREDICTED_CACHE.get(target)
    if cached is None:
        cached = racecheck_paths([target]).lock_graph
        _PREDICTED_CACHE[target] = cached
    return cached
