"""Ring-buffer lifetime analysis (static, allocation-level).

The paper's register-allocation argument -- each column's ring rotates,
the retiring element always vacates exactly the slot the leading edge
needs, and the whole pattern repeats with period LCM(sizes) -- is an
invariant of the *allocation*, checkable without touching a single op:

* ``RS501`` two elements are live in one slot at once (an allocation
  "race": the ring is too small for the column's row span, so a load
  would overwrite data a later line still reads);
* ``RS502`` (reported by :func:`repro.verify.dataflow.check_register_usage`,
  which needs the op streams) a ring register is allocated but dead;
* ``RS503`` a ring is sized below its column's span outright;
* ``RS504`` a physical register is double-booked across rings, collides
  with a reserved register, or falls outside the register file;
* ``RS505`` the unroll factor is not a common multiple of the ring
  sizes, so the rotated access patterns do not tile the steady state.

Live ranges come straight from the slot discipline: the element loaded
into a column on line ``n`` (the leading edge, row ``top``) sits at row
``top + k`` on line ``n + k`` and dies after line ``n + span - 1``; its
slot is reused ``size`` lines after it was filled.  Overlap is possible
exactly when ``size < span``, but the analysis derives that from the
simulated occupancy rather than assuming it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..compiler.allocation import RegisterAllocation
from ..compiler.ringbuf import RingBuffer, column_span
from ..machine.params import MachineParams
from .diagnostics import Diagnostic, plan_error


def ring_live_intervals(
    ring: RingBuffer, lines: int
) -> List[Tuple[int, int, int]]:
    """``(birth_line, death_line, slot)`` per element entering ``ring``.

    Line 0 is the prologue's full load (every row of the span, gap rows
    included, exactly as the code generator emits it); lines ``1 ..
    lines`` each load one leading-edge element.
    """
    top, bottom = ring.column.top, ring.column.bottom
    span = column_span(ring.column)
    intervals: List[Tuple[int, int, int]] = []
    for row in range(top, bottom + 1):
        intervals.append((0, bottom - row, ring.slot_for(row, 0)))
    for line in range(1, lines + 1):
        intervals.append((line, line + span - 1, ring.load_slot(line)))
    return intervals


def _check_ring(
    ring: RingBuffer, unroll: int, label: str
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    span = column_span(ring.column)
    if ring.size < span:
        diagnostics.append(
            plan_error(
                "RS503",
                f"{label}: ring size {ring.size} below the column span "
                f"{span} (rows {ring.column.top}..{ring.column.bottom})",
            )
        )
    if len(ring.registers) != ring.size:
        diagnostics.append(
            plan_error(
                "RS504",
                f"{label}: ring of size {ring.size} holds "
                f"{len(ring.registers)} registers",
            )
        )
    if unroll % ring.size != 0:
        diagnostics.append(
            plan_error(
                "RS505",
                f"{label}: unroll factor {unroll} is not a multiple of the "
                f"ring size {ring.size}; the rotated access patterns do "
                "not tile the steady state",
            )
        )

    # Slot occupancy over a full period (plus a span's worth of extra
    # lines so wrap-around reuse is exercised at least once per slot).
    lines = max(unroll, ring.size) + span + 1
    occupant: Dict[int, int] = {}
    for birth, death, slot in ring_live_intervals(ring, lines):
        previous = occupant.get(slot)
        if previous is not None and previous >= birth:
            diagnostics.append(
                plan_error(
                    "RS501",
                    f"{label}: slot {slot} is reloaded on line {birth} while "
                    f"its previous element is live through line {previous} "
                    "-- overlapping lifetimes",
                )
            )
            break  # one witness per ring is enough
        occupant[slot] = death
    return diagnostics


def analyze_lifetimes(
    allocation: RegisterAllocation,
    params: Optional[MachineParams] = None,
    *,
    label: str = "",
) -> List[Diagnostic]:
    """Statically verify one width's register allocation."""
    params = params or MachineParams()
    prefix = label or f"width {allocation.multistencil.width}"
    diagnostics: List[Diagnostic] = []

    reserved = {allocation.zero_reg}
    if allocation.unit_reg is not None:
        reserved.add(allocation.unit_reg)
    seen: Dict[int, str] = {
        reg: "reserved" for reg in reserved
    }
    for ring in allocation.rings:
        ring_label = f"{prefix}, column {ring.column.x}"
        for reg in ring.registers:
            if not 0 <= reg < params.registers:
                diagnostics.append(
                    plan_error(
                        "RS504",
                        f"{ring_label}: register r{reg} outside the "
                        f"{params.registers}-register file",
                    )
                )
            elif reg in seen:
                diagnostics.append(
                    plan_error(
                        "RS504",
                        f"{ring_label}: register r{reg} double-booked "
                        f"(already assigned to {seen[reg]})",
                    )
                )
            else:
                seen[reg] = f"column {ring.column.x}"
        diagnostics.extend(_check_ring(ring, allocation.unroll, ring_label))
    return diagnostics
