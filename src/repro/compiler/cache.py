"""Thread-safe, tenant-scoped memoization for the compile driver.

The compiled-plan and block-depth caches started life as bare module
globals mutated from whoever happened to be compiling.  One program
owning the whole machine never noticed; a multi-tenant service hammering
``apply_stencil`` from worker threads does: interleaved read-modify-write
on the hit/miss counters, duplicate compilations racing into the same
key, and one tenant's ``clear_compile_cache()`` zeroing every tenant's
telemetry mid-flight.

:class:`SyncCache` is the replacement: one lock-guarded cache object per
kind of memoization, shared by every tenant (plans are tenant-agnostic
-- the key carries everything that determines the output, health
signatures included), with

* **in-flight deduplication** -- concurrent misses on one key run the
  factory exactly once and every caller receives the same object, so the
  driver's "same plan returned to every caller" identity guarantee
  survives concurrency;
* **scoped statistics** -- hits and misses are tallied per *scope*
  (a tenant id; ``None`` is the anonymous scope for direct callers), and
  clearing one scope's telemetry never touches another's;
* the same bounded-size discipline as before: at the entry limit the
  table is dropped wholesale and rebuilt by demand.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Optional, Tuple

from ..verify import lockdep

#: Scope key for callers that did not identify a tenant.
ANONYMOUS = None

#: Default argument sentinel: "every scope", as opposed to the anonymous
#: scope (``None``) or one tenant's.
ALL_SCOPES = object()


class CacheStats:
    """Hit/miss counters for one scope (mutable, lock-protected by the
    owning cache)."""

    __slots__ = ("hits", "misses")

    def __init__(self, hits: int = 0, misses: int = 0) -> None:
        self.hits = hits
        self.misses = misses

    def as_tuple(self) -> Tuple[int, int]:
        return self.hits, self.misses


class _InFlight:
    """A key being computed right now: waiters block on the event."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class SyncCache:
    """A bounded, lock-guarded memoization table with scoped stats.

    All mutation happens under one reentrant lock; factories run
    *outside* it (compilation is slow and must not serialize unrelated
    keys) but are deduplicated per key, so a burst of identical requests
    costs one compilation.

    Lock discipline: ``_entries``, ``_inflight``, and ``_stats`` are
    guarded by ``_lock``; waiters block on an in-flight entry's event
    *outside* the lock.  The cache calls nothing that locks -- a leaf
    of the lock graph.
    """

    def __init__(self, name: str, limit: int) -> None:
        self.name = name
        self.limit = int(limit)
        self._lock = lockdep.rlock("SyncCache._lock")
        self._entries: Dict[Hashable, object] = {}  # guarded-by: _lock
        self._inflight: Dict[Hashable, _InFlight] = {}  # guarded-by: _lock
        self._stats: Dict[Optional[str], CacheStats] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def _scope_stats(self, scope: Optional[str]) -> CacheStats:  # guarded-by: _lock
        stats = self._stats.get(scope)
        if stats is None:
            stats = self._stats[scope] = CacheStats()
        return stats

    def get_or_compute(
        self,
        key: Hashable,
        factory: Callable[[], object],
        scope: Optional[str] = ANONYMOUS,
    ) -> object:
        """The cached value for ``key``, computing it at most once.

        Concurrent callers missing on the same key block until the first
        one's factory returns, then share its result object.  A factory
        that raises releases the waiters, and the next caller retries.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._scope_stats(scope).hits += 1
                    return self._entries[key]
                pending = self._inflight.get(key)
                if pending is None:
                    pending = self._inflight[key] = _InFlight()
                    owner = True
                else:
                    owner = False
            if not owner:
                pending.event.wait()
                # Either the entry landed (hit on re-check) or the owner
                # failed or a clear raced in -- loop and resolve again.
                continue
            try:
                value = factory()
            except BaseException:
                with self._lock:
                    if self._inflight.get(key) is pending:
                        del self._inflight[key]
                pending.event.set()
                raise
            with self._lock:
                self._scope_stats(scope).misses += 1
                if len(self._entries) >= self.limit:
                    self._entries.clear()
                self._entries[key] = value
                if self._inflight.get(key) is pending:
                    del self._inflight[key]
            pending.event.set()
            return value

    def lookup(
        self, key: Hashable, scope: Optional[str] = ANONYMOUS
    ) -> Tuple[bool, object]:
        """``(present, value)`` without computing; tallies the outcome."""
        with self._lock:
            if key in self._entries:
                self._scope_stats(scope).hits += 1
                return True, self._entries[key]
            self._scope_stats(scope).misses += 1
            return False, None

    def insert(self, key: Hashable, value: object) -> None:
        """Insert a value computed elsewhere (no stats tallied)."""
        with self._lock:
            if len(self._entries) >= self.limit:
                self._entries.clear()
            self._entries[key] = value

    # ------------------------------------------------------------------
    # Telemetry and maintenance
    # ------------------------------------------------------------------

    def info(self, scope: object = ALL_SCOPES) -> Tuple[int, int, int]:
        """``(hits, misses, entries)``.

        With no ``scope`` the counters aggregate every scope (the
        pre-service behaviour of ``compile_cache_info()``); with a
        ``scope`` -- a tenant id, or ``None`` for the anonymous scope --
        they are that scope's alone.  Entry counts are global either
        way: the table is shared.
        """
        with self._lock:
            entries = len(self._entries)
            if scope is not ALL_SCOPES:
                stats = self._stats.get(scope, CacheStats())
                return stats.hits, stats.misses, entries
            hits = sum(s.hits for s in self._stats.values())
            misses = sum(s.misses for s in self._stats.values())
            return hits, misses, entries

    def scopes(self) -> Tuple[Optional[str], ...]:
        """Every scope that has recorded telemetry."""
        with self._lock:
            return tuple(self._stats.keys())

    def clear(self, scope: object = ALL_SCOPES) -> None:
        """Reset the cache.

        ``clear()`` drops every entry and every scope's counters -- the
        historical full reset, right for tests that want a pristine
        module.  ``clear(scope=tenant)`` resets only that tenant's
        counters and leaves the shared entries (and every other tenant's
        telemetry) untouched: one tenant resetting its own view must not
        corrupt another's.
        """
        with self._lock:
            if scope is ALL_SCOPES:
                self._entries.clear()
                self._stats.clear()
            else:
                self._stats.pop(scope, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
