"""Register allocation for one multistencil width.

The WTL3164 has 32 internal registers.  One is reserved to hold 0.0 (the
chain-opening addend, and the target of dummy multiply-adds); a second is
reserved to hold 1.0 when the expression contains a constant term or a
bare data term.  "The compiler therefore has 31 or 30 registers into
which to load data elements" (paper section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..machine.params import MachineParams
from ..stencil.multistencil import Multistencil
from ..stencil.pattern import StencilPattern
from .ringbuf import (
    RingBuffer,
    build_rings,
    column_span,
    lcm_of,
    plan_ring_sizes,
    plan_ring_sizes_optimal,
)

#: Physical register reserved to hold 0.0.
ZERO_REG = 0
#: Physical register reserved to hold 1.0 when needed.
UNIT_REG = 1


class AllocationError(Exception):
    """This multistencil width does not fit the register file."""


@dataclass(frozen=True)
class RegisterAllocation:
    """The register assignment for one multistencil width.

    Attributes:
        multistencil: the geometry being allocated.
        zero_reg: register holding 0.0.
        unit_reg: register holding 1.0, or None when not needed.
        rings: one ring buffer per multistencil column, left to right.
        unroll: LCM of the ring sizes -- the register-access-pattern
            unroll factor loaded into sequencer scratch memory.
    """

    multistencil: Multistencil
    zero_reg: int
    unit_reg: Optional[int]
    rings: Tuple[RingBuffer, ...]
    unroll: int

    @property
    def data_registers(self) -> int:
        return sum(ring.size for ring in self.rings)

    @property
    def total_registers(self) -> int:
        return self.data_registers + 1 + (1 if self.unit_reg is not None else 0)

    def ring_for_column(self, x: int) -> RingBuffer:
        for ring in self.rings:
            if ring.column.x == x:
                return ring
        raise KeyError(f"no ring buffer for multistencil column {x}")

    def register_for(self, row: int, x: int, line: int) -> int:
        """Physical register holding position ``(row, x)`` on ``line``."""
        return self.ring_for_column(x).register_for(row, line)

    def ring_sizes(self) -> Tuple[int, ...]:
        return tuple(ring.size for ring in self.rings)

    def describe(self) -> str:
        sizes = ",".join(str(size) for size in self.ring_sizes())
        return (
            f"width {self.multistencil.width}: {self.data_registers} data "
            f"registers in rings [{sizes}], unroll {self.unroll}"
        )


def allocate(
    pattern: StencilPattern,
    width: int,
    params: Optional[MachineParams] = None,
    *,
    strategy: str = "paper",
) -> RegisterAllocation:
    """Allocate registers for the given multistencil width.

    Args:
        strategy: ``"paper"`` uses the compression heuristic of section
            5.4; ``"optimal"`` uses the LCM-minimizing dynamic program
            (the "even more clever strategy" the paper anticipates for
            the general case).

    Raises:
        AllocationError: the width needs more data registers than the 31
            (or 30) available -- e.g. the width-8 13-point diamond, which
            needs 48.
    """
    params = params or MachineParams()
    multistencil = Multistencil(pattern, width)
    needs_unit = pattern.needs_unit_register()
    budget = params.registers - 1 - (1 if needs_unit else 0)
    if strategy == "paper":
        sizes = plan_ring_sizes(multistencil.columns, budget)
    elif strategy == "optimal":
        sizes = plan_ring_sizes_optimal(multistencil.columns, budget)
    else:
        raise ValueError(f"unknown ring-sizing strategy {strategy!r}")
    if sizes is None:
        needed = sum(column_span(col) for col in multistencil.columns)
        raise AllocationError(
            f"width-{width} multistencil of {pattern.name or 'stencil'} "
            f"needs {needed} data registers; only {budget} are available"
        )
    unit_reg = UNIT_REG if needs_unit else None
    first_data = (unit_reg if unit_reg is not None else ZERO_REG) + 1
    rings = build_rings(multistencil.columns, sizes, first_data)
    return RegisterAllocation(
        multistencil=multistencil,
        zero_reg=ZERO_REG,
        unit_reg=unit_reg,
        rings=rings,
        unroll=lcm_of(sizes),
    )
