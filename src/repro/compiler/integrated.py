"""The integrated compiler: the paper's version 3, realized.

"The third version, now under construction, will be fully integrated
into the CM Fortran compiler ... The need for isolated subroutines will
be eliminated.  We plan to allow the user to flag stencil assignment
statements with a directive in the form of a structured comment; while
the compiler can easily recognize candidate assignment statements, the
presence of a directive justifies the compiler in providing feedback to
the user" (paper section 6).

:func:`compile_program` scans every subroutine of a source file,
compiles every assignment the convolution module can take (whether or
not it carries a ``!REPRO$ STENCIL`` / ``!CMF$ STENCIL`` directive),
leaves the rest to the notional stock compiler, and collects the
directive-justified warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..fortran.ast_nodes import Assignment, Subroutine
from ..fortran.errors import DiagnosticSink
from ..fortran.parser import parse_program
from ..fortran.recognizer import scan_subroutine
from ..machine.params import MachineParams
from .plan import CompiledStencil, StencilCompileError, compile_pattern


@dataclass
class CompiledStatement:
    """One assignment statement's disposition."""

    subroutine: str
    statement: Assignment
    compiled: Optional[CompiledStencil]  # None: left to the stock compiler

    @property
    def handled(self) -> bool:
        return self.compiled is not None

    def describe(self) -> str:
        verdict = (
            f"convolution module ({self.compiled.widths})"
            if self.handled
            else "stock compiler"
        )
        return f"{self.subroutine}: {self.statement.describe()} -> {verdict}"


@dataclass
class ProgramCompilation:
    """The integrated compiler's output for one source file."""

    statements: List[CompiledStatement] = field(default_factory=list)
    diagnostics: DiagnosticSink = field(default_factory=DiagnosticSink)

    @property
    def handled(self) -> List[CompiledStatement]:
        return [s for s in self.statements if s.handled]

    @property
    def fallback(self) -> List[CompiledStatement]:
        return [s for s in self.statements if not s.handled]

    def handled_in(self, subroutine: str) -> List[CompiledStatement]:
        name = subroutine.upper()
        return [s for s in self.handled if s.subroutine == name]

    def describe(self) -> str:
        lines = [s.describe() for s in self.statements]
        if self.diagnostics.diagnostics:
            lines.append(self.diagnostics.describe())
        return "\n".join(lines)


def compile_program(
    source: str,
    params: Optional[MachineParams] = None,
    *,
    filename: str = "<fortran>",
) -> ProgramCompilation:
    """Scan and compile a whole Fortran source file.

    Statements the recognizer accepts but that exhaust machine resources
    (no feasible multistencil width) fall back to the stock compiler; if
    such a statement carries a stencil directive, a warning explains why
    -- "such as a warning if the statement could not be processed by
    this technique after all (for lack of registers, for example)".
    """
    params = params or MachineParams()
    program = parse_program(source, filename)
    result = ProgramCompilation()
    for subroutine in program.subroutines:
        for statement, pattern in scan_subroutine(
            subroutine, result.diagnostics
        ):
            compiled = None
            if pattern is not None:
                try:
                    compiled = compile_pattern(pattern, params)
                except StencilCompileError as exc:
                    if statement.directive is not None:
                        result.diagnostics.warn(
                            f"statement flagged {statement.directive!r} was "
                            f"recognized but could not be compiled: {exc}",
                            statement.location,
                        )
            result.statements.append(
                CompiledStatement(
                    subroutine=subroutine.name,
                    statement=statement,
                    compiled=compiled,
                )
            )
    return result
