"""The convolution compiler: register allocation and code generation."""

from .allocation import (
    UNIT_REG,
    ZERO_REG,
    AllocationError,
    RegisterAllocation,
    allocate,
)
from .codegen import (
    ExtraTerm,
    LinePattern,
    build_line_pattern,
    drain_gap,
    multiply_add_block,
)
from .fusion import FusedPattern, FusedStencil, fuse
from .integrated import (
    CompiledStatement,
    ProgramCompilation,
    compile_program,
)
from .driver import compile_defstencil, compile_fortran, compile_stencil
from .plan import CompiledStencil, StencilCompileError, WidthPlan, compile_pattern
from .ringbuf import (
    RingBuffer,
    build_rings,
    column_span,
    lcm_of,
    plan_ring_sizes,
    plan_ring_sizes_optimal,
)

__all__ = [
    "AllocationError",
    "CompiledStencil",
    "CompiledStatement",
    "ExtraTerm",
    "FusedPattern",
    "FusedStencil",
    "fuse",
    "ProgramCompilation",
    "compile_program",
    "LinePattern",
    "RegisterAllocation",
    "RingBuffer",
    "StencilCompileError",
    "UNIT_REG",
    "WidthPlan",
    "ZERO_REG",
    "allocate",
    "build_line_pattern",
    "build_rings",
    "column_span",
    "compile_defstencil",
    "compile_fortran",
    "compile_pattern",
    "compile_stencil",
    "drain_gap",
    "lcm_of",
    "multiply_add_block",
    "plan_ring_sizes",
    "plan_ring_sizes_optimal",
]
