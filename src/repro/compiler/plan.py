"""Compiled stencils: per-width plans plus their closed-form cost model.

The compiler attempts multistencil widths 8, 4, 2 and 1; "it is all right
if some of these don't work" (paper section 5.3).  The run-time library
later shaves off, at each step, the widest strip for which a workable
plan exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.params import MachineParams
from ..stencil.multistencil import multistencil_widths
from ..stencil.pattern import CoeffKind, StencilPattern
from .allocation import AllocationError, RegisterAllocation, allocate
from .codegen import LinePattern, build_line_pattern


class StencilCompileError(Exception):
    """No multistencil width fits the machine (pattern too large)."""


@dataclass(frozen=True)
class WidthPlan:
    """Everything needed to run one multistencil width.

    Attributes:
        width: results per line.
        allocation: the ring-buffer register assignment.
        prologue: line pattern for the first line of a half-strip (full
            multistencil load; always phase 0).
        steady: line patterns for phases ``0 .. unroll-1``; line ``n > 0``
            of a half-strip uses ``steady[n % unroll]``.
    """

    width: int
    allocation: RegisterAllocation
    prologue: LinePattern
    steady: Tuple[LinePattern, ...]

    @property
    def unroll(self) -> int:
        return self.allocation.unroll

    @property
    def steady_line_cycles(self) -> int:
        return self.steady[0].cycles

    @property
    def prologue_cycles(self) -> int:
        return self.prologue.cycles

    @property
    def scratch_words(self) -> int:
        """Sequencer scratch data memory the unrolled patterns consume."""
        return self.prologue.scratch_words + sum(
            line.scratch_words for line in self.steady
        )

    def pattern_for_line(self, line: int) -> LinePattern:
        """The dynamic-part sequence for the ``line``-th line (0-based)."""
        if line == 0:
            return self.prologue
        return self.steady[line % self.unroll]

    def half_strip_cycles(self, lines: int, params: MachineParams) -> int:
        """Closed-form node cycles to process one half-strip of ``lines``
        lines, including sequencer overhead.

        This is exact: tests assert equality with the cycle-stepped FPU.
        """
        if lines <= 0:
            return 0
        return (
            params.half_strip_dispatch_cycles
            + self.prologue_cycles
            + (lines - 1) * self.steady_line_cycles
            + lines * params.sequencer_line_overhead
        )

    def describe(self) -> str:
        return (
            f"width {self.width}: {self.allocation.describe()}; "
            f"prologue {self.prologue_cycles} cycles, steady line "
            f"{self.steady_line_cycles} cycles, scratch {self.scratch_words} words"
        )

    def disassemble(self, *, phase: int = 0, prologue: bool = False) -> str:
        """A readable listing of one line pattern's dynamic parts.

        One row per machine cycle -- what the sequencer's scratch data
        memory holds for this phase.  A debugging aid in the spirit of
        the Lisp prototype's microcode environment.
        """
        from .codegen import disassemble_ops

        line = self.prologue if prologue else self.steady[phase % self.unroll]
        kind = "prologue" if prologue else f"steady phase {line.phase}"
        header = (
            f"; width {self.width}, {kind}: {line.cycles} cycles, "
            f"{line.num_loads} loads, {line.num_ma} multiply-adds, "
            f"{line.num_stores} stores, drain {line.drain_gap}"
        )
        return header + "\n" + disassemble_ops(line.ops)


class CompiledStencil:
    """The compiler's output for one stencil pattern.

    Attributes:
        pattern: the compiled stencil.
        params: the machine compiled for.
        plans: feasible width plans, keyed by width.
        rejections: why each infeasible width was rejected (the feedback
            the paper's planned directive would surface).
    """

    def __init__(
        self,
        pattern: StencilPattern,
        params: MachineParams,
        plans: Dict[int, WidthPlan],
        rejections: Dict[int, str],
    ) -> None:
        if not plans:
            raise StencilCompileError(
                f"no multistencil width of {pattern.name or 'stencil'} fits "
                f"the machine: {rejections}"
            )
        self.pattern = pattern
        self.params = params
        self.plans = dict(sorted(plans.items(), reverse=True))
        self.rejections = dict(rejections)

    @property
    def widths(self) -> Tuple[int, ...]:
        """Feasible widths, widest first."""
        return tuple(self.plans)

    @property
    def max_width(self) -> int:
        return max(self.plans)

    def plan_for(self, remaining_width: int) -> WidthPlan:
        """The widest feasible plan not exceeding the remaining strip width.

        This is the run-time library's shaving rule: a subgrid axis of
        length 21 becomes strips of 8, 8, 4 and 1.
        """
        for width, plan in self.plans.items():
            if width <= remaining_width:
                return plan
        raise StencilCompileError(
            f"no plan fits a remaining width of {remaining_width} "
            f"(available: {self.widths})"
        )

    def strip_widths(self, axis_length: int) -> List[int]:
        """Decompose a subgrid axis into strip widths, greedily widest-first."""
        if axis_length < 1:
            raise ValueError("axis length must be positive")
        widths: List[int] = []
        remaining = axis_length
        while remaining > 0:
            plan = self.plan_for(remaining)
            widths.append(plan.width)
            remaining -= plan.width
        return widths

    def scalar_coefficient_values(self) -> Tuple[float, ...]:
        """Distinct scalar coefficient values needing constant pages.

        Distinctness is by representation, not numeric equality: -0.0
        and 0.0 compare equal but name different constant pages.
        """
        values: Dict[str, float] = {}
        for tap in self.pattern.taps:
            if tap.coeff.kind is CoeffKind.SCALAR:
                value = float(tap.coeff.value)
                values.setdefault(repr(value), value)
        return tuple(values.values())

    def describe(self) -> str:
        lines = [f"compiled {self.pattern.describe()}"]
        lines += [f"  {plan.describe()}" for plan in self.plans.values()]
        lines += [
            f"  width {width} rejected: {reason}"
            for width, reason in self.rejections.items()
        ]
        return "\n".join(lines)


def compile_pattern(
    pattern: StencilPattern,
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
    *,
    strategy: str = "paper",
) -> CompiledStencil:
    """Compile a stencil pattern into per-width plans.

    Widths failing register allocation or exceeding sequencer scratch
    memory are recorded as rejections rather than errors; only a pattern
    with *no* feasible width raises :class:`StencilCompileError`.

    ``strategy`` selects the ring-sizing approach: the paper's
    compression heuristic or the LCM-minimizing dynamic program.
    """
    params = params or MachineParams()
    plans: Dict[int, WidthPlan] = {}
    rejections: Dict[int, str] = {}
    for width in widths:
        try:
            allocation = allocate(pattern, width, params, strategy=strategy)
        except AllocationError as exc:
            rejections[width] = str(exc)
            continue
        prologue = build_line_pattern(
            pattern, allocation, params, phase=0, full_load=True
        )
        steady = tuple(
            build_line_pattern(
                pattern, allocation, params, phase=phase, full_load=False
            )
            for phase in range(allocation.unroll)
        )
        plan = WidthPlan(
            width=width,
            allocation=allocation,
            prologue=prologue,
            steady=steady,
        )
        if plan.scratch_words > params.scratch_memory_words:
            rejections[width] = (
                f"unrolled register access patterns need {plan.scratch_words} "
                f"scratch words; only {params.scratch_memory_words} available"
            )
            continue
        plans[width] = plan
    return CompiledStencil(pattern, params, plans, rejections)
