"""High-level compilation entry points for the three front ends."""

from __future__ import annotations

from typing import Optional, Sequence

from ..fortran.parser import parse_assignment, parse_subroutine
from ..fortran.recognizer import recognize_assignment, recognize_subroutine
from ..lisp.defstencil import parse_defstencil, parse_defstencil_with_types
from ..machine.params import MachineParams
from ..stencil.multistencil import multistencil_widths
from ..stencil.pattern import StencilPattern
from .plan import CompiledStencil, compile_pattern


def compile_stencil(
    pattern: StencilPattern,
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
    *,
    strategy: str = "paper",
) -> CompiledStencil:
    """Compile a stencil pattern (any front end's output)."""
    return compile_pattern(pattern, params, widths, strategy=strategy)


def compile_fortran(
    source: str,
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
) -> CompiledStencil:
    """Compile Fortran source: either an isolated stencil subroutine
    (the paper's second version) or a bare assignment statement.

    The source is treated as a subroutine if it contains the SUBROUTINE
    keyword, otherwise as a single assignment.
    """
    if "SUBROUTINE" in source.upper():
        pattern = recognize_subroutine(parse_subroutine(source))
    else:
        pattern = recognize_assignment(parse_assignment(source))
    return compile_pattern(pattern, params, widths)


def compile_defstencil(
    source: str,
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
) -> CompiledStencil:
    """Compile a Lisp ``defstencil`` form (the paper's first version).

    Accepts both the 4-element form and the paper's 5-element form with
    the type list.
    """
    try:
        pattern = parse_defstencil_with_types(source)
    except Exception:
        pattern = parse_defstencil(source)
    return compile_pattern(pattern, params, widths)
