"""High-level compilation entry points for the three front ends.

Compiled plans are memoized: a stencil statement is compiled once per
``(pattern, params, widths, strategy)`` and the same
:class:`~repro.compiler.plan.CompiledStencil` (immutable after
construction) is returned to every caller, so iterated runs, sweeps, and
repeated subroutine calls skip recompilation entirely.

Both memoization tables are shared, thread-safe services
(:class:`~repro.compiler.cache.SyncCache`): the stencil service compiles
from many tenants' worker threads at once, concurrent misses on a key
run one compilation, and hit/miss telemetry is tallied per tenant scope
-- ``compile_cache_info(tenant=...)`` reads one tenant's counters, and
clearing one tenant's scope never perturbs another's.  Plans themselves
are tenant-agnostic: the key carries everything that determines the
output (degraded-machine health signatures included), never who asked.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

from ..fortran.parser import parse_assignment, parse_subroutine
from ..fortran.recognizer import recognize_assignment, recognize_subroutine
from ..lisp.defstencil import parse_defstencil, parse_defstencil_with_types
from ..machine.params import MachineParams
from ..stencil.multistencil import multistencil_widths
from ..stencil.pattern import StencilPattern
from .cache import ALL_SCOPES, ANONYMOUS, SyncCache
from .plan import CompiledStencil, compile_pattern

#: Memoized compilations, keyed on everything that determines the output.
_PLAN_CACHE = SyncCache("plans", limit=512)

#: Memoized block-depth selections (temporal blocking), keyed like the
#: plan cache plus the run geometry the choice depends on.
_DEPTH_CACHE = SyncCache("depths", limit=2048)


def clear_compile_cache(tenant: object = ALL_SCOPES) -> None:
    """Reset the compile-driver caches.

    With no argument: drop every memoized plan and depth selection and
    every scope's counters (the historical full reset, mainly for
    tests).  With ``tenant=<id>``: reset only that tenant's hit/miss
    telemetry in both caches -- the shared entries and every other
    tenant's counters are untouched.
    """
    _PLAN_CACHE.clear(tenant)
    _DEPTH_CACHE.clear(tenant)


def compile_cache_info(tenant: object = ALL_SCOPES) -> Tuple[int, int, int]:
    """``(hits, misses, entries)`` of the compiled-plan cache.

    By default the counters aggregate every scope; ``tenant=<id>`` reads
    one tenant's telemetry (entries stay global -- the table is shared).
    """
    return _PLAN_CACHE.info(tenant)


def depth_cache_info(tenant: object = ALL_SCOPES) -> Tuple[int, int, int]:
    """``(hits, misses, entries)`` of the block-depth selection cache.

    Chaos runs lean on this: a degraded retry of the same problem must
    not re-price the depth sweep, so resilient-path regressions show up
    here as unexpected misses.  Scoped like :func:`compile_cache_info`.
    """
    return _DEPTH_CACHE.info(tenant)


def _maybe_verify(compiled: CompiledStencil) -> CompiledStencil:
    """Statically verify a fresh compilation when ``RS_VERIFY=1``.

    Off by default (verification costs a symbolic walk of every op in
    every width plan); the CI ``verify`` job and paranoid users turn it
    on to prove each plan before it is cached or executed.  Raises
    :class:`repro.verify.VerificationError` on any error-severity
    diagnostic.
    """
    if os.environ.get("RS_VERIFY") == "1":
        # Imported lazily: the verify package pulls in the front end.
        from ..verify import assert_verified

        assert_verified(compiled)
    return compiled


def compile_stencil(
    pattern: StencilPattern,
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
    *,
    strategy: str = "paper",
    tenant: Optional[str] = ANONYMOUS,
) -> CompiledStencil:
    """Compile a stencil pattern (any front end's output), memoized.

    ``tenant`` scopes the cache telemetry (never the cache contents):
    the service passes each job's tenant id so per-tenant hit rates are
    readable through ``compile_cache_info(tenant=...)``.
    """
    params = params or MachineParams()
    try:
        # Pattern equality ignores the display name; key on it too so a
        # cached plan never reports another statement's label.
        key = (pattern, pattern.name, params, tuple(widths), strategy)
        hash(key)
    except TypeError:
        # An unhashable pattern or parameter set compiles uncached.
        return _maybe_verify(
            compile_pattern(pattern, params, widths, strategy=strategy)
        )
    return _PLAN_CACHE.get_or_compute(
        key,
        lambda: _maybe_verify(
            compile_pattern(pattern, params, widths, strategy=strategy)
        ),
        scope=tenant,
    )


def _health_signature(machine) -> Optional[tuple]:
    """A hashable fingerprint of the machine state that changes the
    depth economics: its rerouted links (orientation included -- detour
    cost depends on which way the band runs).  None for a healthy
    machine, so all healthy machines of any shape share cache entries
    exactly as before hard faults existed."""
    if machine is None:
        return None
    health = getattr(machine, "health", None)
    if health is None or not health.rerouted_links:
        return None
    return (
        machine.shape,
        tuple(
            sorted(
                (tuple(sorted(key)), health.dead_links[key].orientation)
                for key in health.rerouted_links
                if key in health.dead_links
            )
        ),
    )


def select_block_depth(
    compiled: CompiledStencil,
    subgrid_shape: Tuple[int, int],
    iterations: int,
    *,
    max_depth: Optional[int] = None,
    machine=None,
    tenant: Optional[str] = ANONYMOUS,
) -> int:
    """Pick the temporal block depth for an iterated run, memoized.

    Plan-level selection: the choice depends only on the compiled plan
    (pattern and machine parameters), the subgrid geometry, and the
    iteration count, so it is resolved once per combination and reused
    by every call -- the same economics as plan memoization.  Delegates
    to the deep-halo comm/compute model in
    :mod:`repro.runtime.blocking`; returns 1 when blocking does not pay.

    Remap-aware: when the (optional) ``machine`` carries rerouted links,
    their detour surcharge enters the cost model and the cache key
    carries the health fingerprint -- a selection priced on healthy
    wires is never replayed onto a degraded machine, and vice versa.
    """
    # Imported lazily: the runtime layer imports this module's siblings.
    from ..runtime.blocking import best_block_depth

    try:
        key = (
            compiled.pattern,
            compiled.params,
            tuple(subgrid_shape),
            iterations,
            max_depth,
            _health_signature(machine),
        )
        hash(key)
    except TypeError:
        return best_block_depth(
            compiled, subgrid_shape, iterations, max_depth, machine=machine
        )
    return _DEPTH_CACHE.get_or_compute(
        key,
        lambda: best_block_depth(
            compiled, subgrid_shape, iterations, max_depth, machine=machine
        ),
        scope=tenant,
    )


def select_batch_block_depth(
    compiled: CompiledStencil,
    subgrid_shape: Tuple[int, int],
    iterations: int,
    batch: int,
    *,
    max_depth: Optional[int] = None,
    machine=None,
    tenant: Optional[str] = ANONYMOUS,
) -> int:
    """Pick one filter's temporal block depth for a batched run,
    memoized.

    Like :func:`select_block_depth` but priced through the batch-aware
    model (:func:`repro.runtime.blocking.best_batch_block_depth`):
    source exchanges scale with ``batch`` while coefficient deep
    exchanges amortize over it, so the same filter can block deeper in a
    batch than solo.  Keyed with a ``"batch"`` discriminator so batched
    and solo selections for the same geometry never collide.
    """
    # Imported lazily: the runtime layer imports this module's siblings.
    from ..runtime.blocking import best_batch_block_depth

    try:
        key = (
            "batch",
            compiled.pattern,
            compiled.params,
            tuple(subgrid_shape),
            iterations,
            batch,
            max_depth,
            _health_signature(machine),
        )
        hash(key)
    except TypeError:
        return best_batch_block_depth(
            compiled,
            subgrid_shape,
            iterations,
            batch,
            max_depth,
            machine=machine,
        )
    return _DEPTH_CACHE.get_or_compute(
        key,
        lambda: best_batch_block_depth(
            compiled,
            subgrid_shape,
            iterations,
            batch,
            max_depth,
            machine=machine,
        ),
        scope=tenant,
    )


def select_batch_block_depths(
    filters: Sequence[CompiledStencil],
    subgrid_shape: Tuple[int, int],
    iterations: int,
    batch: int,
    *,
    machine=None,
    tenant: Optional[str] = ANONYMOUS,
) -> Tuple[int, ...]:
    """Per-filter block depths for a whole batched filter set, memoized
    on the set.

    The batched runtime plans one machine pass for the entire filter
    set, so the plan cache is keyed on the set too (a ``"batchset"``
    entry over every member's pattern): re-submitting the same workload
    -- the service's steady state -- resolves every depth in one cache
    hit instead of F sweeps.  Unblockable filters resolve to depth 1.
    """
    filters = tuple(filters)

    def sweep() -> Tuple[int, ...]:
        return tuple(
            select_batch_block_depth(
                compiled,
                subgrid_shape,
                iterations,
                batch,
                machine=machine,
                tenant=tenant,
            )
            for compiled in filters
        )

    try:
        key = (
            "batchset",
            tuple(
                (compiled.pattern, compiled.pattern.name)
                for compiled in filters
            ),
            filters[0].params if filters else None,
            tuple(subgrid_shape),
            iterations,
            batch,
            _health_signature(machine),
        )
        hash(key)
    except TypeError:
        return sweep()
    return _DEPTH_CACHE.get_or_compute(key, sweep, scope=tenant)


def compile_fortran(
    source: str,
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
) -> CompiledStencil:
    """Compile Fortran source: either an isolated stencil subroutine
    (the paper's second version) or a bare assignment statement.

    The source is treated as a subroutine if it contains the SUBROUTINE
    keyword, otherwise as a single assignment.
    """
    if "SUBROUTINE" in source.upper():
        pattern = recognize_subroutine(parse_subroutine(source))
    else:
        pattern = recognize_assignment(parse_assignment(source))
    return compile_stencil(pattern, params, widths)


def compile_defstencil(
    source: str,
    params: Optional[MachineParams] = None,
    widths: Sequence[int] = multistencil_widths(),
) -> CompiledStencil:
    """Compile a Lisp ``defstencil`` form (the paper's first version).

    Accepts both the 4-element form and the paper's 5-element form with
    the type list.
    """
    try:
        pattern = parse_defstencil_with_types(source)
    except Exception:
        pattern = parse_defstencil(source)
    return compile_stencil(pattern, params, widths)
