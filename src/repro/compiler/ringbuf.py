"""Per-column ring buffers of registers (paper section 5.4).

Each multistencil column gets its own ring buffer of registers.  As the
sweep moves North one line at a time, each column loads one new element
(its leading-edge position) into the slot vacated by its retiring bottom
element, so the register access pattern *rotates*; the whole pattern
repeats with period LCM(ring sizes), which is the factor by which the
compiler unrolls the register access patterns in sequencer scratch
memory.

Sizing strategy (from the paper): start with every ring equal to the
maximum column size -- uniform sizes keep the LCM equal to the maximum --
except that columns of height 1 always get size 1 ("reducing a ring
buffer to size 1 always saves registers and never makes the LCM larger").
If that uses too many registers, compress columns from smallest natural
size to largest, down to their natural size, until the allocation fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import List, Optional, Sequence, Tuple

from ..stencil.multistencil import ColumnProfile, Multistencil


def column_span(column: ColumnProfile) -> int:
    """The natural ring size of a column: its row extent.

    For the contiguous columns of every pattern in the paper this equals
    the column height (the number of occupied rows).  For a column with
    gaps the ring must hold elements while they age through the gap, so
    the span ``bottom - top + 1`` is the natural size.
    """
    return column.bottom - column.top + 1


@dataclass(frozen=True)
class RingBuffer:
    """One column's rotating register set.

    Attributes:
        column: the multistencil column this ring serves.
        size: the ring size (>= the column's natural span).
        registers: the physical registers, ``size`` of them.

    Slot discipline: the element at row offset ``row`` during line ``n``
    of the sweep lives in slot ``(row - top - n) mod size``.  Each line,
    the new leading-edge element (row ``top``) enters slot ``(-n) mod
    size`` -- which is exactly the slot the retiring element (and, in the
    tag column, the just-stored accumulator) vacated.
    """

    column: ColumnProfile
    size: int
    registers: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.registers) != self.size:
            raise ValueError(
                f"ring of size {self.size} given {len(self.registers)} registers"
            )
        if self.size < column_span(self.column):
            raise ValueError(
                f"ring size {self.size} below the column span "
                f"{column_span(self.column)}"
            )

    def slot_for(self, row: int, line: int) -> int:
        """Ring slot holding the element at row offset ``row`` on ``line``."""
        if not self.column.top <= row <= self.column.bottom:
            raise ValueError(
                f"row {row} outside column extent "
                f"[{self.column.top}, {self.column.bottom}]"
            )
        return (row - self.column.top - line) % self.size

    def register_for(self, row: int, line: int) -> int:
        """Physical register holding the element at ``row`` on ``line``."""
        return self.registers[self.slot_for(row, line)]

    def load_slot(self, line: int) -> int:
        """Slot receiving the leading-edge element loaded for ``line``."""
        return (-line) % self.size

    def load_register(self, line: int) -> int:
        return self.registers[self.load_slot(line)]


def lcm_of(sizes: Sequence[int]) -> int:
    """Least common multiple of the ring sizes: the unroll factor."""
    return reduce(math.lcm, sizes, 1)


def plan_ring_sizes(
    columns: Sequence[ColumnProfile], budget: int
) -> Optional[List[int]]:
    """Choose ring sizes for the columns within a register budget.

    Returns the chosen sizes (aligned with ``columns``), or None when
    even fully compressed (natural-size) rings exceed the budget, in
    which case this multistencil width is infeasible.

    Compression proceeds level by level: all columns sharing the smallest
    too-large natural size are compressed together, matching the paper's
    worked example where *both* height-3 columns of the width-4 13-point
    diamond drop from 5 to 3 (ring sizes 1,3,5,5,5,5,3,1; LCM 15).
    """
    naturals = [column_span(col) for col in columns]
    maximum = max(naturals)
    sizes = [1 if natural == 1 else maximum for natural in naturals]
    if sum(sizes) <= budget:
        return sizes
    # Compress, smallest natural level first.
    for level in sorted({n for n in naturals if 1 < n < maximum}):
        for index, natural in enumerate(naturals):
            if natural == level:
                sizes[index] = natural
        if sum(sizes) <= budget:
            return sizes
    # Finally compress the maximum-height columns (no-ops: already natural).
    if sum(naturals) <= budget:
        return list(naturals)
    return None


def plan_ring_sizes_optimal(
    columns: Sequence[ColumnProfile],
    budget: int,
    *,
    max_padding: int = 4,
) -> Optional[List[int]]:
    """The "even more clever strategy" the paper anticipates (section
    5.4): choose ring sizes minimizing the unroll LCM outright, with the
    register total as the tie-breaker, by dynamic programming over
    achievable LCM values.

    Each column may use any size from its natural span up to ``span +
    max_padding`` (padding a ring only ever helps by aligning its period
    with the others').  States are (lcm -> minimal total registers);
    transitions fold one column at a time.  The achievable LCMs stay
    tiny in practice (column spans are small integers), so the search is
    fast.

    Returns sizes aligned with ``columns`` or None when even the natural
    sizes exceed the budget.  Never worse than :func:`plan_ring_sizes`
    on either metric (tests assert it).
    """
    naturals = [column_span(col) for col in columns]
    if sum(naturals) > budget:
        return None

    # Candidate sizes reach at least the tallest column, so the
    # heuristic's uniform-maximum solution is always in the search space
    # (hence the DP is never worse than the paper's strategy).
    ceiling = max(naturals)

    # states: lcm -> (total_registers, chosen sizes)
    states: Dict[int, Tuple[int, List[int]]] = {1: (0, [])}
    for natural in naturals:
        top = max(natural + max_padding, ceiling)
        candidates = range(natural, top + 1)
        next_states: Dict[int, Tuple[int, List[int]]] = {}
        for current_lcm, (total, sizes) in states.items():
            for size in candidates:
                new_total = total + size
                if new_total > budget:
                    continue
                new_lcm = math.lcm(current_lcm, size)
                best = next_states.get(new_lcm)
                if best is None or new_total < best[0]:
                    next_states[new_lcm] = (new_total, sizes + [size])
        states = next_states
        if not states:
            return None  # budget exhausted mid-way (cannot happen if
            # naturals fit, since natural sizes are always candidates)
    best_lcm = min(states, key=lambda value: (value, states[value][0]))
    return states[best_lcm][1]


def build_rings(
    columns: Sequence[ColumnProfile],
    sizes: Sequence[int],
    first_register: int,
) -> Tuple[RingBuffer, ...]:
    """Assign physical registers to the planned rings, left to right."""
    rings: List[RingBuffer] = []
    next_register = first_register
    for column, size in zip(columns, sizes):
        registers = tuple(range(next_register, next_register + size))
        next_register += size
        rings.append(RingBuffer(column=column, size=size, registers=registers))
    return tuple(rings)
